#include "bench/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Interposing implementation: replaces the global allocation functions for
// the whole bench binary. Counting uses a relaxed atomic — the counter is
// a tally, not a synchronization point — so the overhead is one
// uncontended RMW per allocation; negligible next to malloc itself, and
// the allocation-free fit kernels this counter exists to verify do not
// pay it at all.

namespace laws::bench {
namespace {

std::atomic<uint64_t> g_alloc_count{0};

inline void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  return p;
}

}  // namespace

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

bool AllocCounterEnabled() { return true; }

}  // namespace laws::bench

void* operator new(std::size_t size) {
  void* p = laws::bench::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = laws::bench::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return laws::bench::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return laws::bench::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = laws::bench::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = laws::bench::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

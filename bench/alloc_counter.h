#ifndef LAWSDB_BENCH_ALLOC_COUNTER_H_
#define LAWSDB_BENCH_ALLOC_COUNTER_H_

#include <cstdint>

// Bench-only heap instrumentation. When the interposing implementation is
// linked in (laws_bench_alloc, default for bench binaries and off under
// LAWS_SANITIZE — sanitizers own malloc), every global `operator new` in
// the binary bumps an atomic counter, so benches can report allocation
// counts (e.g. allocs_per_group for the grouped fit) alongside timings.
// With the stub implementation all calls return zero/false and the bench
// prints "n/a".

namespace laws::bench {

/// Total global operator-new calls observed so far in this process.
uint64_t AllocCount();

/// True when the interposing implementation is linked in.
bool AllocCounterEnabled();

}  // namespace laws::bench

#endif  // LAWSDB_BENCH_ALLOC_COUNTER_H_

#include "bench/alloc_counter.h"

// Stub implementation: no interposition, counters read as disabled. Used
// when LAWS_BENCH_ALLOC_COUNTER is OFF (sanitizer builds own malloc).

namespace laws::bench {

uint64_t AllocCount() { return 0; }

bool AllocCounterEnabled() { return false; }

}  // namespace laws::bench

// Ablation: Gauss-Newton vs Levenberg-Marquardt vs log-linearization on
// power-law fits (DESIGN.md §4.2/4.3).
//
// The paper notes that iterative fitters "can be highly dependent on the
// choice of starting parameters" and may diverge. This bench fits the same
// LOFAR-style per-source problems with each algorithm from (a) the
// log-linear warm start and (b) deliberately bad starting points, and
// reports convergence rate, iteration counts, parameter accuracy and time.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "model/fit.h"
#include "model/model.h"

namespace {

using namespace laws;
using namespace laws::bench;

struct Problem {
  Matrix x;
  Vector y;
  double p_true, a_true;
};

std::vector<Problem> MakeProblems(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Problem> problems;
  problems.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    Problem prob;
    prob.p_true = rng.LogNormal(-1.0, 0.5);
    prob.a_true = rng.Normal(-0.75, 0.12);
    const size_t n = 40;
    prob.x = Matrix(n, 1);
    prob.y.resize(n);
    for (size_t i = 0; i < n; ++i) {
      prob.x(i, 0) = rng.Uniform(0.1, 0.2);
      prob.y[i] = prob.p_true * std::pow(prob.x(i, 0), prob.a_true) *
                  std::exp(rng.Normal(0.0, 0.05));
    }
    problems.push_back(std::move(prob));
  }
  return problems;
}

void RunSweep(const char* label, const std::vector<Problem>& problems,
              FitAlgorithm algorithm, const Vector& start) {
  PowerLawModel model;
  size_t converged = 0, failed = 0, accurate = 0;
  double total_iters = 0.0;
  Timer timer;
  for (const Problem& prob : problems) {
    FitOptions opts;
    opts.algorithm = algorithm;
    opts.initial_parameters = start;
    opts.max_iterations = 200;
    opts.compute_standard_errors = false;
    auto fit = FitModel(model, prob.x, prob.y, opts);
    if (!fit.ok()) {
      ++failed;
      continue;
    }
    converged += fit->converged ? 1 : 0;
    total_iters += static_cast<double>(fit->iterations);
    if (std::fabs(fit->parameters[1] - prob.a_true) < 0.15) ++accurate;
  }
  const double ms = timer.ElapsedMillis();
  const double n = static_cast<double>(problems.size());
  std::printf("  %-22s %9.1f%% %9.1f%% %9.1f%% %10.1f %10.1f\n", label,
              100.0 * static_cast<double>(converged) / n,
              100.0 * static_cast<double>(failed) / n,
              100.0 * static_cast<double>(accurate) / n,
              total_iters / std::max(1.0, n - static_cast<double>(failed)),
              ms);
}

}  // namespace

int main() {
  Banner("Ablation: nonlinear fitting algorithms on power laws",
         "convergence of Gauss-Newton vs Levenberg-Marquardt vs log-linear "
         "OLS, with good and bad starting points");

  const auto problems = MakeProblems(2000, 99);

  std::printf("\n%zu per-source problems, 40 observations each\n\n",
              problems.size());
  std::printf("  %-22s %10s %10s %10s %10s %10s\n", "algorithm",
              "converged", "failed", "alpha ok", "avg iters", "total ms");

  std::printf("warm start (model default / log-linear):\n");
  RunSweep("log-linear only", problems, FitAlgorithm::kLogLinear, {});
  RunSweep("Gauss-Newton", problems, FitAlgorithm::kGaussNewton, {});
  RunSweep("Levenberg-Marquardt", problems, FitAlgorithm::kLevenbergMarquardt,
           {});

  std::printf("bad start (p=100, alpha=+2):\n");
  const Vector bad = {100.0, 2.0};
  RunSweep("Gauss-Newton", problems, FitAlgorithm::kGaussNewton, bad);
  RunSweep("Levenberg-Marquardt", problems, FitAlgorithm::kLevenbergMarquardt,
           bad);

  std::printf(
      "\nSHAPE OK when: all algorithms agree from the warm start "
      "(log-linear is the cheapest); from the bad start plain Gauss-Newton "
      "fails/diverges on a large fraction while Levenberg-Marquardt "
      "still converges — the damping the paper's 'local extrema / "
      "divergence' discussion calls for.\n");
  return 0;
}

// Ablation: incremental OLS vs refit-from-scratch on append-only data.
//
// The paper argues models keep the storage/processing cost of analysis
// constant as observations accumulate: "if ten times more observations per
// source are collected, the model will only get more precise, not larger".
// The incremental accumulator makes that operational — updating a captured
// linear model costs O(p^2) per appended row, independent of history. This
// bench appends batches to a growing series and compares the cost of (a)
// folding just the new rows into the sufficient statistics vs (b)
// re-fitting the full history, checking both produce the same parameters.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "model/fit.h"
#include "model/incremental.h"
#include "model/model.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Ablation: incremental OLS vs refit-from-scratch",
         "append-only updates in O(p^2)/row keep model maintenance flat "
         "while full refits grow with history");

  LinearModel model(1);
  auto inc = Unwrap(IncrementalOls::Create(model), "create");
  Rng rng(5);

  // Full history retained only for the from-scratch comparison.
  std::vector<double> all_x, all_y;

  std::printf("%12s %14s %16s %14s %12s\n", "total rows", "append rows",
              "incremental(ms)", "refit(ms)", "slope diff");
  const size_t kBatch = 100'000;
  bool shapes_ok = true;
  for (int round = 1; round <= 6; ++round) {
    // Generate and append one batch.
    Matrix batch_x(kBatch, 1);
    Vector batch_y(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      const double x = rng.Uniform(0, 100);
      batch_x(i, 0) = x;
      batch_y[i] = 4.0 + 0.25 * x + rng.Normal(0, 2.0);
      all_x.push_back(x);
      all_y.push_back(batch_y[i]);
    }

    Timer inc_timer;
    CheckOk(inc.AddBatch(batch_x, batch_y), "add batch");
    FitOutput inc_fit = Unwrap(inc.Solve(), "solve");
    const double inc_ms = inc_timer.ElapsedMillis();

    Timer refit_timer;
    Matrix full_x(all_x.size(), 1);
    Vector full_y(all_y.size());
    for (size_t i = 0; i < all_x.size(); ++i) {
      full_x(i, 0) = all_x[i];
      full_y[i] = all_y[i];
    }
    FitOutput refit = Unwrap(FitModel(model, full_x, full_y), "refit");
    const double refit_ms = refit_timer.ElapsedMillis();

    const double slope_diff =
        std::fabs(inc_fit.parameters[1] - refit.parameters[1]);
    std::printf("%12zu %14zu %16.1f %14.1f %12.2e\n", all_x.size(), kBatch,
                inc_ms, refit_ms, slope_diff);
    if (slope_diff > 1e-7) shapes_ok = false;
  }

  if (!shapes_ok) {
    std::fprintf(stderr, "FATAL: incremental and batch fits diverged\n");
    return 1;
  }
  std::printf("\nSHAPE OK: identical parameters; incremental cost tracks "
              "the batch size while the from-scratch refit grows with "
              "total history.\n");
  return 0;
}

// Ablation: residual quantization step in lossy semantic compression
// (DESIGN.md §4.4).
//
// The quantization step is the knob between storage and fidelity: the
// reconstruction error is bounded by step/2 while residuals collapse to
// small integers that the columnar encoders crush. This bench sweeps the
// step over six decades on the LOFAR workload and prints bytes vs
// measured max error (which must respect the bound at every step).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "compress/semantic.h"
#include "lofar/generator.h"
#include "model/grouped_fit.h"
#include "model/model.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Ablation: residual quantization step (lossy semantic "
         "compression)",
         "size vs bounded error; max |error| <= step/2 must hold at every "
         "setting");

  LofarConfig cfg;
  cfg.num_sources = 5000;
  cfg.num_rows = 200'000;
  cfg.anomalous_fraction = 0.0;
  auto data = Unwrap(GenerateLofar(cfg), "generate");
  const Table& table = data.observations;

  PowerLawModel model;
  GroupedFitSpec spec;
  spec.group_column = "source";
  spec.input_columns = {"wavelength"};
  spec.output_column = "intensity";
  auto fits = Unwrap(FitGrouped(model, table, spec), "fit");

  const Column& y0 = *Unwrap(table.ColumnByName("intensity"), "col");
  const size_t raw = table.MemoryBytes();
  std::printf("raw table: %zu rows, %s\n\n", table.num_rows(),
              HumanBytes(raw).c_str());
  std::printf("%12s %14s %8s %14s %14s\n", "step", "bytes", "ratio",
              "bound (q/2)", "measured max");

  auto lossless = Unwrap(SemanticCompress(table, model, fits, spec),
                         "lossless");
  std::printf("%12s %14zu %7.1f%% %14s %14s\n", "lossless",
              lossless.TotalCompressedBytes(),
              100.0 * lossless.CompressionRatio(), "0", "0");

  size_t prev_bytes = lossless.TotalCompressedBytes();
  for (double step : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
    SemanticCompressionOptions opts;
    opts.lossless = false;
    opts.quantization_step = step;
    auto compressed =
        Unwrap(SemanticCompress(table, model, fits, spec, opts), "compress");
    Table back = Unwrap(SemanticDecompress(compressed), "decompress");
    const Column& y1 = *Unwrap(back.ColumnByName("intensity"), "col");
    double max_err = 0.0;
    for (size_t i = 0; i < y0.size(); ++i) {
      max_err = std::max(max_err, std::fabs(y1.DoubleAt(i) - y0.DoubleAt(i)));
    }
    std::printf("%12.0e %14zu %7.1f%% %14.1e %14.3e\n", step,
                compressed.TotalCompressedBytes(),
                100.0 * compressed.CompressionRatio(), step / 2.0, max_err);
    if (max_err > step / 2.0 + 1e-15) {
      std::fprintf(stderr, "FATAL: error bound violated at step %g\n", step);
      return 1;
    }
    if (compressed.TotalCompressedBytes() > prev_bytes + raw / 100) {
      std::fprintf(stderr,
                   "FATAL: size not monotone non-increasing at step %g\n",
                   step);
      return 1;
    }
    prev_bytes = compressed.TotalCompressedBytes();
  }

  std::printf("\nSHAPE OK: size falls monotonically with coarser "
              "quantization and the step/2 error bound holds "
              "everywhere.\n");
  return 0;
}

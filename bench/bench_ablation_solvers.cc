// Ablation: QR vs normal-equations least squares (DESIGN.md §4.1).
//
// Normal equations are ~2x cheaper for tall-thin designs but square the
// condition number; Householder QR stays stable. This bench measures both
// effects: throughput on well-conditioned fits and accuracy degradation on
// a nearly collinear polynomial design.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "model/fit.h"
#include "model/model.h"

namespace {

using namespace laws;

Matrix RandomDesign(size_t n, size_t p, uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, p);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) x(i, j) = rng.Normal();
  }
  return x;
}

void BM_LeastSquaresQr(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const size_t p = 8;
  Matrix x = RandomDesign(n, p, 1);
  Rng rng(2);
  Vector y(n);
  for (auto& v : y) v = rng.Normal();
  for (auto _ : state) {
    auto beta = LeastSquaresQr(x, y);
    if (!beta.ok()) state.SkipWithError("QR failed");
    benchmark::DoNotOptimize(beta);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_LeastSquaresQr)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LeastSquaresNormalEquations(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const size_t p = 8;
  Matrix x = RandomDesign(n, p, 1);
  Rng rng(2);
  Vector y(n);
  for (auto& v : y) v = rng.Normal();
  for (auto _ : state) {
    auto beta = LeastSquaresNormal(x, y);
    if (!beta.ok()) state.SkipWithError("normal equations failed");
    benchmark::DoNotOptimize(beta);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_LeastSquaresNormalEquations)->Arg(100)->Arg(1000)->Arg(10000);

/// Conditioning study printed once after the throughput runs: fit a
/// degree-7 polynomial on x in [1000, 1001] — a classically ill-conditioned
/// Vandermonde design. QR keeps more digits than the normal equations.
void ConditioningStudy() {
  std::printf("\n--- conditioning study: poly(7) on x in [1000, 1001] ---\n");
  Rng rng(3);
  PolynomialModel model(7);
  const size_t n = 400;
  Matrix x(n, 1);
  Vector y(n);
  // Ground truth in the shifted coordinate to keep targets finite.
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = 1000.0 + static_cast<double>(i) / n;
    const double t = x(i, 0) - 1000.0;
    y[i] = 1.0 + t - 0.5 * t * t + 0.1 * t * t * t;
  }
  auto design = BuildDesignMatrix(model, x);
  if (!design.ok()) return;
  const auto cond = ConditionEstimate(*design);
  std::printf("design condition estimate: %.3g\n",
              cond.ok() ? *cond : -1.0);

  FitOptions qr_opts;
  qr_opts.algorithm = FitAlgorithm::kOls;
  FitOptions ne_opts;
  ne_opts.algorithm = FitAlgorithm::kOlsNormalEquations;
  auto qr = FitModel(model, x, y, qr_opts);
  auto ne = FitModel(model, x, y, ne_opts);
  std::printf("QR:               %s (RSE %.3e)\n",
              qr.ok() ? "solved" : qr.status().ToString().c_str(),
              qr.ok() ? qr->quality.residual_standard_error : 0.0);
  std::printf("normal equations: %s (RSE %.3e)\n",
              ne.ok() ? "solved" : ne.status().ToString().c_str(),
              ne.ok() ? ne->quality.residual_standard_error : 0.0);
  std::printf("expected: normal equations fail (Cholesky on a squared "
              "condition number) or lose accuracy; QR degrades "
              "gracefully.\n");
}

struct StudyRunner {
  StudyRunner() { std::atexit([] { ConditioningStudy(); }); }
} study_runner;

}  // namespace

BENCHMARK_MAIN();

// Compressed-domain scan benchmark: block-partitioned columns with zone
// maps and RLE runs (DESIGN.md §14) vs the decode-then-bytecode baseline
// on a 1M-row table.
//
// Three shapes, each one claim of the compressed tier:
//   zonemap_filter  selective predicate on a clustered column -> whole
//                   blocks pruned by zone maps before any row is touched
//   run_filter      predicate on a low-cardinality RLE column -> one
//                   evaluation per merged run instead of per row
//   encoded_agg     global SUM/COUNT/MIN/MAX/AVG folded run-weighted from
//                   the encoded blocks, no decode at all
//
// Results must be bit-identical to the decode path (checked here); the
// compressed tier must then win by >= 3x on the zone-map filter and
// >= 2x on the encoded aggregate at the default row count — the PR's
// perf gates, enforced as shape checks like every other bench FATAL.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "compress/block_store.h"
#include "query/compressed_scan.h"
#include "query/executor.h"
#include "query/expr_eval.h"
#include "query/parser.h"
#include "query/vector_eval.h"
#include "storage/table.h"

namespace {

using namespace laws;
using namespace laws::bench;

// Deterministic splitmix64 so the value column is salted: irregular
// magnitudes, no accidental patterns beyond the runs we plant on purpose.
uint64_t Mix(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// A sensor-log shaped table (the paper's natural-data setting):
//   ts   int64, clustered (append order) -> tight disjoint zone ranges
//   dev  int64, device id in runs of 512 rows, 2 devices interleaved ->
//        every 4096-row block keeps RLE runs but mixes both values
//   v    int64, per-run reading in [0, 97) -> RLE + exact-sum guard holds
TablePtr MakeSensorTable(size_t rows) {
  uint64_t seed = 0x5CA1AB1Eull;
  std::vector<int64_t> ts(rows), dev(rows), v(rows);
  int64_t reading = 0;
  for (size_t i = 0; i < rows; ++i) {
    ts[i] = static_cast<int64_t>(i);
    if (i % 512 == 0) reading = static_cast<int64_t>(Mix(seed) % 97);
    dev[i] = static_cast<int64_t>((i / 512) % 2);
    v[i] = reading;
  }
  Column ts_c(DataType::kInt64, /*nullable=*/false);
  Column dev_c(DataType::kInt64, /*nullable=*/false);
  Column v_c(DataType::kInt64, /*nullable=*/false);
  ts_c.AppendInt64Batch(ts.data(), nullptr, rows);
  dev_c.AppendInt64Batch(dev.data(), nullptr, rows);
  v_c.AppendInt64Batch(v.data(), nullptr, rows);
  Schema schema({Field{"ts", DataType::kInt64, false},
                 Field{"dev", DataType::kInt64, false},
                 Field{"v", DataType::kInt64, false}});
  std::vector<Column> cols;
  cols.push_back(std::move(ts_c));
  cols.push_back(std::move(dev_c));
  cols.push_back(std::move(v_c));
  return std::make_shared<Table>(Unwrap(
      Table::FromColumns(std::move(schema), std::move(cols)), "build table"));
}

template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

bool SameDoubleBits(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  uint64_t ba, bb;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

bool TablesIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const Value va = a.GetValue(r, c);
      const Value vb = b.GetValue(r, c);
      if (va.is_null() != vb.is_null()) return false;
      if (va.is_null()) continue;
      if (va.is_double() != vb.is_double()) return false;
      if (va.is_double()) {
        if (!SameDoubleBits(va.dbl(), vb.dbl())) return false;
      } else if (va.ToString() != vb.ToString()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Compressed-domain scans: zone-map pruning + run-aware filtering "
         "+ encoded aggregation vs decode-then-bytecode",
         "operating on the encoded form should beat decoding: >= 3x on a "
         "selective clustered filter, >= 2x on a global aggregate");

  size_t rows = 1'000'000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0) {
      rows = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  const int reps = 5;
  // Gates only apply at meaningful scale: tiny --rows runs (sanitizer
  // smoke) are dominated by setup overhead.
  const bool enforce_gate = rows >= 256 * 1024;

  std::printf("sensor table: %zu rows (ts: clustered int64, dev: 2 ids in "
              "512-row runs, v: per-run reading), block=%zu rows\n\n",
              rows, ScanBlockRows());
  const TablePtr table = MakeSensorTable(rows);
  ThreadPool::SetGlobalThreadCount(1);
  SetGlobalExprEngine(ExprEngine::kBytecode);  // strongest decode baseline

  Timer build_timer;
  SetGlobalScanEngine(ScanEngine::kCompressed);
  EnsureBlockIndex(table);
  const double build_s = build_timer.ElapsedSeconds();
  std::printf("block index build (one-time, amortized across queries): "
              "%.4f s\n\n", build_s);

  JsonReport json(JsonPathFromArgs(argc, argv));
  bool gate_failed = false;

  struct CaseRow {
    const char* name;
    double decode_s;
    double compressed_s;
    double min_speedup;  // 0 = informational
  };
  std::vector<CaseRow> table_rows;

  auto record = [&](const char* name, double dec, double comp,
                    double min_speedup) {
    table_rows.push_back({name, dec, comp, min_speedup});
    json.Begin(std::string("compressed_scan_") + name);
    json.Field("rows", rows);
    ThreadSweepFields(json, 1);
    json.Field("decode_seconds", dec);
    json.Field("compressed_seconds", comp);
    json.Field("speedup", comp > 0.0 ? dec / comp : 0.0);
    json.Field("min_speedup", min_speedup);
  };

  // Timed filter legs share this harness: decode = compiled bytecode VM
  // over every row; compressed = zone-map prune + run-merge walk. The
  // selections must be identical index-for-index.
  auto filter_case = [&](const char* name, const std::string& sql,
                         double min_speedup, ScanStats* stats_out) {
    auto stmt = Unwrap(ParseSelect(sql), "parse filter");
    const Expr& pred = *stmt.where;
    std::vector<uint32_t> dec_sel, comp_sel;
    SetGlobalScanEngine(ScanEngine::kDecode);
    const double dec = BestSeconds(reps, [&] {
      dec_sel = Unwrap(FilterRowsAuto(pred, *table), "decode filter");
    });
    SetGlobalScanEngine(ScanEngine::kCompressed);
    ScanStats stats;
    const double comp = BestSeconds(reps, [&] {
      auto sel = CompressedFilterRows(pred, *table, &stats);
      if (!sel.has_value()) {
        std::fprintf(stderr, "FATAL: compressed tier declined %s\n",
                     sql.c_str());
        std::exit(1);
      }
      comp_sel = std::move(*sel);
    });
    if (dec_sel != comp_sel) {
      std::fprintf(stderr, "FATAL: %s selection diverged (decode %zu rows, "
                   "compressed %zu rows)\n", name, dec_sel.size(),
                   comp_sel.size());
      std::exit(1);
    }
    std::printf("%-14s %zu of %zu rows selected, identical on both paths "
                "(blocks=%zu pruned=%zu taken=%zu runs_skipped=%zu)\n",
                name, comp_sel.size(), rows, stats.blocks_total,
                stats.blocks_pruned, stats.blocks_taken,
                stats.rows_run_skipped);
    if (stats_out != nullptr) *stats_out = stats;
    record(name, dec, comp, min_speedup);
  };

  // --- zonemap_filter: selective predicate on the clustered column ------
  // Selects the last ~1% of rows; every other block's zone range excludes
  // the cutoff, so pruning must discard ~99% of blocks untouched.
  {
    char sql[128];
    std::snprintf(sql, sizeof(sql),
                  "SELECT ts FROM t WHERE ts >= %zu", rows - rows / 100 - 1);
    ScanStats stats;
    filter_case("zonemap_filter", sql, 3.0, &stats);
    if (enforce_gate && stats.blocks_pruned * 10 < stats.blocks_total * 9) {
      std::fprintf(stderr, "FATAL: zone maps pruned only %zu of %zu blocks "
                   "on a 1%% selective clustered predicate\n",
                   stats.blocks_pruned, stats.blocks_total);
      return 1;
    }
  }

  // --- run_filter: RLE column, every block mixed -> merged-run walk -----
  // No block prunes (both device ids appear in every block); the win must
  // come purely from evaluating once per 512-row run.
  filter_case("run_filter", "SELECT ts FROM t WHERE dev = 1", 0.0, nullptr);

  // --- encoded_agg: global aggregate folded from zone maps and runs -----
  {
    auto stmt = Unwrap(ParseSelect(
        "SELECT SUM(v), COUNT(v), MIN(v), MAX(v), AVG(v) FROM t"),
        "parse aggregate");
    Table dec_out{Schema{}}, comp_out{Schema{}};
    SetGlobalScanEngine(ScanEngine::kDecode);
    const double dec = BestSeconds(reps, [&] {
      dec_out = Unwrap(ExecuteSelectOnTable(*table, stmt), "decode agg");
    });
    Counter* encoded = MetricsRegistry::Global().GetCounter("scan.encoded_agg");
    const uint64_t encoded_before = encoded->value();
    SetGlobalScanEngine(ScanEngine::kCompressed);
    const double comp = BestSeconds(reps, [&] {
      comp_out = Unwrap(ExecuteSelectOnTable(*table, stmt), "compressed agg");
    });
    if (encoded->value() == encoded_before) {
      std::fprintf(stderr, "FATAL: encoded aggregation never engaged "
                   "(scan.encoded_agg unchanged) — measuring decode twice\n");
      return 1;
    }
    if (!TablesIdentical(dec_out, comp_out)) {
      std::fprintf(stderr, "FATAL: aggregate result diverged between decode "
                   "and encoded paths\n");
      return 1;
    }
    std::printf("%-14s SUM/COUNT/MIN/MAX/AVG bit-identical on both paths\n\n",
                "encoded_agg");
    record("encoded_agg", dec, comp, 2.0);
  }

  std::printf("%-14s %12s %14s %9s %8s\n", "case", "decode s",
              "compressed s", "speedup", "gate");
  for (const CaseRow& r : table_rows) {
    const double speedup =
        r.compressed_s > 0.0 ? r.decode_s / r.compressed_s : 0.0;
    const bool gated = r.min_speedup > 0.0;
    const bool pass = !gated || !enforce_gate || speedup >= r.min_speedup;
    std::printf("%-14s %12.4f %14.4f %8.2fx %8s\n", r.name, r.decode_s,
                r.compressed_s, speedup,
                gated ? (enforce_gate ? (pass ? "PASS" : "FAIL") : "skipped")
                      : "-");
    if (!pass) gate_failed = true;
  }

  MetricsFields(json);
  json.Flush();
  SetGlobalScanEngine(ScanEngine::kCompressed);
  ThreadPool::SetGlobalThreadCount(0);

  if (gate_failed) {
    std::fprintf(stderr, "\nFATAL: compressed tier under its speedup floor "
                 "on a gated case — zone maps / encoded folds are not "
                 "earning their keep\n");
    return 1;
  }
  std::printf("\nSHAPE OK: compressed scans >= 3x on zone-map filter, "
              ">= 2x on encoded aggregate%s\n",
              enforce_gate ? "" : " (gates skipped at reduced --rows)");
  return 0;
}

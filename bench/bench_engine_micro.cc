// Substrate micro-benchmarks: raw throughput of the query engine's core
// operators (scan+filter, hash aggregation, hash join, expression
// evaluation). Not a paper experiment — these calibrate the exact-path
// numbers every other bench compares against, so regressions here would
// silently distort the reproduction's speedup claims.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "query/executor.h"
#include "query/expr_eval.h"
#include "query/parser.h"
#include "storage/catalog.h"

namespace {

using namespace laws;

const Catalog& FixtureCatalog() {
  static Catalog* catalog = [] {
    auto* cat = new Catalog();
    Rng rng(1);
    auto fact = std::make_shared<Table>(
        Schema({Field{"k", DataType::kInt64, false},
                Field{"grp", DataType::kInt64, false},
                Field{"x", DataType::kDouble, false}}));
    Column* k = fact->mutable_column(0);
    Column* g = fact->mutable_column(1);
    Column* x = fact->mutable_column(2);
    for (int64_t i = 0; i < 1'000'000; ++i) {
      k->AppendInt64(i);
      g->AppendInt64(i % 1000);
      x->AppendDouble(rng.Normal(0, 10));
    }
    (void)fact->SyncRowCount();
    cat->RegisterOrReplace("fact", fact);

    auto dim = std::make_shared<Table>(
        Schema({Field{"grp", DataType::kInt64, false},
                Field{"w", DataType::kDouble, false}}));
    for (int64_t i = 0; i < 1000; ++i) {
      (void)dim->AppendRow({Value::Int64(i), Value::Double(i * 0.5)});
    }
    cat->RegisterOrReplace("dim", dim);
    return cat;
  }();
  return *catalog;
}

void BM_ScanFilter(benchmark::State& state) {
  const Catalog& cat = FixtureCatalog();
  for (auto _ : state) {
    auto r = ExecuteQuery(cat, "SELECT COUNT(*) FROM fact WHERE x > 5.0");
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_ScanFilter)->Unit(benchmark::kMillisecond);

void BM_ExpressionEvaluation(benchmark::State& state) {
  const Catalog& cat = FixtureCatalog();
  auto table = *cat.Get("fact");
  auto expr = ParseExpression("x * 2.0 + 1.0");
  for (auto _ : state) {
    auto col = EvaluateExpr(**expr, *table);
    if (!col.ok()) state.SkipWithError("eval failed");
    benchmark::DoNotOptimize(col);
  }
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_ExpressionEvaluation)->Unit(benchmark::kMillisecond);

void BM_HashAggregate(benchmark::State& state) {
  const Catalog& cat = FixtureCatalog();
  for (auto _ : state) {
    auto r = ExecuteQuery(
        cat, "SELECT grp, SUM(x), COUNT(*) FROM fact GROUP BY grp");
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_HashAggregate)->Unit(benchmark::kMillisecond);

void BM_HashJoin(benchmark::State& state) {
  const Catalog& cat = FixtureCatalog();
  for (auto _ : state) {
    auto r = ExecuteQuery(
        cat,
        "SELECT SUM(x * w) FROM fact JOIN dim ON grp = grp");
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_HashJoin)->Unit(benchmark::kMillisecond);

void BM_SortLimit(benchmark::State& state) {
  const Catalog& cat = FixtureCatalog();
  for (auto _ : state) {
    auto r = ExecuteQuery(
        cat, "SELECT k FROM fact WHERE x > 25.0 ORDER BY x DESC LIMIT 10");
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SortLimit)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Expression engine micro-benchmark: tree-walking interpreter vs the
// compiled bytecode VM (DESIGN.md §13) on 1M-row salted tables.
//
// Three shapes, each the hot inner loop of one executor stage:
//   filter     WHERE predicate -> selected row indices
//   project    arithmetic SELECT item -> output column
//   aggregate  full GROUP BY pipeline (keys + agg args through the engine)
//
// Both engines must produce bit-identical results (checked here, row by
// row); the bytecode VM must then win by >= 2x on filter and project at
// the default row count — that is the PR's perf gate, enforced as a
// shape check like every other bench FATAL.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "query/expr_eval.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/vector_eval.h"
#include "storage/table.h"

namespace {

using namespace laws;
using namespace laws::bench;

// Small deterministic generator (splitmix64) so the table is "salted":
// irregular values, no accidental patterns an engine could special-case.
uint64_t Mix(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double MixDouble(uint64_t& state) {
  return static_cast<double>(Mix(state) >> 11) * 0x1.0p-53;  // [0, 1)
}

Table MakeSaltedTable(size_t rows) {
  uint64_t seed = 0xB17EC0DEull;
  Column da(DataType::kDouble, /*nullable=*/true);    // ~3% NULL
  Column db(DataType::kDouble, /*nullable=*/false);
  Column ia(DataType::kInt64, /*nullable=*/false);
  Column g(DataType::kInt64, /*nullable=*/false);
  std::vector<double> da_v(rows), db_v(rows);
  std::vector<uint8_t> da_null(rows);
  std::vector<int64_t> ia_v(rows), g_v(rows);
  for (size_t i = 0; i < rows; ++i) {
    da_null[i] = (Mix(seed) % 100 < 3) ? 1 : 0;
    da_v[i] = MixDouble(seed) * 200.0 - 100.0;
    db_v[i] = MixDouble(seed) * 50.0 + 1.0;  // > 0, safe under ln()
    ia_v[i] = static_cast<int64_t>(Mix(seed) % 10'000) - 5'000;
    g_v[i] = static_cast<int64_t>(Mix(seed) % 64);
  }
  da.AppendDoubleBatch(da_v.data(), da_null.data(), rows);
  db.AppendDoubleBatch(db_v.data(), nullptr, rows);
  ia.AppendInt64Batch(ia_v.data(), nullptr, rows);
  g.AppendInt64Batch(g_v.data(), nullptr, rows);
  Schema schema({Field{"da", DataType::kDouble, true},
                 Field{"db", DataType::kDouble, false},
                 Field{"ia", DataType::kInt64, false},
                 Field{"g", DataType::kInt64, false}});
  std::vector<Column> cols;
  cols.push_back(std::move(da));
  cols.push_back(std::move(db));
  cols.push_back(std::move(ia));
  cols.push_back(std::move(g));
  return Unwrap(Table::FromColumns(std::move(schema), std::move(cols)),
                "build table");
}

const Expr* WhereOf(const SelectStatement& stmt) { return stmt.where.get(); }

// Best-of-reps wall time for one thunk (min absorbs scheduler noise on
// the shared CI box).
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

bool SameDoubleBits(double a, double b) {
  // Bit-identity, except every NaN is one class (matches the differential
  // harness's TablesEquivalent contract).
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  uint64_t ba, bb;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

bool ColumnsIdentical(const Column& a, const Column& b) {
  if (a.size() != b.size() || a.type() != b.type()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.IsNull(i) != b.IsNull(i)) return false;
    if (a.IsNull(i)) continue;
    switch (a.type()) {
      case DataType::kDouble:
        if (!SameDoubleBits(a.DoubleAt(i), b.DoubleAt(i))) return false;
        break;
      case DataType::kInt64:
        if (a.Int64At(i) != b.Int64At(i)) return false;
        break;
      case DataType::kBool:
        if (a.BoolAt(i) != b.BoolAt(i)) return false;
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Expression engine: tree-walker vs compiled bytecode VM",
         "batched register VM should beat the boxed-Value interpreter "
         ">= 2x on filter and project");

  size_t rows = 1'000'000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0) {
      rows = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  const int reps = 5;
  // The 2x gate only applies at a meaningful scale: tiny --rows runs
  // (sanitizer smoke) are dominated by compile/setup overhead.
  const bool enforce_gate = rows >= 256 * 1024;

  std::printf("salted table: %zu rows (da: double ~3%% NULL, db: double, "
              "ia/g: int64)\n\n", rows);
  const Table table = MakeSaltedTable(rows);
  ThreadPool::SetGlobalThreadCount(1);  // expression engines are per-thread

  JsonReport json(JsonPathFromArgs(argc, argv));
  bool gate_failed = false;

  struct CaseRow {
    const char* name;
    double treewalk_s;
    double bytecode_s;
    bool gated;
  };
  std::vector<CaseRow> table_rows;

  auto record = [&](const char* name, double tw, double bc, bool gated) {
    table_rows.push_back({name, tw, bc, gated});
    json.Begin(std::string("expr_bytecode_") + name);
    json.Field("rows", rows);
    ThreadSweepFields(json, 1);
    json.Field("treewalk_seconds", tw);
    json.Field("bytecode_seconds", bc);
    json.Field("speedup", bc > 0.0 ? tw / bc : 0.0);
    json.Field("gate_2x", gated);
  };

  // --- filter: WHERE predicate over all rows -> selected indices --------
  {
    auto stmt = Unwrap(ParseSelect(
        "SELECT da FROM t WHERE da * 0.5 + db > ia / 3.0 AND da < 90.0"),
        "parse filter");
    const Expr& pred = *WhereOf(stmt);
    std::vector<uint32_t> tw_sel, bc_sel;
    const double tw = BestSeconds(reps, [&] {
      tw_sel = Unwrap(FilterRows(pred, table), "treewalk filter");
    });
    SetGlobalExprEngine(ExprEngine::kBytecode);
    const double bc = BestSeconds(reps, [&] {
      bc_sel = Unwrap(FilterRowsAuto(pred, table), "bytecode filter");
    });
    if (tw_sel != bc_sel) {
      std::fprintf(stderr, "FATAL: filter selection diverged "
                   "(treewalk %zu rows, bytecode %zu rows)\n",
                   tw_sel.size(), bc_sel.size());
      return 1;
    }
    std::printf("filter:    %zu of %zu rows selected, identical on both "
                "engines\n", tw_sel.size(), rows);
    record("filter", tw, bc, true);
  }

  // --- project: arithmetic SELECT item -> output column -----------------
  {
    auto stmt = Unwrap(ParseSelect(
        "SELECT da * da + db * db - 2.0 * da * db + ln(db) + abs(da) "
        "FROM t"), "parse project");
    const Expr& item = *stmt.select_list[0].expr;
    Column tw_col(DataType::kDouble), bc_col(DataType::kDouble);
    const double tw = BestSeconds(reps, [&] {
      tw_col = Unwrap(EvaluateExpr(item, table), "treewalk project");
    });
    const double bc = BestSeconds(reps, [&] {
      bc_col = Unwrap(EvaluateExprAuto(item, table), "bytecode project");
    });
    if (!ColumnsIdentical(tw_col, bc_col)) {
      std::fprintf(stderr, "FATAL: project output diverged between "
                   "engines\n");
      return 1;
    }
    std::printf("project:   %zu output values, bit-identical on both "
                "engines\n", rows);
    record("project", tw, bc, true);
  }

  // --- aggregate: full GROUP BY pipeline through the executor -----------
  {
    auto stmt = Unwrap(ParseSelect(
        "SELECT g, SUM(da * db + 1.5), COUNT(*) FROM t GROUP BY g "
        "ORDER BY g"), "parse aggregate");
    SetGlobalExprEngine(ExprEngine::kTreewalk);
    Table tw_out{Schema{}}, bc_out{Schema{}};
    const double tw = BestSeconds(reps, [&] {
      tw_out = Unwrap(ExecuteSelectOnTable(table, stmt), "treewalk agg");
    });
    SetGlobalExprEngine(ExprEngine::kBytecode);
    const double bc = BestSeconds(reps, [&] {
      bc_out = Unwrap(ExecuteSelectOnTable(table, stmt), "bytecode agg");
    });
    bool same = tw_out.num_rows() == bc_out.num_rows() &&
                tw_out.num_columns() == bc_out.num_columns();
    for (size_t c = 0; same && c < tw_out.num_columns(); ++c) {
      same = ColumnsIdentical(tw_out.column(c), bc_out.column(c));
    }
    if (!same) {
      std::fprintf(stderr, "FATAL: aggregate result diverged between "
                   "engines\n");
      return 1;
    }
    std::printf("aggregate: %zu groups, bit-identical on both engines\n\n",
                tw_out.num_rows());
    // Aggregation itself (hash table, sort) dominates; the engine only
    // feeds it, so no 2x gate here — informational.
    record("aggregate", tw, bc, false);
  }

  std::printf("%-10s %14s %14s %9s %8s\n", "case", "treewalk s",
              "bytecode s", "speedup", "gate");
  for (const CaseRow& r : table_rows) {
    const double speedup = r.bytecode_s > 0.0 ? r.treewalk_s / r.bytecode_s
                                              : 0.0;
    const bool pass = !r.gated || !enforce_gate || speedup >= 2.0;
    std::printf("%-10s %14.4f %14.4f %8.2fx %8s\n", r.name, r.treewalk_s,
                r.bytecode_s, speedup,
                r.gated ? (enforce_gate ? (pass ? "PASS" : "FAIL")
                                        : "skipped")
                        : "-");
    if (!pass) gate_failed = true;
  }

  MetricsFields(json);
  json.Flush();
  ThreadPool::SetGlobalThreadCount(0);

  if (gate_failed) {
    std::fprintf(stderr, "\nFATAL: bytecode VM under 2x on a gated case — "
                 "the compiled tier is not earning its keep\n");
    return 1;
  }
  std::printf("\nSHAPE OK: bytecode VM >= 2x on filter and project%s\n",
              enforce_gate ? "" : " (gate skipped at reduced --rows)");
  return 0;
}

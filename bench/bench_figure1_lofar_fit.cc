// Figure 1 — "Raw data vs. Model: LOFAR".
//
// The paper plots one source's observed intensities over the four
// frequency bands with the fitted power law I = p * nu^alpha (predicted
// spectral index -0.69, indicating thermal emission). This bench
// regenerates that figure as a printed series: per-observation
// (frequency, observed, model) plus the fitted parameters.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "lofar/generator.h"
#include "model/fit.h"
#include "model/grouped_fit.h"
#include "model/model.h"

int main(int argc, char** argv) {
  using namespace laws;
  using namespace laws::bench;

  Banner("Figure 1: raw data vs. fitted power law for one LOFAR source",
         "scattered intensities over 4 bands; fitted spectral index -0.69 "
         "(thermal emission)");

  // Generate a small sample and pick a source whose true alpha is near the
  // paper's -0.69.
  LofarConfig cfg;
  cfg.num_sources = 500;
  cfg.num_rows = 25'000;
  cfg.anomalous_fraction = 0.0;
  cfg.alpha_mean = -0.69;
  cfg.alpha_sd = 0.08;
  LofarDataset data = Unwrap(GenerateLofar(cfg), "generate");

  // The paper's example source: choose the one closest to alpha = -0.69.
  int64_t example = 1;
  double best = 1e9;
  for (const auto& t : data.truth) {
    if (std::fabs(t.alpha + 0.69) < best) {
      best = std::fabs(t.alpha + 0.69);
      example = t.source;
    }
  }

  // Collect that source's observations.
  const Column& src = *Unwrap(data.observations.ColumnByName("source"), "col");
  const Column& nu = *Unwrap(data.observations.ColumnByName("wavelength"), "col");
  const Column& in = *Unwrap(data.observations.ColumnByName("intensity"), "col");
  std::vector<std::pair<double, double>> points;
  for (size_t i = 0; i < data.observations.num_rows(); ++i) {
    if (src.Int64At(i) == example) {
      points.emplace_back(nu.DoubleAt(i), in.DoubleAt(i));
    }
  }
  std::sort(points.begin(), points.end());

  // Fit the power law to this source alone.
  Matrix x(points.size(), 1);
  Vector y(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    x(i, 0) = points[i].first;
    y[i] = points[i].second;
  }
  PowerLawModel model;
  FitOutput fit = Unwrap(FitModel(model, x, y), "fit");

  std::printf("source %lld: %zu observations\n",
              static_cast<long long>(example), points.size());
  std::printf("fitted: I = %.5f * nu^%.4f   (R2=%.4f, residual SE=%.6f)\n",
              fit.parameters[0], fit.parameters[1], fit.quality.r_squared,
              fit.quality.residual_standard_error);
  std::printf("paper:  spectral index -0.69 for the example source\n\n");

  std::printf("%12s %14s %14s %12s\n", "freq (GHz)", "observed (Jy)",
              "model (Jy)", "residual");
  for (const auto& [f, obs] : points) {
    const double pred = model.Evaluate({f}, fit.parameters);
    std::printf("%12.5f %14.6f %14.6f %12.3e\n", f, obs, pred, obs - pred);
  }

  // Shape check: fitted alpha within the thermal range around -0.69.
  if (fit.parameters[1] > -0.4 || fit.parameters[1] < -1.0) {
    std::fprintf(stderr, "FATAL: fitted alpha %.3f outside expected range\n",
                 fit.parameters[1]);
    return 1;
  }
  std::printf("\nSHAPE OK: fitted alpha %.3f is in the thermal band around "
              "-0.69\n",
              fit.parameters[1]);

  // Thread-count scaling sweep over the full grouped fit of the sample
  // (all 500 sources), the Figure-1 slice of the paper's hot path. The
  // fitted parameters must be bit-identical at every lane count.
  JsonReport json(JsonPathFromArgs(argc, argv));
  GroupedFitSpec spec;
  spec.group_column = "source";
  spec.input_columns = {"wavelength"};
  spec.output_column = "intensity";
  std::printf("\ngrouped-fit scaling sweep (%zu rows, %zu sources)\n",
              data.observations.num_rows(), cfg.num_sources);
  std::printf("%8s %10s %9s %12s\n", "threads", "fit s", "speedup",
              "determinism");
  double serial_s = 0.0;
  GroupedFitOutput reference;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool::SetGlobalThreadCount(threads);
    Timer timer;
    GroupedFitOutput fits =
        Unwrap(FitGrouped(model, data.observations, spec), "grouped fit");
    const double seconds = timer.ElapsedSeconds();
    bool identical = true;
    if (threads == 1) {
      serial_s = seconds;
      reference = std::move(fits);
    } else {
      identical = fits.groups.size() == reference.groups.size() &&
                  fits.skipped_too_few == reference.skipped_too_few &&
                  fits.failed == reference.failed;
      for (size_t g = 0; identical && g < fits.groups.size(); ++g) {
        identical = fits.groups[g].group_key == reference.groups[g].group_key &&
                    fits.groups[g].fit.parameters ==
                        reference.groups[g].fit.parameters;
      }
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: grouped fit at %zu threads diverged from the "
                     "serial reference\n",
                     threads);
        return 1;
      }
    }
    const double speedup = seconds > 0.0 ? serial_s / seconds : 0.0;
    std::printf("%8zu %10.4f %8.2fx %12s\n", threads, seconds, speedup,
                threads == 1 ? "reference" : "bit-exact");
    json.Begin("figure1_grouped_fit");
    json.Field("rows", data.observations.num_rows());
    json.Field("sources", cfg.num_sources);
    ThreadSweepFields(json, threads);
    json.Field("seconds", seconds);
    json.Field("speedup", speedup);
  }
  ThreadPool::SetGlobalThreadCount(0);  // restore default
  json.Flush();
  return 0;
}

// Figure 2 — "Model Interception".
//
// The paper sketches a five-step loop: (1) the user fits a model against a
// strawman dataset, (2) the fit is offloaded into the database, (3) the
// database fits, judges (R2 = 0.92 in the sketch), stores model +
// parameters and returns the goodness of fit, (4) a later query hits data
// the model covers, (5) the answer is computed from the model + parameter
// table and returned with error bounds. This bench drives each step and
// prints what happens.

#include <cmath>
#include <cstdio>

#include "aqp/domain.h"
#include "aqp/model_aqp.h"
#include "bench/bench_util.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "query/executor.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Figure 2: the model interception loop",
         "fit request -> offload -> fit+judge+store (R2=0.92) -> "
         "approximate query -> answer with error bounds");

  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);

  LofarConfig cfg;
  cfg.num_sources = 5000;
  cfg.num_rows = 200'000;
  cfg.band_jitter = 0.0;
  cfg.anomalous_fraction = 0.0;

  std::printf("[substrate] generating %zu observations / %zu sources\n",
              cfg.num_rows, cfg.num_sources);
  LofarDataset data = Unwrap(GenerateLofar(cfg), "generate");
  catalog.RegisterOrReplace(
      "measurements", std::make_shared<Table>(std::move(data.observations)));

  std::printf("\n(1) user: fit(intensity ~ p * wavelength^alpha | source) "
              "on strawman 'measurements'\n");
  FitRequest request;
  request.table = "measurements";
  request.model_source = "power_law";
  request.input_columns = {"wavelength"};
  request.output_column = "intensity";
  request.group_column = "source";

  std::printf("(2) engine: fit offloaded into the database\n");
  FitReport report = Unwrap(session.Fit(request), "fit");

  std::printf("(3) engine: fitted %zu groups; median R2 = %.4f (paper "
              "sketch: 0.92); model #%llu stored with parameters\n",
              report.num_groups, report.median_r_squared,
              static_cast<unsigned long long>(report.model_id));

  DomainRegistry domains;
  domains.Register("measurements", "wavelength",
                   ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine aqp(&catalog, &models, &domains);

  const char* query =
      "SELECT intensity FROM measurements WHERE source = 42 AND wavelength "
      "= 0.15";
  std::printf("\n(4) user: %s\n", query);
  ApproxAnswer answer = Unwrap(aqp.Execute(query), "aqp");

  std::printf("(5) engine: answered from model #%llu via %s path\n",
              static_cast<unsigned long long>(answer.model_id),
              answer.method.c_str());
  std::printf("    intensity = %.6f +/- %.6f   (raw rows read: %zu)\n",
              answer.table.GetValue(0, 0).dbl(), answer.max_error_bound,
              answer.raw_rows_accessed);

  // Sanity: the exact engine agrees within a few error bounds.
  Table exact = Unwrap(
      ExecuteQuery(catalog,
                   "SELECT AVG(intensity) FROM measurements WHERE source = "
                   "42 AND wavelength = 0.15"),
      "exact");
  const double exact_avg = exact.GetValue(0, 0).dbl();
  const double model_ans = answer.table.GetValue(0, 0).dbl();
  std::printf("\ncross-check: exact AVG over source 42 at 0.15 GHz = %.6f "
              "(model answer %.6f)\n",
              exact_avg, model_ans);
  const double tolerance =
      3.0 * std::max(answer.max_error_bound, 1e-6) + 0.02 * std::fabs(exact_avg);
  if (std::fabs(model_ans - exact_avg) > tolerance) {
    std::fprintf(stderr, "FATAL: model answer deviates beyond bounds\n");
    return 1;
  }
  if (answer.raw_rows_accessed != 0) {
    std::fprintf(stderr, "FATAL: approximate path touched raw data\n");
    return 1;
  }
  std::printf("SHAPE OK: zero-IO answer within error bounds of the exact "
              "value\n");
  return 0;
}

// Resource-governor overhead benchmark: the cost of running every query
// under a QueryGovernor (DESIGN.md §15) when no limit is set.
//
// An idle governor is one TLS read plus a relaxed poll every few
// thousand rows, and a handful of charge/release pairs per pipeline
// stage. The PR's perf gate: across representative shapes (filter +
// project, group-aggregate, sort) the governed run must stay within 2%
// of the ungoverned run, best-of-reps. The bench also measures the other
// side of the contract — how quickly a mid-flight Cancel() is observed —
// and FATALs if cancellation takes longer than 50 ms to land.

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/governor.h"
#include "common/timer.h"
#include "lofar/generator.h"
#include "model/grouped_fit.h"
#include "model/model.h"
#include "query/executor.h"
#include "query/query_context.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace {

using namespace laws;
using namespace laws::bench;

uint64_t Mix(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double MixDouble(uint64_t& state) {
  return static_cast<double>(Mix(state) >> 11) * 0x1.0p-53;  // [0, 1)
}

Table MakeSaltedTable(size_t rows) {
  uint64_t seed = 0x60BE4404ull;
  Column da(DataType::kDouble, /*nullable=*/true);  // ~3% NULL
  Column db(DataType::kDouble, /*nullable=*/false);
  Column ia(DataType::kInt64, /*nullable=*/false);
  Column g(DataType::kInt64, /*nullable=*/false);
  std::vector<double> da_v(rows), db_v(rows);
  std::vector<uint8_t> da_null(rows);
  std::vector<int64_t> ia_v(rows), g_v(rows);
  for (size_t i = 0; i < rows; ++i) {
    da_null[i] = (Mix(seed) % 100 < 3) ? 1 : 0;
    da_v[i] = MixDouble(seed) * 200.0 - 100.0;
    db_v[i] = MixDouble(seed) * 50.0 + 1.0;
    ia_v[i] = static_cast<int64_t>(Mix(seed) % 10'000) - 5'000;
    g_v[i] = static_cast<int64_t>(Mix(seed) % 64);
  }
  da.AppendDoubleBatch(da_v.data(), da_null.data(), rows);
  db.AppendDoubleBatch(db_v.data(), nullptr, rows);
  ia.AppendInt64Batch(ia_v.data(), nullptr, rows);
  g.AppendInt64Batch(g_v.data(), nullptr, rows);
  Schema schema({Field{"da", DataType::kDouble, true},
                 Field{"db", DataType::kDouble, false},
                 Field{"ia", DataType::kInt64, false},
                 Field{"g", DataType::kInt64, false}});
  std::vector<Column> cols;
  cols.push_back(std::move(da));
  cols.push_back(std::move(db));
  cols.push_back(std::move(ia));
  cols.push_back(std::move(g));
  return Unwrap(Table::FromColumns(std::move(schema), std::move(cols)),
                "build table");
}

template <typename Fn>
double OnceSeconds(Fn&& fn) {
  Timer t;
  fn();
  return t.ElapsedSeconds();
}

// Best-of-reps for two variants of the same work, interleaved rep by rep
// (and alternating which goes first) so slow machine-wide drift — CPU
// throttling, a neighbor waking up on this shared box — lands on both
// sides instead of biasing whichever variant runs last.
template <typename FnA, typename FnB>
void BestInterleaved(int reps, FnA&& a, FnB&& b, double* best_a,
                     double* best_b) {
  *best_a = 1e300;
  *best_b = 1e300;
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      *best_a = std::min(*best_a, OnceSeconds(a));
      *best_b = std::min(*best_b, OnceSeconds(b));
    } else {
      *best_b = std::min(*best_b, OnceSeconds(b));
      *best_a = std::min(*best_a, OnceSeconds(a));
    }
  }
}

struct Shape {
  const char* name;
  const char* sql;
};

}  // namespace

int main(int argc, char** argv) {
  Banner("governor overhead: governed vs ungoverned query execution",
         "robustness rides along for free — deadlines, cancellation and "
         "memory budgets must not tax the un-limited fast path");
  JsonReport report(JsonPathFromArgs(argc, argv));

  const size_t rows = 1'000'000;
  Catalog catalog;
  catalog.RegisterOrReplace("t",
                            std::make_shared<Table>(MakeSaltedTable(rows)));

  const Shape shapes[] = {
      {"filter_project", "SELECT da + db FROM t WHERE db > 10.0"},
      {"group_aggregate",
       "SELECT g, COUNT(ia), SUM(db), AVG(da) FROM t GROUP BY g"},
      {"sort_limit", "SELECT ia, db FROM t ORDER BY ia LIMIT 100"},
  };
  const int reps = 9;

  double plain_total = 0.0;
  double governed_total = 0.0;
  // The headline gate is the geometric mean of the per-shape governed/
  // plain ratios: every shape counts equally, so the slowest shape's
  // run-to-run noise (the 600 ms sort swings ±5% on this box) does not
  // drown out the three fast ones.
  double log_ratio_sum = 0.0;
  int shape_count = 0;
  for (const Shape& shape : shapes) {
    // Warm both paths once (first touch faults pages, builds bytecode).
    (void)Unwrap(ExecuteQuery(catalog, shape.sql), shape.name);
    (void)Unwrap(ExecuteQueryGoverned(catalog, shape.sql, ResourceLimits{}),
                 shape.name);

    uint64_t polls = 0;
    double plain = 0.0, governed = 0.0;
    BestInterleaved(
        reps,
        [&] { (void)Unwrap(ExecuteQuery(catalog, shape.sql), shape.name); },
        [&] {
          QueryContext ctx{ResourceLimits{}};
          (void)Unwrap(
              ctx.Run([&] { return ExecuteQuery(catalog, shape.sql); }),
              shape.name);
          polls = ctx.governor().polls();
        },
        &plain, &governed);
    plain_total += plain;
    governed_total += governed;
    log_ratio_sum += std::log(governed / plain);
    ++shape_count;
    const double overhead_pct = (governed / plain - 1.0) * 100.0;
    std::printf("%-16s plain %8.3f ms   governed %8.3f ms   "
                "overhead %+6.2f%%   polls %" PRIu64 "\n",
                shape.name, plain * 1e3, governed * 1e3, overhead_pct, polls);
    report.Begin("governor_idle_overhead");
    report.Field("shape", shape.name);
    report.Field("rows", rows);
    report.Field("plain_ms", plain * 1e3);
    report.Field("governed_ms", governed * 1e3);
    report.Field("overhead_pct", overhead_pct);
    report.Field("polls", static_cast<size_t>(polls));
  }

  // The Table-1 workload itself: the grouped power-law fit over a LOFAR
  // table (scaled to keep best-of-reps tractable; the per-row poll cost
  // is scale-free). This is the acceptance shape — the governor must be
  // invisible on the paper's own pipeline, not just on query shapes.
  {
    LofarConfig cfg;
    cfg.num_sources = 4'000;
    cfg.num_rows = 160'000;
    LofarDataset lofar = Unwrap(GenerateLofar(cfg), "lofar gen");
    PowerLawModel power_law;
    GroupedFitSpec spec;
    spec.group_column = "source";
    spec.input_columns = {"wavelength"};
    spec.output_column = "intensity";
    (void)Unwrap(FitGrouped(power_law, lofar.observations, spec), "warm");

    uint64_t polls = 0;
    double plain = 0.0, governed = 0.0;
    BestInterleaved(
        reps,
        [&] {
          (void)Unwrap(FitGrouped(power_law, lofar.observations, spec),
                       "table1 fit");
        },
        [&] {
          QueryContext ctx{ResourceLimits{}};
          (void)Unwrap(ctx.Run([&] {
            return FitGrouped(power_law, lofar.observations, spec);
          }), "table1 fit");
          polls = ctx.governor().polls();
        },
        &plain, &governed);
    plain_total += plain;
    governed_total += governed;
    log_ratio_sum += std::log(governed / plain);
    ++shape_count;
    const double overhead_pct = (governed / plain - 1.0) * 100.0;
    std::printf("%-16s plain %8.3f ms   governed %8.3f ms   "
                "overhead %+6.2f%%   polls %" PRIu64 "\n",
                "table1_fit", plain * 1e3, governed * 1e3, overhead_pct,
                polls);
    report.Begin("governor_idle_overhead");
    report.Field("shape", "table1_fit");
    report.Field("rows", cfg.num_rows);
    report.Field("plain_ms", plain * 1e3);
    report.Field("governed_ms", governed * 1e3);
    report.Field("overhead_pct", overhead_pct);
    report.Field("polls", static_cast<size_t>(polls));
  }

  const double total_overhead_pct =
      (std::exp(log_ratio_sum / shape_count) - 1.0) * 100.0;
  std::printf("total            plain %8.3f ms   governed %8.3f ms   "
              "overhead %+6.2f%% (geomean across shapes)\n",
              plain_total * 1e3, governed_total * 1e3, total_overhead_pct);

  // Cancellation responsiveness: cancel a governed aggregate mid-flight
  // from another thread and measure how long the query takes to unwind.
  const char* cancel_sql =
      "SELECT g, SUM(db), AVG(da), COUNT(ia) FROM t GROUP BY g";
  double cancel_latency_micros = 0.0;
  bool canceled_cleanly = false;
  {
    QueryContext ctx{ResourceLimits{}};
    std::atomic<bool> fired{false};
    Timer since_cancel;
    std::thread canceler([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      since_cancel = Timer();
      fired.store(true, std::memory_order_release);
      ctx.Cancel();
    });
    auto result = ctx.Run([&] { return ExecuteQuery(catalog, cancel_sql); });
    const double elapsed = since_cancel.ElapsedSeconds();
    canceler.join();
    if (!result.ok() && result.status().code() == StatusCode::kCanceled &&
        fired.load(std::memory_order_acquire)) {
      canceled_cleanly = true;
      cancel_latency_micros = elapsed * 1e6;
      std::printf("cancel observed in %.1f us (typed error: %s)\n",
                  cancel_latency_micros,
                  result.status().ToString().c_str());
    } else {
      // The query finished before the cancel landed — report it, but the
      // latency gate below is then vacuous rather than failed.
      std::printf("cancel raced query completion (query %s)\n",
                  result.ok() ? "finished first" : "errored");
    }
  }
  report.Begin("governor_cancel_latency");
  report.Field("canceled_cleanly", canceled_cleanly);
  report.Field("cancel_latency_micros", cancel_latency_micros);
  report.Field("total_overhead_pct", total_overhead_pct);
  report.Flush();

  // The gates.
  if (total_overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "FATAL governor idle overhead %.2f%% exceeds the 2%% gate\n",
                 total_overhead_pct);
    return 1;
  }
  if (canceled_cleanly && cancel_latency_micros > 50'000.0) {
    std::fprintf(stderr,
                 "FATAL cancellation took %.1f us to land (gate: 50 ms)\n",
                 cancel_latency_micros);
    return 1;
  }
  std::printf("PASS: idle overhead %.2f%% (gate 2%%)\n", total_overhead_pct);
  return 0;
}

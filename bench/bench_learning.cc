// Database-learning benchmark: the error-vs-workload curve (DESIGN.md
// §17, Park et al.'s "database learning" direction) plus the by-product
// cost gate.
//
// Two claims are measured and gated:
//   1. Learning OFF is free: a hybrid engine with a learner attached but
//      disabled taxes the exact path by < 5% versus no learner at all
//      (FATAL above 5%, best-of-reps geomean across query shapes). The
//      disabled hook is one virtual call per exact fallback.
//   2. Learning ON converts repeated traffic into precision: over a
//      repeated no-ingest workload, the model hit rate rises (cold start
//      → served approximately) and the served 95% prediction-interval
//      half-width per query shape never widens (the refine gate accepts
//      a re-solve only when the interval is no wider). The actual
//      |approx - exact| error and harvested-row counts ride along as the
//      curve the paper's "more observations → more precise" claim draws.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "aqp/hybrid.h"
#include "aqp/model_aqp.h"
#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/model_catalog.h"
#include "learn/learner.h"
#include "query/executor.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace {

using namespace laws;
using namespace laws::bench;

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

double OnceSeconds(const std::function<void()>& fn) {
  Timer t;
  fn();
  return t.ElapsedSeconds();
}

/// Interleaved best-of-reps (same discipline as bench_serving): machine
/// drift lands on both variants instead of biasing the one that ran last.
template <typename FnA, typename FnB>
void BestInterleaved(int reps, FnA&& a, FnB&& b, double* best_a,
                     double* best_b) {
  *best_a = 1e300;
  *best_b = 1e300;
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      *best_a = std::min(*best_a, OnceSeconds(a));
      *best_b = std::min(*best_b, OnceSeconds(b));
    } else {
      *best_b = std::min(*best_b, OnceSeconds(b));
      *best_a = std::min(*best_a, OnceSeconds(a));
    }
  }
}

/// Log-law table: reading = 2.5 + 0.8 ln(t) + N(0, sigma), t cycling
/// over `distinct` integer levels. The law the learner should capture.
std::shared_ptr<Table> MakeSignals(size_t rows, size_t distinct,
                                   double sigma, Rng* rng) {
  auto table = std::make_shared<Table>(
      Schema({Field{"t", DataType::kDouble, false},
              Field{"reading", DataType::kDouble, false}}));
  for (size_t i = 0; i < rows; ++i) {
    const double t = static_cast<double>(i % distinct + 1);
    const double y = 2.5 + 0.8 * std::log(t) + rng->Normal(0.0, sigma);
    CheckOk(table->AppendRow({Value::Double(t), Value::Double(y)}),
            "signals append");
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("database learning: by-product cost and error-vs-workload curve",
         "every exact scan refines the model catalog; learning off is "
         "free, learning on only tightens what it serves");
  JsonReport report(JsonPathFromArgs(argc, argv));

  // ---- Gate 1: learner attached-but-disabled vs no learner at all. ----
  {
    Rng rng(0xBE9C11);
    Catalog data;
    data.RegisterOrReplace("series",
                           MakeSignals(100'000, 512, 0.05, &rng));
    ModelCatalog models;  // stays empty: every query falls back exact
    DomainRegistry domains;
    ModelQueryEngine aqp(&data, &models, &domains);

    const HybridQueryEngine bare(&data, &aqp, HybridOptions{});

    LearnerOptions lopts;
    lopts.enabled = false;
    Learner off_learner(lopts);
    HybridOptions hooked_opts;
    hooked_opts.learner = &off_learner;
    const HybridQueryEngine hooked(&data, &aqp, hooked_opts);

    const char* shapes[][2] = {
        {"avg_filter",
         "SELECT AVG(reading) FROM series WHERE t > 100"},
        {"raw_scan", "SELECT t, reading FROM series WHERE t >= 1"},
        {"count_star", "SELECT COUNT(*) FROM series"},
    };
    const int reps = 9;
    double log_ratio_sum = 0.0;
    int shape_count = 0;
    for (const auto& shape : shapes) {
      const std::string sql = shape[1];
      (void)Unwrap(bare.Execute(sql), shape[0]);  // warm both paths
      (void)Unwrap(hooked.Execute(sql), shape[0]);
      double bare_s = 0.0, hooked_s = 0.0;
      BestInterleaved(
          reps, [&] { (void)Unwrap(bare.Execute(sql), shape[0]); },
          [&] { (void)Unwrap(hooked.Execute(sql), shape[0]); }, &bare_s,
          &hooked_s);
      const double overhead_pct = (hooked_s / bare_s - 1.0) * 100.0;
      log_ratio_sum += std::log(hooked_s / bare_s);
      ++shape_count;
      std::printf("%-12s no-learner %8.3f ms   learner-off %8.3f ms   "
                  "overhead %+6.2f%%\n",
                  shape[0], bare_s * 1e3, hooked_s * 1e3, overhead_pct);
      report.Begin("learning_off_overhead");
      report.Field("shape", shape[0]);
      report.Field("rows", static_cast<size_t>(100'000));
      report.Field("no_learner_ms", bare_s * 1e3);
      report.Field("learner_off_ms", hooked_s * 1e3);
      report.Field("overhead_pct", overhead_pct);
    }
    const double overhead_pct =
        (std::exp(log_ratio_sum / shape_count) - 1.0) * 100.0;
    std::printf("learning-off overhead: %+.2f%% (geomean, gate 5%%)\n\n",
                overhead_pct);
    if (overhead_pct > 5.0) {
      std::fprintf(stderr,
                   "FATAL learning-off overhead %.2f%% exceeds the 5%% "
                   "gate\n",
                   overhead_pct);
      return 1;
    }
    if (CounterValue("learn.harvest.scans") != 0) {
      std::fprintf(stderr,
                   "FATAL the disabled learner harvested a scan\n");
      return 1;
    }
  }

  // ---- Curve: repeated workload, no ingest, learning on. --------------
  // A 256k-row table against a 1024-row-per-scan harvest budget: each
  // batch's exact scans cover a little more of the table, so successive
  // maintenance passes refine the model with strictly more observations —
  // the error-vs-workload curve drawn one checkpoint per batch.
  Rng rng(0x1EA2C0DE);
  Catalog data;
  data.RegisterOrReplace("signals",
                         MakeSignals(262'144, 256, 0.05, &rng));
  ModelCatalog models;
  DomainRegistry domains;
  ModelQueryEngine aqp(&data, &models, &domains);

  LearnerOptions lopts;
  lopts.enabled = true;
  lopts.max_rows_per_scan = 1024;
  Learner learner(lopts);
  HybridOptions hopts;
  hopts.learner = &learner;
  const HybridQueryEngine hybrid(&data, &aqp, hopts);

  const int kBatches = 12;
  // Equality pins on t-levels: servable by a harvested model with no
  // registered domain (the predicate pins the input dimension), exactly
  // the Phase-B query shape of the differential harness.
  const double kLevels[] = {2, 8, 16, 32, 64, 96, 128, 192};
  const int kRepsPerLevel = 4;

  // Served half-width per query text must never widen across batches:
  // the refine gate's promise, checked here end to end.
  std::map<std::string, double> last_halfwidth;
  double first_hit_rate = -1.0, final_hit_rate = 0.0;
  size_t total_promoted = 0, total_refined = 0;

  for (int batch = 0; batch < kBatches; ++batch) {
    size_t hits = 0, queries = 0;
    double abs_err_sum = 0.0, halfwidth_sum = 0.0;
    size_t err_count = 0;
    for (int rep = 0; rep < kRepsPerLevel; ++rep) {
      for (double level : kLevels) {
        char sql[96];
        std::snprintf(sql, sizeof(sql),
                      "SELECT AVG(reading) FROM signals WHERE t = %g",
                      level);
        HybridAnswer answer = Unwrap(hybrid.Execute(sql), "avg query");
        ++queries;
        if (answer.approximate) {
          ++hits;
          halfwidth_sum += answer.error_bound;
          ++err_count;
          const double hw = answer.error_bound;
          auto it = last_halfwidth.find(sql);
          if (it != last_halfwidth.end() &&
              hw > it->second * (1.0 + 1e-9)) {
            std::fprintf(stderr,
                         "FATAL served half-width widened for %s: %.9g -> "
                         "%.9g\n",
                         sql, it->second, hw);
            return 1;
          }
          last_halfwidth[sql] = hw;
          // Actual error against the exact scan (not gated: noise).
          auto exact = ExecuteQuery(data, sql);
          if (exact.ok() && exact->num_rows() == 1) {
            const auto approx = answer.table.GetValue(0, 0).AsDouble();
            const auto truth = exact->GetValue(0, 0).AsDouble();
            if (approx.ok() && truth.ok()) {
              abs_err_sum += std::fabs(*approx - *truth);
            }
          }
        }
      }
    }
    // Two raw projections keep the harvest moving once the AVG shapes
    // are model-served (a served query never scans, so never harvests).
    for (int i = 0; i < 2; ++i) {
      (void)Unwrap(
          hybrid.Execute("SELECT t, reading FROM signals WHERE t >= 1"),
          "raw scan");
      ++queries;
    }
    const LearnTickReport tick = learner.Apply(data, &models);
    total_promoted += tick.promoted;
    total_refined += tick.refined;

    const double hit_rate =
        static_cast<double>(hits) / static_cast<double>(queries);
    if (first_hit_rate < 0.0) first_hit_rate = hit_rate;
    final_hit_rate = hit_rate;
    const double mean_hw =
        err_count > 0 ? halfwidth_sum / static_cast<double>(err_count)
                      : 0.0;
    const double mean_abs_err =
        err_count > 0 ? abs_err_sum / static_cast<double>(err_count) : 0.0;
    const uint64_t harvested = CounterValue("learn.harvest.rows");
    std::printf("batch %2d  hit_rate %.3f  mean_halfwidth %.6f  "
                "mean_abs_err %.6f  harvested_rows %8llu  models %zu  "
                "tick[%s]\n",
                batch, hit_rate, mean_hw, mean_abs_err,
                static_cast<unsigned long long>(harvested), models.size(),
                tick.Summary().c_str());
    report.Begin("error_vs_workload");
    report.Field("batch", batch);
    report.Field("queries", queries);
    report.Field("hit_rate", hit_rate);
    report.Field("mean_halfwidth", mean_hw);
    report.Field("mean_abs_err", mean_abs_err);
    report.Field("harvested_rows", static_cast<size_t>(harvested));
    report.Field("models", models.size());
    report.Field("promoted", tick.promoted);
    report.Field("refined", tick.refined);
  }

  if (total_promoted == 0) {
    std::fprintf(stderr, "FATAL the workload promoted no model\n");
    return 1;
  }
  if (final_hit_rate <= first_hit_rate) {
    std::fprintf(stderr,
                 "FATAL hit rate never rose (first batch %.3f, last "
                 "%.3f)\n",
                 first_hit_rate, final_hit_rate);
    return 1;
  }
  std::printf("\nPASS: learning-off free, hit rate %.3f -> %.3f, "
              "%zu promoted / %zu refined, half-widths never widened\n",
              first_hit_rate, final_hit_rate, total_promoted,
              total_refined);

  MetricsFields(report);
  report.Flush();
  return 0;
}

// Persistence durability cost: what do the v2 image checksums buy and
// what do they charge?
//
// The format CRC32C-protects every section plus the header and the whole
// image, so a loader never parses unverified bytes ("model-based answers
// must never lie" extends to never lying because of bit rot). This bench
// measures the end-to-end save/load wall time on the LOFAR workload and
// isolates the checksum share: raw CRC32C throughput over the image, the
// verification-only pass (InspectImage = header parse + every CRC check),
// and their fraction of the full save + load pipeline. The repo gate is
// checksum overhead < 5% of save+load (tools/bench_compare.py on
// save_load_seconds against the committed baseline).
//
//   bench_persistence [--json PATH] [rows]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "common/crc32c.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/persistence.h"
#include "core/session.h"
#include "lofar/generator.h"

namespace {

using namespace laws;
using namespace laws::bench;

}  // namespace

int main(int argc, char** argv) {
  Banner("persistence: checksummed image save/load",
         "models are retained durably; damaged images are detected, "
         "never trusted");
  size_t rows = 400'000;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (a[0] >= '0' && a[0] <= '9') rows = std::strtoull(a, nullptr, 10);
  }

  LofarConfig cfg;
  cfg.num_rows = rows;
  cfg.num_sources = rows / 40;
  auto gen = Unwrap(GenerateLofar(cfg), "generate");

  Catalog data;
  ModelCatalog models;
  data.RegisterOrReplace("measurements",
                         std::make_shared<Table>(std::move(gen.observations)));
  Session session(&data, &models);
  FitRequest req;
  req.table = "measurements";
  req.model_source = "power_law";
  req.input_columns = {"wavelength"};
  req.output_column = "intensity";
  req.group_column = "source";
  Unwrap(session.Fit(req), "fit");

  constexpr int kIters = 5;
  double save_s = 1e100, load_s = 1e100, verify_s = 1e100, crc_s = 1e100;
  std::vector<uint8_t> image;
  for (int it = 0; it < kIters; ++it) {
    Timer t;
    image = Unwrap(SaveDatabaseToBytes(data, models), "save");
    save_s = std::min(save_s, t.ElapsedSeconds());

    t.Restart();
    static volatile uint32_t crc_sink;  // keeps the CRC pass live
    crc_sink = Crc32c(image.data(), image.size());
    crc_s = std::min(crc_s, t.ElapsedSeconds());

    t.Restart();
    auto info = Unwrap(InspectImage(image), "inspect");
    verify_s = std::min(verify_s, t.ElapsedSeconds());
    CheckOk(info.image_checksum_ok ? Status::OK()
                                   : Status::Internal("image crc"),
            "image checksum");

    Catalog data2;
    ModelCatalog models2;
    t.Restart();
    CheckOk(LoadDatabaseFromBytes(image, &data2, &models2), "load");
    load_s = std::min(load_s, t.ElapsedSeconds());
  }

  // The save computes each section CRC plus the header and trailer CRCs —
  // very nearly one full pass over the image; the load verifies the same
  // set, a second pass. Report both the measured verification pass and
  // the raw CRC throughput bound.
  const double pipeline = save_s + load_s;
  const double overhead_pct = 100.0 * (2.0 * crc_s) / pipeline;
  const double crc_gbps =
      static_cast<double>(image.size()) / crc_s / (1024.0 * 1024.0 * 1024.0);

  std::printf("\nrows=%zu image=%s\n", rows, HumanBytes(image.size()).c_str());
  std::printf("  save             %8.2f ms\n", save_s * 1e3);
  std::printf("  load (verified)  %8.2f ms\n", load_s * 1e3);
  std::printf("  verify-only pass %8.2f ms (InspectImage)\n", verify_s * 1e3);
  std::printf("  crc32c one pass  %8.2f ms (%.1f GiB/s)\n", crc_s * 1e3,
              crc_gbps);
  std::printf("  checksum share   %8.2f %% of save+load (budget < 5%%)\n",
              overhead_pct);

  JsonReport json(JsonPathFromArgs(argc, argv));
  json.Begin("persistence_save_load");
  json.Field("rows", rows);
  json.Field("image_bytes", image.size());
  json.Field("save_seconds", save_s);
  json.Field("load_seconds", load_s);
  json.Field("save_load_seconds", pipeline);
  json.Field("verify_seconds", verify_s);
  json.Field("crc_pass_seconds", crc_s);
  json.Field("crc_gib_per_s", crc_gbps);
  json.Field("checksum_overhead_pct", overhead_pct);
  laws::bench::MetricsFields(json);
  json.Flush();

  if (overhead_pct >= 5.0) {
    std::fprintf(stderr, "FATAL checksum overhead %.2f%% exceeds the 5%% "
                         "budget\n", overhead_pct);
    return 1;
  }
  return 0;
}

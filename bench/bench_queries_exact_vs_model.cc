// §2 example queries — exact scan vs model-based approximation.
//
// The paper motivates approximate answering with two SQL queries over the
// LOFAR table: a point lookup (source = 42 AND wavelength = 0.14) and a
// selection (wavelength = 0.14 AND intensity > 3.0), both answerable
// "solely from the model data". This bench measures latency and answer
// quality of the exact engine vs the model path at several table sizes.

#include <cmath>
#include <cstdio>

#include "aqp/domain.h"
#include "aqp/model_aqp.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "query/executor.h"

namespace {

struct Timing {
  double exact_ms = 0.0;
  double model_ms = 0.0;
  double exact_answer = 0.0;
  double model_answer = 0.0;
};

}  // namespace

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("S2 queries: exact scan vs answering solely from the model",
         "point query and selection query answered from (p, alpha) table "
         "+ model function");

  // 0.14 is not an observed band in our generator; use 0.15 (the paper's
  // band set in S4.2 is {0.12, 0.15, 0.16, 0.18}).
  const char* kPointQuery =
      "SELECT AVG(intensity) FROM measurements WHERE source = 42 AND "
      "wavelength = 0.15";
  // The model reconstructs one tuple per source at the band; the
  // apples-to-apples exact answer is the number of *sources* qualifying,
  // not raw rows (the paper's griding semantics, S4.2).
  const char* kSelectionModel =
      "SELECT source, intensity FROM measurements WHERE wavelength = 0.15 "
      "AND intensity > 1.0";
  // A source qualifies when its (noise-averaged) intensity at the band
  // exceeds the threshold — the quantity the model actually predicts.
  const char* kSelectionExact =
      "SELECT source FROM measurements WHERE wavelength = 0.15 "
      "GROUP BY source HAVING AVG(intensity) > 1.0";

  std::printf("%10s %22s %12s %12s %12s %12s\n", "rows", "query",
              "exact(ms)", "model(ms)", "speedup", "rel.err");

  for (size_t rows : {100'000ull, 400'000ull, 1'452'824ull}) {
    Catalog catalog;
    ModelCatalog models;
    Session session(&catalog, &models);
    LofarConfig cfg;
    cfg.num_rows = rows;
    cfg.num_sources = rows / 40;
    cfg.band_jitter = 0.0;
    cfg.anomalous_fraction = 0.0;
    LofarPipelineResult pipeline = Unwrap(
        RunLofarPipeline(cfg, &catalog, &session, "measurements"),
        "pipeline");
    (void)pipeline;

    DomainRegistry domains;
    domains.Register("measurements", "wavelength",
                     ColumnDomain::Explicit(cfg.bands));
    ModelQueryEngine aqp(&catalog, &models, &domains);

    for (int which = 0; which < 2; ++which) {
      const bool is_point = which == 0;
      const char* exact_query = is_point ? kPointQuery : kSelectionExact;
      const char* model_query = is_point ? kPointQuery : kSelectionModel;
      Timing t;
      {
        Timer timer;
        Table exact = Unwrap(ExecuteQuery(catalog, exact_query), "exact");
        t.exact_ms = timer.ElapsedMillis();
        t.exact_answer = is_point ? *exact.GetValue(0, 0).AsDouble()
                                  : static_cast<double>(exact.num_rows());
      }
      {
        Timer timer;
        ApproxAnswer approx = Unwrap(aqp.Execute(model_query), "model");
        t.model_ms = timer.ElapsedMillis();
        t.model_answer = is_point
                             ? *approx.table.GetValue(0, 0).AsDouble()
                             : static_cast<double>(approx.table.num_rows());
      }
      const double rel_err =
          t.exact_answer != 0.0
              ? std::fabs(t.model_answer - t.exact_answer) /
                    std::fabs(t.exact_answer)
              : std::fabs(t.model_answer);
      std::printf("%10zu %22s %12.3f %12.3f %11.1fx %11.2f%%\n", rows,
                  is_point ? "point (source=42)" : "selection (I>1.0)",
                  t.exact_ms, t.model_ms,
                  t.exact_ms / std::max(t.model_ms, 1e-6), 100.0 * rel_err);
      if (is_point && rel_err > 0.10) {
        std::fprintf(stderr, "FATAL: point answer off by %.1f%%\n",
                     100.0 * rel_err);
        return 1;
      }
      if (!is_point && rel_err > 0.15) {
        std::fprintf(stderr, "FATAL: selection source count off by %.1f%%\n",
                     100.0 * rel_err);
        return 1;
      }
    }
  }
  std::printf("\nSHAPE OK: model path answers both queries orders of "
              "magnitude faster at the paper's scale, within error bounds "
              "(selection compared source-for-source per the paper's "
              "griding semantics).\n");
  return 0;
}

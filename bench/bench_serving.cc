// Serving-layer benchmark: N concurrent client sessions multiplexing
// mixed traffic (exact SQL, hybrid model-vs-exact, ingest) over one
// Server (DESIGN.md §16).
//
// Two claims are measured and gated:
//   1. The serving path taxes a single session by < 5% versus calling
//      the executor directly — admission control, the snapshot pin, the
//      governor install and per-session metrics together must stay in
//      the noise (FATAL above 5%, best-of-reps geomean across shapes).
//   2. Concurrent sessions scale: the sweep reports p50/p99 per-query
//      latency and aggregate QPS at 1/2/4/8 sessions, with the honest
//      hardware_concurrency/oversubscribed flagging every thread-sweep
//      record in this repo carries.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "lofar/generator.h"
#include "query/executor.h"
#include "serve/server.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace {

using namespace laws;
using namespace laws::bench;

double OnceSeconds(const std::function<void()>& fn) {
  Timer t;
  fn();
  return t.ElapsedSeconds();
}

/// Interleaved best-of-reps (same discipline as bench_governor): machine
/// drift lands on both variants instead of biasing the one that ran last.
template <typename FnA, typename FnB>
void BestInterleaved(int reps, FnA&& a, FnB&& b, double* best_a,
                     double* best_b) {
  *best_a = 1e300;
  *best_b = 1e300;
  for (int r = 0; r < reps; ++r) {
    if (r % 2 == 0) {
      *best_a = std::min(*best_a, OnceSeconds(a));
      *best_b = std::min(*best_b, OnceSeconds(b));
    } else {
      *best_b = std::min(*best_b, OnceSeconds(b));
      *best_a = std::min(*best_a, OnceSeconds(a));
    }
  }
}

double Percentile(std::vector<double>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted_micros.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted_micros.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_micros[lo] * (1.0 - frac) + sorted_micros[hi] * frac;
}

/// A small ingest batch with the observations schema, rows copied from
/// the source table (cheap, deterministic, schema-exact).
Table MakeBatch(const Table& source, size_t rows) {
  Table batch(source.schema());
  std::vector<Value> row(source.num_columns());
  for (size_t i = 0; i < rows; ++i) {
    const size_t src = i % source.num_rows();
    for (size_t c = 0; c < source.num_columns(); ++c) {
      row[c] = source.GetValue(src, c);
    }
    CheckOk(batch.AppendRow(row), "batch append");
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("serving layer: concurrent sessions over one snapshot catalog",
         "always-on serving — admission control and snapshot isolation "
         "must not tax the single-client path");
  JsonReport report(JsonPathFromArgs(argc, argv));

  // The LOFAR-style workload table plus a grouped power-law fit, so the
  // hybrid slice of the traffic has models to arbitrate against.
  LofarConfig cfg;
  cfg.num_sources = 500;
  cfg.num_rows = 100'000;
  cfg.band_jitter = 0.0;
  LofarDataset lofar = Unwrap(GenerateLofar(cfg), "lofar gen");

  // Direct baseline: the raw catalog + executor, no serving layer.
  Catalog direct;
  direct.RegisterOrReplace(
      "measurements", std::make_shared<Table>(std::move(lofar.observations)));
  const TablePtr measurements = *direct.Get("measurements");

  ServerOptions options;
  options.max_inflight_queries = 64;
  options.queue_timeout_micros = 30'000'000;
  Server server(options);
  auto admin = Unwrap(server.Connect("bench"), "connect");
  CheckOk(admin->CreateTable("measurements", Table(*measurements)),
          "create measurements");
  CheckOk(admin->CreateTable("hot", MakeBatch(*measurements, 4'096)),
          "create hot");
  {
    FitRequest request;
    request.table = "measurements";
    request.model_source = "power_law";
    request.input_columns = {"wavelength"};
    request.output_column = "intensity";
    request.group_column = "source";
    (void)Unwrap(admin->Fit(request), "grouped fit");
  }

  // ---- Gate 1: single-session serving overhead vs the direct path. ----
  const char* shapes[][2] = {
      {"count_filter",
       "SELECT COUNT(intensity) FROM measurements WHERE wavelength > 0.14"},
      {"group_aggregate",
       "SELECT source, AVG(intensity) FROM measurements GROUP BY source"},
      {"sort_limit",
       "SELECT source, intensity FROM measurements ORDER BY intensity "
       "LIMIT 100"},
  };
  const int reps = 9;
  double log_ratio_sum = 0.0;
  int shape_count = 0;
  for (const auto& shape : shapes) {
    const std::string sql = shape[1];
    (void)Unwrap(ExecuteQuery(direct, sql), shape[0]);  // warm both paths
    (void)Unwrap(admin->ExecuteSql(sql), shape[0]);
    double direct_s = 0.0, served_s = 0.0;
    BestInterleaved(
        reps, [&] { (void)Unwrap(ExecuteQuery(direct, sql), shape[0]); },
        [&] { (void)Unwrap(admin->ExecuteSql(sql), shape[0]); }, &direct_s,
        &served_s);
    const double overhead_pct = (served_s / direct_s - 1.0) * 100.0;
    log_ratio_sum += std::log(served_s / direct_s);
    ++shape_count;
    std::printf("%-16s direct %8.3f ms   served %8.3f ms   "
                "overhead %+6.2f%%\n",
                shape[0], direct_s * 1e3, served_s * 1e3, overhead_pct);
    report.Begin("serving_overhead");
    report.Field("shape", shape[0]);
    report.Field("rows", cfg.num_rows);
    report.Field("direct_ms", direct_s * 1e3);
    report.Field("served_ms", served_s * 1e3);
    report.Field("overhead_pct", overhead_pct);
  }
  const double overhead_pct =
      (std::exp(log_ratio_sum / shape_count) - 1.0) * 100.0;
  std::printf("single-session serving overhead: %+.2f%% (geomean, gate "
              "5%%)\n",
              overhead_pct);

  // ---- Sweep: N sessions, mixed exact/hybrid/ingest traffic. ----------
  const char* exact_sqls[] = {
      "SELECT COUNT(intensity) FROM measurements WHERE wavelength > 0.14",
      "SELECT source, AVG(intensity) FROM measurements GROUP BY source",
      "SELECT COUNT(*) FROM hot",
  };
  const char* hybrid_sqls[] = {
      "SELECT AVG(intensity) FROM measurements",
      "SELECT COUNT(*) FROM measurements",
  };
  const Table ingest_batch = MakeBatch(*measurements, 512);
  const size_t ops_per_session = 120;

  for (size_t sessions : {1u, 2u, 4u, 8u}) {
    std::vector<std::vector<double>> latencies(sessions);
    std::atomic<size_t> errors{0};
    std::vector<std::thread> threads;
    Timer wall;
    for (size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = Unwrap(
            server.Connect("w" + std::to_string(sessions) + "_" +
                           std::to_string(s)),
            "connect worker");
        latencies[s].reserve(ops_per_session);
        for (size_t i = 0; i < ops_per_session; ++i) {
          // Deterministic mix: 60% exact, 30% hybrid, 10% ingest.
          const size_t slot = (i + s) % 10;
          Timer t;
          bool ok = true;
          if (slot < 6) {
            ok = session->ExecuteSql(exact_sqls[i % 3]).ok();
          } else if (slot < 9) {
            ok = session->ExecuteHybrid(hybrid_sqls[i % 2]).ok();
          } else {
            ok = session->Ingest("hot", ingest_batch).ok();
          }
          latencies[s].push_back(t.ElapsedMicros());
          if (!ok) errors.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s = wall.ElapsedSeconds();

    std::vector<double> merged;
    for (auto& v : latencies) {
      merged.insert(merged.end(), v.begin(), v.end());
    }
    std::sort(merged.begin(), merged.end());
    const double p50 = Percentile(merged, 0.50);
    const double p99 = Percentile(merged, 0.99);
    const double qps = static_cast<double>(merged.size()) / wall_s;
    std::printf("sessions=%zu  ops=%zu  p50=%8.1f us  p99=%9.1f us  "
                "qps=%8.1f  errors=%zu\n",
                sessions, merged.size(), p50, p99, qps, errors.load());
    if (errors.load() != 0) {
      std::fprintf(stderr,
                   "FATAL %zu queries failed in the serving sweep\n",
                   errors.load());
      return 1;
    }
    report.Begin("serving_sweep");
    report.Field("sessions", sessions);
    ThreadSweepFields(report, sessions);
    report.Field("ops", merged.size());
    report.Field("p50_micros", p50);
    report.Field("p99_micros", p99);
    report.Field("qps", qps);
    report.Field("wall_seconds", wall_s);
  }

  // The overhead gate last, so the sweep numbers always land in the
  // report even when a noisy box trips it.
  if (overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "FATAL single-session serving overhead %.2f%% exceeds "
                 "the 5%% gate\n",
                 overhead_pct);
    return 1;
  }
  std::printf("PASS: serving overhead %+.2f%% (gate 5%%), sweep clean\n",
              overhead_pct);

  MetricsFields(report);
  report.Flush();
  return 0;
}

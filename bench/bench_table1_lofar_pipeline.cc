// Table 1 — "Example LOFAR observations and approximation".
//
// The paper reduces 1,452,824 observations (source, wavelength, intensity)
// from 35,692 sources to a per-source parameter table (spectral index
// alpha, constant p, residual SE): "we were able to replace ca. 11MB of
// observations with 640KB of model parameters, ca. 5% of the original
// dataset size". This bench runs the pipeline at the paper's exact
// cardinalities and prints both tables plus the byte accounting, then
// sweeps the ThreadPool lane count (1/2/4/8) to record the parallel
// speedup of the end-to-end pipeline. The fitted parameter table must be
// bit-identical at every thread count; any divergence is fatal.
//
// Flags: --json <path> emits per-run records (rows, seconds, threads,
// speedup) for the BENCH_*.json perf trajectory.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "storage/catalog.h"

namespace {

using namespace laws;

/// Bitwise table equality: the determinism gate for the parallel fit.
bool TablesIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.column(c).int64_data() != b.column(c).int64_data()) return false;
    if (a.column(c).double_data() != b.column(c).double_data()) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laws::bench;

  Banner("Table 1: LOFAR observations -> per-source parameter table",
         "1,452,824 rows / 35,692 sources -> (alpha, p, residual SE) per "
         "source; ~11MB -> ~640KB = ~5%");

  JsonReport json(JsonPathFromArgs(argc, argv));
  LofarConfig cfg;  // paper-exact defaults

  // Reference run at 1 thread: the serial ground truth for Table 1 and
  // the determinism check.
  ThreadPool::SetGlobalThreadCount(1);
  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  Timer total;
  LofarPipelineResult result = Unwrap(
      RunLofarPipeline(cfg, &catalog, &session, "measurements"), "pipeline");
  const double serial_s = total.ElapsedSeconds();

  const Table& obs = **catalog.Get("measurements");
  std::printf("observations table (%zu rows from %zu sources):\n",
              obs.num_rows(), cfg.num_sources);
  std::printf("%s\n", obs.ToString(3).c_str());

  auto captured = Unwrap(models.Get(result.model_id), "captured model");
  std::printf("parameter table (%zu sources fitted, %zu skipped, %zu "
              "failed):\n",
              captured->num_groups, captured->groups_skipped,
              captured->groups_failed);
  std::printf("%s\n", captured->parameter_table.ToString(3).c_str());

  std::printf("fit quality: median R2 = %.4f, median residual SE = %.6f\n",
              captured->median_r_squared, captured->median_residual_se);
  std::printf("(Figure 2 sketches R2 = 0.92 for this model)\n\n");

  const double pct = 100.0 * result.parameter_ratio;
  std::printf("%-26s %12s\n", "artifact", "bytes");
  std::printf("%-26s %12zu  (%s)\n", "raw observations",
              result.raw_bytes, HumanBytes(result.raw_bytes).c_str());
  std::printf("%-26s %12zu  (%s)\n", "model parameters",
              result.parameter_bytes,
              HumanBytes(result.parameter_bytes).c_str());
  std::printf("%-26s %11.2f%%  (paper: ~5%%)\n", "parameter/raw ratio", pct);
  std::printf("pipeline wall time: %.1f s at 1 thread (%zu fits; "
              "gen %.1f s, fit %.1f s)\n",
              serial_s, captured->num_groups, result.generate_seconds,
              result.fit_seconds);

  if (pct > 12.0) {
    std::fprintf(stderr, "FATAL: parameter ratio %.2f%% far above the "
                         "paper's ~5%%\n",
                 pct);
    return 1;
  }

  json.Begin("table1_lofar_pipeline");
  json.Field("rows", obs.num_rows());
  json.Field("sources", cfg.num_sources);
  json.Field("threads", static_cast<size_t>(1));
  json.Field("seconds", serial_s);
  json.Field("generate_seconds", result.generate_seconds);
  json.Field("fit_seconds", result.fit_seconds);
  json.Field("speedup", 1.0);
  json.Field("parameter_ratio_pct", pct);

  // Thread-count scaling sweep: rerun the full pipeline end to end and
  // require a bit-identical parameter table each time.
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\nthread scaling sweep (hardware concurrency: %u)\n", hw);
  std::printf("%8s %10s %10s %10s %9s %12s\n", "threads", "total s",
              "gen s", "fit s", "speedup", "determinism");
  std::printf("%8d %10.2f %10.2f %10.2f %9.2fx %12s\n", 1, serial_s,
              result.generate_seconds, result.fit_seconds, 1.0, "reference");
  double best_speedup = 1.0;
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool::SetGlobalThreadCount(threads);
    Catalog sweep_catalog;
    ModelCatalog sweep_models;
    Session sweep_session(&sweep_catalog, &sweep_models);
    Timer sweep_timer;
    LofarPipelineResult sweep = Unwrap(
        RunLofarPipeline(cfg, &sweep_catalog, &sweep_session, "measurements"),
        "sweep pipeline");
    const double sweep_s = sweep_timer.ElapsedSeconds();
    auto sweep_captured =
        Unwrap(sweep_models.Get(sweep.model_id), "sweep model");
    const bool identical = TablesIdentical(captured->parameter_table,
                                           sweep_captured->parameter_table);
    const double speedup = sweep_s > 0.0 ? serial_s / sweep_s : 0.0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::printf("%8zu %10.2f %10.2f %10.2f %9.2fx %12s\n", threads, sweep_s,
                sweep.generate_seconds, sweep.fit_seconds, speedup,
                identical ? "bit-exact" : "DIVERGED");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: parameter table at %zu threads differs from the "
                   "serial reference\n",
                   threads);
      return 1;
    }
    json.Begin("table1_lofar_pipeline");
    json.Field("rows", obs.num_rows());
    json.Field("sources", cfg.num_sources);
    json.Field("threads", threads);
    json.Field("seconds", sweep_s);
    json.Field("generate_seconds", sweep.generate_seconds);
    json.Field("fit_seconds", sweep.fit_seconds);
    json.Field("speedup", speedup);
    json.Field("bit_identical", true);
  }
  ThreadPool::SetGlobalThreadCount(0);  // restore default

  std::printf("best end-to-end speedup: %.2fx (target: >=3x on >=4 "
              "hardware cores)\n",
              best_speedup);
  if (hw >= 4 && best_speedup < 3.0) {
    std::printf("WARNING: below the 3x scaling target despite %u cores\n",
                hw);
  }

  json.Flush();
  std::printf("\nSHAPE OK: parameter table is %.1f%% of raw data (paper: "
              "~5%%), bit-identical across 1/2/4/8 threads\n",
              pct);
  return 0;
}

// Table 1 — "Example LOFAR observations and approximation".
//
// The paper reduces 1,452,824 observations (source, wavelength, intensity)
// from 35,692 sources to a per-source parameter table (spectral index
// alpha, constant p, residual SE): "we were able to replace ca. 11MB of
// observations with 640KB of model parameters, ca. 5% of the original
// dataset size". This bench runs the pipeline at the paper's exact
// cardinalities and prints both tables plus the byte accounting.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "storage/catalog.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 1: LOFAR observations -> per-source parameter table",
         "1,452,824 rows / 35,692 sources -> (alpha, p, residual SE) per "
         "source; ~11MB -> ~640KB = ~5%");

  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);

  LofarConfig cfg;  // paper-exact defaults
  Timer total;
  Timer gen_timer;
  LofarPipelineResult result = Unwrap(
      RunLofarPipeline(cfg, &catalog, &session, "measurements"), "pipeline");
  const double total_s = total.ElapsedSeconds();

  const Table& obs = **catalog.Get("measurements");
  std::printf("observations table (%zu rows from %zu sources):\n",
              obs.num_rows(), cfg.num_sources);
  std::printf("%s\n", obs.ToString(3).c_str());

  auto captured = Unwrap(models.Get(result.model_id), "captured model");
  std::printf("parameter table (%zu sources fitted, %zu skipped, %zu "
              "failed):\n",
              captured->num_groups, captured->groups_skipped,
              captured->groups_failed);
  std::printf("%s\n", captured->parameter_table.ToString(3).c_str());

  std::printf("fit quality: median R2 = %.4f, median residual SE = %.6f\n",
              captured->median_r_squared, captured->median_residual_se);
  std::printf("(Figure 2 sketches R2 = 0.92 for this model)\n\n");

  const double pct = 100.0 * result.parameter_ratio;
  std::printf("%-26s %12s\n", "artifact", "bytes");
  std::printf("%-26s %12zu  (%s)\n", "raw observations",
              result.raw_bytes, HumanBytes(result.raw_bytes).c_str());
  std::printf("%-26s %12zu  (%s)\n", "model parameters",
              result.parameter_bytes,
              HumanBytes(result.parameter_bytes).c_str());
  std::printf("%-26s %11.2f%%  (paper: ~5%%)\n", "parameter/raw ratio", pct);
  std::printf("pipeline wall time: %.1f s (%zu fits)\n", total_s,
              captured->num_groups);
  (void)gen_timer;

  if (pct > 12.0) {
    std::fprintf(stderr, "FATAL: parameter ratio %.2f%% far above the "
                         "paper's ~5%%\n",
                 pct);
    return 1;
  }
  std::printf("\nSHAPE OK: parameter table is %.1f%% of raw data (paper: "
              "~5%%)\n",
              pct);
  return 0;
}

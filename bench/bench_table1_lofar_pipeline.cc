// Table 1 — "Example LOFAR observations and approximation".
//
// The paper reduces 1,452,824 observations (source, wavelength, intensity)
// from 35,692 sources to a per-source parameter table (spectral index
// alpha, constant p, residual SE): "we were able to replace ca. 11MB of
// observations with 640KB of model parameters, ca. 5% of the original
// dataset size". This bench runs the pipeline at the paper's exact
// cardinalities and prints both tables plus the byte accounting, then
// sweeps the ThreadPool lane count (1/2/4/8) to record the parallel
// speedup of the end-to-end pipeline. The fitted parameter table must be
// bit-identical at every thread count; any divergence is fatal.
//
// Flags: --json <path> emits per-run records (rows, seconds, threads,
// speedup) for the BENCH_*.json perf trajectory. --groups-sweep switches
// to a synthetic group-size sweep (4/40/400 observations per group) that
// isolates the grouped-fit kernel's per-group overhead from generation.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "model/grouped_fit.h"
#include "storage/catalog.h"

namespace {

using namespace laws;

/// Bitwise table equality: the determinism gate for the parallel fit.
bool TablesIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.column(c).int64_data() != b.column(c).int64_data()) return false;
    if (a.column(c).double_data() != b.column(c).double_data()) return false;
  }
  return true;
}

/// Counts operator-new calls across one FitGrouped run; 0/denominator-safe
/// when no groups were fitted.
double AllocsPerGroup(uint64_t alloc_delta, size_t num_groups) {
  return num_groups > 0
             ? static_cast<double>(alloc_delta) /
                   static_cast<double>(num_groups)
             : 0.0;
}

/// --groups-sweep: synthetic power-law tables at group sizes 4/40/400
/// (total rows held ~constant), fitted single-threaded. Isolates the
/// per-group fixed cost of the fit kernels: tiny groups are pure
/// dispatch+gather overhead, large groups amortize it.
int RunGroupsSweep(laws::bench::JsonReport& json) {
  using namespace laws::bench;
  constexpr size_t kSweepRows = 240000;
  ThreadPool::SetGlobalThreadCount(1);
  std::printf("group-size sweep: ~%zu rows, power law, 1 thread\n\n",
              kSweepRows);
  std::printf("%12s %10s %10s %14s %14s\n", "group size", "groups",
              "fit s", "groups/sec", "allocs/group");
  for (const size_t group_size : {size_t{4}, size_t{40}, size_t{400}}) {
    const size_t num_groups = kSweepRows / group_size;
    const size_t rows = num_groups * group_size;
    std::mt19937_64 rng(1000 + group_size);
    std::uniform_real_distribution<double> wl(1.0, 10.0);
    std::normal_distribution<double> log_noise(0.0, 0.05);
    std::vector<int64_t> source(rows);
    std::vector<double> wavelength(rows);
    std::vector<double> intensity(rows);
    size_t i = 0;
    for (size_t g = 0; g < num_groups; ++g) {
      const double p = 0.5 + 3.0 * static_cast<double>(g % 97) / 96.0;
      const double alpha = -1.5 + static_cast<double>(g % 53) / 52.0;
      for (size_t k = 0; k < group_size; ++k, ++i) {
        const double nu = wl(rng);
        source[i] = static_cast<int64_t>(g);
        wavelength[i] = nu;
        intensity[i] = p * std::pow(nu, alpha) * std::exp(log_noise(rng));
      }
    }
    std::vector<Field> fields{Field{"source", DataType::kInt64, false},
                              Field{"wavelength", DataType::kDouble, false},
                              Field{"intensity", DataType::kDouble, false}};
    std::vector<Column> columns;
    columns.push_back(Column::FromInt64Vector(std::move(source)));
    columns.push_back(Column::FromDoubleVector(std::move(wavelength)));
    columns.push_back(Column::FromDoubleVector(std::move(intensity)));
    Table table = Unwrap(
        Table::FromColumns(Schema(std::move(fields)), std::move(columns)),
        "sweep table");

    PowerLawModel model;
    GroupedFitSpec spec;
    spec.group_column = "source";
    spec.input_columns = {"wavelength"};
    spec.output_column = "intensity";
    const uint64_t allocs_before = AllocCount();
    Timer timer;
    GroupedFitOutput fits =
        Unwrap(FitGrouped(model, table, spec), "sweep fit");
    const double fit_s = timer.ElapsedSeconds();
    const double apg =
        AllocsPerGroup(AllocCount() - allocs_before, fits.groups.size());
    const double gps = fit_s > 0.0
                           ? static_cast<double>(fits.groups.size()) / fit_s
                           : 0.0;
    if (fits.groups.size() != num_groups) {
      std::fprintf(stderr,
                   "FATAL: sweep fitted %zu of %zu groups (skipped %zu, "
                   "failed %zu)\n",
                   fits.groups.size(), num_groups, fits.skipped_too_few,
                   fits.failed);
      return 1;
    }
    if (AllocCounterEnabled()) {
      std::printf("%12zu %10zu %10.3f %14.0f %14.1f\n", group_size,
                  fits.groups.size(), fit_s, gps, apg);
    } else {
      std::printf("%12zu %10zu %10.3f %14.0f %14s\n", group_size,
                  fits.groups.size(), fit_s, gps, "n/a");
    }
    json.Begin("table1_groups_sweep");
    json.Field("group_size", group_size);
    json.Field("groups", fits.groups.size());
    json.Field("rows", rows);
    ThreadSweepFields(json, 1);
    json.Field("fit_seconds", fit_s);
    json.Field("groups_per_second", gps);
    json.Field("alloc_counter_enabled", AllocCounterEnabled());
    json.Field("allocs_per_group", apg);
  }
  ThreadPool::SetGlobalThreadCount(0);
  laws::bench::MetricsFields(json);
  json.Flush();
  std::printf("\nSHAPE OK: all sweep groups fitted\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laws::bench;

  bool groups_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--groups-sweep") == 0) groups_sweep = true;
  }
  if (groups_sweep) {
    Banner("Table 1 (sweep): grouped-fit cost vs observations per group",
           "per-group fixed cost of the closed-form fit kernels at group "
           "sizes 4/40/400");
    JsonReport sweep_json(JsonPathFromArgs(argc, argv));
    return RunGroupsSweep(sweep_json);
  }

  Banner("Table 1: LOFAR observations -> per-source parameter table",
         "1,452,824 rows / 35,692 sources -> (alpha, p, residual SE) per "
         "source; ~11MB -> ~640KB = ~5%");

  JsonReport json(JsonPathFromArgs(argc, argv));
  LofarConfig cfg;  // paper-exact defaults

  // Reference run at 1 thread: the serial ground truth for Table 1 and
  // the determinism check.
  ThreadPool::SetGlobalThreadCount(1);
  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  Timer total;
  LofarPipelineResult result = Unwrap(
      RunLofarPipeline(cfg, &catalog, &session, "measurements"), "pipeline");
  const double serial_s = total.ElapsedSeconds();

  const Table& obs = **catalog.Get("measurements");
  std::printf("observations table (%zu rows from %zu sources):\n",
              obs.num_rows(), cfg.num_sources);
  std::printf("%s\n", obs.ToString(3).c_str());

  auto captured = Unwrap(models.Get(result.model_id), "captured model");
  std::printf("parameter table (%zu sources fitted, %zu skipped, %zu "
              "failed):\n",
              captured->num_groups, captured->groups_skipped,
              captured->groups_failed);
  std::printf("%s\n", captured->parameter_table.ToString(3).c_str());

  std::printf("fit quality: median R2 = %.4f, median residual SE = %.6f\n",
              captured->median_r_squared, captured->median_residual_se);
  std::printf("(Figure 2 sketches R2 = 0.92 for this model)\n\n");

  const double pct = 100.0 * result.parameter_ratio;
  std::printf("%-26s %12s\n", "artifact", "bytes");
  std::printf("%-26s %12zu  (%s)\n", "raw observations",
              result.raw_bytes, HumanBytes(result.raw_bytes).c_str());
  std::printf("%-26s %12zu  (%s)\n", "model parameters",
              result.parameter_bytes,
              HumanBytes(result.parameter_bytes).c_str());
  std::printf("%-26s %11.2f%%  (paper: ~5%%)\n", "parameter/raw ratio", pct);
  std::printf("pipeline wall time: %.1f s at 1 thread (%zu fits; "
              "gen %.1f s, fit %.1f s)\n",
              serial_s, captured->num_groups, result.generate_seconds,
              result.fit_seconds);

  if (pct > 12.0) {
    std::fprintf(stderr, "FATAL: parameter ratio %.2f%% far above the "
                         "paper's ~5%%\n",
                 pct);
    return 1;
  }

  // Fit-phase allocation accounting: refit the observations table
  // directly (no generation, no session bookkeeping) and count
  // operator-new calls per fitted group. With the closed-form kernels and
  // per-lane FitScratch arenas this should be O(1) small allocations per
  // group (the FitOutput vectors), not dozens.
  {
    PowerLawModel power_law;
    GroupedFitSpec refit_spec;
    refit_spec.group_column = "source";
    refit_spec.input_columns = {"wavelength"};
    refit_spec.output_column = "intensity";
    const uint64_t allocs_before = AllocCount();
    GroupedFitOutput refit =
        Unwrap(FitGrouped(power_law, obs, refit_spec), "alloc refit");
    const double allocs_per_group =
        AllocsPerGroup(AllocCount() - allocs_before, refit.groups.size());
    if (AllocCounterEnabled()) {
      std::printf("fit-phase allocations: %.1f per group (%zu groups)\n",
                  allocs_per_group, refit.groups.size());
    } else {
      std::printf("fit-phase allocations: n/a (counter not linked)\n");
    }

    json.Begin("table1_lofar_pipeline");
    json.Field("rows", obs.num_rows());
    json.Field("sources", cfg.num_sources);
    ThreadSweepFields(json, 1);
    json.Field("seconds", serial_s);
    json.Field("generate_seconds", result.generate_seconds);
    json.Field("fit_seconds", result.fit_seconds);
    json.Field("speedup", 1.0);
    json.Field("parameter_ratio_pct", pct);
    json.Field("alloc_counter_enabled", AllocCounterEnabled());
    json.Field("allocs_per_group", allocs_per_group);
  }

  // Thread-count scaling sweep: rerun the full pipeline end to end and
  // require a bit-identical parameter table each time.
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\nthread scaling sweep (hardware concurrency: %u)\n", hw);
  std::printf("%8s %10s %10s %10s %9s %12s\n", "threads", "total s",
              "gen s", "fit s", "speedup", "determinism");
  std::printf("%8d %10.2f %10.2f %10.2f %9.2fx %12s\n", 1, serial_s,
              result.generate_seconds, result.fit_seconds, 1.0, "reference");
  double best_speedup = 1.0;
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool::SetGlobalThreadCount(threads);
    Catalog sweep_catalog;
    ModelCatalog sweep_models;
    Session sweep_session(&sweep_catalog, &sweep_models);
    Timer sweep_timer;
    LofarPipelineResult sweep = Unwrap(
        RunLofarPipeline(cfg, &sweep_catalog, &sweep_session, "measurements"),
        "sweep pipeline");
    const double sweep_s = sweep_timer.ElapsedSeconds();
    auto sweep_captured =
        Unwrap(sweep_models.Get(sweep.model_id), "sweep model");
    const bool identical = TablesIdentical(captured->parameter_table,
                                           sweep_captured->parameter_table);
    const double speedup = sweep_s > 0.0 ? serial_s / sweep_s : 0.0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::printf("%8zu %10.2f %10.2f %10.2f %9.2fx %12s\n", threads, sweep_s,
                sweep.generate_seconds, sweep.fit_seconds, speedup,
                identical ? "bit-exact" : "DIVERGED");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: parameter table at %zu threads differs from the "
                   "serial reference\n",
                   threads);
      return 1;
    }
    json.Begin("table1_lofar_pipeline");
    json.Field("rows", obs.num_rows());
    json.Field("sources", cfg.num_sources);
    ThreadSweepFields(json, threads);
    json.Field("seconds", sweep_s);
    json.Field("generate_seconds", sweep.generate_seconds);
    json.Field("fit_seconds", sweep.fit_seconds);
    json.Field("speedup", speedup);
    json.Field("bit_identical", true);
  }
  ThreadPool::SetGlobalThreadCount(0);  // restore default

  std::printf("best end-to-end speedup: %.2fx (target: >=3x on >=4 "
              "hardware cores)\n",
              best_speedup);
  if (hw >= 4 && best_speedup < 3.0) {
    std::printf("WARNING: below the 3x scaling target despite %u cores\n",
                hw);
  }

  laws::bench::MetricsFields(json);
  json.Flush();
  std::printf("\nSHAPE OK: parameter table is %.1f%% of raw data (paper: "
              "~5%%), bit-identical across 1/2/4/8 threads\n",
              pct);
  return 0;
}

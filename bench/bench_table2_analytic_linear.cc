// Table 2 / opportunity "Analytic solutions for linear models" (§4.2).
//
// "For the common class of linear models, we can even go one step further
// and calculate analytic solutions for aggregation queries. For example,
// given a well-fitting linear model we can calculate the minimum and
// maximum value for a column." This bench compares O(1) closed-form
// answers over an integer-range domain against the exact scan, at growing
// table sizes — the analytic path's latency must stay flat.

#include <cmath>
#include <cstdio>
#include <memory>

#include "aqp/analytic.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/session.h"
#include "query/executor.h"
#include "storage/catalog.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 2: analytic solutions for linear models",
         "min/max/sum/avg of a modeled column computed in closed form, "
         "without scanning");

  std::printf("%10s %6s %14s %14s %12s %12s %10s\n", "rows", "agg",
              "exact", "analytic", "exact(ms)", "analytic(ms)", "rel.err");

  for (size_t n : {100'000ull, 1'000'000ull, 4'000'000ull}) {
    // y = 5 + 0.25 x + noise over x = 0..n-1 (integer timestamps).
    Rng rng(3);
    Catalog catalog;
    auto table = std::make_shared<Table>(
        Schema({Field{"x", DataType::kInt64, false},
                Field{"y", DataType::kDouble, false}}));
    Column* xc = table->mutable_column(0);
    Column* yc = table->mutable_column(1);
    for (size_t i = 0; i < n; ++i) {
      xc->AppendInt64(static_cast<int64_t>(i));
      yc->AppendDouble(5.0 + 0.25 * static_cast<double>(i) +
                       rng.Normal(0.0, 2.0));
    }
    CheckOk(table->SyncRowCount(), "sync");
    catalog.RegisterOrReplace("series", table);

    ModelCatalog models;
    Session session(&catalog, &models);
    FitRequest fit;
    fit.table = "series";
    fit.model_source = "linear(1)";
    fit.input_columns = {"x"};
    fit.output_column = "y";
    FitReport report = Unwrap(session.Fit(fit), "fit");
    const CapturedModel* captured =
        Unwrap(models.Get(report.model_id), "model");
    const auto domain =
        ColumnDomain::IntegerRange(0, static_cast<int64_t>(n) - 1, 1);

    const double lo = static_cast<double>(n) * 0.25;
    const double hi = static_cast<double>(n) * 0.75;
    struct Case {
      AggregateFunc agg;
      const char* name;
      const char* sql;
    };
    const Case cases[] = {
        {AggregateFunc::kMin, "MIN", "SELECT MIN(y) FROM series WHERE"},
        {AggregateFunc::kMax, "MAX", "SELECT MAX(y) FROM series WHERE"},
        {AggregateFunc::kAvg, "AVG", "SELECT AVG(y) FROM series WHERE"},
        {AggregateFunc::kSum, "SUM", "SELECT SUM(y) FROM series WHERE"},
    };
    for (const Case& c : cases) {
      char sql[256];
      std::snprintf(sql, sizeof(sql), "%s x >= %.0f AND x <= %.0f", c.sql,
                    lo, hi);
      Timer exact_timer;
      Table exact = Unwrap(ExecuteQuery(catalog, sql), "exact");
      const double exact_ms = exact_timer.ElapsedMillis();
      const double exact_val = *exact.GetValue(0, 0).AsDouble();

      Timer analytic_timer;
      AnalyticAggregate analytic = Unwrap(
          AnalyticLinearAggregate(*captured, c.agg, domain, lo, hi),
          "analytic");
      const double analytic_ms = analytic_timer.ElapsedMillis();

      const double rel_err =
          std::fabs(analytic.value - exact_val) /
          std::max(std::fabs(exact_val), 1e-9);
      std::printf("%10zu %6s %14.4g %14.4g %12.3f %12.5f %9.3f%%\n", n,
                  c.name, exact_val, analytic.value, exact_ms, analytic_ms,
                  100.0 * rel_err);
      // SUM/AVG track tightly; MIN/MAX of noisy data differ by the noise
      // tails (the model predicts the trend line, not the extremes) — the
      // error bound reported with the answer covers exactly that.
      const double allowed =
          (c.agg == AggregateFunc::kMin || c.agg == AggregateFunc::kMax)
              ? 5.0 * captured->quality.residual_standard_error /
                    std::max(std::fabs(exact_val), 1.0)
              : 0.02;
      if (rel_err > std::max(allowed, 0.02)) {
        std::fprintf(stderr, "FATAL: %s deviates %.2f%%\n", c.name,
                     100.0 * rel_err);
        return 1;
      }
    }
  }
  std::printf("\nSHAPE OK: analytic latency is flat (O(1)) while the scan "
              "grows linearly; answers agree within residual-SE bounds.\n");
  return 0;
}

// Table 2 / opportunity "Data anomalies" (§4.2).
//
// "Often, the observations that do not fit the model are of supreme
// interest. These will stand out in the fitting process by showing large
// residual errors ... there is a small number of radio sources where the
// intensity is seemingly unrelated to the frequency." This bench plants
// known anomalous sources at several rates and reports precision/recall of
// the goodness-of-fit screen — computed from the parameter table alone.

#include <cstdio>
#include <set>

#include "anomaly/anomaly.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/session.h"
#include "lofar/pipeline.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 2: data anomalies via residual screening",
         "poor-fit sources (intensity unrelated to frequency) surface via "
         "goodness of fit");

  std::printf("%10s %10s %10s %10s %10s %12s\n", "fraction", "planted",
              "flagged", "precision", "recall", "screen(ms)");

  bool all_ok = true;
  for (double fraction : {0.005, 0.01, 0.05, 0.10}) {
    Catalog catalog;
    ModelCatalog models;
    Session session(&catalog, &models);
    LofarConfig cfg;
    cfg.num_sources = 5000;
    cfg.num_rows = 200'000;
    cfg.anomalous_fraction = fraction;
    cfg.seed = 42 + static_cast<uint64_t>(fraction * 1000);
    auto pipeline =
        Unwrap(RunLofarPipeline(cfg, &catalog, &session, "m"), "pipeline");
    const CapturedModel* model =
        Unwrap(models.Get(pipeline.model_id), "model");

    std::set<int64_t> planted;
    for (const auto& t : pipeline.dataset.truth) {
      if (t.anomalous) planted.insert(t.source);
    }

    AnomalyOptions options;
    options.r_squared_threshold = 0.5;
    options.rse_factor = 1e18;  // heteroscedastic brightness: screen on R2
    Timer timer;
    auto report = Unwrap(ScoreGroups(*model, options), "screen");
    const double ms = timer.ElapsedMillis();

    size_t tp = 0, fp = 0;
    for (const auto& s : report.ranked) {
      if (!s.flagged) continue;
      (planted.count(s.group_key) > 0 ? tp : fp) += 1;
    }
    const double precision =
        tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 1.0;
    const double recall =
        planted.empty()
            ? 1.0
            : static_cast<double>(tp) / static_cast<double>(planted.size());
    std::printf("%9.1f%% %10zu %10zu %10.3f %10.3f %12.2f\n",
                100.0 * fraction, planted.size(), report.flagged, precision,
                recall, ms);
    if (precision < 0.9 || recall < 0.9) all_ok = false;
  }

  if (!all_ok) {
    std::fprintf(stderr, "FATAL: screening quality below 0.9\n");
    return 1;
  }
  std::printf("\nSHAPE OK: planted anomalies separate cleanly by "
              "goodness of fit (precision and recall > 0.9 at every "
              "rate), using only the captured parameter table.\n");
  return 0;
}

// Table 2 / challenge "Parameter space enumeration" (§4.2).
//
// "If a parameter column is enumerable, we can use it without actually
// loading its values. Straightforward examples ... continuous integer
// timestamps ... our telescope only creates observations at a small set of
// frequencies." This bench compares
//   (a) MauveDB-style eager grid materialization vs FunctionDB-style lazy
//       evaluation restricted by predicate pushdown, and
//   (b) enumeration-based answering vs loading the raw parameter column.

#include <cstdio>
#include <memory>

#include "aqp/domain.h"
#include "aqp/model_aqp.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "query/executor.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 2: parameter space enumeration",
         "enumerable columns (bands, integer timestamps) let queries run "
         "without loading raw values; griding vs lazy evaluation");

  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  LofarConfig cfg;
  cfg.num_sources = 20'000;
  cfg.num_rows = 800'000;
  cfg.band_jitter = 0.0;
  cfg.anomalous_fraction = 0.0;
  auto pipeline =
      Unwrap(RunLofarPipeline(cfg, &catalog, &session, "m"), "pipeline");
  const CapturedModel* model = Unwrap(models.Get(pipeline.model_id), "model");

  DomainRegistry domains;
  domains.Register("m", "wavelength", ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine engine(&catalog, &models, &domains);

  // (a) Eager full-grid materialization (MauveDB): sources x bands.
  Timer eager_timer;
  auto grid = Unwrap(engine.ReconstructTable(*model, {}), "grid");
  const double eager_ms = eager_timer.ElapsedMillis();
  std::printf("(a) eager grid: %zu tuples materialized in %.1f ms "
              "(%zu sources x %zu bands)\n",
              grid.tuples_reconstructed, eager_ms,
              static_cast<size_t>(cfg.num_sources), cfg.bands.size());

  //     Lazy evaluation with pushdown (FunctionDB's optimization): a
  //     pinned query touches exactly one grid cell.
  Timer lazy_timer;
  auto pinned = Unwrap(
      engine.Execute("SELECT intensity FROM m WHERE source = 77 AND "
                     "wavelength = 0.16"),
      "pinned");
  const double lazy_ms = lazy_timer.ElapsedMillis();
  std::printf("    lazy pushdown: %zu tuple(s) evaluated in %.3f ms "
              "(%.0fx less work)\n",
              pinned.tuples_reconstructed, lazy_ms,
              static_cast<double>(grid.tuples_reconstructed) /
                  std::max<double>(pinned.tuples_reconstructed, 1));
  if (pinned.tuples_reconstructed > 1) {
    std::fprintf(stderr, "FATAL: pushdown failed to pin the grid cell\n");
    return 1;
  }

  // (b) Enumeration vs loading the raw column: answer
  //     "SELECT AVG(intensity) WHERE wavelength = 0.18" both ways.
  const char* q = "SELECT AVG(intensity) FROM m WHERE wavelength = 0.18";
  Timer raw_timer;
  Table exact = Unwrap(ExecuteQuery(catalog, q), "exact");
  const double raw_ms = raw_timer.ElapsedMillis();
  Timer enum_timer;
  auto approx = Unwrap(engine.Execute(q), "enum");
  const double enum_ms = enum_timer.ElapsedMillis();
  std::printf("\n(b) %s\n", q);
  std::printf("    raw column scan: %.4f in %.1f ms (%zu rows)\n",
              exact.GetValue(0, 0).dbl(), raw_ms, cfg.num_rows);
  std::printf("    enumeration:     %.4f in %.1f ms (0 raw rows, %zu "
              "reconstructed)\n",
              approx.table.GetValue(0, 0).dbl(), enum_ms,
              approx.tuples_reconstructed);

  // (c) The missing-parameter caveat: a query with an un-enumerable,
  //     un-pinned dimension is refused — "the cost for this could quickly
  //     overwhelm the savings".
  DomainRegistry no_domains;
  ModelQueryEngine crippled(&catalog, &models, &no_domains);
  auto refused = crippled.Execute("SELECT AVG(intensity) FROM m");
  std::printf("\n(c) without a registered domain the engine refuses: %s\n",
              refused.ok() ? "UNEXPECTEDLY ANSWERED"
                           : refused.status().ToString().c_str());
  if (refused.ok()) return 1;

  std::printf("\nSHAPE OK: pushdown avoids grid materialization; "
              "enumeration answers without touching raw rows; missing "
              "domains are refused rather than silently scanned.\n");
  return 0;
}

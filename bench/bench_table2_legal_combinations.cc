// Table 2 / challenge "Legal parameter combinations" (§4.2).
//
// "It is far from certain that all possible combinations of input
// parameters were part of the original table. In this case we would
// violate relational semantics due to additional results that were not in
// the original data set ... we could generate a compressed lookup
// structure (e.g. Bloom filters) to encode all legal parameter
// combinations." This bench builds the filter over a sparse combination
// space and sweeps its size/false-positive trade-off.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "aqp/bloom.h"
#include "aqp/domain.h"
#include "aqp/model_aqp.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/session.h"
#include "storage/catalog.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 2: legal parameter combinations",
         "Bloom filter over observed (source, band) pairs prevents phantom "
         "tuples for combinations never measured");

  // Sparse design: 2000 sources, 8 possible bands, but each source was
  // observed at only 3 of them.
  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  Rng rng(31);
  const std::vector<double> all_bands = {0.10, 0.12, 0.14, 0.15,
                                         0.16, 0.17, 0.18, 0.20};
  auto table = std::make_shared<Table>(
      Schema({Field{"source", DataType::kInt64, false},
              Field{"wavelength", DataType::kDouble, false},
              Field{"intensity", DataType::kDouble, false}}));
  std::vector<std::vector<size_t>> observed_bands(2001);
  for (int s = 1; s <= 2000; ++s) {
    auto perm = rng.Permutation(static_cast<uint32_t>(all_bands.size()));
    observed_bands[s] = {perm[0], perm[1], perm[2]};
    const double p = rng.Uniform(0.5, 2.0);
    for (size_t b : observed_bands[s]) {
      for (int rep = 0; rep < 10; ++rep) {
        const double nu = all_bands[b];
        CheckOk(table->AppendRow(
                    {Value::Int64(s), Value::Double(nu),
                     Value::Double(p * std::pow(nu, -0.7) *
                                   std::exp(rng.Normal(0.0, 0.02)))}),
                "append");
      }
    }
  }
  catalog.RegisterOrReplace("m", table);

  FitRequest fit;
  fit.table = "m";
  fit.model_source = "power_law";
  fit.input_columns = {"wavelength"};
  fit.output_column = "intensity";
  fit.group_column = "source";
  FitReport report = Unwrap(session.Fit(fit), "fit");

  DomainRegistry domains;
  domains.Register("m", "wavelength", ColumnDomain::Explicit(all_bands));

  // Without the filter: the grid fabricates 8 tuples per source — 5 of
  // which were never observed (phantoms violating relational semantics).
  ModelQueryEngine unguarded(&catalog, &models, &domains);
  auto no_filter = Unwrap(unguarded.Execute(
                              "SELECT intensity FROM m WHERE source = 123"),
                          "unguarded");
  std::printf("without filter: source 123 reconstructs %zu tuples "
              "(observed bands: 3) -> %zu phantoms\n\n",
              no_filter.table.num_rows(),
              no_filter.table.num_rows() - 3);

  std::printf("%10s %12s %14s %14s %12s\n", "target", "filter", "phantom",
              "phantom", "legal");
  std::printf("%10s %12s %14s %14s %12s\n", "FPR", "size", "tuples/src",
              "admit rate", "recall");
  for (double fpr : {0.1, 0.01, 0.001}) {
    auto filter = Unwrap(
        LegalCombinationFilter::Build(*table, "source", {"wavelength"}, fpr),
        "filter");
    // Probe every (source, band) pair.
    size_t phantom_admitted = 0, phantom_total = 0;
    size_t legal_admitted = 0, legal_total = 0;
    for (int s = 1; s <= 2000; ++s) {
      for (size_t b = 0; b < all_bands.size(); ++b) {
        const bool legal =
            std::find(observed_bands[s].begin(), observed_bands[s].end(),
                      b) != observed_bands[s].end();
        const bool admitted = filter.MayContain(s, {all_bands[b]});
        if (legal) {
          ++legal_total;
          legal_admitted += admitted ? 1 : 0;
        } else {
          ++phantom_total;
          phantom_admitted += admitted ? 1 : 0;
        }
      }
    }
    const double admit_rate = static_cast<double>(phantom_admitted) /
                              static_cast<double>(phantom_total);
    std::printf("%9.3f%% %12s %14.2f %13.3f%% %11.1f%%\n", 100.0 * fpr,
                HumanBytes(filter.SizeBytes()).c_str(),
                8.0 * admit_rate * 5.0 / 8.0, 100.0 * admit_rate,
                100.0 * static_cast<double>(legal_admitted) /
                    static_cast<double>(legal_total));
    // No false negatives, FPR near target.
    if (legal_admitted != legal_total) {
      std::fprintf(stderr, "FATAL: legal combination rejected\n");
      return 1;
    }
    if (admit_rate > fpr * 4.0 + 0.002) {
      std::fprintf(stderr, "FATAL: phantom admit rate %.4f >> target %.4f\n",
                   admit_rate, fpr);
      return 1;
    }
  }

  // End-to-end: guarded engine answers with only the observed bands.
  ModelQueryEngine guarded(&catalog, &models, &domains);
  guarded.AttachLegalFilter(
      report.model_id,
      Unwrap(LegalCombinationFilter::Build(*table, "source", {"wavelength"},
                                           0.001),
             "filter"));
  auto guarded_ans = Unwrap(
      guarded.Execute("SELECT intensity FROM m WHERE source = 123"),
      "guarded");
  std::printf("\nwith filter (target 0.1%%): source 123 reconstructs %zu "
              "tuples (3 observed)\n",
              guarded_ans.table.num_rows());
  if (guarded_ans.table.num_rows() < 3 ||
      guarded_ans.table.num_rows() > 4) {
    std::fprintf(stderr, "FATAL: guarded reconstruction wrong\n");
    return 1;
  }
  std::printf("\nSHAPE OK: the Bloom structure eliminates phantom "
              "combinations at its configured false-positive rate with "
              "zero false negatives.\n");
  return 0;
}

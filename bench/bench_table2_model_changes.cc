// Table 2 / challenge "Data or model changes" (§4.1).
//
// "Changing or added observations can change fit of the model
// dramatically. This could also make a model with a previously poor fit
// relevant again. A possible solution could be to check these measures for
// all previous models and switch when appropriate." This bench measures
// (a) staleness detection + refit cost after appends, (b) the model-switch
// policy: when appended data changes regime, arbitration flips to the
// previously-inferior model after the refresh sweep.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/session.h"
#include "storage/catalog.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 2: data or model changes",
         "staleness detection, refit cost, and switching to a previously "
         "poor model when the data regime changes");

  // Start in a steep power-law regime: y = 2 * x^-3.
  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  Rng rng(11);
  auto table = std::make_shared<Table>(
      Schema({Field{"x", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(1.0, 3.0);
    CheckOk(table->AppendRow(
                {Value::Double(x),
                 Value::Double(2.0 * std::pow(x, -3.0) *
                               std::exp(rng.Normal(0.0, 0.02)))}),
            "append");
  }
  catalog.RegisterOrReplace("series", table);

  // Capture two competing models: power law (right) and exponential
  // (plausible but worse here).
  FitRequest plaw_fit;
  plaw_fit.table = "series";
  plaw_fit.model_source = "power_law";
  plaw_fit.input_columns = {"x"};
  plaw_fit.output_column = "y";
  FitReport plaw_report = Unwrap(session.Fit(plaw_fit), "plaw fit");
  FitRequest exp_fit = plaw_fit;
  exp_fit.model_source = "exponential";
  FitReport exp_report = Unwrap(session.Fit(exp_fit), "exp fit");

  auto best0 = Unwrap(
      models.BestModelFor("series", "y", table->data_version()), "best");
  std::printf("phase 1 (power-law regime): power_law R2=%.4f, exponential "
              "R2=%.4f -> arbitration picks '%s'\n",
              plaw_report.quality.r_squared, exp_report.quality.r_squared,
              best0->model_source.c_str());
  if (best0->model_source != "power_law") {
    std::fprintf(stderr, "FATAL: wrong initial arbitration\n");
    return 1;
  }

  // Regime change: the instrument now produces exponential-decay data,
  // and 20x as much of it accumulates: y = 3 * exp(-0.8 x).
  std::printf("\nphase 2: appending 20000 rows of exponential-regime data\n");
  Timer append_timer;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(1.0, 3.0);
    CheckOk(table->AppendRow(
                {Value::Double(x),
                 Value::Double(3.0 * std::exp(-0.8 * x) *
                               std::exp(rng.Normal(0.0, 0.02)))}),
            "append");
  }
  std::printf("  append: %.1f ms\n", append_timer.ElapsedMillis());

  // Both captured models are now stale; the sweep refits them.
  Timer sweep_timer;
  RefitReport sweep = Unwrap(session.RefitStale(), "sweep");
  std::printf("  staleness sweep: checked=%zu stale=%zu refitted=%zu "
              "quality-shifted=%zu in %.1f ms\n",
              sweep.checked, sweep.stale, sweep.refitted,
              sweep.quality_shifted.size(), sweep_timer.ElapsedMillis());
  if (sweep.stale != 2 || sweep.refitted != 2) {
    std::fprintf(stderr, "FATAL: staleness sweep missed models\n");
    return 1;
  }

  // After refresh, arbitration should switch: the appended majority is
  // exponential, so the previously-inferior exponential model takes over.
  auto best1 = Unwrap(
      models.BestModelFor("series", "y", table->data_version()), "best");
  double exp_r2 = 0.0, plaw_r2 = 0.0;
  for (uint64_t id : models.ListIds()) {
    const CapturedModel* m = Unwrap(models.Get(id), "get");
    if (m->model_source == "exponential") exp_r2 = m->quality.r_squared;
    if (m->model_source == "power_law") plaw_r2 = m->quality.r_squared;
  }
  std::printf("\nphase 3 (exponential-majority): power_law R2=%.4f, "
              "exponential R2=%.4f -> arbitration picks '%s'\n",
              plaw_r2, exp_r2, best1->model_source.c_str());
  if (best1->model_source != "exponential") {
    std::fprintf(stderr,
                 "FATAL: arbitration did not switch to the better model\n");
    return 1;
  }
  std::printf("\nSHAPE OK: appended data marked both models stale; the "
              "sweep refreshed them and the previously-inferior "
              "exponential model took over — the paper's proposed switch "
              "policy ('a model with a previously poor fit relevant "
              "again').\n");
  return 0;
}

// Table 2 / opportunity "Model exploration" (§4.2).
//
// "We can find interesting subsets of the data by analyzing the first
// derivative of the model function for regions in the parameter space with
// high gradients." This bench sweeps the captured per-source power laws
// over the frequency domain and reports the steepest regions, timing the
// zero-IO sweep against the equivalent raw-data numerical differencing.

#include <cmath>
#include <cstdio>

#include "anomaly/exploration.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/session.h"
#include "lofar/pipeline.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 2: model exploration via first derivatives",
         "steepest-gradient regions of the model surface identify "
         "interesting subsets");

  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  LofarConfig cfg;
  cfg.num_sources = 10'000;
  cfg.num_rows = 400'000;
  cfg.anomalous_fraction = 0.0;
  auto pipeline = Unwrap(RunLofarPipeline(cfg, &catalog, &session, "m"),
                         "pipeline");
  const CapturedModel* model =
      Unwrap(models.Get(pipeline.model_id), "model");

  // Sweep a fine frequency grid across every source's model.
  std::vector<double> grid;
  for (double f = 0.10; f <= 0.20001; f += 0.005) grid.push_back(f);
  const auto domain = ColumnDomain::Explicit(grid);

  Timer timer;
  auto points = Unwrap(FindHighGradientRegions(*model, domain, 10), "sweep");
  const double sweep_ms = timer.ElapsedMillis();

  std::printf("swept %zu sources x %zu grid points in %.1f ms (zero IO; "
              "raw table has %zu rows)\n\n",
              static_cast<size_t>(cfg.num_sources), grid.size(), sweep_ms,
              cfg.num_rows);
  std::printf("top 10 steepest (source, frequency) regions:\n");
  std::printf("%10s %12s %16s\n", "source", "freq (GHz)", "dI/dnu (Jy/GHz)");
  for (const auto& p : points) {
    std::printf("%10lld %12.3f %16.4f\n",
                static_cast<long long>(p.group_key), p.input, p.gradient);
  }

  // Shape checks: decaying power laws slope downward everywhere, and the
  // single steepest point of the whole sweep sits at the domain minimum.
  for (const auto& p : points) {
    if (p.gradient >= 0.0) {
      std::fprintf(stderr, "FATAL: decaying spectrum with positive slope\n");
      return 1;
    }
  }
  if (std::fabs(points.front().input - 0.10) > 1e-9) {
    std::fprintf(stderr, "FATAL: steepest region not at the domain minimum\n");
    return 1;
  }
  std::printf("\nSHAPE OK: gradients are negative everywhere and the "
              "steepest region of the sweep sits at the lowest frequency, "
              "as I = p*nu^alpha (alpha<0) dictates.\n");
  return 0;
}

// Table 2 / challenge "Multiple, partial or grouped models" (§4.1).
//
// Three sub-problems the paper raises, exercised in turn:
//  (a) multiple high-quality models over the same columns -> arbitration,
//  (b) a model fitted on a restricted subset (partial coverage) is only
//      trusted inside its subset,
//  (c) grouped models yield a parameter set per group (exercised
//      throughout; here we check the multi-model interplay with groups).

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/session.h"
#include "query/expr_eval.h"
#include "query/parser.h"
#include "storage/catalog.h"

int main() {
  using namespace laws;
  using namespace laws::bench;

  Banner("Table 2: multiple, partial or grouped models",
         "arbitration among overlapping models; subset-restricted fits "
         "apply only to their subset");

  // Data with a regime split at x = 5: quadratic below, linear above.
  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  Rng rng(23);
  auto table = std::make_shared<Table>(
      Schema({Field{"x", DataType::kDouble, false},
              Field{"y", DataType::kDouble, false}}));
  for (int i = 0; i < 6000; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    const double y = x < 5.0 ? 1.0 + 0.3 * x * x
                             : 12.0 - 0.9 * x;
    CheckOk(table->AppendRow({Value::Double(x),
                              Value::Double(y + rng.Normal(0.0, 0.05))}),
            "append");
  }
  catalog.RegisterOrReplace("t", table);

  // (a) Multiple models over the full column: poly(2) vs linear(1).
  FitRequest poly_fit;
  poly_fit.table = "t";
  poly_fit.model_source = "poly(2)";
  poly_fit.input_columns = {"x"};
  poly_fit.output_column = "y";
  FitReport poly_report = Unwrap(session.Fit(poly_fit), "poly");
  FitRequest lin_fit = poly_fit;
  lin_fit.model_source = "linear(1)";
  FitReport lin_report = Unwrap(session.Fit(lin_fit), "lin");
  auto best = Unwrap(models.BestModelFor("t", "y", table->data_version()),
                     "best");
  std::printf("(a) full-table models: poly(2) R2=%.4f vs linear R2=%.4f -> "
              "arbitration: %s\n",
              poly_report.quality.r_squared, lin_report.quality.r_squared,
              best->model_source.c_str());

  // (b) Partial models: fit each regime on its own subset. Each fits its
  // regime near-perfectly while the full-table models cannot.
  FitRequest low_fit = poly_fit;
  low_fit.where = "x < 5";
  FitReport low_report = Unwrap(session.Fit(low_fit), "low subset");
  FitRequest high_fit = lin_fit;
  high_fit.where = "x >= 5";
  FitReport high_report = Unwrap(session.Fit(high_fit), "high subset");
  std::printf("(b) subset models: poly(2)|x<5 R2=%.4f, linear|x>=5 "
              "R2=%.4f (full-table best was R2=%.4f)\n",
              low_report.quality.r_squared, high_report.quality.r_squared,
              best->ArbitrationQuality());
  if (low_report.quality.r_squared < 0.99 ||
      high_report.quality.r_squared < 0.99) {
    std::fprintf(stderr, "FATAL: subset fits should be near-perfect\n");
    return 1;
  }

  // The captured subset predicate is retained, so a query processor can
  // check containment: evaluate each model's predicate coverage of a
  // candidate query range.
  const CapturedModel* low_model =
      Unwrap(models.Get(low_report.model_id), "low model");
  std::printf("    captured subset predicate: \"%s\" over %zu rows\n",
              low_model->subset_predicate.c_str(), low_model->rows_fitted);
  auto predicate =
      Unwrap(ParseExpression(low_model->subset_predicate), "parse");
  auto rows = Unwrap(FilterRows(*predicate, *table), "coverage");
  std::printf("    predicate currently covers %zu / %zu rows — queries "
              "outside it must not use this model\n",
              rows.size(), table->num_rows());

  // (c) Overlap resolution: with all four models stored, the best
  // *full-coverage* model is still chosen by BestModelFor, while subset
  // models keep their predicates for a coverage-aware planner.
  size_t full_models = 0, partial_models = 0;
  for (uint64_t id : models.ListIds()) {
    const CapturedModel* m = Unwrap(models.Get(id), "get");
    (m->subset_predicate.empty() ? full_models : partial_models) += 1;
  }
  std::printf("(c) catalog now holds %zu full-coverage and %zu partial "
              "models over t.y\n",
              full_models, partial_models);
  if (full_models != 2 || partial_models != 2) {
    std::fprintf(stderr, "FATAL: unexpected catalog contents\n");
    return 1;
  }

  std::printf("\nSHAPE OK: quality arbitration picks the better "
              "full-coverage model; regime-restricted fits achieve "
              "near-perfect quality inside their subsets and carry their "
              "predicates for coverage checks.\n");
  return 0;
}

// Table 2 / opportunity "True semantic compression" (§4.1).
//
// "If we use the user-supplied model as a compression model, we can expect
// high compression rates ... store only the differences between the
// predicted and observed values." The paper also cites SPARTAN's caveat
// that model-based compression is "only barely able to outperform standard
// gzip" on generic data — so this bench reports three workloads: the
// model-shaped LOFAR data, the retail workload, and a no-regularity
// ablation where the model cannot help.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "compress/column_compressor.h"
#include "compress/semantic.h"
#include "lofar/generator.h"
#include "model/grouped_fit.h"
#include "model/model.h"
#include "workload/retail.h"

namespace {

using namespace laws;
using namespace laws::bench;

void Report(const char* workload, const Table& table, const Model& model,
            const GroupedFitSpec& spec) {
  auto fits = Unwrap(FitGrouped(model, table, spec), "fit");
  auto generic = Unwrap(CompressTable(table), "generic");
  auto zlib_only = Unwrap(CompressTable(table, ColumnEncoding::kZlib),
                          "zlib");
  auto lossless = Unwrap(SemanticCompress(table, model, fits, spec),
                         "semantic lossless");
  SemanticCompressionOptions lossy;
  lossy.lossless = false;
  lossy.quantization_step = 1e-3;
  auto quant =
      Unwrap(SemanticCompress(table, model, fits, spec, lossy), "lossy");

  const size_t raw = table.MemoryBytes();
  std::printf("\n-- %s (%zu rows, raw %s) --\n", workload, table.num_rows(),
              HumanBytes(raw).c_str());
  auto line = [&](const char* name, size_t bytes, const char* err) {
    std::printf("  %-26s %12zu %7.1f%%  %s\n", name, bytes,
                100.0 * static_cast<double>(bytes) / static_cast<double>(raw),
                err);
  };
  line("zlib per column (gzip-like)", zlib_only.TotalCompressedBytes(),
       "exact");
  line("best-of generic encoders", generic.TotalCompressedBytes(), "exact");
  line("semantic (lossless)", lossless.TotalCompressedBytes(), "exact");
  line("semantic (lossy q=1e-3)", quant.TotalCompressedBytes(),
       "max err 5e-4");
}

}  // namespace

int main() {
  Banner("Table 2: 'true' semantic compression",
         "user model as compression model: store predictions' residuals; "
         "SPARTAN caveat expected on low-regularity data");

  std::printf("%-30s %12s %8s  %s\n", "method", "bytes", "ratio", "error");

  // 1. Model-shaped data: per-source power law, low noise.
  {
    LofarConfig cfg;
    cfg.num_sources = 5000;
    cfg.num_rows = 200'000;
    cfg.noise_sd = 0.01;
    cfg.anomalous_fraction = 0.0;
    auto data = Unwrap(GenerateLofar(cfg), "lofar");
    PowerLawModel model;
    GroupedFitSpec spec;
    spec.group_column = "source";
    spec.input_columns = {"wavelength"};
    spec.output_column = "intensity";
    Report("LOFAR (model-shaped, low noise)", data.observations, model, spec);
  }

  // 2. Retail workload: seasonal regularity, moderate noise.
  {
    RetailConfig cfg;
    cfg.num_skus = 500;
    cfg.num_days = 365;
    auto data = Unwrap(GenerateRetail(cfg), "retail");
    SeasonalModel model(cfg.period);
    GroupedFitSpec spec;
    spec.group_column = "sku";
    spec.input_columns = {"day"};
    spec.output_column = "units";
    Report("retail (seasonal regularity)", data.sales, model, spec);
  }

  // 3. Ablation: pure noise — the model has nothing to capture, and
  //    semantic compression should NOT win (SPARTAN's caveat).
  {
    Rng rng(17);
    Table noise(Schema({Field{"g", DataType::kInt64, false},
                        Field{"x", DataType::kDouble, false},
                        Field{"y", DataType::kDouble, false}}));
    for (int g = 1; g <= 200; ++g) {
      for (int i = 0; i < 200; ++i) {
        CheckOk(noise.AppendRow({Value::Int64(g),
                                 Value::Double(rng.Uniform(0.1, 0.2)),
                                 Value::Double(rng.Uniform(0.0, 1.0))}),
                "append");
      }
    }
    LinearModel model(1);
    GroupedFitSpec spec;
    spec.group_column = "g";
    spec.input_columns = {"x"};
    spec.output_column = "y";
    Report("no-regularity ablation (uniform noise)", noise, model, spec);
  }

  std::printf(
      "\nSHAPE OK when: semantic lossy << generic on model-shaped data; "
      "semantic ~ generic (no win) on the no-regularity ablation.\n");
  return 0;
}

// Table 2 / opportunity "Zero-IO scans" (§4.1).
//
// "We do not even need to access the stored data at all ... transform an
// IO-bound problem (scanning a large table) into a CPU-bound problem
// (recalculating all the values from the model)." Google-benchmark pair:
// aggregate over the full raw table vs aggregate over tuples reconstructed
// from the captured model + enumerable domains (which never touches the
// observations). The model path work scales with sources x bands, not
// with raw rows — the crossover widens as observations accumulate per
// source, the paper's "ten times more observations per source" argument.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "aqp/domain.h"
#include "aqp/model_aqp.h"
#include "bench/bench_util.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "query/executor.h"

namespace {

using namespace laws;
using namespace laws::bench;

/// Shared state per observation-per-source density.
struct State {
  Catalog catalog;
  ModelCatalog models;
  DomainRegistry domains;
  std::unique_ptr<Session> session;
  std::unique_ptr<ModelQueryEngine> engine;
  const CapturedModel* model = nullptr;

  explicit State(size_t obs_per_source) {
    LofarConfig cfg;
    cfg.num_sources = 10'000;
    cfg.num_rows = cfg.num_sources * obs_per_source;
    cfg.band_jitter = 0.0;
    cfg.anomalous_fraction = 0.0;
    session = std::make_unique<Session>(&catalog, &models);
    auto pipeline =
        Unwrap(RunLofarPipeline(cfg, &catalog, session.get(), "m"), "pipe");
    model = Unwrap(models.Get(pipeline.model_id), "model");
    domains.Register("m", "wavelength", ColumnDomain::Explicit(cfg.bands));
    engine = std::make_unique<ModelQueryEngine>(&catalog, &models, &domains);
  }
};

State& SharedState(size_t obs_per_source) {
  static auto* s8 = new State(8);
  static auto* s40 = new State(40);
  static auto* s80 = new State(80);
  switch (obs_per_source) {
    case 8:
      return *s8;
    case 40:
      return *s40;
    default:
      return *s80;
  }
}

void BM_FullScanAggregate(benchmark::State& state) {
  State& s = SharedState(static_cast<size_t>(state.range(0)));
  const std::string q =
      "SELECT AVG(intensity) FROM m WHERE wavelength = 0.15";
  for (auto _ : state) {
    auto result = ExecuteQuery(s.catalog, q);
    if (!result.ok()) state.SkipWithError("exact query failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("raw rows: " +
                 std::to_string((**s.catalog.Get("m")).num_rows()));
}
BENCHMARK(BM_FullScanAggregate)->Arg(8)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_ModelZeroIoAggregate(benchmark::State& state) {
  State& s = SharedState(static_cast<size_t>(state.range(0)));
  const std::string q =
      "SELECT AVG(intensity) FROM m WHERE wavelength = 0.15";
  for (auto _ : state) {
    auto result = s.engine->Execute(q);
    if (!result.ok()) state.SkipWithError("model query failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("reconstructs 10000 tuples regardless of raw rows");
}
BENCHMARK(BM_ModelZeroIoAggregate)->Arg(8)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

/// Raw reconstruction throughput: tuples/s generated from the model.
void BM_ModelReconstruction(benchmark::State& state) {
  State& s = SharedState(40);
  size_t tuples = 0;
  for (auto _ : state) {
    auto recon = s.engine->ReconstructTable(*s.model, {});
    if (!recon.ok()) state.SkipWithError("reconstruct failed");
    tuples += recon->tuples_reconstructed;
    benchmark::DoNotOptimize(recon);
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
}
BENCHMARK(BM_ModelReconstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

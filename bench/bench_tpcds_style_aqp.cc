// §6 proposed evaluation — benchmark-style AQP over generated data.
//
// "A straightforward way of evaluating this system would be to create
// models that describe the considerable regularity in the generated
// datasets for popular database benchmarks such as TPC-DS. Then, the
// complex benchmark queries serve as tasks for approximate query
// answering." Our retail workload stands in for TPC-DS (same property:
// generated regularity with known ground truth — DESIGN.md §1). Each
// benchmark query is answered four ways: exact scan, captured model,
// uniform sample, histogram synopsis; we report answer error, latency and
// auxiliary storage.

#include <cmath>
#include <cstdio>
#include <memory>

#include "aqp/domain.h"
#include "aqp/histogram_aqp.h"
#include "aqp/model_aqp.h"
#include "aqp/sampling_aqp.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/session.h"
#include "query/executor.h"
#include "query/parser.h"
#include "workload/retail.h"

namespace {

using namespace laws;
using namespace laws::bench;

struct QueryCase {
  const char* label;
  const char* sql;          // for exact + model engines
  AggregateFunc agg;        // for sample/histogram baselines
  const char* agg_column;
  const char* filter;       // predicate for the sampler
  const char* hist_filter_col;
  double hist_lo, hist_hi;
  bool selective;  // restricted to one SKU?
};

}  // namespace

int main() {
  Banner("S6: TPC-DS-style AQP over generated regularity",
         "benchmark queries answered approximately; model vs sampling vs "
         "synopses (accuracy / latency / storage)");

  RetailConfig cfg;
  cfg.num_skus = 1000;
  cfg.num_days = 365;
  auto retail = Unwrap(GenerateRetail(cfg), "retail");
  Catalog catalog;
  auto table = std::make_shared<Table>(std::move(retail.sales));
  catalog.RegisterOrReplace("sales", table);

  ModelCatalog models;
  Session session(&catalog, &models);
  FitRequest fit;
  fit.table = "sales";
  fit.model_source = "seasonal(7)";
  fit.input_columns = {"day"};
  fit.output_column = "units";
  fit.group_column = "sku";
  FitReport report = Unwrap(session.Fit(fit), "fit");
  const CapturedModel* captured = Unwrap(models.Get(report.model_id), "get");

  DomainRegistry domains;
  domains.Register("sales", "day",
                   ColumnDomain::IntegerRange(
                       0, static_cast<int64_t>(cfg.num_days) - 1, 1));
  ModelQueryEngine model_engine(&catalog, &models, &domains);
  SamplingEngine sampler(*table, 0.01);
  auto stratified = Unwrap(
      StratifiedSamplingEngine::Build(*table, "sku", /*per_group_cap=*/4),
      "stratified");
  auto hist = Unwrap(HistogramEngine::Build(*table, 64), "hist");

  std::printf("table: %zu rows (%s). auxiliary sizes: model %s, 1%% uniform "
              "sample %s, stratified sample %s, histograms %s\n\n",
              table->num_rows(), HumanBytes(table->MemoryBytes()).c_str(),
              HumanBytes(captured->StorageBytes()).c_str(),
              HumanBytes(sampler.SampleBytes()).c_str(),
              HumanBytes(stratified.SampleBytes()).c_str(),
              HumanBytes(hist.SizeBytes()).c_str());

  const QueryCase cases[] = {
      {"Q1: one SKU, one quarter",
       "SELECT SUM(units) FROM sales WHERE sku = 17 AND day >= 90 AND day "
       "<= 180",
       AggregateFunc::kSum, "units", "sku = 17 AND day >= 90 AND day <= 180",
       "day", 90, 180, true},
      {"Q2: chain-wide daily average",
       "SELECT AVG(units) FROM sales WHERE day >= 180 AND day <= 270",
       AggregateFunc::kAvg, "units", "day >= 180 AND day <= 270", "day", 180,
       270, false},
      {"Q3: one SKU single day",
       "SELECT AVG(units) FROM sales WHERE sku = 500 AND day = 42",
       AggregateFunc::kAvg, "units", "sku = 500 AND day = 42", "day", 42, 42,
       true},
  };

  bool model_ok = true;
  for (const QueryCase& c : cases) {
    Timer exact_timer;
    Table exact = Unwrap(ExecuteQuery(catalog, c.sql), "exact");
    const double exact_ms = exact_timer.ElapsedMillis();
    const double truth = *exact.GetValue(0, 0).AsDouble();

    std::printf("%s\n  %s\n", c.label, c.sql);
    std::printf("  %-10s %14.2f %10s %10.2f ms\n", "exact", truth, "-",
                exact_ms);

    Timer model_timer;
    auto model_ans = model_engine.Execute(c.sql);
    const double model_ms = model_timer.ElapsedMillis();
    if (model_ans.ok()) {
      const double v = *model_ans->table.GetValue(0, 0).AsDouble();
      const double err = std::fabs(v - truth) / std::max(std::fabs(truth), 1e-9);
      std::printf("  %-10s %14.2f %9.2f%% %10.2f ms\n", "model", v,
                  100.0 * err, model_ms);
      if (err > 0.05) model_ok = false;
    } else {
      std::printf("  %-10s failed: %s\n", "model",
                  model_ans.status().ToString().c_str());
      model_ok = false;
    }

    auto pred = Unwrap(ParseExpression(c.filter), "pred");
    Timer sample_timer;
    auto sample_ans =
        sampler.EstimateAggregate(c.agg, c.agg_column, pred.get());
    const double sample_ms = sample_timer.ElapsedMillis();
    if (sample_ans.ok() && sample_ans->sample_rows_used > 0) {
      const double err = std::fabs(sample_ans->value - truth) /
                         std::max(std::fabs(truth), 1e-9);
      std::printf("  %-10s %14.2f %9.2f%% %10.2f ms  (n=%zu, CI +/- %.1f)\n",
                  "sample", sample_ans->value, 100.0 * err, sample_ms,
                  sample_ans->sample_rows_used, sample_ans->ci_half_width);
    } else {
      std::printf("  %-10s no qualifying sample rows (selective predicate "
                  "defeats uniform sampling)\n",
                  "sample");
    }

    Timer strat_timer;
    auto strat_ans =
        stratified.EstimateAggregate(c.agg, c.agg_column, pred.get());
    const double strat_ms = strat_timer.ElapsedMillis();
    if (strat_ans.ok() && strat_ans->sample_rows_used > 0) {
      const double err = std::fabs(strat_ans->value - truth) /
                         std::max(std::fabs(truth), 1e-9);
      std::printf("  %-10s %14.2f %9.2f%% %10.2f ms  (n=%zu)\n",
                  "stratified", strat_ans->value, 100.0 * err, strat_ms,
                  strat_ans->sample_rows_used);
    } else {
      std::printf("  %-10s no qualifying sample rows\n", "stratified");
    }

    auto hist_ans = hist.EstimateRange(c.agg, c.agg_column,
                                       c.hist_filter_col, c.hist_lo,
                                       c.hist_hi);
    if (hist_ans.ok()) {
      const double err =
          std::fabs(*hist_ans - truth) / std::max(std::fabs(truth), 1e-9);
      std::printf("  %-10s %14.2f %9.2f%%   (sku predicate ignored)\n",
                  "histogram", *hist_ans, 100.0 * err);
    } else {
      std::printf("  %-10s n/a: %s\n", "histogram",
                  hist_ans.status().ToString().c_str());
    }
    std::printf("\n");
  }

  if (!model_ok) {
    std::fprintf(stderr, "FATAL: model answers exceeded 5%% error\n");
    return 1;
  }
  std::printf("SHAPE OK: the captured model answers every query within "
              "5%%; uniform samples degrade (or fail) on selective "
              "predicates and per-column histograms cannot honour "
              "cross-column restrictions — the gaps the paper's proposal "
              "targets.\n");
  return 0;
}

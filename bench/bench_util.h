#ifndef LAWSDB_BENCH_BENCH_UTIL_H_
#define LAWSDB_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md §3) and
// prints the same rows/series the paper reports, plus our measured
// numbers. Binaries exit non-zero on any internal error so the harness
// loop surfaces breakage.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace laws::bench {

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

/// Aborts the binary with a message when a Status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Unwraps a Result or aborts.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace laws::bench

#endif  // LAWSDB_BENCH_BENCH_UTIL_H_

#ifndef LAWSDB_BENCH_BENCH_UTIL_H_
#define LAWSDB_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md §3) and
// prints the same rows/series the paper reports, plus our measured
// numbers. Binaries exit non-zero on any internal error so the harness
// loop surfaces breakage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace laws::bench {

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

/// Aborts the binary with a message when a Status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Unwraps a Result or aborts.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Returns the path following a `--json` flag in argv, or "" when absent.
/// Every bench accepts `--json <path>` and, when given, appends its
/// machine-readable records there (the BENCH_*.json perf trajectory).
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

/// Minimal machine-readable experiment log: flat records of string /
/// numeric fields, written as a JSON array on Flush. Disabled (all calls
/// no-ops) when constructed with an empty path, so benches can call it
/// unconditionally.
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  /// Starts a new record; subsequent Field calls attach to it.
  void Begin(const std::string& experiment) {
    if (!enabled()) return;
    records_.emplace_back();
    Field("experiment", experiment);
  }

  void Field(const std::string& key, const std::string& value) {
    Append(key, "\"" + Escaped(value) + "\"");
  }
  void Field(const std::string& key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    Append(key, buf);
  }
  void Field(const std::string& key, size_t value) {
    Append(key, std::to_string(value));
  }
  void Field(const std::string& key, int value) {
    Append(key, std::to_string(value));
  }
  void Field(const std::string& key, bool value) {
    Append(key, value ? "true" : "false");
  }

  /// Writes all records to the path; call once at the end of main. Exits
  /// non-zero on IO failure like every other harness error.
  void Flush() {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL cannot write JSON report to %s\n",
                   path_.c_str());
      std::exit(1);
    }
    std::fprintf(f, "[\n");
    for (size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "  {");
      for (size_t i = 0; i < records_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     records_[r][i].first.c_str(),
                     records_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("JSON report: %s (%zu records)\n", path_.c_str(),
                records_.size());
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  void Append(const std::string& key, std::string rendered) {
    if (!enabled() || records_.empty()) return;
    records_.back().emplace_back(key, std::move(rendered));
  }

  std::string path_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

/// Emits the `threads` field of a thread-sweep record together with the
/// machine's `hardware_concurrency` and an `oversubscribed` marker set
/// when more threads were requested than cores exist. Thread-sweep
/// points MUST go through this helper: a sweep that silently records
/// "8 threads, ~1x speedup" on a 1-core box reads as a scaling plateau
/// when it is actually measuring time-slicing of a single core.
inline void ThreadSweepFields(JsonReport& report, size_t threads) {
  const size_t hw = std::thread::hardware_concurrency();
  report.Field("threads", threads);
  report.Field("hardware_concurrency", hw);
  report.Field("oversubscribed", hw != 0 && threads > hw);
}

/// Appends one `metrics` record carrying every non-zero process-wide
/// counter (as `counter.<name>`) and histogram summary (count/sum/p95)
/// from MetricsRegistry::Global(). Call once at the end of a bench so the
/// observability layer's tallies ride along in the --json report.
/// Comparison tooling treats `counter.*` fields as informational, never
/// as regressions (tools/bench_compare.py).
inline void MetricsFields(JsonReport& report) {
  if (!report.enabled()) return;
  report.Begin("metrics");
  for (const CounterSample& c : MetricsRegistry::Global().CounterSamples()) {
    report.Field("counter." + c.name, static_cast<size_t>(c.value));
  }
  for (const HistogramSample& h :
       MetricsRegistry::Global().HistogramSamples()) {
    report.Field("counter." + h.name + ".count",
                 static_cast<size_t>(h.count));
    report.Field("counter." + h.name + ".sum", h.sum);
    report.Field("counter." + h.name + ".p95", h.p95);
  }
}

}  // namespace laws::bench

#endif  // LAWSDB_BENCH_BENCH_UTIL_H_

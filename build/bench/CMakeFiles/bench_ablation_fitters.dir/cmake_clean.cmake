file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fitters.dir/bench_ablation_fitters.cc.o"
  "CMakeFiles/bench_ablation_fitters.dir/bench_ablation_fitters.cc.o.d"
  "bench_ablation_fitters"
  "bench_ablation_fitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_fitters.
# This may be replaced when dependencies are built.

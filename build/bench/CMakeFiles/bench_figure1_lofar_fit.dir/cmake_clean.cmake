file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_lofar_fit.dir/bench_figure1_lofar_fit.cc.o"
  "CMakeFiles/bench_figure1_lofar_fit.dir/bench_figure1_lofar_fit.cc.o.d"
  "bench_figure1_lofar_fit"
  "bench_figure1_lofar_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_lofar_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

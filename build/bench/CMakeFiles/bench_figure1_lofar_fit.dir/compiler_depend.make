# Empty compiler generated dependencies file for bench_figure1_lofar_fit.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_interception.dir/bench_figure2_interception.cc.o"
  "CMakeFiles/bench_figure2_interception.dir/bench_figure2_interception.cc.o.d"
  "bench_figure2_interception"
  "bench_figure2_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_queries_exact_vs_model.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table1_lofar_pipeline.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_analytic_linear.cc" "bench/CMakeFiles/bench_table2_analytic_linear.dir/bench_table2_analytic_linear.cc.o" "gcc" "bench/CMakeFiles/bench_table2_analytic_linear.dir/bench_table2_analytic_linear.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/laws_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/laws_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/laws_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/laws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/laws_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/laws_model.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/laws_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/laws_core.dir/DependInfo.cmake"
  "/root/repo/build/src/aqp/CMakeFiles/laws_aqp.dir/DependInfo.cmake"
  "/root/repo/build/src/anomaly/CMakeFiles/laws_anomaly.dir/DependInfo.cmake"
  "/root/repo/build/src/lofar/CMakeFiles/laws_lofar.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/laws_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_analytic_linear.dir/bench_table2_analytic_linear.cc.o"
  "CMakeFiles/bench_table2_analytic_linear.dir/bench_table2_analytic_linear.cc.o.d"
  "bench_table2_analytic_linear"
  "bench_table2_analytic_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_analytic_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_anomalies.dir/bench_table2_anomalies.cc.o"
  "CMakeFiles/bench_table2_anomalies.dir/bench_table2_anomalies.cc.o.d"
  "bench_table2_anomalies"
  "bench_table2_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_anomalies.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_enumeration.dir/bench_table2_enumeration.cc.o"
  "CMakeFiles/bench_table2_enumeration.dir/bench_table2_enumeration.cc.o.d"
  "bench_table2_enumeration"
  "bench_table2_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

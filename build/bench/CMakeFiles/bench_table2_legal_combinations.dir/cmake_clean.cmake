file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_legal_combinations.dir/bench_table2_legal_combinations.cc.o"
  "CMakeFiles/bench_table2_legal_combinations.dir/bench_table2_legal_combinations.cc.o.d"
  "bench_table2_legal_combinations"
  "bench_table2_legal_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_legal_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

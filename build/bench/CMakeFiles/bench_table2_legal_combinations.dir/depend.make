# Empty dependencies file for bench_table2_legal_combinations.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_model_changes.dir/bench_table2_model_changes.cc.o"
  "CMakeFiles/bench_table2_model_changes.dir/bench_table2_model_changes.cc.o.d"
  "bench_table2_model_changes"
  "bench_table2_model_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_model_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

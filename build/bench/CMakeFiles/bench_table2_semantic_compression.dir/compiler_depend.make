# Empty compiler generated dependencies file for bench_table2_semantic_compression.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_zero_io_scan.dir/bench_table2_zero_io_scan.cc.o"
  "CMakeFiles/bench_table2_zero_io_scan.dir/bench_table2_zero_io_scan.cc.o.d"
  "bench_table2_zero_io_scan"
  "bench_table2_zero_io_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_zero_io_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

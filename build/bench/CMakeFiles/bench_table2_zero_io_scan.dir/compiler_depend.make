# Empty compiler generated dependencies file for bench_table2_zero_io_scan.
# This may be replaced when dependencies are built.

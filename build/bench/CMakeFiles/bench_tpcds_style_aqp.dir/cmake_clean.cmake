file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcds_style_aqp.dir/bench_tpcds_style_aqp.cc.o"
  "CMakeFiles/bench_tpcds_style_aqp.dir/bench_tpcds_style_aqp.cc.o.d"
  "bench_tpcds_style_aqp"
  "bench_tpcds_style_aqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcds_style_aqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

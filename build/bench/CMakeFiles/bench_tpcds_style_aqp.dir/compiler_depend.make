# Empty compiler generated dependencies file for bench_tpcds_style_aqp.
# This may be replaced when dependencies are built.

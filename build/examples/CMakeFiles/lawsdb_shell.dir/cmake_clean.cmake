file(REMOVE_RECURSE
  "CMakeFiles/lawsdb_shell.dir/lawsdb_shell.cpp.o"
  "CMakeFiles/lawsdb_shell.dir/lawsdb_shell.cpp.o.d"
  "lawsdb_shell"
  "lawsdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lawsdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lawsdb_shell.
# This may be replaced when dependencies are built.

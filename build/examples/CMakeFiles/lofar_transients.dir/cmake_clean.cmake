file(REMOVE_RECURSE
  "CMakeFiles/lofar_transients.dir/lofar_transients.cpp.o"
  "CMakeFiles/lofar_transients.dir/lofar_transients.cpp.o.d"
  "lofar_transients"
  "lofar_transients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lofar_transients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lofar_transients.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/retail_aqp.dir/retail_aqp.cpp.o"
  "CMakeFiles/retail_aqp.dir/retail_aqp.cpp.o.d"
  "retail_aqp"
  "retail_aqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_aqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

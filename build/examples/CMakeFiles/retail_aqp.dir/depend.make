# Empty dependencies file for retail_aqp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/semantic_compression.dir/semantic_compression.cpp.o"
  "CMakeFiles/semantic_compression.dir/semantic_compression.cpp.o.d"
  "semantic_compression"
  "semantic_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for semantic_compression.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sensor_views.dir/sensor_views.cpp.o"
  "CMakeFiles/sensor_views.dir/sensor_views.cpp.o.d"
  "sensor_views"
  "sensor_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sensor_views.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("stats")
subdirs("storage")
subdirs("compress")
subdirs("model")
subdirs("query")
subdirs("core")
subdirs("aqp")
subdirs("anomaly")
subdirs("lofar")
subdirs("workload")

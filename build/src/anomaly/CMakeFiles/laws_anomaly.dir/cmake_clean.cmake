file(REMOVE_RECURSE
  "CMakeFiles/laws_anomaly.dir/anomaly.cc.o"
  "CMakeFiles/laws_anomaly.dir/anomaly.cc.o.d"
  "CMakeFiles/laws_anomaly.dir/exploration.cc.o"
  "CMakeFiles/laws_anomaly.dir/exploration.cc.o.d"
  "liblaws_anomaly.a"
  "liblaws_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblaws_anomaly.a"
)

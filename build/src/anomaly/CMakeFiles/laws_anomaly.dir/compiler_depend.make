# Empty compiler generated dependencies file for laws_anomaly.
# This may be replaced when dependencies are built.

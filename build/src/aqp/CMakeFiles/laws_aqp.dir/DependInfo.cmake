
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqp/analytic.cc" "src/aqp/CMakeFiles/laws_aqp.dir/analytic.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/analytic.cc.o.d"
  "/root/repo/src/aqp/bloom.cc" "src/aqp/CMakeFiles/laws_aqp.dir/bloom.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/bloom.cc.o.d"
  "/root/repo/src/aqp/domain.cc" "src/aqp/CMakeFiles/laws_aqp.dir/domain.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/domain.cc.o.d"
  "/root/repo/src/aqp/histogram_aqp.cc" "src/aqp/CMakeFiles/laws_aqp.dir/histogram_aqp.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/histogram_aqp.cc.o.d"
  "/root/repo/src/aqp/hybrid.cc" "src/aqp/CMakeFiles/laws_aqp.dir/hybrid.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/hybrid.cc.o.d"
  "/root/repo/src/aqp/inverse.cc" "src/aqp/CMakeFiles/laws_aqp.dir/inverse.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/inverse.cc.o.d"
  "/root/repo/src/aqp/model_aqp.cc" "src/aqp/CMakeFiles/laws_aqp.dir/model_aqp.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/model_aqp.cc.o.d"
  "/root/repo/src/aqp/sampling_aqp.cc" "src/aqp/CMakeFiles/laws_aqp.dir/sampling_aqp.cc.o" "gcc" "src/aqp/CMakeFiles/laws_aqp.dir/sampling_aqp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/laws_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/laws_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/laws_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/laws_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/laws_model.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/laws_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/laws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/laws_aqp.dir/analytic.cc.o"
  "CMakeFiles/laws_aqp.dir/analytic.cc.o.d"
  "CMakeFiles/laws_aqp.dir/bloom.cc.o"
  "CMakeFiles/laws_aqp.dir/bloom.cc.o.d"
  "CMakeFiles/laws_aqp.dir/domain.cc.o"
  "CMakeFiles/laws_aqp.dir/domain.cc.o.d"
  "CMakeFiles/laws_aqp.dir/histogram_aqp.cc.o"
  "CMakeFiles/laws_aqp.dir/histogram_aqp.cc.o.d"
  "CMakeFiles/laws_aqp.dir/hybrid.cc.o"
  "CMakeFiles/laws_aqp.dir/hybrid.cc.o.d"
  "CMakeFiles/laws_aqp.dir/inverse.cc.o"
  "CMakeFiles/laws_aqp.dir/inverse.cc.o.d"
  "CMakeFiles/laws_aqp.dir/model_aqp.cc.o"
  "CMakeFiles/laws_aqp.dir/model_aqp.cc.o.d"
  "CMakeFiles/laws_aqp.dir/sampling_aqp.cc.o"
  "CMakeFiles/laws_aqp.dir/sampling_aqp.cc.o.d"
  "liblaws_aqp.a"
  "liblaws_aqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_aqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

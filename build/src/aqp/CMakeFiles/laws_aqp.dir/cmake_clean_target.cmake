file(REMOVE_RECURSE
  "liblaws_aqp.a"
)

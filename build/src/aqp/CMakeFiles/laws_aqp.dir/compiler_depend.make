# Empty compiler generated dependencies file for laws_aqp.
# This may be replaced when dependencies are built.

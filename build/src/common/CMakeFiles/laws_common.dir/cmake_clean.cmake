file(REMOVE_RECURSE
  "CMakeFiles/laws_common.dir/logging.cc.o"
  "CMakeFiles/laws_common.dir/logging.cc.o.d"
  "CMakeFiles/laws_common.dir/random.cc.o"
  "CMakeFiles/laws_common.dir/random.cc.o.d"
  "CMakeFiles/laws_common.dir/status.cc.o"
  "CMakeFiles/laws_common.dir/status.cc.o.d"
  "CMakeFiles/laws_common.dir/string_util.cc.o"
  "CMakeFiles/laws_common.dir/string_util.cc.o.d"
  "liblaws_common.a"
  "liblaws_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblaws_common.a"
)

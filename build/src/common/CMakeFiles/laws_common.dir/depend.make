# Empty dependencies file for laws_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/laws_compress.dir/column_compressor.cc.o"
  "CMakeFiles/laws_compress.dir/column_compressor.cc.o.d"
  "CMakeFiles/laws_compress.dir/encoding.cc.o"
  "CMakeFiles/laws_compress.dir/encoding.cc.o.d"
  "CMakeFiles/laws_compress.dir/semantic.cc.o"
  "CMakeFiles/laws_compress.dir/semantic.cc.o.d"
  "liblaws_compress.a"
  "liblaws_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblaws_compress.a"
)

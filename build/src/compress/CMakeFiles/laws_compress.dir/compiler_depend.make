# Empty compiler generated dependencies file for laws_compress.
# This may be replaced when dependencies are built.

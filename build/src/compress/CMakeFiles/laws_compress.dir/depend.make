# Empty dependencies file for laws_compress.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/laws_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/laws_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/diagnose.cc" "src/core/CMakeFiles/laws_core.dir/diagnose.cc.o" "gcc" "src/core/CMakeFiles/laws_core.dir/diagnose.cc.o.d"
  "/root/repo/src/core/model_catalog.cc" "src/core/CMakeFiles/laws_core.dir/model_catalog.cc.o" "gcc" "src/core/CMakeFiles/laws_core.dir/model_catalog.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/core/CMakeFiles/laws_core.dir/persistence.cc.o" "gcc" "src/core/CMakeFiles/laws_core.dir/persistence.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/laws_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/laws_core.dir/session.cc.o.d"
  "/root/repo/src/core/strawman.cc" "src/core/CMakeFiles/laws_core.dir/strawman.cc.o" "gcc" "src/core/CMakeFiles/laws_core.dir/strawman.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/laws_model.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/laws_query.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/laws_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/laws_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/laws_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/laws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

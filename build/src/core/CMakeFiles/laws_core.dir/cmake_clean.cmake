file(REMOVE_RECURSE
  "CMakeFiles/laws_core.dir/advisor.cc.o"
  "CMakeFiles/laws_core.dir/advisor.cc.o.d"
  "CMakeFiles/laws_core.dir/diagnose.cc.o"
  "CMakeFiles/laws_core.dir/diagnose.cc.o.d"
  "CMakeFiles/laws_core.dir/model_catalog.cc.o"
  "CMakeFiles/laws_core.dir/model_catalog.cc.o.d"
  "CMakeFiles/laws_core.dir/persistence.cc.o"
  "CMakeFiles/laws_core.dir/persistence.cc.o.d"
  "CMakeFiles/laws_core.dir/session.cc.o"
  "CMakeFiles/laws_core.dir/session.cc.o.d"
  "CMakeFiles/laws_core.dir/strawman.cc.o"
  "CMakeFiles/laws_core.dir/strawman.cc.o.d"
  "liblaws_core.a"
  "liblaws_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

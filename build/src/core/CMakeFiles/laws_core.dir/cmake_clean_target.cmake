file(REMOVE_RECURSE
  "liblaws_core.a"
)

# Empty dependencies file for laws_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/laws_linalg.dir/matrix.cc.o"
  "CMakeFiles/laws_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/laws_linalg.dir/solve.cc.o"
  "CMakeFiles/laws_linalg.dir/solve.cc.o.d"
  "liblaws_linalg.a"
  "liblaws_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

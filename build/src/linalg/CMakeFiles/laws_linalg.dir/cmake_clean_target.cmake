file(REMOVE_RECURSE
  "liblaws_linalg.a"
)

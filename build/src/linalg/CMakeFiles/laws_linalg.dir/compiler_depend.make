# Empty compiler generated dependencies file for laws_linalg.
# This may be replaced when dependencies are built.

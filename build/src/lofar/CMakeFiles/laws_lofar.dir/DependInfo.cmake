
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lofar/generator.cc" "src/lofar/CMakeFiles/laws_lofar.dir/generator.cc.o" "gcc" "src/lofar/CMakeFiles/laws_lofar.dir/generator.cc.o.d"
  "/root/repo/src/lofar/pipeline.cc" "src/lofar/CMakeFiles/laws_lofar.dir/pipeline.cc.o" "gcc" "src/lofar/CMakeFiles/laws_lofar.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/laws_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/laws_query.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/laws_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/laws_model.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/laws_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/laws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/laws_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

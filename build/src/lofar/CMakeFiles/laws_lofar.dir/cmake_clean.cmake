file(REMOVE_RECURSE
  "CMakeFiles/laws_lofar.dir/generator.cc.o"
  "CMakeFiles/laws_lofar.dir/generator.cc.o.d"
  "CMakeFiles/laws_lofar.dir/pipeline.cc.o"
  "CMakeFiles/laws_lofar.dir/pipeline.cc.o.d"
  "liblaws_lofar.a"
  "liblaws_lofar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_lofar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblaws_lofar.a"
)

# Empty compiler generated dependencies file for laws_lofar.
# This may be replaced when dependencies are built.

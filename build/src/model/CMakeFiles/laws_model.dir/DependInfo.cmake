
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/fit.cc" "src/model/CMakeFiles/laws_model.dir/fit.cc.o" "gcc" "src/model/CMakeFiles/laws_model.dir/fit.cc.o.d"
  "/root/repo/src/model/grouped_fit.cc" "src/model/CMakeFiles/laws_model.dir/grouped_fit.cc.o" "gcc" "src/model/CMakeFiles/laws_model.dir/grouped_fit.cc.o.d"
  "/root/repo/src/model/incremental.cc" "src/model/CMakeFiles/laws_model.dir/incremental.cc.o" "gcc" "src/model/CMakeFiles/laws_model.dir/incremental.cc.o.d"
  "/root/repo/src/model/model.cc" "src/model/CMakeFiles/laws_model.dir/model.cc.o" "gcc" "src/model/CMakeFiles/laws_model.dir/model.cc.o.d"
  "/root/repo/src/model/robust.cc" "src/model/CMakeFiles/laws_model.dir/robust.cc.o" "gcc" "src/model/CMakeFiles/laws_model.dir/robust.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/laws_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/laws_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/laws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

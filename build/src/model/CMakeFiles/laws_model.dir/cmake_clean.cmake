file(REMOVE_RECURSE
  "CMakeFiles/laws_model.dir/fit.cc.o"
  "CMakeFiles/laws_model.dir/fit.cc.o.d"
  "CMakeFiles/laws_model.dir/grouped_fit.cc.o"
  "CMakeFiles/laws_model.dir/grouped_fit.cc.o.d"
  "CMakeFiles/laws_model.dir/incremental.cc.o"
  "CMakeFiles/laws_model.dir/incremental.cc.o.d"
  "CMakeFiles/laws_model.dir/model.cc.o"
  "CMakeFiles/laws_model.dir/model.cc.o.d"
  "CMakeFiles/laws_model.dir/robust.cc.o"
  "CMakeFiles/laws_model.dir/robust.cc.o.d"
  "liblaws_model.a"
  "liblaws_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

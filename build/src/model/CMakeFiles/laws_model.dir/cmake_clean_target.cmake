file(REMOVE_RECURSE
  "liblaws_model.a"
)

# Empty compiler generated dependencies file for laws_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/laws_query.dir/ast.cc.o"
  "CMakeFiles/laws_query.dir/ast.cc.o.d"
  "CMakeFiles/laws_query.dir/executor.cc.o"
  "CMakeFiles/laws_query.dir/executor.cc.o.d"
  "CMakeFiles/laws_query.dir/expr_eval.cc.o"
  "CMakeFiles/laws_query.dir/expr_eval.cc.o.d"
  "CMakeFiles/laws_query.dir/lexer.cc.o"
  "CMakeFiles/laws_query.dir/lexer.cc.o.d"
  "CMakeFiles/laws_query.dir/parser.cc.o"
  "CMakeFiles/laws_query.dir/parser.cc.o.d"
  "liblaws_query.a"
  "liblaws_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

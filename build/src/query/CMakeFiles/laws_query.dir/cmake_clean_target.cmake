file(REMOVE_RECURSE
  "liblaws_query.a"
)

# Empty dependencies file for laws_query.
# This may be replaced when dependencies are built.

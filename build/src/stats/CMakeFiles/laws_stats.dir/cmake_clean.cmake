file(REMOVE_RECURSE
  "CMakeFiles/laws_stats.dir/descriptive.cc.o"
  "CMakeFiles/laws_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/laws_stats.dir/diagnostics.cc.o"
  "CMakeFiles/laws_stats.dir/diagnostics.cc.o.d"
  "CMakeFiles/laws_stats.dir/distributions.cc.o"
  "CMakeFiles/laws_stats.dir/distributions.cc.o.d"
  "CMakeFiles/laws_stats.dir/goodness_of_fit.cc.o"
  "CMakeFiles/laws_stats.dir/goodness_of_fit.cc.o.d"
  "CMakeFiles/laws_stats.dir/histogram.cc.o"
  "CMakeFiles/laws_stats.dir/histogram.cc.o.d"
  "liblaws_stats.a"
  "liblaws_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblaws_stats.a"
)

# Empty compiler generated dependencies file for laws_stats.
# This may be replaced when dependencies are built.

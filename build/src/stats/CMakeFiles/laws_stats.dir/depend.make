# Empty dependencies file for laws_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/laws_storage.dir/catalog.cc.o"
  "CMakeFiles/laws_storage.dir/catalog.cc.o.d"
  "CMakeFiles/laws_storage.dir/column.cc.o"
  "CMakeFiles/laws_storage.dir/column.cc.o.d"
  "CMakeFiles/laws_storage.dir/csv.cc.o"
  "CMakeFiles/laws_storage.dir/csv.cc.o.d"
  "CMakeFiles/laws_storage.dir/schema.cc.o"
  "CMakeFiles/laws_storage.dir/schema.cc.o.d"
  "CMakeFiles/laws_storage.dir/serialize.cc.o"
  "CMakeFiles/laws_storage.dir/serialize.cc.o.d"
  "CMakeFiles/laws_storage.dir/table.cc.o"
  "CMakeFiles/laws_storage.dir/table.cc.o.d"
  "CMakeFiles/laws_storage.dir/types.cc.o"
  "CMakeFiles/laws_storage.dir/types.cc.o.d"
  "liblaws_storage.a"
  "liblaws_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblaws_storage.a"
)

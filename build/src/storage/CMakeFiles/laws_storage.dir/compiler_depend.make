# Empty compiler generated dependencies file for laws_storage.
# This may be replaced when dependencies are built.

# Empty dependencies file for laws_storage.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/retail.cc" "src/workload/CMakeFiles/laws_workload.dir/retail.cc.o" "gcc" "src/workload/CMakeFiles/laws_workload.dir/retail.cc.o.d"
  "/root/repo/src/workload/sensor.cc" "src/workload/CMakeFiles/laws_workload.dir/sensor.cc.o" "gcc" "src/workload/CMakeFiles/laws_workload.dir/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/laws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/laws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

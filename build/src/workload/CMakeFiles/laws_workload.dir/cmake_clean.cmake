file(REMOVE_RECURSE
  "CMakeFiles/laws_workload.dir/retail.cc.o"
  "CMakeFiles/laws_workload.dir/retail.cc.o.d"
  "CMakeFiles/laws_workload.dir/sensor.cc.o"
  "CMakeFiles/laws_workload.dir/sensor.cc.o.d"
  "liblaws_workload.a"
  "liblaws_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laws_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

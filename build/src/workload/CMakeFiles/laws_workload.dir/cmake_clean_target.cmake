file(REMOVE_RECURSE
  "liblaws_workload.a"
)

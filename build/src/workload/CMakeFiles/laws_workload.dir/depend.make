# Empty dependencies file for laws_workload.
# This may be replaced when dependencies are built.

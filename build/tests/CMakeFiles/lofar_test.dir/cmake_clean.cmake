file(REMOVE_RECURSE
  "CMakeFiles/lofar_test.dir/lofar_test.cc.o"
  "CMakeFiles/lofar_test.dir/lofar_test.cc.o.d"
  "lofar_test"
  "lofar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lofar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

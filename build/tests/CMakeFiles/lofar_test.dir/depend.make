# Empty dependencies file for lofar_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(linalg_test "/root/repo/build/tests/linalg_test")
set_tests_properties(linalg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compress_test "/root/repo/build/tests/compress_test")
set_tests_properties(compress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(aqp_test "/root/repo/build/tests/aqp_test")
set_tests_properties(aqp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(anomaly_test "/root/repo/build/tests/anomaly_test")
set_tests_properties(anomaly_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lofar_test "/root/repo/build/tests/lofar_test")
set_tests_properties(lofar_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;laws_add_test;/root/repo/tests/CMakeLists.txt;0;")

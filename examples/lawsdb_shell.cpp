// lawsdb_shell — a small interactive shell over the whole engine,
// running as one client session of the in-process serving layer.
//
//   $ ./build/examples/lawsdb_shell
//   lawsdb> gen lofar 1000 40000
//   lawsdb> fit measurements power_law wavelength intensity group source
//   lawsdb> domain measurements wavelength
//   lawsdb> approx SELECT intensity FROM measurements WHERE source = 42
//           AND wavelength = 0.15
//   lawsdb> sql SELECT COUNT(*) FROM measurements
//   lawsdb> concurrent 4 SELECT COUNT(*) FROM measurements
//   lawsdb> save /tmp/db.laws
//   lawsdb> quit
//
// Also scriptable: pipe commands via stdin (used by the repo's smoke
// checks). Type `help` for the full command list.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aqp/domain.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "core/advisor.h"
#include "core/diagnose.h"
#include "core/persistence.h"
#include "learn/learner.h"
#include "learn/loop.h"
#include "lofar/generator.h"
#include "query/executor.h"
#include "serve/server.h"
#include "storage/csv.h"
#include "workload/retail.h"

namespace {

using namespace laws;

/// The shell session's interrupt flag. The flag itself lives inside the
/// ClientSession and stays valid for the session's whole lifetime, so —
/// unlike the old pattern of publishing the in-flight query's governor
/// pointer — the handler can never dereference a dead object. Writing an
/// atomic bool is async-signal-safe; the governor consumes the flag at
/// its next poll and unwinds the query with a typed Canceled error.
std::atomic<std::atomic<bool>*> g_session_interrupt{nullptr};

void HandleSigint(int) {
  if (std::atomic<bool>* flag =
          g_session_interrupt.load(std::memory_order_acquire)) {
    flag->store(true, std::memory_order_release);
  }
}

struct Shell {
  /// Database-learning loop: the shell owns the learner (enabled via
  /// LAWS_LEARNING or `learning on`), hooks it into the hybrid engine
  /// through ServerOptions, and runs background maintenance ticks that
  /// publish harvested models through snapshot commits. Declared before
  /// `server` so the hook outlives every session.
  Learner learner;
  Server server;
  LearningLoop learn_loop;
  std::shared_ptr<ClientSession> session;
  /// Per-query resource limits, seeded from LAWS_QUERY_TIMEOUT_MS /
  /// LAWS_QUERY_MEMBUDGET_MB and adjusted by `timeout` / `membudget`.
  ResourceLimits limits;

  static ServerOptions WithLearner(Learner* learner) {
    ServerOptions options;
    options.hybrid.learner = learner;
    return options;
  }

  Shell()
      : server(WithLearner(&learner)),
        learn_loop(&server.snapshots(), &learner) {
    auto connected = server.Connect("shell");
    if (!connected.ok()) {
      std::fprintf(stderr, "cannot open session: %s\n",
                   connected.status().ToString().c_str());
      std::exit(1);
    }
    session = std::move(*connected);
    limits = session->limits();
    learn_loop.Start();
  }

  ~Shell() { learn_loop.Stop(); }

  void PrintTable(const Table& t, size_t max_rows = 12) {
    std::printf("%s", t.ToString(max_rows).c_str());
    std::printf("(%zu rows)\n", t.num_rows());
  }

  void Help() {
    std::printf(
        "commands:\n"
        "  gen lofar <sources> <rows>     generate + register 'measurements'\n"
        "  gen retail <skus> <days>       generate + register 'sales'\n"
        "  tables                         list tables (+ snapshot epoch)\n"
        "  sql <SELECT ...>               exact query\n"
        "  explain <SELECT ...>           show the execution plan\n"
        "  explain analyze <SELECT ...>   run through the hybrid engine and\n"
        "                                 show per-stage rows + timings\n"
        "  approx <SELECT ...>            answer from captured models only\n"
        "  metrics [reset]                process-wide counters + histograms\n"
        "  fit <table> <model> <input> <output> [group <col>] [where <pred>]\n"
        "  models                         list captured models\n"
        "  suggest <table> <input> <output> [group <col>]   model advisor\n"
        "  domain <table> <column>        infer + register enumerable domain\n"
        "  view <model_id> <name>         materialize a model grid as a table\n"
        "  diagnose <model_id> [group]    residual normality + autocorrelation\n"
        "  learning on|off|status|tick    database-learning loop: exact\n"
        "                                 scans harvest candidate models;\n"
        "                                 'tick' forces one maintenance\n"
        "                                 pass (promote/refine/evict)\n"
        "  refresh                        refit stale models\n"
        "  drop <table>                   drop a table and its models\n"
        "  concurrent <n> <SELECT ...>    run the query on n sessions at once\n"
        "  import <path> <table> <name:type[?],...>   load a CSV file\n"
        "  export <table> <path>          write a table as CSV\n"
        "  save <path>                    persist the database (atomic)\n"
        "  load <path> [tolerant]         restore; 'tolerant' quarantines\n"
        "                                 corrupt sections instead of failing\n"
        "  inspect <path>                 image sections + checksum status\n"
        "  timeout [ms]                   set (or show) per-query deadline;\n"
        "                                 0 = unlimited\n"
        "  membudget [mb]                 set (or show) per-query memory\n"
        "                                 budget; 0 = unlimited\n"
        "  cancel                         pre-cancel the next query (Ctrl-C\n"
        "                                 cancels a running one)\n"
        "  help | quit\n");
  }

  void Gen(std::istringstream& args) {
    std::string kind;
    size_t a = 0, b = 0;
    args >> kind >> a >> b;
    if (kind == "lofar" && a > 0 && b >= a * 8) {
      LofarConfig cfg;
      cfg.num_sources = a;
      cfg.num_rows = b;
      cfg.band_jitter = 0.0;
      auto gen = GenerateLofar(cfg);
      if (!gen.ok()) {
        std::printf("error: %s\n", gen.status().ToString().c_str());
        return;
      }
      auto status =
          session->CreateTable("measurements", std::move(gen->observations));
      if (status.ok()) {
        status = session->RegisterDomain("measurements", "wavelength",
                                         ColumnDomain::Explicit(cfg.bands));
      }
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return;
      }
      std::printf("registered 'measurements' (%zu rows; wavelength domain "
                  "registered)\n",
                  b);
      return;
    }
    if (kind == "retail" && a > 0 && b > 0) {
      RetailConfig cfg;
      cfg.num_skus = a;
      cfg.num_days = b;
      auto gen = GenerateRetail(cfg);
      if (!gen.ok()) {
        std::printf("error: %s\n", gen.status().ToString().c_str());
        return;
      }
      auto status = session->CreateTable("sales", std::move(gen->sales));
      if (status.ok()) {
        status = session->RegisterDomain(
            "sales", "day",
            ColumnDomain::IntegerRange(0, static_cast<int64_t>(b) - 1, 1));
      }
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return;
      }
      std::printf("registered 'sales' (%zu rows; day domain registered)\n",
                  a * b);
      return;
    }
    std::printf("usage: gen lofar <sources> <rows> | gen retail <skus> "
                "<days>\n");
  }

  void Fit(std::istringstream& args) {
    FitRequest request;
    std::string input;
    args >> request.table >> request.model_source >> input >>
        request.output_column;
    request.input_columns = {input};
    std::string word;
    while (args >> word) {
      if (EqualsIgnoreCase(word, "group")) {
        args >> request.group_column;
      } else if (EqualsIgnoreCase(word, "where")) {
        std::getline(args, request.where);
        request.where = std::string(Trim(request.where));
      }
    }
    if (request.table.empty() || request.output_column.empty()) {
      std::printf("usage: fit <table> <model> <input> <output> [group <col>] "
                  "[where <pred>]\n");
      return;
    }
    auto report = session->Fit(request);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    auto snap = session->PinSnapshot();
    auto captured = snap->models.Get(report->model_id);
    std::printf("captured: %s\n", (*captured)->Summary().c_str());
  }

  void Models() {
    auto snap = session->PinSnapshot();
    if (snap->models.size() == 0) {
      std::printf("(no captured models)\n");
      return;
    }
    for (uint64_t id : snap->models.ListIds()) {
      std::printf("%s\n", (*snap->models.Get(id))->Summary().c_str());
    }
  }

  void Suggest(std::istringstream& args) {
    std::string table, input, output, word, group;
    args >> table >> input >> output;
    while (args >> word) {
      if (EqualsIgnoreCase(word, "group")) args >> group;
    }
    auto snap = session->PinSnapshot();
    auto t = snap->tables.Get(table);
    if (!t.ok()) {
      std::printf("error: %s\n", t.status().ToString().c_str());
      return;
    }
    auto candidates =
        group.empty() ? SuggestModels(**t, input, output)
                      : SuggestGroupedModels(**t, group, input, output);
    if (!candidates.ok()) {
      std::printf("error: %s\n", candidates.status().ToString().c_str());
      return;
    }
    std::printf("%-18s %10s %12s\n", "model", "R2", "BIC");
    for (const auto& c : *candidates) {
      if (c.fitted) {
        std::printf("%-18s %10.4f %12.1f\n", c.model_source.c_str(),
                    c.r_squared, c.bic);
      } else {
        std::printf("%-18s   failed: %s\n", c.model_source.c_str(),
                    c.failure.c_str());
      }
    }
  }

  void Domain(std::istringstream& args) {
    std::string table, column;
    args >> table >> column;
    auto snap = session->PinSnapshot();
    auto t = snap->tables.Get(table);
    if (!t.ok()) {
      std::printf("error: %s\n", t.status().ToString().c_str());
      return;
    }
    auto col = (*t)->ColumnByName(column);
    if (!col.ok()) {
      std::printf("error: %s\n", col.status().ToString().c_str());
      return;
    }
    auto domain = DomainRegistry::InferFromColumn(**col);
    if (!domain.ok()) {
      std::printf("error: %s\n", domain.status().ToString().c_str());
      return;
    }
    const size_t cardinality = domain->Cardinality();
    auto status = session->RegisterDomain(table, column, std::move(*domain));
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("registered domain with %zu values\n", cardinality);
  }

  /// `concurrent <n> <sql>`: opens n extra sessions and runs the same
  /// query on each from its own thread — the smoke-level proof that the
  /// serving layer multiplexes sessions without interference. Used by
  /// tools/check_serving.sh.
  void Concurrent(std::istringstream& args) {
    size_t n = 0;
    args >> n;
    std::string query;
    std::getline(args, query);
    query = std::string(Trim(query));
    if (n == 0 || n > 64 || query.empty()) {
      std::printf("usage: concurrent <1..64> <SELECT ...>\n");
      return;
    }
    std::vector<std::shared_ptr<ClientSession>> sessions;
    sessions.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto s = server.Connect("c" + std::to_string(i + 1));
      if (!s.ok()) {
        std::printf("error: %s\n", s.status().ToString().c_str());
        return;
      }
      sessions.push_back(std::move(*s));
    }
    std::atomic<size_t> ok{0}, err{0};
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (auto& s : sessions) {
      threads.emplace_back([&ok, &err, &query, s] {
        auto result = s->ExecuteSql(query);
        (result.ok() ? ok : err).fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (auto& t : threads) t.join();
    for (auto& s : sessions) s->Close();
    std::printf("concurrent: ok=%zu err=%zu sessions=%zu\n",
                ok.load(), err.load(), n);
  }

  void Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return;
    if (EqualsIgnoreCase(command, "help")) {
      Help();
    } else if (EqualsIgnoreCase(command, "gen")) {
      Gen(in);
    } else if (EqualsIgnoreCase(command, "tables")) {
      auto snap = session->PinSnapshot();
      for (const auto& name : snap->tables.ListTables()) {
        std::printf("%s (%zu rows)\n", name.c_str(),
                    (*snap->tables.Get(name))->num_rows());
      }
      std::printf("epoch %llu\n",
                  static_cast<unsigned long long>(snap->epoch));
    } else if (EqualsIgnoreCase(command, "sql")) {
      std::string query;
      std::getline(in, query);
      auto result = session->ExecuteSql(query);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintTable(*result);
      }
    } else if (EqualsIgnoreCase(command, "explain")) {
      std::string query;
      std::getline(in, query);
      query = std::string(Trim(query));
      // "explain analyze <sql>" executes through the hybrid engine and
      // renders the measured per-stage tree; plain "explain" stays a
      // static plan.
      std::istringstream peek(query);
      std::string first;
      peek >> first;
      if (EqualsIgnoreCase(first, "analyze")) {
        std::string rest;
        std::getline(peek, rest);
        auto analyzed = session->ExplainAnalyze(std::string(Trim(rest)));
        if (!analyzed.ok()) {
          std::printf("error: %s\n", analyzed.status().ToString().c_str());
        } else {
          std::printf("%s", analyzed->c_str());
        }
        return;
      }
      auto snap = session->PinSnapshot();
      auto plan = ExplainQuery(snap->tables, query);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("%s", plan->c_str());
      }
    } else if (EqualsIgnoreCase(command, "metrics")) {
      std::string mode;
      in >> mode;
      if (EqualsIgnoreCase(mode, "reset")) {
        MetricsRegistry::Global().ResetAll();
        std::printf("metrics reset\n");
      } else {
        std::printf("%s", MetricsRegistry::Global().Render().c_str());
      }
    } else if (EqualsIgnoreCase(command, "approx")) {
      std::string query;
      std::getline(in, query);
      auto answer = session->ExecuteApprox(query);
      if (!answer.ok()) {
        std::printf("error: %s\n", answer.status().ToString().c_str());
      } else {
        PrintTable(answer->table);
        std::printf("method=%s  error bound ~ +/-%.6g  raw rows read=%zu\n",
                    answer->method.c_str(), answer->error_bound,
                    answer->raw_rows_accessed);
      }
    } else if (EqualsIgnoreCase(command, "learning")) {
      std::string mode;
      in >> mode;
      if (EqualsIgnoreCase(mode, "on")) {
        learner.SetEnabled(true);
        std::printf("learning on\n");
      } else if (EqualsIgnoreCase(mode, "off")) {
        learner.SetEnabled(false);
        std::printf("learning off\n");
      } else if (EqualsIgnoreCase(mode, "tick")) {
        auto tick = learn_loop.TickNow();
        if (tick.ok()) {
          std::printf("%s\n", tick->Summary().c_str());
        } else if (tick.status().code() == StatusCode::kAborted) {
          std::printf("learning tick: nothing to do\n");
        } else {
          std::printf("error: %s\n", tick.status().ToString().c_str());
        }
      } else if (mode.empty() || EqualsIgnoreCase(mode, "status")) {
        std::printf("%s\nticks=%llu\n", learner.StatusString().c_str(),
                    static_cast<unsigned long long>(learn_loop.ticks()));
      } else {
        std::printf("usage: learning on|off|status|tick\n");
      }
    } else if (EqualsIgnoreCase(command, "fit")) {
      Fit(in);
    } else if (EqualsIgnoreCase(command, "models")) {
      Models();
    } else if (EqualsIgnoreCase(command, "suggest")) {
      Suggest(in);
    } else if (EqualsIgnoreCase(command, "domain")) {
      Domain(in);
    } else if (EqualsIgnoreCase(command, "diagnose")) {
      uint64_t model_id = 0;
      int64_t group = 0;
      in >> model_id;
      in >> group;  // optional; stays 0 on failure
      auto snap = session->PinSnapshot();
      auto model = snap->models.Get(model_id);
      if (!model.ok()) {
        std::printf("error: %s\n", model.status().ToString().c_str());
        return;
      }
      auto table = snap->tables.Get((*model)->table_name);
      if (!table.ok()) {
        std::printf("error: %s\n", table.status().ToString().c_str());
        return;
      }
      auto diag = DiagnoseModel(**table, **model, group);
      if (!diag.ok()) {
        std::printf("error: %s\n", diag.status().ToString().c_str());
      } else {
        std::printf("residuals: %zu  KS p=%.4f (%s)  Durbin-Watson=%.3f  "
                    "-> %s\n",
                    diag->residuals_used, diag->residual_normality.p_value,
                    diag->residual_normality.normal_at_05 ? "normal"
                                                          : "non-normal",
                    diag->durbin_watson,
                    diag->healthy ? "healthy" : "suspect");
      }
    } else if (EqualsIgnoreCase(command, "view")) {
      uint64_t model_id = 0;
      std::string name;
      in >> model_id >> name;
      auto tuples = session->MaterializeView(model_id, name);
      if (!tuples.ok()) {
        std::printf("error: %s\n", tuples.status().ToString().c_str());
      } else {
        std::printf("materialized '%s' with %zu tuples\n", name.c_str(),
                    *tuples);
      }
    } else if (EqualsIgnoreCase(command, "refresh")) {
      auto sweep = session->RefitStale();
      if (!sweep.ok()) {
        std::printf("error: %s\n", sweep.status().ToString().c_str());
      } else {
        std::printf("checked=%zu stale=%zu refitted=%zu\n", sweep->checked,
                    sweep->stale, sweep->refitted);
      }
    } else if (EqualsIgnoreCase(command, "drop")) {
      std::string table;
      in >> table;
      auto status = session->DropTable(table);
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      } else {
        std::printf("dropped '%s'\n", table.c_str());
      }
    } else if (EqualsIgnoreCase(command, "concurrent")) {
      Concurrent(in);
    } else if (EqualsIgnoreCase(command, "import")) {
      std::string path, table, spec;
      in >> path >> table;
      std::getline(in, spec);
      auto schema = ParseSchemaSpec(std::string(Trim(spec)));
      if (!schema.ok()) {
        std::printf("error: %s\n", schema.status().ToString().c_str());
        return;
      }
      auto loaded = ReadCsvFile(path, *schema);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        return;
      }
      const size_t rows = loaded->num_rows();
      auto status = session->CreateTable(table, std::move(*loaded));
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
        return;
      }
      std::printf("imported %zu rows into '%s'\n", rows, table.c_str());
    } else if (EqualsIgnoreCase(command, "export")) {
      std::string table, path;
      in >> table >> path;
      auto snap = session->PinSnapshot();
      auto t = snap->tables.Get(table);
      if (!t.ok()) {
        std::printf("error: %s\n", t.status().ToString().c_str());
        return;
      }
      auto status = WriteCsvFile(**t, path);
      std::printf("%s\n",
                  status.ok() ? "exported" : status.ToString().c_str());
    } else if (EqualsIgnoreCase(command, "save")) {
      std::string path;
      in >> path;
      auto snap = session->PinSnapshot();
      auto status = SaveDatabase(snap->tables, snap->models, path);
      std::printf("%s\n", status.ok() ? "saved" : status.ToString().c_str());
    } else if (EqualsIgnoreCase(command, "load")) {
      std::string path, mode;
      in >> path >> mode;
      LoadOptions options;
      options.tolerate_corruption = EqualsIgnoreCase(mode, "tolerant");
      LoadReport report;
      Catalog data;
      ModelCatalog models;
      auto status = LoadDatabase(path, &data, &models, options, &report);
      if (status.ok()) {
        status = session->ReplaceDatabase(std::move(data), std::move(models));
      }
      if (!status.ok()) {
        std::printf("%s\n", status.ToString().c_str());
      } else {
        std::printf("loaded: %s\n", report.Summary().c_str());
      }
    } else if (EqualsIgnoreCase(command, "inspect")) {
      std::string path;
      in >> path;
      std::ifstream file(path, std::ios::binary | std::ios::ate);
      if (!file) {
        std::printf("error: cannot open %s\n", path.c_str());
        return;
      }
      std::vector<uint8_t> bytes(static_cast<size_t>(file.tellg()));
      file.seekg(0);
      file.read(reinterpret_cast<char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      auto info = InspectImage(bytes);
      if (!info.ok()) {
        std::printf("error: %s\n", info.status().ToString().c_str());
        return;
      }
      std::printf("version %u, %zu bytes, whole-image checksum %s\n",
                  info->version, static_cast<size_t>(info->file_bytes),
                  info->image_checksum_ok ? "OK" : "FAILED");
      for (const ImageSection& s : info->sections) {
        std::printf("  [%s] %-24s offset=%-10zu length=%-10zu crc %s\n",
                    s.kind == ImageSectionKind::kTable          ? "table"
                    : s.kind == ImageSectionKind::kModelCatalog ? "manif"
                                                                : "model",
                    s.name.c_str(), static_cast<size_t>(s.offset),
                    static_cast<size_t>(s.length),
                    s.crc_ok ? "OK" : "FAILED");
      }
    } else if (EqualsIgnoreCase(command, "timeout")) {
      int64_t ms = 0;
      if (in >> ms && ms >= 0) {
        limits.timeout_micros = ms * 1000;
        session->set_limits(limits);
        std::printf("per-query deadline: %s\n",
                    ms == 0 ? "unlimited" : (std::to_string(ms) + " ms").c_str());
      } else if (in.eof() && ms == 0) {
        std::printf("per-query deadline: %s\n",
                    limits.timeout_micros == 0
                        ? "unlimited"
                        : (std::to_string(limits.timeout_micros / 1000) + " ms")
                              .c_str());
      } else {
        std::printf("usage: timeout [milliseconds >= 0]\n");
      }
    } else if (EqualsIgnoreCase(command, "membudget")) {
      int64_t mb = 0;
      if (in >> mb && mb >= 0) {
        limits.memory_budget_bytes =
            static_cast<uint64_t>(mb) * 1024 * 1024;
        session->set_limits(limits);
        std::printf("per-query memory budget: %s\n",
                    mb == 0 ? "unlimited" : (std::to_string(mb) + " MiB").c_str());
      } else if (in.eof() && mb == 0) {
        std::printf(
            "per-query memory budget: %s\n",
            limits.memory_budget_bytes == 0
                ? "unlimited"
                : (std::to_string(limits.memory_budget_bytes / (1024 * 1024)) +
                   " MiB")
                      .c_str());
      } else {
        std::printf("usage: membudget [mebibytes >= 0]\n");
      }
    } else if (EqualsIgnoreCase(command, "cancel")) {
      // Arms the session's interrupt: consumed by the next governed poll,
      // exactly like an interactive Ctrl-C landing mid-query.
      session->CancelCurrent();
      std::printf("next query will be canceled\n");
    } else {
      std::printf("unknown command '%s' (try: help)\n", command.c_str());
    }
  }
};

}  // namespace

int main() {
  Shell shell;
  g_session_interrupt.store(shell.session->interrupt_flag(),
                            std::memory_order_release);
  std::signal(SIGINT, HandleSigint);
  std::printf("LawsDB shell — type 'help' for commands\n");
  std::string line;
  while (true) {
    std::printf("lawsdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed(laws::Trim(line));
    if (laws::EqualsIgnoreCase(trimmed, "quit") ||
        laws::EqualsIgnoreCase(trimmed, "exit")) {
      break;
    }
    shell.Dispatch(trimmed);
  }
  std::printf("\n");
  return 0;
}

// LOFAR Transients walkthrough — the paper's §2 case study end to end:
// generate the synthetic observation table, capture the per-source
// power-law model, inspect the parameter table (the paper's Table 1),
// answer the two motivating SQL queries from the model, and surface the
// anomalous sources by goodness of fit.
//
// Uses a reduced scale (2,000 sources) so it runs in a couple of seconds;
// bench_table1_lofar_pipeline reproduces the full 1,452,824-row dataset.

#include <cmath>
#include <cstdio>

#include "anomaly/anomaly.h"
#include "aqp/domain.h"
#include "aqp/model_aqp.h"
#include "common/string_util.h"
#include "core/session.h"
#include "lofar/pipeline.h"
#include "query/executor.h"

int main() {
  using namespace laws;

  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);

  LofarConfig cfg;
  cfg.num_sources = 2000;
  cfg.num_rows = 80'000;
  cfg.anomalous_fraction = 0.02;
  cfg.band_jitter = 0.0;  // exact band frequencies: enumerable domain

  std::printf("== generating synthetic LOFAR sample ==\n");
  auto pipeline = RunLofarPipeline(cfg, &catalog, &session, "measurements");
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu measurements from %zu sources (%s raw)\n",
              cfg.num_rows, cfg.num_sources,
              HumanBytes(pipeline->raw_bytes).c_str());

  std::printf("\n== captured model ==\n");
  auto captured = models.Get(pipeline->model_id);
  if (!captured.ok()) return 1;
  std::printf("%s\n", (*captured)->Summary().c_str());
  std::printf("parameter table (%s, %.1f%% of raw):\n",
              HumanBytes(pipeline->parameter_bytes).c_str(),
              100.0 * pipeline->parameter_ratio);
  std::printf("%s\n", (*captured)->parameter_table.ToString(5).c_str());

  // The paper's two example queries, answered solely from the model.
  DomainRegistry domains;
  domains.Register("measurements", "wavelength",
                   ColumnDomain::Explicit(cfg.bands));
  ModelQueryEngine aqp(&catalog, &models, &domains);

  std::printf("== approximate queries (zero IO) ==\n");
  const char* q1 =
      "SELECT intensity FROM measurements WHERE source = 42 AND wavelength "
      "= 0.15";
  auto a1 = aqp.Execute(q1);
  if (a1.ok() && a1->table.num_rows() == 1) {
    std::printf("Q1 %s\n  -> %.5f Jy (+/- %.5f), %zu raw rows read\n", q1,
                a1->table.GetValue(0, 0).dbl(), a1->max_error_bound,
                a1->raw_rows_accessed);
  } else {
    std::printf("Q1 failed: %s\n", a1.ok() ? "empty" : a1.status().ToString().c_str());
  }

  const char* q2 =
      "SELECT COUNT(*) FROM measurements WHERE wavelength = 0.15 AND "
      "intensity > 3.0";
  auto a2 = aqp.Execute(q2);
  auto e2 = ExecuteQuery(catalog, q2);
  if (a2.ok() && e2.ok()) {
    std::printf(
        "Q2 %s\n  -> approx %lld sources vs exact %lld rows "
        "(grid answers one tuple per source)\n",
        q2, static_cast<long long>(a2->table.GetValue(0, 0).int64()),
        static_cast<long long>(e2->GetValue(0, 0).int64()));
  }

  std::printf("\n== anomalous sources by goodness of fit ==\n");
  AnomalyOptions opts;
  opts.r_squared_threshold = 0.5;
  opts.rse_factor = 1e18;  // brightness is heteroscedastic; screen on R2
  auto anomalies = ScoreGroups(**captured, opts);
  if (!anomalies.ok()) return 1;
  size_t planted = 0;
  for (const auto& t : pipeline->dataset.truth) planted += t.anomalous;
  std::printf("flagged %zu of %zu sources (%zu planted anomalies)\n",
              anomalies->flagged, cfg.num_sources, planted);
  std::printf("top 5 most interesting sources:\n");
  std::printf("  %8s %12s %10s\n", "source", "residual_se", "r_squared");
  for (size_t i = 0; i < 5 && i < anomalies->ranked.size(); ++i) {
    const auto& s = anomalies->ranked[i];
    std::printf("  %8lld %12.5f %10.4f\n",
                static_cast<long long>(s.group_key), s.residual_se,
                s.r_squared);
  }
  return 0;
}

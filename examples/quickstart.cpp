// Quickstart: the complete LawsDB loop in ~80 lines.
//
//   1. create a table and load data,
//   2. fit a model through the capture session (the fit is intercepted and
//      stored in the model catalog),
//   3. answer a query approximately from the captured model — zero IO,
//   4. compare against the exact answer.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <cstdio>
#include <memory>

#include "aqp/domain.h"
#include "aqp/model_aqp.h"
#include "common/random.h"
#include "core/session.h"
#include "query/executor.h"
#include "storage/catalog.h"

int main() {
  using namespace laws;

  // 1. A tiny measurement table: readings of y = 2 + 0.5*x with noise,
  //    where x takes integer values 0..99.
  Catalog catalog;
  auto table = std::make_shared<Table>(
      Schema({Field{"x", DataType::kInt64, false},
              Field{"y", DataType::kDouble, false}}));
  Rng rng(7);
  for (int64_t x = 0; x < 100; ++x) {
    for (int rep = 0; rep < 5; ++rep) {
      const double y = 2.0 + 0.5 * static_cast<double>(x) +
                       rng.Normal(0.0, 0.2);
      if (auto s = table->AppendRow({Value::Int64(x), Value::Double(y)});
          !s.ok()) {
        std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  catalog.RegisterOrReplace("readings", table);
  std::printf("loaded %zu rows into 'readings'\n", table->num_rows());

  // 2. Fit y ~ linear(x) through the session. The fit runs inside the
  //    engine and the model is captured as a side effect (paper Figure 2).
  ModelCatalog models;
  Session session(&catalog, &models);
  FitRequest fit;
  fit.table = "readings";
  fit.model_source = "linear(1)";
  fit.input_columns = {"x"};
  fit.output_column = "y";
  auto report = session.Fit(fit);
  if (!report.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("fitted %s: y = %.3f + %.3f*x   (R2=%.4f, RSE=%.4f)\n",
              fit.model_source.c_str(), report->parameters[0],
              report->parameters[1], report->quality.r_squared,
              report->quality.residual_standard_error);

  // 3. Answer a query from the model alone. x is enumerable (0..99), so
  //    the engine can reconstruct tuples without touching the raw data.
  DomainRegistry domains;
  domains.Register("readings", "x", ColumnDomain::IntegerRange(0, 99, 1));
  ModelQueryEngine aqp(&catalog, &models, &domains);
  const std::string query =
      "SELECT AVG(y) FROM readings WHERE x >= 20 AND x <= 40";
  auto approx = aqp.Execute(query);
  if (!approx.ok()) {
    std::fprintf(stderr, "aqp failed: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }

  // 4. Exact answer for comparison.
  auto exact = ExecuteQuery(catalog, query);
  if (!exact.ok()) {
    std::fprintf(stderr, "exact failed: %s\n",
                 exact.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query.c_str());
  std::printf("  approximate: %.4f  (+/- %.4f, %zu raw rows read)\n",
              approx->table.GetValue(0, 0).dbl(), approx->error_bound,
              approx->raw_rows_accessed);
  std::printf("  exact:       %.4f  (%zu raw rows scanned)\n",
              exact->GetValue(0, 0).dbl(), table->num_rows());
  return 0;
}

// Retail AQP comparison — the paper's §6 proposal in miniature: benchmark-
// style generated data carries strong regularities, so captured models can
// answer the benchmark's aggregate queries approximately. This example
// pits the captured seasonal model against the two classic AQP baselines
// the paper cites (uniform sampling, histogram synopses) and the exact
// engine, reporting answer error and auxiliary-structure size.

#include <cmath>
#include <cstdio>
#include <memory>

#include "aqp/domain.h"
#include "aqp/histogram_aqp.h"
#include "aqp/model_aqp.h"
#include "aqp/sampling_aqp.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/session.h"
#include "query/executor.h"
#include "query/parser.h"
#include "workload/retail.h"

int main() {
  using namespace laws;

  RetailConfig cfg;
  cfg.num_skus = 500;
  cfg.num_days = 365;
  auto retail = GenerateRetail(cfg);
  if (!retail.ok()) return 1;

  Catalog catalog;
  auto table = std::make_shared<Table>(std::move(retail->sales));
  catalog.RegisterOrReplace("sales", table);
  std::printf("sales: %zu rows (%s)\n", table->num_rows(),
              HumanBytes(table->MemoryBytes()).c_str());

  // Capture the per-SKU weekly seasonal model.
  ModelCatalog models;
  Session session(&catalog, &models);
  FitRequest fit;
  fit.table = "sales";
  fit.model_source = "seasonal(7)";
  fit.input_columns = {"day"};
  fit.output_column = "units";
  fit.group_column = "sku";
  auto report = session.Fit(fit);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  auto captured = models.Get(report->model_id);
  std::printf("captured: %s\n", (*captured)->Summary().c_str());

  // Set up the three approximate engines.
  DomainRegistry domains;
  domains.Register(
      "sales", "day",
      ColumnDomain::IntegerRange(0, static_cast<int64_t>(cfg.num_days) - 1,
                                 1));
  ModelQueryEngine model_engine(&catalog, &models, &domains);
  // Even 5% uniform samples struggle with selective predicates (one SKU x
  // one quarter keeps ~5 sample rows) — the weakness stratified-sampling
  // systems like BlinkDB exist to patch.
  SamplingEngine sampler(*table, 0.05);
  auto hist = HistogramEngine::Build(*table, 64);
  if (!hist.ok()) return 1;

  std::printf("\nauxiliary structure sizes:\n");
  std::printf("  model parameters: %s\n",
              HumanBytes((*captured)->StorageBytes()).c_str());
  std::printf("  5%% sample:        %s\n",
              HumanBytes(sampler.SampleBytes()).c_str());
  std::printf("  histograms:       %s\n", HumanBytes(hist->SizeBytes()).c_str());

  // The benchmark query: total units for one SKU over a quarter.
  const std::string q =
      "SELECT SUM(units) FROM sales WHERE sku = 101 AND day >= 90 AND day "
      "<= 180";
  auto exact = ExecuteQuery(catalog, q);
  if (!exact.ok()) return 1;
  const double truth = exact->GetValue(0, 0).dbl();

  auto model_ans = model_engine.Execute(q);
  auto pred = ParseExpression("sku = 101 AND day >= 90 AND day <= 180");
  auto sample_ans =
      sampler.EstimateAggregate(AggregateFunc::kSum, "units", pred->get());

  std::printf("\n%s\n", q.c_str());
  std::printf("  %-12s %14s %12s\n", "method", "answer", "error");
  std::printf("  %-12s %14.1f %12s\n", "exact", truth, "-");
  if (model_ans.ok()) {
    std::printf("  %-12s %14.1f %11.2f%%\n", "model",
                model_ans->table.GetValue(0, 0).dbl(),
                100.0 *
                    std::fabs(model_ans->table.GetValue(0, 0).dbl() - truth) /
                    truth);
  }
  if (sample_ans.ok()) {
    std::printf("  %-12s %14.1f %11.2f%%   (CI +/- %.1f)\n", "sample",
                sample_ans->value,
                100.0 * std::fabs(sample_ans->value - truth) / truth,
                sample_ans->ci_half_width);
  }
  // Histograms cannot answer a cross-column restriction (sku AND day) —
  // exactly the limitation the paper holds against generic synopses.
  auto hist_ans =
      hist->EstimateRange(AggregateFunc::kSum, "units", "day", 90, 180);
  std::printf("  %-12s %14s   (%s)\n", "histogram", "n/a",
              hist_ans.ok() ? "ignores the sku predicate"
                            : hist_ans.status().ToString().c_str());
  return 0;
}

// Semantic compression walkthrough — the paper's §4.1 opportunity: use the
// captured user model as the compression model. Stores the modeled column
// as residuals against per-group predictions (lossless XOR bit-deltas, or
// bounded-error quantized residuals), and compares against the generic
// columnar encoders and DEFLATE.

#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "compress/column_compressor.h"
#include "compress/semantic.h"
#include "lofar/generator.h"
#include "model/grouped_fit.h"
#include "model/model.h"

int main() {
  using namespace laws;

  LofarConfig cfg;
  cfg.num_sources = 2000;
  cfg.num_rows = 80'000;
  auto data = GenerateLofar(cfg);
  if (!data.ok()) return 1;
  const Table& table = data->observations;
  std::printf("observations: %zu rows, %s raw\n", table.num_rows(),
              HumanBytes(table.MemoryBytes()).c_str());

  // Fit the per-source power law (the model a user would supply).
  PowerLawModel model;
  GroupedFitSpec spec;
  spec.group_column = "source";
  spec.input_columns = {"wavelength"};
  spec.output_column = "intensity";
  auto fits = FitGrouped(model, table, spec);
  if (!fits.ok()) return 1;
  std::printf("fitted %zu per-source models\n", fits->groups.size());

  // Generic (model-free) compression of the whole table.
  auto generic = CompressTable(table);
  if (!generic.ok()) return 1;

  // Semantic compression: lossless and two lossy grades.
  auto lossless = SemanticCompress(table, model, *fits, spec);
  SemanticCompressionOptions lossy1;
  lossy1.lossless = false;
  lossy1.quantization_step = 1e-4;
  auto q4 = SemanticCompress(table, model, *fits, spec, lossy1);
  SemanticCompressionOptions lossy2;
  lossy2.lossless = false;
  lossy2.quantization_step = 1e-2;
  auto q2 = SemanticCompress(table, model, *fits, spec, lossy2);
  if (!lossless.ok() || !q4.ok() || !q2.ok()) return 1;

  std::printf("\n%-28s %12s %8s %s\n", "method", "bytes", "ratio",
              "max abs error");
  std::printf("%-28s %12zu %7.1f%% %s\n", "raw columnar",
              table.MemoryBytes(), 100.0, "0 (exact)");
  std::printf("%-28s %12zu %7.1f%% %s\n", "generic (best-of encoders)",
              generic->TotalCompressedBytes(),
              100.0 * generic->CompressionRatio(), "0 (exact)");
  std::printf("%-28s %12zu %7.1f%% %s\n", "semantic lossless",
              lossless->TotalCompressedBytes(),
              100.0 * lossless->CompressionRatio(), "0 (exact)");
  std::printf("%-28s %12zu %7.1f%% <= %.0e\n", "semantic lossy (q=1e-4)",
              q4->TotalCompressedBytes(), 100.0 * q4->CompressionRatio(),
              lossy1.quantization_step / 2);
  std::printf("%-28s %12zu %7.1f%% <= %.0e\n", "semantic lossy (q=1e-2)",
              q2->TotalCompressedBytes(), 100.0 * q2->CompressionRatio(),
              lossy2.quantization_step / 2);

  // Verify the lossless round trip really is bit-exact.
  auto back = SemanticDecompress(*lossless);
  if (!back.ok()) return 1;
  const Column& y0 = *table.ColumnByName("intensity").value();
  const Column& y1 = *back->ColumnByName("intensity").value();
  for (size_t i = 0; i < y0.size(); ++i) {
    if (y1.DoubleAt(i) != y0.DoubleAt(i)) {
      std::fprintf(stderr, "round trip mismatch at row %zu\n", i);
      return 1;
    }
  }
  std::printf("\nlossless round trip verified bit-exact over %zu rows\n",
              y0.size());
  return 0;
}

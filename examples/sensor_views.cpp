// Sensor model views — the MauveDB/FunctionDB-flavoured flow over
// harvested models (paper §5): piecewise-linear drift models fitted per
// sensor, materialized as a queryable grid view, plus inverse prediction
// ("when does sensor 3 cross 21 degrees?") answered from the captured
// model alone.

#include <cstdio>
#include <memory>

#include "aqp/domain.h"
#include "aqp/inverse.h"
#include "aqp/model_aqp.h"
#include "core/session.h"
#include "model/model.h"
#include "query/executor.h"
#include "workload/sensor.h"

int main() {
  using namespace laws;

  SensorConfig cfg;
  cfg.num_sensors = 20;
  cfg.num_ticks = 1000;
  cfg.slope_sd = 0.01;
  auto sensors = GenerateSensor(cfg);
  if (!sensors.ok()) return 1;

  Catalog catalog;
  ModelCatalog models;
  Session session(&catalog, &models);
  catalog.RegisterOrReplace(
      "readings", std::make_shared<Table>(std::move(sensors->readings)));
  std::printf("readings: %zu rows from %zu sensors, regime changes at "
              "ticks {%.0f, %.0f}\n",
              cfg.num_sensors * cfg.num_ticks, cfg.num_sensors,
              sensors->tick_breakpoints[0], sensors->tick_breakpoints[1]);

  // Fit a piecewise-linear model per sensor, breakpoints known from the
  // deployment (regime changes at maintenance windows).
  char source[128];
  std::snprintf(source, sizeof(source), "piecewise_poly(1;%.17g,%.17g)",
                sensors->tick_breakpoints[0], sensors->tick_breakpoints[1]);
  FitRequest fit;
  fit.table = "readings";
  fit.model_source = source;
  fit.input_columns = {"tick"};
  fit.output_column = "temperature";
  fit.group_column = "sensor";
  auto report = session.Fit(fit);
  if (!report.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("fitted %zu per-sensor piecewise models, median R2 = %.4f\n\n",
              report->num_groups, report->median_r_squared);

  // MauveDB-style: materialize the model grid as a regular table and
  // query it with plain SQL.
  DomainRegistry domains;
  domains.Register("readings", "tick",
                   ColumnDomain::IntegerRange(
                       0, static_cast<int64_t>(cfg.num_ticks) - 1, 1));
  ModelQueryEngine engine(&catalog, &models, &domains);
  auto tuples = engine.MaterializeView(report->model_id, "readings_view",
                                       &catalog);
  if (!tuples.ok()) return 1;
  std::printf("materialized model view 'readings_view' with %zu tuples\n",
              *tuples);
  auto sql = ExecuteQuery(
      catalog,
      "SELECT sensor, AVG(temperature) AS smoothed FROM readings_view "
      "WHERE tick >= 900 GROUP BY sensor ORDER BY smoothed DESC LIMIT 3");
  if (!sql.ok()) {
    std::fprintf(stderr, "%s\n", sql.status().ToString().c_str());
    return 1;
  }
  std::printf("hottest sensors (model-smoothed, last 100 ticks):\n%s\n",
              sql->ToString(3).c_str());

  // Inverse prediction over the captured model: which (sensor, tick)
  // regions sit in the 20.5..21.5 degree band?
  auto captured = models.Get(report->model_id);
  if (!captured.ok()) return 1;
  auto domain = *domains.Get("readings", "tick");
  auto regions = InversePredict(**captured, *domain, 20.5, 21.5);
  if (!regions.ok()) {
    std::fprintf(stderr, "%s\n", regions.status().ToString().c_str());
    return 1;
  }
  std::printf("inverse prediction: %zu (sensor, tick-interval) regions "
              "predicted in [20.5, 21.5] degrees; first 5:\n",
              regions->size());
  for (size_t i = 0; i < 5 && i < regions->size(); ++i) {
    const auto& r = (*regions)[i];
    std::printf("  sensor %lld: ticks [%.0f, %.0f] (%zu points)\n",
                static_cast<long long>(r.group_key), r.input_lo, r.input_hi,
                r.points);
  }
  return 0;
}

#include "anomaly/anomaly.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/session.h"
#include "model/model.h"

namespace laws {

Result<GroupAnomalyReport> ScoreGroups(const CapturedModel& model,
                                       const AnomalyOptions& options) {
  if (!model.grouped) {
    return Status::InvalidArgument("group screening needs a grouped model");
  }
  const Table& pt = model.parameter_table;
  LAWS_ASSIGN_OR_RETURN(size_t rse_idx, pt.schema().FieldIndex("residual_se"));
  LAWS_ASSIGN_OR_RETURN(size_t r2_idx, pt.schema().FieldIndex("r_squared"));

  std::vector<double> rses, r2s;
  rses.reserve(pt.num_rows());
  for (size_t r = 0; r < pt.num_rows(); ++r) {
    rses.push_back(pt.column(rse_idx).DoubleAt(r));
    r2s.push_back(pt.column(r2_idx).DoubleAt(r));
  }
  GroupAnomalyReport report;
  report.median_residual_se = MedianOf(rses);
  report.median_r_squared = MedianOf(r2s);
  const double rse_cut =
      options.rse_factor * std::max(report.median_residual_se, 1e-300);

  report.ranked.reserve(pt.num_rows());
  for (size_t r = 0; r < pt.num_rows(); ++r) {
    GroupAnomalyScore s;
    s.group_key = pt.column(0).Int64At(r);
    s.residual_se = rses[r];
    s.r_squared = r2s[r];
    const double rse_ratio =
        rses[r] / std::max(report.median_residual_se, 1e-300);
    const double r2_penalty = std::max(0.0, 1.0 - std::max(r2s[r], 0.0));
    s.score = rse_ratio + r2_penalty;
    s.flagged =
        r2s[r] < options.r_squared_threshold || rses[r] > rse_cut;
    if (s.flagged) ++report.flagged;
    report.ranked.push_back(s);
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const GroupAnomalyScore& a, const GroupAnomalyScore& b) {
              return a.score > b.score;
            });
  return report;
}

Result<std::vector<TupleOutlier>> DetectOutlierTuples(
    const Table& table, const CapturedModel& model, double z_threshold) {
  if (!model.grouped) {
    return Status::InvalidArgument("tuple screening needs a grouped model");
  }
  LAWS_ASSIGN_OR_RETURN(ModelPtr fn, ModelFromSource(model.model_source));
  const Table& pt = model.parameter_table;
  const size_t p = fn->num_parameters();
  LAWS_ASSIGN_OR_RETURN(size_t rse_idx, pt.schema().FieldIndex("residual_se"));

  struct GroupInfo {
    Vector params;
    double rse;
  };
  std::unordered_map<int64_t, GroupInfo> lookup;
  lookup.reserve(pt.num_rows());
  for (size_t r = 0; r < pt.num_rows(); ++r) {
    GroupInfo info;
    info.params.resize(p);
    for (size_t j = 0; j < p; ++j) info.params[j] = pt.column(j + 1).DoubleAt(r);
    info.rse = pt.column(rse_idx).DoubleAt(r);
    lookup.emplace(pt.column(0).Int64At(r), std::move(info));
  }

  LAWS_ASSIGN_OR_RETURN(const Column* group,
                        table.ColumnByName(model.group_column));
  std::vector<const Column*> inputs;
  for (const auto& name : model.input_columns) {
    LAWS_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    inputs.push_back(c);
  }
  LAWS_ASSIGN_OR_RETURN(const Column* output,
                        table.ColumnByName(model.output_column));

  std::vector<TupleOutlier> outliers;
  Vector x(inputs.size());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (group->IsNull(i) || output->IsNull(i)) continue;
    const auto it = lookup.find(group->Int64At(i));
    if (it == lookup.end()) continue;
    bool ok = true;
    for (size_t c = 0; c < inputs.size(); ++c) {
      if (inputs[c]->IsNull(i)) {
        ok = false;
        break;
      }
      auto v = inputs[c]->NumericAt(i);
      if (!v.ok()) return v.status();
      x[c] = *v;
    }
    if (!ok) continue;
    const double predicted = fn->Evaluate(x, it->second.params);
    LAWS_ASSIGN_OR_RETURN(double observed, output->NumericAt(i));
    const double denom = std::max(it->second.rse, 1e-300);
    const double z = (observed - predicted) / denom;
    if (std::fabs(z) >= z_threshold) {
      outliers.push_back(TupleOutlier{i, it->first, observed, predicted, z});
    }
  }
  std::sort(outliers.begin(), outliers.end(),
            [](const TupleOutlier& a, const TupleOutlier& b) {
              return std::fabs(a.z_score) > std::fabs(b.z_score);
            });
  return outliers;
}

}  // namespace laws

#ifndef LAWSDB_ANOMALY_ANOMALY_H_
#define LAWSDB_ANOMALY_ANOMALY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/model_catalog.h"
#include "storage/table.h"

namespace laws {

/// Fit-quality score for one group of a grouped captured model. The
/// paper's "Data anomalies" opportunity (§4.2): observations that do not
/// fit the model "stand out in the fitting process by showing large
/// residual errors" — for LOFAR, the sources whose intensity is unrelated
/// to frequency.
struct GroupAnomalyScore {
  int64_t group_key = 0;
  double residual_se = 0.0;
  double r_squared = 0.0;
  /// Composite interestingness: residual SE relative to the median, plus a
  /// penalty for low R². Higher = more anomalous.
  double score = 0.0;
  bool flagged = false;
};

/// Screening result over all groups, ranked most-anomalous first.
struct GroupAnomalyReport {
  std::vector<GroupAnomalyScore> ranked;
  size_t flagged = 0;
  double median_residual_se = 0.0;
  double median_r_squared = 0.0;
};

/// Options for group screening.
struct AnomalyOptions {
  /// Flag groups with R² below this (scale-free; robust when the output
  /// magnitude varies across groups)...
  double r_squared_threshold = 0.5;
  /// ...or residual SE above `rse_factor` x median RSE. Note this is an
  /// *absolute* criterion: on heteroscedastic data (e.g. source brightness
  /// spanning decades) it flags bright-but-well-fitted groups; raise it or
  /// rely on the R² screen there.
  double rse_factor = 3.0;
};

/// Screens the per-group fits of a grouped captured model. Zero IO: only
/// the parameter table is consulted.
Result<GroupAnomalyReport> ScoreGroups(const CapturedModel& model,
                                       const AnomalyOptions& options = {});

/// A single observation whose residual is extreme under the captured
/// model.
struct TupleOutlier {
  size_t row = 0;
  int64_t group_key = 0;
  double observed = 0.0;
  double predicted = 0.0;
  /// Residual standardized by the group's residual SE.
  double z_score = 0.0;
};

/// Finds observations with |standardized residual| >= z_threshold. This
/// pass reads the raw table (it is a data-quality sweep, not a query).
Result<std::vector<TupleOutlier>> DetectOutlierTuples(
    const Table& table, const CapturedModel& model, double z_threshold = 4.0);

}  // namespace laws

#endif  // LAWSDB_ANOMALY_ANOMALY_H_

#include "anomaly/exploration.h"

#include <algorithm>
#include <cmath>

#include "model/model.h"

namespace laws {

Result<std::vector<GradientPoint>> FindHighGradientRegions(
    const CapturedModel& model, const ColumnDomain& domain, size_t top_k) {
  LAWS_ASSIGN_OR_RETURN(ModelPtr fn, ModelFromSource(model.model_source));
  if (fn->num_inputs() != 1) {
    return Status::InvalidArgument(
        "gradient sweep implemented for single-input models");
  }

  struct GroupParams {
    int64_t key;
    Vector params;
  };
  std::vector<GroupParams> groups;
  if (model.grouped) {
    const Table& pt = model.parameter_table;
    const size_t p = fn->num_parameters();
    groups.reserve(pt.num_rows());
    for (size_t r = 0; r < pt.num_rows(); ++r) {
      GroupParams g;
      g.key = pt.column(0).Int64At(r);
      g.params.resize(p);
      for (size_t j = 0; j < p; ++j) g.params[j] = pt.column(j + 1).DoubleAt(r);
      groups.push_back(std::move(g));
    }
  } else {
    groups.push_back(GroupParams{0, model.parameters});
  }

  std::vector<GradientPoint> points;
  Vector x(1), grad;
  const size_t n = domain.Cardinality();
  for (const GroupParams& g : groups) {
    for (size_t i = 0; i < n; ++i) {
      x[0] = domain.ValueAt(i);
      fn->InputGradient(x, g.params, &grad);
      if (!std::isfinite(grad[0])) continue;
      points.push_back(GradientPoint{g.key, x[0], grad[0]});
    }
  }
  const size_t keep = std::min(top_k, points.size());
  std::partial_sort(points.begin(), points.begin() + keep, points.end(),
                    [](const GradientPoint& a, const GradientPoint& b) {
                      return std::fabs(a.gradient) > std::fabs(b.gradient);
                    });
  points.resize(keep);
  return points;
}

}  // namespace laws

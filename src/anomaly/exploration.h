#ifndef LAWSDB_ANOMALY_EXPLORATION_H_
#define LAWSDB_ANOMALY_EXPLORATION_H_

#include <cstdint>
#include <vector>

#include "aqp/domain.h"
#include "common/result.h"
#include "core/model_catalog.h"

namespace laws {

/// A point of the model surface with a steep first derivative — the
/// paper's "Model exploration" opportunity (§4.2): "find interesting
/// subsets of the data by analyzing the first derivative of the model
/// function for regions in the parameter space with high gradients".
struct GradientPoint {
  int64_t group_key = 0;
  double input = 0.0;
  double gradient = 0.0;  // df/dx at (group, input)
};

/// Sweeps the model's single input over `domain` for every group (or once
/// for ungrouped models) and returns the `top_k` points with the largest
/// |df/dx|. Zero IO: evaluates the stored models only.
Result<std::vector<GradientPoint>> FindHighGradientRegions(
    const CapturedModel& model, const ColumnDomain& domain, size_t top_k);

}  // namespace laws

#endif  // LAWSDB_ANOMALY_EXPLORATION_H_

#include "aqp/analytic.h"

#include <algorithm>
#include <cmath>

namespace laws {

Result<AnalyticAggregate> AnalyticLinearAggregate(const CapturedModel& model,
                                                  AggregateFunc agg,
                                                  const ColumnDomain& domain,
                                                  double lo, double hi) {
  if (model.grouped) {
    return Status::InvalidArgument(
        "analytic aggregates require an ungrouped model");
  }
  if (model.model_source != "linear(1)") {
    return Status::InvalidArgument(
        "analytic aggregates implemented for linear(1) models; got " +
        model.model_source);
  }
  if (model.parameters.size() != 2) {
    return Status::Internal("linear(1) model with wrong parameter count");
  }
  const double a = model.parameters[0];  // intercept
  const double b = model.parameters[1];  // slope
  const double rse = model.quality.residual_standard_error;

  double x_first = 0.0, x_last = 0.0, x_sum = 0.0;
  size_t n = 0;

  if (domain.kind == ColumnDomain::Kind::kIntegerRange) {
    // Clamp [lo, hi] to the progression in O(1).
    const double dstart = static_cast<double>(domain.start);
    const double dstep = static_cast<double>(domain.step);
    double first = dstart;
    if (lo > first) {
      const double k = std::ceil((lo - dstart) / dstep);
      first = dstart + k * dstep;
    }
    double last = static_cast<double>(domain.stop);
    if (hi < last) {
      const double k = std::floor((hi - dstart) / dstep);
      last = dstart + k * dstep;
    }
    if (first > last) {
      AnalyticAggregate out;
      out.n = 0;
      out.value = agg == AggregateFunc::kCount ? 0.0 : 0.0;
      return out;
    }
    n = static_cast<size_t>((last - first) / dstep) + 1;
    x_first = first;
    x_last = last;
    // Arithmetic series sum.
    x_sum = static_cast<double>(n) * (x_first + x_last) / 2.0;
  } else {
    for (size_t i : domain.IndicesInRange(lo, hi)) {
      const double x = domain.ValueAt(i);
      if (n == 0) x_first = x;
      x_last = x;
      x_sum += x;
      ++n;
    }
    if (n == 0) {
      AnalyticAggregate out;
      out.n = 0;
      return out;
    }
  }

  const double y_first = a + b * x_first;
  const double y_last = a + b * x_last;
  const double nd = static_cast<double>(n);

  AnalyticAggregate out;
  out.n = n;
  switch (agg) {
    case AggregateFunc::kCount:
      out.value = nd;
      out.error_bound = 0.0;
      return out;
    case AggregateFunc::kSum:
      out.value = nd * a + b * x_sum;
      out.error_bound = rse * std::sqrt(nd);
      return out;
    case AggregateFunc::kAvg:
      out.value = a + b * (x_sum / nd);
      out.error_bound = rse / std::sqrt(nd);
      return out;
    case AggregateFunc::kMin:
      // A univariate affine function is monotone: extrema at endpoints.
      out.value = std::min(y_first, y_last);
      out.error_bound = rse;
      return out;
    case AggregateFunc::kMax:
      out.value = std::max(y_first, y_last);
      out.error_bound = rse;
      return out;
    case AggregateFunc::kVariance:
    case AggregateFunc::kStddev:
      return Status::Unimplemented(
          "analytic VARIANCE/STDDEV not implemented (model predictions "
          "carry no within-point spread)");
  }
  return Status::Internal("unknown aggregate");
}

}  // namespace laws

#ifndef LAWSDB_AQP_ANALYTIC_H_
#define LAWSDB_AQP_ANALYTIC_H_

#include "aqp/domain.h"
#include "common/result.h"
#include "core/model_catalog.h"
#include "query/ast.h"

namespace laws {

/// A closed-form aggregate answer for a linear model (paper §4.2 "Analytic
/// solutions for linear models": "given a well-fitting linear model we can
/// calculate the minimum and maximum value for a column").
struct AnalyticAggregate {
  double value = 0.0;
  /// Error bound derived from the model's residual SE: RSE for MIN/MAX,
  /// RSE/sqrt(n) for AVG, RSE*sqrt(n) for SUM, 0 for COUNT.
  double error_bound = 0.0;
  /// Number of domain points covered.
  size_t n = 0;
};

/// Evaluates agg(output) over the model's single input ranging across the
/// domain restricted to [lo, hi], without enumerating values: COUNT and the
/// moments of an arithmetic progression have closed forms, and a univariate
/// linear model is monotone so MIN/MAX sit at the interval endpoints.
///
/// Requirements: ungrouped captured model, linear(1) structure, integer-
/// range domain (explicit domains fall back to an O(|domain|) loop over
/// the stored values — still zero IO).
Result<AnalyticAggregate> AnalyticLinearAggregate(const CapturedModel& model,
                                                  AggregateFunc agg,
                                                  const ColumnDomain& domain,
                                                  double lo, double hi);

}  // namespace laws

#endif  // LAWSDB_AQP_ANALYTIC_H_

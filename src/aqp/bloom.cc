#include "aqp/bloom.h"

#include <cmath>
#include <cstring>

namespace laws {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_items, double target_fpr) {
  expected_items = std::max<size_t>(expected_items, 1);
  target_fpr = std::min(std::max(target_fpr, 1e-9), 0.5);
  // Optimal sizing: m = -n ln(p) / (ln 2)^2, k = m/n ln 2.
  const double ln2 = std::log(2.0);
  const double m_bits = -static_cast<double>(expected_items) *
                        std::log(target_fpr) / (ln2 * ln2);
  const size_t bytes = static_cast<size_t>(std::ceil(m_bits / 8.0));
  bits_.assign(std::max<size_t>(bytes, 8), 0);
  const double k =
      m_bits / static_cast<double>(expected_items) * ln2;
  num_hashes_ = std::max<size_t>(1, static_cast<size_t>(std::lround(k)));
}

void BloomFilter::Insert(uint64_t key) {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0x9E3779B97F4A7C15ULL) | 1;
  const uint64_t m = num_bits();
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % m;
    bits_[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ 0x9E3779B97F4A7C15ULL) | 1;
  const uint64_t m = num_bits();
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % m;
    if (!((bits_[bit >> 3] >> (bit & 7)) & 1)) return false;
  }
  return true;
}

uint64_t HashCombination(const std::vector<double>& values) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (double v : values) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = Mix64(h ^ bits);
  }
  return h;
}

Result<LegalCombinationFilter> LegalCombinationFilter::Build(
    const Table& table, const std::string& group_column,
    const std::vector<std::string>& input_columns, double target_fpr) {
  const bool has_group = !group_column.empty();
  const Column* group = nullptr;
  if (has_group) {
    LAWS_ASSIGN_OR_RETURN(group, table.ColumnByName(group_column));
  }
  std::vector<const Column*> inputs;
  for (const auto& name : input_columns) {
    LAWS_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    inputs.push_back(c);
  }

  BloomFilter bloom(table.num_rows(), target_fpr);
  size_t items = 0;
  std::vector<double> combo(inputs.size() + (has_group ? 1 : 0));
  for (size_t i = 0; i < table.num_rows(); ++i) {
    bool ok = true;
    size_t slot = 0;
    if (has_group) {
      if (group->IsNull(i)) continue;
      combo[slot++] = static_cast<double>(group->Int64At(i));
    }
    for (const Column* c : inputs) {
      if (c->IsNull(i)) {
        ok = false;
        break;
      }
      auto v = c->NumericAt(i);
      if (!v.ok()) return v.status();
      combo[slot++] = *v;
    }
    if (!ok) continue;
    bloom.Insert(HashCombination(combo));
    ++items;
  }
  return LegalCombinationFilter(std::move(bloom), has_group, items);
}

bool LegalCombinationFilter::MayContain(
    int64_t group, const std::vector<double>& inputs) const {
  std::vector<double> combo;
  combo.reserve(inputs.size() + 1);
  if (has_group_) combo.push_back(static_cast<double>(group));
  combo.insert(combo.end(), inputs.begin(), inputs.end());
  return bloom_.MayContain(HashCombination(combo));
}

}  // namespace laws

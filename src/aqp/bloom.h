#ifndef LAWSDB_AQP_BLOOM_H_
#define LAWSDB_AQP_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Standard Bloom filter with double hashing. Used to encode the *legal*
/// parameter combinations of a captured model (paper §4.2): point queries
/// for combinations that never occurred in the original data would
/// otherwise fabricate tuples and violate relational semantics.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at `target_fpr` false-positive
  /// rate.
  BloomFilter(size_t expected_items, double target_fpr);

  void Insert(uint64_t key);
  /// True if the key *may* have been inserted (false positives possible,
  /// false negatives impossible).
  bool MayContain(uint64_t key) const;

  size_t SizeBytes() const { return bits_.size(); }
  size_t num_hashes() const { return num_hashes_; }
  size_t num_bits() const { return bits_.size() * 8; }

 private:
  std::vector<uint8_t> bits_;
  size_t num_hashes_;
};

/// Hashes a combination of doubles into a Bloom key (order-sensitive).
uint64_t HashCombination(const std::vector<double>& values);

/// The legal-combination structure for one captured model: a Bloom filter
/// over (group, input...) tuples observed in the raw data. Built once at
/// capture time; thereafter membership checks need no data access.
class LegalCombinationFilter {
 public:
  /// Scans `table` and inserts every observed (group, inputs...) tuple.
  /// `group_column` may be empty (inputs only).
  static Result<LegalCombinationFilter> Build(
      const Table& table, const std::string& group_column,
      const std::vector<std::string>& input_columns,
      double target_fpr = 0.01);

  /// May the combination (group, inputs...) have occurred? `group` is
  /// ignored when the filter was built without a group column.
  bool MayContain(int64_t group, const std::vector<double>& inputs) const;

  size_t SizeBytes() const { return bloom_.SizeBytes(); }
  size_t items_inserted() const { return items_; }

 private:
  LegalCombinationFilter(BloomFilter bloom, bool has_group, size_t items)
      : bloom_(std::move(bloom)), has_group_(has_group), items_(items) {}

  BloomFilter bloom_;
  bool has_group_;
  size_t items_;
};

}  // namespace laws

#endif  // LAWSDB_AQP_BLOOM_H_

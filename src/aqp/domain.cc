#include "aqp/domain.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace laws {

ColumnDomain ColumnDomain::Explicit(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  ColumnDomain d;
  d.kind = Kind::kExplicitValues;
  d.values = std::move(values);
  return d;
}

ColumnDomain ColumnDomain::IntegerRange(int64_t start, int64_t stop,
                                        int64_t step) {
  ColumnDomain d;
  d.kind = Kind::kIntegerRange;
  d.start = start;
  d.stop = stop;
  d.step = step <= 0 ? 1 : step;
  return d;
}

size_t ColumnDomain::Cardinality() const {
  if (kind == Kind::kExplicitValues) return values.size();
  if (stop < start) return 0;
  return static_cast<size_t>((stop - start) / step) + 1;
}

double ColumnDomain::ValueAt(size_t i) const {
  if (kind == Kind::kExplicitValues) return values[i];
  return static_cast<double>(start + static_cast<int64_t>(i) * step);
}

bool ColumnDomain::Contains(double v) const {
  if (kind == Kind::kExplicitValues) {
    auto it = std::lower_bound(values.begin(), values.end(), v - 1e-9);
    return it != values.end() && std::fabs(*it - v) <= 1e-9;
  }
  const double r = std::round(v);
  if (r != v) return false;
  const auto iv = static_cast<int64_t>(r);
  if (iv < start || iv > stop) return false;
  return (iv - start) % step == 0;
}

std::vector<size_t> ColumnDomain::IndicesInRange(double lo, double hi) const {
  std::vector<size_t> out;
  const size_t n = Cardinality();
  if (kind == Kind::kExplicitValues) {
    for (size_t i = 0; i < n; ++i) {
      if (values[i] >= lo - 1e-12 && values[i] <= hi + 1e-12) {
        out.push_back(i);
      }
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    const double v = ValueAt(i);
    if (v >= lo && v <= hi) out.push_back(i);
  }
  return out;
}

void DomainRegistry::Register(const std::string& table,
                              const std::string& column, ColumnDomain domain) {
  domains_[{table, column}] = std::move(domain);
}

Result<const ColumnDomain*> DomainRegistry::Get(
    const std::string& table, const std::string& column) const {
  auto it = domains_.find({table, column});
  if (it == domains_.end()) {
    return Status::NotFound("no enumerable domain for " + table + "." +
                            column);
  }
  return &it->second;
}

bool DomainRegistry::Contains(const std::string& table,
                              const std::string& column) const {
  return domains_.count({table, column}) > 0;
}

Result<ColumnDomain> DomainRegistry::InferFromColumn(const Column& column,
                                                     size_t max_distinct) {
  if (column.type() == DataType::kString) {
    return Status::TypeMismatch("string columns are not enumerable as such");
  }
  std::set<double> distinct;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) continue;
    auto v = column.NumericAt(i);
    if (!v.ok()) return v.status();
    distinct.insert(*v);
    if (distinct.size() > max_distinct) {
      return Status::NotFound("column exceeds distinct-value cap (" +
                              std::to_string(max_distinct) + ")");
    }
  }
  if (distinct.empty()) {
    return Status::NotFound("column has no non-null values");
  }
  // INT64 columns whose values form a regular progression compress to a
  // range description.
  if (column.type() == DataType::kInt64 && distinct.size() >= 3) {
    std::vector<double> vals(distinct.begin(), distinct.end());
    const double step = vals[1] - vals[0];
    bool regular = step > 0;
    for (size_t i = 2; regular && i < vals.size(); ++i) {
      if (vals[i] - vals[i - 1] != step) regular = false;
    }
    if (regular) {
      return ColumnDomain::IntegerRange(static_cast<int64_t>(vals.front()),
                                        static_cast<int64_t>(vals.back()),
                                        static_cast<int64_t>(step));
    }
  }
  return ColumnDomain::Explicit(
      std::vector<double>(distinct.begin(), distinct.end()));
}

}  // namespace laws

#ifndef LAWSDB_AQP_DOMAIN_H_
#define LAWSDB_AQP_DOMAIN_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"

namespace laws {

/// An enumerable column domain (paper §4.2 "Parameter space enumeration"):
/// either an explicit small value set (categorical frequencies, the LOFAR
/// bands {0.12, 0.15, 0.16, 0.18}) or a regular integer progression
/// (continuous integer timestamps).
struct ColumnDomain {
  enum class Kind { kExplicitValues, kIntegerRange };

  Kind kind = Kind::kExplicitValues;

  /// kExplicitValues: the sorted distinct values.
  std::vector<double> values;

  /// kIntegerRange: start, stop (inclusive), step.
  int64_t start = 0;
  int64_t stop = -1;
  int64_t step = 1;

  static ColumnDomain Explicit(std::vector<double> values);
  static ColumnDomain IntegerRange(int64_t start, int64_t stop, int64_t step);

  size_t Cardinality() const;
  double ValueAt(size_t i) const;

  /// True if `v` is a member of the domain (within 1e-9 for explicit
  /// values).
  bool Contains(double v) const;

  /// Indices of domain members within [lo, hi] — used by range-predicate
  /// pushdown during enumeration.
  std::vector<size_t> IndicesInRange(double lo, double hi) const;
};

/// Registry of enumerable domains keyed by (table, column). Domains can be
/// registered explicitly (the user knows the telescope's bands) or inferred
/// by scanning a column at capture time.
class DomainRegistry {
 public:
  DomainRegistry() = default;

  void Register(const std::string& table, const std::string& column,
                ColumnDomain domain);

  Result<const ColumnDomain*> Get(const std::string& table,
                                  const std::string& column) const;

  bool Contains(const std::string& table, const std::string& column) const;

  /// Infers a domain from column contents: distinct values when there are
  /// at most `max_distinct`; for INT64 columns whose distinct values form a
  /// regular progression, an integer range. NotFound when the column is not
  /// enumerable under the cap.
  static Result<ColumnDomain> InferFromColumn(const Column& column,
                                              size_t max_distinct = 4096);

 private:
  std::map<std::pair<std::string, std::string>, ColumnDomain> domains_;
};

}  // namespace laws

#endif  // LAWSDB_AQP_DOMAIN_H_

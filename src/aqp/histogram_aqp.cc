#include "aqp/histogram_aqp.h"

#include "common/string_util.h"

namespace laws {

Result<HistogramEngine> HistogramEngine::Build(const Table& table,
                                               size_t buckets) {
  HistogramEngine engine;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Field& f = table.schema().field(c);
    if (f.type == DataType::kString || f.type == DataType::kBool) continue;
    auto values = table.column(c).ToDoubleVector();
    if (!values.ok()) return values.status();
    if (values->empty()) continue;
    LAWS_ASSIGN_OR_RETURN(Histogram h,
                          Histogram::BuildEquiDepth(std::move(*values),
                                                    buckets));
    engine.histograms_.emplace(ToLower(f.name), std::move(h));
  }
  return engine;
}

Result<double> HistogramEngine::EstimateRange(AggregateFunc agg,
                                              const std::string& agg_column,
                                              const std::string& filter_column,
                                              double lo, double hi) const {
  const Histogram* filter_hist = GetHistogram(filter_column);
  if (filter_hist == nullptr) {
    return Status::NotFound("no histogram for column " + filter_column);
  }
  const bool same = EqualsIgnoreCase(agg_column, filter_column);
  switch (agg) {
    case AggregateFunc::kCount:
      return filter_hist->EstimateRangeCount(lo, hi);
    case AggregateFunc::kSum:
      if (!same) {
        return Status::Unimplemented(
            "independent per-column histograms cannot estimate SUM of a "
            "different column");
      }
      return filter_hist->EstimateRangeSum(lo, hi);
    case AggregateFunc::kAvg:
      if (!same) {
        return Status::Unimplemented(
            "independent per-column histograms cannot estimate AVG of a "
            "different column");
      }
      return filter_hist->EstimateRangeAvg(lo, hi);
    case AggregateFunc::kMin:
    case AggregateFunc::kMax: {
      if (!same) {
        return Status::Unimplemented(
            "independent per-column histograms cannot estimate MIN/MAX of a "
            "different column");
      }
      // Clamp the query range to the populated buckets.
      const auto& bounds = filter_hist->boundaries();
      const auto& counts = filter_hist->counts();
      double best = 0.0;
      bool found = false;
      for (size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0) continue;
        const double blo = std::max(bounds[b], lo);
        const double bhi = std::min(bounds[b + 1], hi);
        if (blo > bhi) continue;
        const double candidate = agg == AggregateFunc::kMin ? blo : bhi;
        if (!found || (agg == AggregateFunc::kMin ? candidate < best
                                                  : candidate > best)) {
          best = candidate;
          found = true;
        }
      }
      if (!found) return Status::NotFound("range covers no populated bucket");
      return best;
    }
    case AggregateFunc::kVariance:
    case AggregateFunc::kStddev:
      return Status::Unimplemented(
          "histogram VARIANCE/STDDEV not implemented");
  }
  return Status::Internal("unknown aggregate");
}

size_t HistogramEngine::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& [name, h] : histograms_) bytes += h.SizeBytes();
  return bytes;
}

const Histogram* HistogramEngine::GetHistogram(
    const std::string& column) const {
  auto it = histograms_.find(ToLower(column));
  return it == histograms_.end() ? nullptr : &it->second;
}

}  // namespace laws

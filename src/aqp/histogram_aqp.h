#ifndef LAWSDB_AQP_HISTOGRAM_AQP_H_
#define LAWSDB_AQP_HISTOGRAM_AQP_H_

#include <map>
#include <string>

#include "common/result.h"
#include "query/ast.h"
#include "stats/histogram.h"
#include "storage/table.h"

namespace laws {

/// The synopsis-based AQP baseline (paper §1, refs [8, 9]): per-column
/// histograms built once, answering COUNT/SUM/AVG over single-column range
/// predicates with the standard uniform-within-bucket estimators.
class HistogramEngine {
 public:
  /// Builds equi-depth histograms with `buckets` buckets for every numeric
  /// column of `table`.
  static Result<HistogramEngine> Build(const Table& table, size_t buckets);

  /// Estimates agg(`agg_column`) over rows with `filter_column` in
  /// [lo, hi]. When agg_column == filter_column the estimate uses bucket
  /// contents directly; otherwise COUNT works but SUM/AVG of a different
  /// column are not derivable from independent per-column histograms and
  /// return Unimplemented (a real limitation of synopses the paper calls
  /// out against model-based answers).
  Result<double> EstimateRange(AggregateFunc agg,
                               const std::string& agg_column,
                               const std::string& filter_column, double lo,
                               double hi) const;

  /// Total synopsis footprint in bytes.
  size_t SizeBytes() const;

  const Histogram* GetHistogram(const std::string& column) const;

 private:
  std::map<std::string, Histogram> histograms_;  // lower-cased column name
};

}  // namespace laws

#endif  // LAWSDB_AQP_HISTOGRAM_AQP_H_

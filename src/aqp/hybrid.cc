#include "aqp/hybrid.h"

#include <cstdio>

#include "common/governor.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "query/compressed_scan.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/vector_eval.h"

namespace laws {
namespace {

bool ContainsCountStar(const Expr& expr) {
  if (expr.kind == ExprKind::kAggregate &&
      expr.aggregate_func == AggregateFunc::kCount &&
      expr.children[0]->kind == ExprKind::kStar) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsCountStar(*c)) return true;
  }
  return false;
}

/// COUNT(*) asks for raw tuple multiplicity, which a reconstructed grid
/// (one tuple per enumerated combination) cannot reproduce — the paper's
/// griding caveat. Such statements must take the exact path.
bool StatementNeedsRawMultiplicity(const SelectStatement& stmt) {
  for (const SelectItem& item : stmt.select_list) {
    if (!item.is_star && ContainsCountStar(*item.expr)) return true;
  }
  if (stmt.having != nullptr && ContainsCountStar(*stmt.having)) return true;
  for (const auto& k : stmt.order_by) {
    if (ContainsCountStar(*k.expr)) return true;
  }
  return false;
}

/// Figure 2 accounting (cached pointers; see metrics.h): how often the
/// engine answered from a model vs. fell back to the exact scan, and why.
struct HybridCounters {
  Counter* model_hit;
  Counter* exact_fallback;
  Counter* count_star_exact;
  Counter* low_quality_reject;
  Counter* no_model;
  Counter* degraded_to_aqp;
  MetricHistogram* interval_halfwidth;

  static HybridCounters& Get() {
    static HybridCounters c = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return HybridCounters{
          reg.GetCounter("aqp.hybrid.model_hit"),
          reg.GetCounter("aqp.hybrid.exact_fallback"),
          reg.GetCounter("aqp.hybrid.fallback.count_star"),
          reg.GetCounter("aqp.hybrid.fallback.low_quality"),
          reg.GetCounter("aqp.hybrid.fallback.no_model"),
          reg.GetCounter("governor.degraded_to_aqp"),
          reg.GetHistogram("aqp.hybrid.interval_halfwidth")};
    }();
    return c;
  }
};

}  // namespace

Result<HybridAnswer> HybridQueryEngine::Execute(const std::string& sql) const {
  HybridCounters& counters = HybridCounters::Get();
  ScopedSpan span("HybridDecision");
  HybridAnswer answer;

  LAWS_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  if (StatementNeedsRawMultiplicity(stmt)) {
    if (!options_.allow_exact_fallback) {
      return Status::InvalidArgument(
          "COUNT(*) needs raw multiplicity; the model grid cannot provide "
          "it and exact fallback is disabled");
    }
    counters.count_star_exact->Add();
    counters.exact_fallback->Add();
    answer.fallback_reason =
        "COUNT(*) multiplicity is not reproducible from the model grid";
    span.SetDetail("exact: " + answer.fallback_reason);
    ScopedSpan exact_span("ExactScan");
    LAWS_ASSIGN_OR_RETURN(answer.table, ExecuteSelect(*data_, stmt));
    answer.method = "exact";
    answer.approximate = false;
    return answer;
  }

  Result<ApproxAnswer> approx = [&] {
    ScopedSpan model_span("ModelPath");
    return model_engine_->ExecuteStatement(stmt);
  }();
  if (approx.ok()) {
    // Quality gate: only serve answers from models judged good enough.
    auto model = model_engine_->model_catalog()->Get(approx->model_id);
    const double quality =
        model.ok() ? (*model)->ArbitrationQuality() : 0.0;
    if (quality >= options_.min_quality) {
      counters.model_hit->Add();
      counters.interval_halfwidth->Record(approx->max_error_bound);
      answer.table = std::move(approx->table);
      answer.method = approx->method;
      answer.approximate = true;
      answer.error_bound = approx->max_error_bound;
      span.SetDetail(answer.method + ", model " +
                     std::to_string(approx->model_id) + ", quality " +
                     FormatDouble(quality, 4) + ", bound +/-" +
                     FormatDouble(answer.error_bound, 6));
      return answer;
    }
    counters.low_quality_reject->Add();
    answer.fallback_reason =
        "model quality " + FormatDouble(quality, 4) + " below threshold " +
        FormatDouble(options_.min_quality, 4);
  } else {
    // No covering model, stale model, or non-enumerable dimension — this
    // is also the path taken when a persisted model was quarantined by a
    // tolerant load (the model is simply absent from the catalog).
    counters.no_model->Add();
    answer.fallback_reason = approx.status().ToString();
  }

  if (!options_.allow_exact_fallback) {
    return Status::NotFound("model path unavailable (" +
                            answer.fallback_reason +
                            ") and exact fallback disabled");
  }
  counters.exact_fallback->Add();
  span.SetDetail("exact: " + answer.fallback_reason);
  ScopedSpan exact_span("ExactScan");
  Result<Table> exact = ExecuteSelect(*data_, stmt);
  if (!exact.ok()) {
    // Overload-graceful degradation: when the governor stopped the exact
    // scan on time or memory and a model answer exists (it was computed
    // above but rejected by the quality gate), serve it — an approximate
    // answer under overload beats no answer. Cancellation never
    // degrades: a canceled query returns its error, full stop. Other
    // errors propagate untouched.
    const StatusCode code = exact.status().code();
    const bool overload = code == StatusCode::kDeadlineExceeded ||
                          code == StatusCode::kResourceExhausted;
    if (overload && approx.ok()) {
      counters.degraded_to_aqp->Add();
      answer.table = std::move(approx->table);
      answer.method = approx->method;
      answer.approximate = true;
      answer.degraded = true;
      answer.error_bound = approx->max_error_bound;
      answer.fallback_reason = code == StatusCode::kDeadlineExceeded
                                   ? "deadline"
                                   : "memory budget";
      span.SetDetail("degraded to model answer: " +
                     exact.status().ToString());
      return answer;
    }
    return exact.status();
  }
  answer.table = std::move(*exact);
  answer.method = "exact";
  answer.approximate = false;
  return answer;
}

Result<std::string> HybridQueryEngine::ExplainAnalyze(
    const std::string& sql) const {
  TraceSink sink;
  Timer total;
  // Expression-tier accounting for this query (process-global counters,
  // so report the delta) — same line ExplainAnalyzeQuery prints.
  Counter* compiled = MetricsRegistry::Global().GetCounter("expr.compiled");
  Counter* fallback =
      MetricsRegistry::Global().GetCounter("expr.fallback_treewalk");
  Counter* batches = MetricsRegistry::Global().GetCounter("expr.batches");
  Counter* blocks = MetricsRegistry::Global().GetCounter("scan.blocks_total");
  Counter* pruned = MetricsRegistry::Global().GetCounter("scan.blocks_pruned");
  Counter* run_skips =
      MetricsRegistry::Global().GetCounter("scan.runs_skipped");
  Counter* enc_agg = MetricsRegistry::Global().GetCounter("scan.encoded_agg");
  const uint64_t compiled0 = compiled->value();
  const uint64_t fallback0 = fallback->value();
  const uint64_t batches0 = batches->value();
  const uint64_t blocks0 = blocks->value();
  const uint64_t pruned0 = pruned->value();
  const uint64_t run_skips0 = run_skips->value();
  const uint64_t enc_agg0 = enc_agg->value();
  LAWS_ASSIGN_OR_RETURN(HybridAnswer answer, Execute(sql));
  std::string out = sink.Render();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "expr: engine=%s compiled=%llu fallback_treewalk=%llu "
                "batches=%llu\n",
                GlobalExprEngine() == ExprEngine::kBytecode ? "bytecode"
                                                            : "treewalk",
                static_cast<unsigned long long>(compiled->value() - compiled0),
                static_cast<unsigned long long>(fallback->value() - fallback0),
                static_cast<unsigned long long>(batches->value() - batches0));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "scan: engine=%s blocks=%llu pruned=%llu runs_skipped=%llu "
      "encoded_agg=%llu\n",
      GlobalScanEngine() == ScanEngine::kCompressed ? "compressed" : "decode",
      static_cast<unsigned long long>(blocks->value() - blocks0),
      static_cast<unsigned long long>(pruned->value() - pruned0),
      static_cast<unsigned long long>(run_skips->value() - run_skips0),
      static_cast<unsigned long long>(enc_agg->value() - enc_agg0));
  out += buf;
  if (QueryGovernor* gov = QueryGovernor::Current()) {
    out += gov->DescribeLine();
  }
  std::snprintf(buf, sizeof(buf), "%zu row%s in %.3f ms\n",
                answer.table.num_rows(),
                answer.table.num_rows() == 1 ? "" : "s", total.ElapsedMillis());
  out += buf;
  out += "answered by: " + answer.method;
  if (answer.degraded) {
    out += " (degraded: exact path stopped by " + answer.fallback_reason +
           ", error bound +/-" + FormatDouble(answer.error_bound, 6) + ")";
  } else if (answer.approximate) {
    out += " (approximate, error bound +/-" +
           FormatDouble(answer.error_bound, 6) + ")";
  } else if (!answer.fallback_reason.empty()) {
    out += " (" + answer.fallback_reason + ")";
  }
  out += '\n';
  return out;
}

}  // namespace laws

#include "aqp/hybrid.h"

#include "common/string_util.h"
#include "query/executor.h"
#include "query/parser.h"

namespace laws {
namespace {

bool ContainsCountStar(const Expr& expr) {
  if (expr.kind == ExprKind::kAggregate &&
      expr.aggregate_func == AggregateFunc::kCount &&
      expr.children[0]->kind == ExprKind::kStar) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsCountStar(*c)) return true;
  }
  return false;
}

/// COUNT(*) asks for raw tuple multiplicity, which a reconstructed grid
/// (one tuple per enumerated combination) cannot reproduce — the paper's
/// griding caveat. Such statements must take the exact path.
bool StatementNeedsRawMultiplicity(const SelectStatement& stmt) {
  for (const SelectItem& item : stmt.select_list) {
    if (!item.is_star && ContainsCountStar(*item.expr)) return true;
  }
  if (stmt.having != nullptr && ContainsCountStar(*stmt.having)) return true;
  for (const auto& k : stmt.order_by) {
    if (ContainsCountStar(*k.expr)) return true;
  }
  return false;
}

}  // namespace

Result<HybridAnswer> HybridQueryEngine::Execute(const std::string& sql) const {
  HybridAnswer answer;

  LAWS_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  if (StatementNeedsRawMultiplicity(stmt)) {
    if (!options_.allow_exact_fallback) {
      return Status::InvalidArgument(
          "COUNT(*) needs raw multiplicity; the model grid cannot provide "
          "it and exact fallback is disabled");
    }
    LAWS_ASSIGN_OR_RETURN(answer.table, ExecuteSelect(*data_, stmt));
    answer.method = "exact";
    answer.approximate = false;
    answer.fallback_reason =
        "COUNT(*) multiplicity is not reproducible from the model grid";
    return answer;
  }

  auto approx = model_engine_->ExecuteStatement(stmt);
  if (approx.ok()) {
    // Quality gate: only serve answers from models judged good enough.
    auto model = model_engine_->model_catalog()->Get(approx->model_id);
    const double quality =
        model.ok() ? (*model)->ArbitrationQuality() : 0.0;
    if (quality >= options_.min_quality) {
      answer.table = std::move(approx->table);
      answer.method = approx->method;
      answer.approximate = true;
      answer.error_bound = approx->max_error_bound;
      return answer;
    }
    answer.fallback_reason =
        "model quality " + FormatDouble(quality, 4) + " below threshold " +
        FormatDouble(options_.min_quality, 4);
  } else {
    answer.fallback_reason = approx.status().ToString();
  }

  if (!options_.allow_exact_fallback) {
    return Status::NotFound("model path unavailable (" +
                            answer.fallback_reason +
                            ") and exact fallback disabled");
  }
  LAWS_ASSIGN_OR_RETURN(answer.table, ExecuteSelect(*data_, stmt));
  answer.method = "exact";
  answer.approximate = false;
  return answer;
}

}  // namespace laws

#include "aqp/hybrid.h"

#include <cstdio>

#include "common/governor.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "query/compressed_scan.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/vector_eval.h"

namespace laws {
namespace {

bool ContainsCountStar(const Expr& expr) {
  if (expr.kind == ExprKind::kAggregate &&
      expr.aggregate_func == AggregateFunc::kCount &&
      expr.children[0]->kind == ExprKind::kStar) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsCountStar(*c)) return true;
  }
  return false;
}

/// COUNT(*) asks for raw tuple multiplicity, which a reconstructed grid
/// (one tuple per enumerated combination) cannot reproduce — the paper's
/// griding caveat. Such statements must take the exact path.
bool StatementNeedsRawMultiplicity(const SelectStatement& stmt) {
  for (const SelectItem& item : stmt.select_list) {
    if (!item.is_star && ContainsCountStar(*item.expr)) return true;
  }
  if (stmt.having != nullptr && ContainsCountStar(*stmt.having)) return true;
  for (const auto& k : stmt.order_by) {
    if (ContainsCountStar(*k.expr)) return true;
  }
  return false;
}

/// Figure 2 accounting (cached pointers; see metrics.h): how often the
/// engine answered from a model vs. fell back to the exact scan, and why.
struct HybridCounters {
  Counter* model_hit;
  Counter* exact_fallback;
  Counter* count_star_exact;
  Counter* low_quality_reject;
  Counter* drift_reject;
  Counter* no_model;
  Counter* degraded_to_aqp;
  MetricHistogram* interval_halfwidth;

  static HybridCounters& Get() {
    static HybridCounters c = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return HybridCounters{
          reg.GetCounter("aqp.hybrid.model_hit"),
          reg.GetCounter("aqp.hybrid.exact_fallback"),
          reg.GetCounter("aqp.hybrid.fallback.count_star"),
          reg.GetCounter("aqp.hybrid.fallback.low_quality"),
          reg.GetCounter("aqp.hybrid.fallback.drift"),
          reg.GetCounter("aqp.hybrid.fallback.no_model"),
          reg.GetCounter("governor.degraded_to_aqp"),
          reg.GetHistogram("aqp.hybrid.interval_halfwidth")};
    }();
    return c;
  }
};

}  // namespace

Result<HybridAnswer> HybridQueryEngine::Execute(const std::string& sql) const {
  HybridCounters& counters = HybridCounters::Get();
  ScopedSpan span("HybridDecision");
  HybridAnswer answer;

  LAWS_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  // Database-learning hooks: when a learner is attached and on, every
  // successful exact scan is harvested (its rows refine candidate
  // models), drift-flagged models are rejected at arbitration, and
  // hit/fallback outcomes feed the promotion/eviction policy. All hooks
  // are fire-and-forget — learning never changes or fails an answer.
  LearningObserver* learner =
      options_.learner != nullptr && options_.learner->enabled()
          ? options_.learner
          : nullptr;
  if (StatementNeedsRawMultiplicity(stmt)) {
    if (!options_.allow_exact_fallback) {
      return Status::InvalidArgument(
          "COUNT(*) needs raw multiplicity; the model grid cannot provide "
          "it and exact fallback is disabled");
    }
    counters.count_star_exact->Add();
    counters.exact_fallback->Add();
    answer.fallback_reason =
        "COUNT(*) multiplicity is not reproducible from the model grid";
    span.SetDetail("exact: " + answer.fallback_reason);
    {
      ScopedSpan exact_span("ExactScan");
      LAWS_ASSIGN_OR_RETURN(answer.table, ExecuteSelect(*data_, stmt));
    }
    answer.method = "exact";
    answer.approximate = false;
    if (learner != nullptr) {
      learner->OnExactScan(stmt, *data_, *model_engine_->model_catalog());
    }
    return answer;
  }

  Result<ApproxAnswer> approx = [&] {
    ScopedSpan model_span("ModelPath");
    return model_engine_->ExecuteStatement(stmt);
  }();
  if (approx.ok()) {
    // Quality gate: only serve answers from models judged good enough —
    // and, under learning, not currently drift-flagged (fresh rows
    // contradicting a fitted law bar it from serving until its refit).
    auto model = model_engine_->model_catalog()->Get(approx->model_id);
    const double quality =
        model.ok() ? (*model)->ArbitrationQuality() : 0.0;
    std::string drift_why;
    const bool drift_rejected =
        quality >= options_.min_quality && learner != nullptr &&
        learner->RejectModel(approx->model_id, &drift_why);
    if (quality >= options_.min_quality && !drift_rejected) {
      counters.model_hit->Add();
      counters.interval_halfwidth->Record(approx->max_error_bound);
      answer.table = std::move(approx->table);
      answer.method = approx->method;
      answer.approximate = true;
      answer.error_bound = approx->max_error_bound;
      span.SetDetail(answer.method + ", model " +
                     std::to_string(approx->model_id) + ", quality " +
                     FormatDouble(quality, 4) + ", bound +/-" +
                     FormatDouble(answer.error_bound, 6));
      if (learner != nullptr) {
        learner->OnDecision(stmt.from_table, approx->model_id,
                            *model_engine_->model_catalog());
      }
      return answer;
    }
    if (drift_rejected) {
      counters.drift_reject->Add();
      answer.fallback_reason = drift_why;
    } else {
      counters.low_quality_reject->Add();
      answer.fallback_reason =
          "model quality " + FormatDouble(quality, 4) + " below threshold " +
          FormatDouble(options_.min_quality, 4);
    }
  } else {
    // No covering model, stale model, or non-enumerable dimension — this
    // is also the path taken when a persisted model was quarantined by a
    // tolerant load (the model is simply absent from the catalog).
    counters.no_model->Add();
    answer.fallback_reason = approx.status().ToString();
  }

  if (!options_.allow_exact_fallback) {
    return Status::NotFound("model path unavailable (" +
                            answer.fallback_reason +
                            ") and exact fallback disabled");
  }
  counters.exact_fallback->Add();
  span.SetDetail("exact: " + answer.fallback_reason);
  ScopedSpan exact_span("ExactScan");
  Result<Table> exact = ExecuteSelect(*data_, stmt);
  exact_span.End();
  if (!exact.ok()) {
    // Overload-graceful degradation: when the governor stopped the exact
    // scan on time or memory and a model answer exists (it was computed
    // above but rejected by the quality gate), serve it — an approximate
    // answer under overload beats no answer. Cancellation never
    // degrades: a canceled query returns its error, full stop. Other
    // errors propagate untouched.
    const StatusCode code = exact.status().code();
    const bool overload = code == StatusCode::kDeadlineExceeded ||
                          code == StatusCode::kResourceExhausted;
    if (overload && approx.ok()) {
      counters.degraded_to_aqp->Add();
      answer.table = std::move(approx->table);
      answer.method = approx->method;
      answer.approximate = true;
      answer.degraded = true;
      answer.error_bound = approx->max_error_bound;
      answer.fallback_reason = code == StatusCode::kDeadlineExceeded
                                   ? "deadline"
                                   : "memory budget";
      span.SetDetail("degraded to model answer: " +
                     exact.status().ToString());
      return answer;
    }
    return exact.status();
  }
  answer.table = std::move(*exact);
  answer.method = "exact";
  answer.approximate = false;
  if (learner != nullptr) {
    learner->OnExactScan(stmt, *data_, *model_engine_->model_catalog());
    learner->OnDecision(stmt.from_table, 0, *model_engine_->model_catalog());
  }
  return answer;
}

Result<std::string> HybridQueryEngine::ExplainAnalyze(
    const std::string& sql) const {
  TraceSink sink;
  Timer total;
  // Expression-tier accounting for this query (process-global counters,
  // so report the delta) — same line ExplainAnalyzeQuery prints.
  Counter* compiled = MetricsRegistry::Global().GetCounter("expr.compiled");
  Counter* fallback =
      MetricsRegistry::Global().GetCounter("expr.fallback_treewalk");
  Counter* batches = MetricsRegistry::Global().GetCounter("expr.batches");
  Counter* blocks = MetricsRegistry::Global().GetCounter("scan.blocks_total");
  Counter* pruned = MetricsRegistry::Global().GetCounter("scan.blocks_pruned");
  Counter* run_skips =
      MetricsRegistry::Global().GetCounter("scan.runs_skipped");
  Counter* enc_agg = MetricsRegistry::Global().GetCounter("scan.encoded_agg");
  Counter* harvest_rows =
      MetricsRegistry::Global().GetCounter("learn.harvest.rows");
  Counter* drift_detected =
      MetricsRegistry::Global().GetCounter("learn.drift.detected");
  Counter* drift_rejected =
      MetricsRegistry::Global().GetCounter("learn.drift.rejected");
  const uint64_t compiled0 = compiled->value();
  const uint64_t fallback0 = fallback->value();
  const uint64_t batches0 = batches->value();
  const uint64_t blocks0 = blocks->value();
  const uint64_t pruned0 = pruned->value();
  const uint64_t run_skips0 = run_skips->value();
  const uint64_t enc_agg0 = enc_agg->value();
  const uint64_t harvest_rows0 = harvest_rows->value();
  const uint64_t drift_detected0 = drift_detected->value();
  const uint64_t drift_rejected0 = drift_rejected->value();
  LAWS_ASSIGN_OR_RETURN(HybridAnswer answer, Execute(sql));
  std::string out = sink.Render();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "expr: engine=%s compiled=%llu fallback_treewalk=%llu "
                "batches=%llu\n",
                GlobalExprEngine() == ExprEngine::kBytecode ? "bytecode"
                                                            : "treewalk",
                static_cast<unsigned long long>(compiled->value() - compiled0),
                static_cast<unsigned long long>(fallback->value() - fallback0),
                static_cast<unsigned long long>(batches->value() - batches0));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "scan: engine=%s blocks=%llu pruned=%llu runs_skipped=%llu "
      "encoded_agg=%llu\n",
      GlobalScanEngine() == ScanEngine::kCompressed ? "compressed" : "decode",
      static_cast<unsigned long long>(blocks->value() - blocks0),
      static_cast<unsigned long long>(pruned->value() - pruned0),
      static_cast<unsigned long long>(run_skips->value() - run_skips0),
      static_cast<unsigned long long>(enc_agg->value() - enc_agg0));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "learning: state=%s harvested_rows=%llu drift_flagged=%llu "
      "drift_rejected=%llu\n",
      options_.learner != nullptr && options_.learner->enabled() ? "on"
                                                                 : "off",
      static_cast<unsigned long long>(harvest_rows->value() - harvest_rows0),
      static_cast<unsigned long long>(drift_detected->value() -
                                      drift_detected0),
      static_cast<unsigned long long>(drift_rejected->value() -
                                      drift_rejected0));
  out += buf;
  if (QueryGovernor* gov = QueryGovernor::Current()) {
    out += gov->DescribeLine();
  }
  std::snprintf(buf, sizeof(buf), "%zu row%s in %.3f ms\n",
                answer.table.num_rows(),
                answer.table.num_rows() == 1 ? "" : "s", total.ElapsedMillis());
  out += buf;
  out += "answered by: " + answer.method;
  if (answer.degraded) {
    out += " (degraded: exact path stopped by " + answer.fallback_reason +
           ", error bound +/-" + FormatDouble(answer.error_bound, 6) + ")";
  } else if (answer.approximate) {
    out += " (approximate, error bound +/-" +
           FormatDouble(answer.error_bound, 6) + ")";
  } else if (!answer.fallback_reason.empty()) {
    out += " (" + answer.fallback_reason + ")";
  }
  out += '\n';
  return out;
}

}  // namespace laws

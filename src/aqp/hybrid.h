#ifndef LAWSDB_AQP_HYBRID_H_
#define LAWSDB_AQP_HYBRID_H_

#include <string>

#include "aqp/model_aqp.h"
#include "common/result.h"
#include "learn/observer.h"

namespace laws {

/// Controls when the hybrid engine trusts a captured model.
struct HybridOptions {
  /// Models below this arbitration quality (adjusted R² / median R²) are
  /// not used — the paper's "judge the quality of the model" gate applied
  /// at query time.
  double min_quality = 0.8;
  /// When the model path is unavailable (no covering model, quality too
  /// low, stale, non-enumerable dimension), fall back to the exact engine
  /// instead of failing.
  bool allow_exact_fallback = true;
  /// Database-learning hooks (may be nullptr = learning off): successful
  /// exact scans are harvested into candidate models, drift-flagged
  /// models are rejected at arbitration, and hit/fallback decisions feed
  /// the promotion/eviction policy. Not owned; must outlive the engine.
  LearningObserver* learner = nullptr;
};

/// Answer from the hybrid engine, recording which path produced it.
struct HybridAnswer {
  Table table{Schema{}};
  /// "model-point" / "model-enum" when a captured model answered;
  /// "exact" when the scan did.
  std::string method;
  bool approximate = false;
  /// Error bound when approximate (95% prediction-interval half-width).
  double error_bound = 0.0;
  /// Why the model path was not used (empty when it was).
  std::string fallback_reason;
  /// True when the exact path was stopped by the resource governor
  /// (deadline or memory budget) and the engine degraded to serving the
  /// available model answer instead of failing — overload-graceful
  /// behavior. Never set for cancellation: a canceled query must not
  /// return an answer at all. The model answer served this way is the
  /// one the quality gate rejected, so `fallback_reason` names the
  /// governor limit and `approximate` is true.
  bool degraded = false;
};

/// The user-transparent face of Figure 2: queries go in, the engine
/// decides whether a harvested model can answer them (fresh, covering,
/// good enough) and otherwise runs the exact scan. This is what "the user
/// queries the database for a value that can be approximately
/// reconstructed" looks like as an API.
class HybridQueryEngine {
 public:
  HybridQueryEngine(const Catalog* data, const ModelQueryEngine* model_engine,
                    HybridOptions options = {})
      : data_(data), model_engine_(model_engine), options_(options) {}

  Result<HybridAnswer> Execute(const std::string& sql) const;

  /// EXPLAIN ANALYZE through the hybrid engine: executes the statement
  /// under a TraceSink and renders the measured per-stage tree — the
  /// HybridDecision span carries the arbitration outcome (model id,
  /// quality and error bound on a hit; the fallback reason otherwise) —
  /// followed by total time and an "answered by:" decision line.
  Result<std::string> ExplainAnalyze(const std::string& sql) const;

 private:
  const Catalog* data_;
  const ModelQueryEngine* model_engine_;
  HybridOptions options_;
};

}  // namespace laws

#endif  // LAWSDB_AQP_HYBRID_H_

#include "aqp/inverse.h"

#include <cmath>

#include "model/model.h"

namespace laws {

Result<std::vector<InverseRegion>> InversePredict(const CapturedModel& model,
                                                  const ColumnDomain& domain,
                                                  double y_lo, double y_hi) {
  if (y_hi < y_lo) {
    return Status::InvalidArgument("empty target range (y_hi < y_lo)");
  }
  LAWS_ASSIGN_OR_RETURN(ModelPtr fn, ModelFromSource(model.model_source));
  if (fn->num_inputs() != 1) {
    return Status::InvalidArgument(
        "inverse prediction implemented for single-input models");
  }

  struct GroupParams {
    int64_t key;
    Vector params;
  };
  std::vector<GroupParams> groups;
  if (model.grouped) {
    const Table& pt = model.parameter_table;
    const size_t p = fn->num_parameters();
    groups.reserve(pt.num_rows());
    for (size_t r = 0; r < pt.num_rows(); ++r) {
      GroupParams g;
      g.key = pt.column(0).Int64At(r);
      g.params.resize(p);
      for (size_t j = 0; j < p; ++j) g.params[j] = pt.column(j + 1).DoubleAt(r);
      groups.push_back(std::move(g));
    }
  } else {
    groups.push_back(GroupParams{0, model.parameters});
  }

  std::vector<InverseRegion> regions;
  const size_t n = domain.Cardinality();
  Vector x(1);
  for (const GroupParams& g : groups) {
    bool in_run = false;
    InverseRegion current;
    for (size_t i = 0; i < n; ++i) {
      x[0] = domain.ValueAt(i);
      const double y = fn->Evaluate(x, g.params);
      const bool hit = std::isfinite(y) && y >= y_lo && y <= y_hi;
      if (hit && !in_run) {
        current = InverseRegion{g.key, x[0], x[0], 1};
        in_run = true;
      } else if (hit) {
        current.input_hi = x[0];
        ++current.points;
      } else if (in_run) {
        regions.push_back(current);
        in_run = false;
      }
    }
    if (in_run) regions.push_back(current);
  }
  return regions;
}

Result<double> InvertMonotone(const Model& model, const Vector& params,
                              double y, double x_lo, double x_hi,
                              double tolerance) {
  if (x_hi <= x_lo) {
    return Status::InvalidArgument("empty input interval");
  }
  const double f_lo = model.Evaluate({x_lo}, params);
  const double f_hi = model.Evaluate({x_hi}, params);
  const double f_mid = model.Evaluate({0.5 * (x_lo + x_hi)}, params);
  if (!std::isfinite(f_lo) || !std::isfinite(f_hi) || !std::isfinite(f_mid)) {
    return Status::NumericError("model non-finite on the interval");
  }
  const bool increasing = f_hi >= f_lo;
  // Monotonicity spot check at the midpoint.
  if (increasing ? (f_mid < f_lo - 1e-12 || f_mid > f_hi + 1e-12)
                 : (f_mid > f_lo + 1e-12 || f_mid < f_hi - 1e-12)) {
    return Status::InvalidArgument("model is not monotone on the interval");
  }
  const double lo_val = increasing ? f_lo : f_hi;
  const double hi_val = increasing ? f_hi : f_lo;
  if (y < lo_val - 1e-12 || y > hi_val + 1e-12) {
    return Status::NotFound("target output outside the attained range");
  }

  double lo = x_lo, hi = x_hi;
  for (int iter = 0; iter < 200 && hi - lo > tolerance * (1.0 + std::fabs(hi));
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double f = model.Evaluate({mid}, params);
    if ((f < y) == increasing) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace laws

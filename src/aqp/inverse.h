#ifndef LAWSDB_AQP_INVERSE_H_
#define LAWSDB_AQP_INVERSE_H_

#include <vector>

#include "aqp/domain.h"
#include "common/result.h"
#include "core/model_catalog.h"

namespace laws {

/// Inverse prediction over captured models — the direction explored by
/// Zimmer et al. (SSDBM'14), which the paper discusses in §5: "Given a
/// model and desired output, they search for the input values that are
/// likely to create this output." Here the model is not user-specified but
/// harvested, so inverse queries come for free once a model is captured.
///
/// For a single-input model and an enumerable domain, the legal inputs are
/// finite: we evaluate the model across the domain (per group for grouped
/// models) and merge consecutive qualifying points into intervals.
struct InverseRegion {
  int64_t group_key = 0;
  /// Inclusive input interval whose predictions fall in the target range.
  double input_lo = 0.0;
  double input_hi = 0.0;
  /// Number of domain points inside the interval.
  size_t points = 0;
};

/// Finds all (group, input-interval) regions whose predicted output lies in
/// [y_lo, y_hi]. Requires a single-input model. Zero IO: only the captured
/// parameters and the domain are consulted.
Result<std::vector<InverseRegion>> InversePredict(const CapturedModel& model,
                                                  const ColumnDomain& domain,
                                                  double y_lo, double y_hi);

/// Continuous inverse for a monotone single-input model: finds the input
/// x in [x_lo, x_hi] with f(x; params) = y via bisection. Returns
/// NotFound when y is outside the attained range, InvalidArgument when the
/// model is not monotone on the interval (checked at the endpoints and
/// midpoint).
Result<double> InvertMonotone(const Model& model, const Vector& params,
                              double y, double x_lo, double x_hi,
                              double tolerance = 1e-10);

}  // namespace laws

#endif  // LAWSDB_AQP_INVERSE_H_

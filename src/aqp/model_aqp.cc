#include "aqp/model_aqp.h"

#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "model/model.h"
#include "query/executor.h"
#include "query/expr_eval.h"
#include "query/parser.h"
#include "stats/distributions.h"
#include "stats/goodness_of_fit.h"

namespace laws {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void CollectColumns(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    for (const auto& c : *out) {
      if (EqualsIgnoreCase(c, expr.column_name)) return;
    }
    out->push_back(expr.column_name);
  }
  for (const auto& c : expr.children) CollectColumns(*c, out);
}

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(e->children[0].get(), out);
    CollectConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// If `e` is `<column> <cmp> <constant>` (either orientation), extracts the
/// pieces.
bool MatchColumnComparison(const Expr& e, std::string* column, BinaryOp* op,
                           double* constant) {
  if (e.kind != ExprKind::kBinary) return false;
  switch (e.binary_op) {
    case BinaryOp::kEqual:
    case BinaryOp::kLess:
    case BinaryOp::kLessEqual:
    case BinaryOp::kGreater:
    case BinaryOp::kGreaterEqual:
      break;
    default:
      return false;
  }
  const Expr* lhs = e.children[0].get();
  const Expr* rhs = e.children[1].get();
  bool flipped = false;
  if (lhs->kind != ExprKind::kColumnRef) {
    std::swap(lhs, rhs);
    flipped = true;
  }
  if (lhs->kind != ExprKind::kColumnRef) return false;
  auto v = EvaluateConstant(*rhs);
  if (!v.ok() || v->is_null()) return false;
  auto num = v->AsDouble();
  if (!num.ok()) return false;
  *column = lhs->column_name;
  *constant = *num;
  BinaryOp op_out = e.binary_op;
  if (flipped) {
    switch (e.binary_op) {
      case BinaryOp::kLess:
        op_out = BinaryOp::kGreater;
        break;
      case BinaryOp::kLessEqual:
        op_out = BinaryOp::kGreaterEqual;
        break;
      case BinaryOp::kGreater:
        op_out = BinaryOp::kLess;
        break;
      case BinaryOp::kGreaterEqual:
        op_out = BinaryOp::kLessEqual;
        break;
      default:
        break;
    }
  }
  *op = op_out;
  return true;
}

}  // namespace

std::map<std::string, std::pair<double, double>> ExtractRangeConstraints(
    const Expr* where) {
  std::map<std::string, std::pair<double, double>> ranges;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  for (const Expr* c : conjuncts) {
    std::string column;
    BinaryOp op = BinaryOp::kEqual;
    double v = 0.0;
    if (!MatchColumnComparison(*c, &column, &op, &v)) continue;
    const std::string key = ToLower(column);
    auto [it, inserted] = ranges.emplace(key, std::make_pair(-kInf, kInf));
    auto& [lo, hi] = it->second;
    switch (op) {
      case BinaryOp::kEqual:
        lo = std::max(lo, v);
        hi = std::min(hi, v);
        break;
      case BinaryOp::kLess:
      case BinaryOp::kLessEqual:
        hi = std::min(hi, v);
        break;
      case BinaryOp::kGreater:
      case BinaryOp::kGreaterEqual:
        lo = std::max(lo, v);
        break;
      default:
        break;
    }
  }
  return ranges;
}

std::vector<std::string> ReferencedColumns(const SelectStatement& stmt) {
  std::vector<std::string> out;
  for (const SelectItem& item : stmt.select_list) {
    if (!item.is_star) CollectColumns(*item.expr, &out);
  }
  if (stmt.where != nullptr) CollectColumns(*stmt.where, &out);
  for (const auto& g : stmt.group_by) CollectColumns(*g, &out);
  if (stmt.having != nullptr) CollectColumns(*stmt.having, &out);
  for (const auto& k : stmt.order_by) CollectColumns(*k.expr, &out);
  return out;
}

void ModelQueryEngine::AttachLegalFilter(uint64_t model_id,
                                         LegalCombinationFilter filter) {
  legal_filters_.emplace(model_id, std::move(filter));
}

Result<const CapturedModel*> ModelQueryEngine::FindModelFor(
    const SelectStatement& stmt) const {
  LAWS_ASSIGN_OR_RETURN(TablePtr table, data_->Get(stmt.from_table));
  // The model must cover every referenced column: group, inputs or output.
  const std::vector<std::string> referenced = ReferencedColumns(stmt);
  const std::vector<const CapturedModel*> candidates =
      models_->ModelsForTable(stmt.from_table);
  const CapturedModel* best = nullptr;
  for (const CapturedModel* m : candidates) {
    bool covers = true;
    for (const std::string& col : referenced) {
      bool known = EqualsIgnoreCase(col, m->output_column) ||
                   (!m->group_column.empty() &&
                    EqualsIgnoreCase(col, m->group_column));
      for (const auto& in : m->input_columns) {
        known = known || EqualsIgnoreCase(col, in);
      }
      if (!known) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    const bool fresh = !ModelCatalog::IsStale(*m, table->data_version());
    if (!fresh) continue;
    if (best == nullptr ||
        m->ArbitrationQuality() > best->ArbitrationQuality()) {
      best = m;
    }
  }
  if (best == nullptr) {
    return Status::NotFound(
        "no fresh captured model covers the referenced columns of " +
        stmt.from_table);
  }
  return best;
}

Result<ApproxAnswer> ModelQueryEngine::ReconstructTable(
    const CapturedModel& model,
    const std::map<std::string, std::pair<double, double>>& ranges) const {
  LAWS_ASSIGN_OR_RETURN(ModelPtr fn, ModelFromSource(model.model_source));

  auto range_for = [&](const std::string& column) {
    auto it = ranges.find(ToLower(column));
    if (it == ranges.end()) return std::make_pair(-kInf, kInf);
    return it->second;
  };

  // --- Group axis ---------------------------------------------------------
  // Grouped models enumerate group keys from the parameter table (already
  // captured — zero IO); each key carries its parameter vector and RSE.
  struct GroupEntry {
    int64_t key;
    Vector params;
    double half_width;  // 95% prediction-interval half-width
  };
  // t-based half-width for a group with n observations and p parameters;
  // degrades to the raw RSE when the t machinery does not apply. The
  // t-quantile is memoized by degrees of freedom — groups share a handful
  // of df values, and the quantile inversion is far too slow to repeat
  // tens of thousands of times.
  const size_t p = fn->num_parameters();
  std::map<size_t, double> t_cache;
  auto pi_half_width = [&](double rse, size_t n_obs) {
    if (n_obs <= p) return rse;
    const size_t df = n_obs - p;
    // The t distribution is within half a percent of normal by df ~ 200;
    // skip the quantile inversion there.
    if (df >= 200) return 1.96 * rse;
    auto it = t_cache.find(df);
    if (it == t_cache.end()) {
      it = t_cache
               .emplace(df, StudentTQuantile(0.975,
                                             static_cast<double>(df)))
               .first;
    }
    return it->second * rse;
  };
  std::vector<GroupEntry> groups;
  if (model.grouped) {
    const Table& pt = model.parameter_table;
    LAWS_ASSIGN_OR_RETURN(size_t rse_idx,
                          pt.schema().FieldIndex("residual_se"));
    LAWS_ASSIGN_OR_RETURN(size_t n_idx, pt.schema().FieldIndex("n_obs"));
    const auto [glo, ghi] = range_for(model.group_column);
    for (size_t r = 0; r < pt.num_rows(); ++r) {
      const int64_t key = pt.column(0).Int64At(r);
      const auto dkey = static_cast<double>(key);
      if (dkey < glo || dkey > ghi) continue;
      GroupEntry e;
      e.key = key;
      e.params.resize(p);
      for (size_t j = 0; j < p; ++j) e.params[j] = pt.column(j + 1).DoubleAt(r);
      e.half_width =
          pi_half_width(pt.column(rse_idx).DoubleAt(r),
                        static_cast<size_t>(pt.column(n_idx).Int64At(r)));
      groups.push_back(std::move(e));
    }
  } else {
    groups.push_back(
        GroupEntry{0, model.parameters,
                   pi_half_width(model.quality.residual_standard_error,
                                 model.quality.n_observations)});
  }

  // --- Input axes ----------------------------------------------------------
  // Each input dimension needs either an enumerable domain or an equality
  // pin from the predicate (paper: "if a parameter column is enumerable, we
  // can use it without actually loading its values").
  std::vector<std::vector<double>> input_values(model.input_columns.size());
  for (size_t d = 0; d < model.input_columns.size(); ++d) {
    const std::string& col = model.input_columns[d];
    const auto [lo, hi] = range_for(col);
    if (lo == hi && std::isfinite(lo)) {
      input_values[d] = {lo};  // pinned by equality
      continue;
    }
    auto domain = domains_->Get(model.table_name, col);
    if (!domain.ok()) {
      return Status::InvalidArgument(
          "input dimension '" + col +
          "' is not enumerable and not pinned by the predicate");
    }
    for (size_t i : (*domain)->IndicesInRange(lo, hi)) {
      input_values[d].push_back((*domain)->ValueAt(i));
    }
  }

  // Enumeration size check.
  size_t total = groups.size();
  for (const auto& vals : input_values) {
    if (vals.empty()) total = 0;
    if (total > 0 && vals.size() > max_tuples_ / total) {
      return Status::InvalidArgument("enumeration exceeds tuple cap");
    }
    total *= vals.size();
  }

  // --- Materialize ---------------------------------------------------------
  std::vector<Field> fields;
  if (model.grouped) {
    fields.push_back(Field{model.group_column, DataType::kInt64, false});
  }
  for (const auto& col : model.input_columns) {
    fields.push_back(Field{col, DataType::kDouble, false});
  }
  fields.push_back(Field{model.output_column, DataType::kDouble, false});
  Table out{Schema(std::move(fields))};

  const auto legal_it = legal_filters_.find(model.id);
  const LegalCombinationFilter* legal =
      legal_it == legal_filters_.end() ? nullptr : &legal_it->second;

  double rse_sum = 0.0;
  double rse_max = 0.0;
  size_t touched_groups = 0;

  std::vector<double> x(model.input_columns.size());
  std::vector<Value> row;
  for (const GroupEntry& g : groups) {
    bool group_touched = false;
    // Odometer over input dimensions.
    std::vector<size_t> idx(input_values.size(), 0);
    bool more = true;
    for (auto& vals : input_values) {
      if (vals.empty()) more = false;
    }
    while (more) {
      for (size_t d = 0; d < idx.size(); ++d) x[d] = input_values[d][idx[d]];
      if (legal == nullptr || legal->MayContain(g.key, x)) {
        const double y = fn->Evaluate(x, g.params);
        row.clear();
        if (model.grouped) row.push_back(Value::Int64(g.key));
        for (double v : x) row.push_back(Value::Double(v));
        row.push_back(Value::Double(y));
        LAWS_RETURN_IF_ERROR(out.AppendRow(row));
        group_touched = true;
      }
      // Advance odometer; zero input dimensions means exactly one tuple.
      if (idx.empty()) break;
      size_t d = 0;
      while (d < idx.size() && ++idx[d] >= input_values[d].size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == idx.size()) more = false;
    }
    if (group_touched) {
      ++touched_groups;
      rse_sum += g.half_width;
      rse_max = std::max(rse_max, g.half_width);
    }
  }

  ApproxAnswer answer;
  answer.tuples_reconstructed = out.num_rows();
  answer.table = std::move(out);
  answer.method = "model-enum";
  answer.error_bound =
      touched_groups > 0 ? rse_sum / static_cast<double>(touched_groups) : 0.0;
  answer.max_error_bound = rse_max;
  answer.raw_rows_accessed = 0;
  answer.model_id = model.id;
  return answer;
}

Result<ApproxAnswer> ModelQueryEngine::ExecuteStatement(
    const SelectStatement& stmt) const {
  LAWS_ASSIGN_OR_RETURN(const CapturedModel* model, FindModelFor(stmt));
  const auto ranges = ExtractRangeConstraints(stmt.where.get());
  LAWS_ASSIGN_OR_RETURN(ApproxAnswer answer,
                        ReconstructTable(*model, ranges));
  // Run the original statement over the reconstructed tuples. The
  // reconstruction already honoured the pushed-down ranges, but the full
  // predicate (e.g. intensity > 3.0) still applies here.
  LAWS_ASSIGN_OR_RETURN(Table result,
                        ExecuteSelectOnTable(answer.table, stmt));
  const bool pinned_point = answer.tuples_reconstructed <= 1;
  answer.method = pinned_point ? "model-point" : "model-enum";
  answer.table = std::move(result);
  return answer;
}

Result<ApproxAnswer> ModelQueryEngine::Execute(const std::string& sql) const {
  LAWS_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return ExecuteStatement(stmt);
}

Result<size_t> ModelQueryEngine::MaterializeView(uint64_t model_id,
                                                 const std::string& view_name,
                                                 Catalog* catalog) const {
  if (catalog == nullptr) {
    return Status::InvalidArgument("null catalog");
  }
  LAWS_ASSIGN_OR_RETURN(const CapturedModel* model, models_->Get(model_id));
  LAWS_ASSIGN_OR_RETURN(ApproxAnswer answer, ReconstructTable(*model, {}));
  const size_t tuples = answer.table.num_rows();
  catalog->RegisterOrReplace(view_name,
                             std::make_shared<Table>(std::move(answer.table)));
  return tuples;
}

}  // namespace laws

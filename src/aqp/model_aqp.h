#ifndef LAWSDB_AQP_MODEL_AQP_H_
#define LAWSDB_AQP_MODEL_AQP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aqp/bloom.h"
#include "aqp/domain.h"
#include "common/result.h"
#include "core/model_catalog.h"
#include "query/ast.h"
#include "storage/catalog.h"

namespace laws {

/// An approximate answer (Figure 2 step 5: "calculated using the model and
/// the small parameter dataset and returned with error bounds").
struct ApproxAnswer {
  Table table{Schema{}};
  /// Which path produced it: "model-enum" (grid reconstruction),
  /// "model-point" (pinned lookup), "model-analytic" (closed form).
  std::string method;
  /// Representative +/- bound on reconstructed output values: the mean
  /// 95% prediction-interval half-width (t_{0.975, n-p} * residual SE) of
  /// the groups involved.
  double error_bound = 0.0;
  /// Worst-case bound: the max such half-width across involved groups.
  double max_error_bound = 0.0;
  /// Raw table rows read to answer (0 = the paper's zero-IO scan).
  size_t raw_rows_accessed = 0;
  /// Tuples materialized from the model during enumeration.
  size_t tuples_reconstructed = 0;
  /// Model used.
  uint64_t model_id = 0;
};

/// The model-based approximate query processor: answers SELECTs over a
/// table *solely* from captured models, enumerable domains and (optionally)
/// legal-combination filters — never touching the raw data.
class ModelQueryEngine {
 public:
  ModelQueryEngine(const Catalog* data, const ModelCatalog* models,
                   const DomainRegistry* domains)
      : data_(data), models_(models), domains_(domains) {}

  /// Attaches a legal-combination filter for a captured model; subsequent
  /// enumerations drop combinations the filter rejects (paper §4.2 "Legal
  /// parameter combinations").
  void AttachLegalFilter(uint64_t model_id, LegalCombinationFilter filter);

  /// Parses and answers SQL approximately. Fails with NotFound when no
  /// fresh-enough model covers the referenced columns, InvalidArgument
  /// when a referenced input dimension is not enumerable and not pinned by
  /// the predicate — callers then fall back to the exact engine.
  Result<ApproxAnswer> Execute(const std::string& sql) const;

  Result<ApproxAnswer> ExecuteStatement(const SelectStatement& stmt) const;

  /// Reconstructs the model-covered portion of `table_name` as a table
  /// (group, inputs..., predicted output). Equality/range constraints for
  /// specific columns can be supplied to restrict the enumeration. Exposed
  /// for the zero-IO-scan experiments.
  Result<ApproxAnswer> ReconstructTable(
      const CapturedModel& model,
      const std::map<std::string, std::pair<double, double>>& ranges) const;

  /// MauveDB-style materialized model view: reconstructs the model-covered
  /// grid and registers it in `catalog` under `view_name` (replacing any
  /// existing binding). The view is then queryable by the exact engine
  /// like any table. Returns the number of materialized tuples.
  Result<size_t> MaterializeView(uint64_t model_id,
                                 const std::string& view_name,
                                 Catalog* catalog) const;

  /// Safety cap on enumerated tuples (default 20M).
  void set_max_tuples(size_t cap) { max_tuples_ = cap; }

  const ModelCatalog* model_catalog() const { return models_; }

 private:
  Result<const CapturedModel*> FindModelFor(const SelectStatement& stmt) const;

  const Catalog* data_;
  const ModelCatalog* models_;
  const DomainRegistry* domains_;
  std::map<uint64_t, LegalCombinationFilter> legal_filters_;
  size_t max_tuples_ = 20'000'000;
};

/// Extracts per-column [lo, hi] constraints from the conjunctive part of a
/// predicate (handles =, <, <=, >, >=, BETWEEN-desugared AND chains).
/// Columns without constraints are absent from the map.
std::map<std::string, std::pair<double, double>> ExtractRangeConstraints(
    const Expr* where);

/// Collects the column names referenced anywhere in a statement.
std::vector<std::string> ReferencedColumns(const SelectStatement& stmt);

}  // namespace laws

#endif  // LAWSDB_AQP_MODEL_AQP_H_

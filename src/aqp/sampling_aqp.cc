#include "aqp/sampling_aqp.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "query/expr_eval.h"
#include "stats/descriptive.h"

namespace laws {

SamplingEngine::SamplingEngine(const Table& table, double fraction,
                               uint64_t seed)
    : sample_{table.schema()}, population_rows_(table.num_rows()) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  Rng rng(seed);
  std::vector<uint32_t> picked;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (rng.Bernoulli(fraction)) picked.push_back(static_cast<uint32_t>(i));
  }
  sample_ = table.GatherRows(picked);
  actual_fraction_ =
      population_rows_ > 0
          ? static_cast<double>(picked.size()) /
                static_cast<double>(population_rows_)
          : 0.0;
}

Result<SampleEstimate> SamplingEngine::EstimateAggregate(
    AggregateFunc agg, const std::string& column, const Expr* where) const {
  const Table* current = &sample_;
  Table filtered{Schema{}};
  if (where != nullptr) {
    LAWS_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                          FilterRows(*where, sample_));
    filtered = sample_.GatherRows(rows);
    current = &filtered;
  }
  SampleEstimate est;
  est.sample_rows_used = current->num_rows();
  const double scale =
      actual_fraction_ > 0.0 ? 1.0 / actual_fraction_ : 0.0;

  if (agg == AggregateFunc::kCount) {
    const auto k = static_cast<double>(current->num_rows());
    est.value = k * scale;
    // Binomial CI on the qualifying fraction, scaled to the population.
    if (population_rows_ > 0 && actual_fraction_ > 0.0) {
      const auto n = static_cast<double>(sample_.num_rows());
      if (n > 0) {
        const double p = k / n;
        est.ci_half_width = 1.96 * std::sqrt(p * (1.0 - p) / n) *
                            static_cast<double>(population_rows_);
      }
    }
    return est;
  }

  LAWS_ASSIGN_OR_RETURN(const Column* col, current->ColumnByName(column));
  Moments m;
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsNull(i)) continue;
    LAWS_ASSIGN_OR_RETURN(double v, col->NumericAt(i));
    m.Add(v);
  }
  const double k = static_cast<double>(m.count());
  const double se_mean =
      m.count() > 1 ? m.stddev_sample() / std::sqrt(k) : 0.0;
  switch (agg) {
    case AggregateFunc::kSum:
      est.value = m.sum() * scale;
      est.ci_half_width = 1.96 * se_mean * k * scale;
      return est;
    case AggregateFunc::kAvg:
      est.value = m.mean();
      est.ci_half_width = 1.96 * se_mean;
      return est;
    case AggregateFunc::kMin:
      est.value = m.count() > 0 ? m.min() : 0.0;
      est.ci_half_width = 0.0;  // biased; no CLT bound
      return est;
    case AggregateFunc::kMax:
      est.value = m.count() > 0 ? m.max() : 0.0;
      est.ci_half_width = 0.0;
      return est;
    case AggregateFunc::kCount:
      break;  // handled above
    case AggregateFunc::kVariance:
    case AggregateFunc::kStddev:
      return Status::Unimplemented("sampled VARIANCE/STDDEV not implemented");
  }
  return Status::Internal("unknown aggregate");
}

Result<StratifiedSamplingEngine> StratifiedSamplingEngine::Build(
    const Table& table, const std::string& group_column, size_t per_group_cap,
    uint64_t seed) {
  if (per_group_cap == 0) {
    return Status::InvalidArgument("per_group_cap must be positive");
  }
  LAWS_ASSIGN_OR_RETURN(const Column* group,
                        table.ColumnByName(group_column));
  if (group->type() != DataType::kInt64) {
    return Status::TypeMismatch("stratification column must be INT64");
  }
  // Reservoir-sample up to cap rows per group in one pass.
  struct Stratum {
    std::vector<uint32_t> rows;  // reservoir
    size_t seen = 0;
  };
  std::unordered_map<int64_t, Stratum> strata;
  Rng rng(seed);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (group->IsNull(i)) continue;
    Stratum& s = strata[group->Int64At(i)];
    ++s.seen;
    if (s.rows.size() < per_group_cap) {
      s.rows.push_back(static_cast<uint32_t>(i));
    } else {
      const auto j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(s.seen) - 1));
      if (j < per_group_cap) s.rows[j] = static_cast<uint32_t>(i);
    }
  }
  std::vector<uint32_t> picked;
  std::vector<double> weights;
  for (const auto& [key, s] : strata) {
    const double w = static_cast<double>(s.seen) /
                     static_cast<double>(s.rows.size());
    for (uint32_t r : s.rows) {
      picked.push_back(r);
      weights.push_back(w);
    }
  }
  return StratifiedSamplingEngine(table.GatherRows(picked),
                                  std::move(weights), strata.size());
}

Result<SampleEstimate> StratifiedSamplingEngine::EstimateAggregate(
    AggregateFunc agg, const std::string& column, const Expr* where) const {
  // Evaluate the predicate over the sample; keep qualifying indices so the
  // per-row weights stay aligned.
  std::vector<uint32_t> rows;
  if (where != nullptr) {
    LAWS_ASSIGN_OR_RETURN(rows, FilterRows(*where, sample_));
  } else {
    rows.resize(sample_.num_rows());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  }
  SampleEstimate est;
  est.sample_rows_used = rows.size();

  if (agg == AggregateFunc::kCount) {
    double count = 0.0, var = 0.0;
    for (uint32_t r : rows) {
      count += weights_[r];
      var += weights_[r] * (weights_[r] - 1.0);  // HT variance contribution
    }
    est.value = count;
    est.ci_half_width = 1.96 * std::sqrt(std::max(var, 0.0));
    return est;
  }

  LAWS_ASSIGN_OR_RETURN(const Column* col, sample_.ColumnByName(column));
  double wsum = 0.0, wvsum = 0.0;
  double mn = 0.0, mx = 0.0;
  bool any = false;
  Moments m;  // unweighted, for a rough spread estimate
  for (uint32_t r : rows) {
    if (col->IsNull(r)) continue;
    LAWS_ASSIGN_OR_RETURN(double v, col->NumericAt(r));
    if (!any) {
      mn = mx = v;
      any = true;
    }
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    wsum += weights_[r];
    wvsum += weights_[r] * v;
    m.Add(v);
  }
  const double k = static_cast<double>(m.count());
  const double se_mean = m.count() > 1 ? m.stddev_sample() / std::sqrt(k) : 0.0;
  switch (agg) {
    case AggregateFunc::kSum:
      est.value = wvsum;
      est.ci_half_width = 1.96 * se_mean * wsum;
      return est;
    case AggregateFunc::kAvg:
      est.value = wsum > 0.0 ? wvsum / wsum : 0.0;
      est.ci_half_width = 1.96 * se_mean;
      return est;
    case AggregateFunc::kMin:
      est.value = any ? mn : 0.0;
      return est;
    case AggregateFunc::kMax:
      est.value = any ? mx : 0.0;
      return est;
    case AggregateFunc::kCount:
      break;  // handled above
    case AggregateFunc::kVariance:
    case AggregateFunc::kStddev:
      return Status::Unimplemented("sampled VARIANCE/STDDEV not implemented");
  }
  return Status::Internal("unknown aggregate");
}

}  // namespace laws

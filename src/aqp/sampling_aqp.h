#ifndef LAWSDB_AQP_SAMPLING_AQP_H_
#define LAWSDB_AQP_SAMPLING_AQP_H_

#include <string>

#include "common/random.h"
#include "common/result.h"
#include "query/ast.h"
#include "storage/table.h"

namespace laws {

/// An aggregate estimate with a CLT confidence interval.
struct SampleEstimate {
  double value = 0.0;
  /// Half-width of the ~95% confidence interval.
  double ci_half_width = 0.0;
  size_t sample_rows_used = 0;
};

/// The sampling-based AQP baseline (paper §1, refs [16, 2] — SciBORQ /
/// BlinkDB style): a uniform row sample is drawn once; aggregate queries
/// are answered from the sample with scaled estimators and CLT error bars.
class SamplingEngine {
 public:
  /// Draws a uniform sample of ~`fraction` of the table's rows.
  SamplingEngine(const Table& table, double fraction, uint64_t seed = 42);

  const Table& sample() const { return sample_; }
  size_t sample_rows() const { return sample_.num_rows(); }
  double fraction() const { return actual_fraction_; }
  size_t SampleBytes() const { return sample_.MemoryBytes(); }

  /// Estimates agg(column) over rows satisfying `where` (may be null).
  /// COUNT and SUM are scaled by 1/fraction; AVG/MIN/MAX are unscaled
  /// (MIN/MAX from a sample are biased — reported without a CI).
  Result<SampleEstimate> EstimateAggregate(AggregateFunc agg,
                                           const std::string& column,
                                           const Expr* where) const;

 private:
  Table sample_;
  double actual_fraction_;
  size_t population_rows_;
};

/// BlinkDB-style *stratified* sample: every group keeps up to
/// `per_group_cap` rows regardless of its size, so selective per-group
/// predicates still find sample rows (the failure mode of uniform samples
/// the paper's AQP comparison exposes). Rows carry per-group weights
/// group_size / sampled_size; estimators are Horvitz-Thompson style.
class StratifiedSamplingEngine {
 public:
  /// Builds the sample over `group_column` (INT64).
  static Result<StratifiedSamplingEngine> Build(const Table& table,
                                                const std::string& group_column,
                                                size_t per_group_cap,
                                                uint64_t seed = 42);

  /// Weighted estimate of agg(column) over rows satisfying `where`.
  /// COUNT/SUM scale by row weights; AVG is the weighted mean; MIN/MAX are
  /// unscaled sample extremes (no CI).
  Result<SampleEstimate> EstimateAggregate(AggregateFunc agg,
                                           const std::string& column,
                                           const Expr* where) const;

  size_t sample_rows() const { return sample_.num_rows(); }
  size_t SampleBytes() const { return sample_.MemoryBytes(); }
  size_t num_groups() const { return num_groups_; }

 private:
  StratifiedSamplingEngine(Table sample, std::vector<double> weights,
                           size_t num_groups)
      : sample_(std::move(sample)),
        weights_(std::move(weights)),
        num_groups_(num_groups) {}

  Table sample_;
  std::vector<double> weights_;  // parallel to sample_ rows
  size_t num_groups_;
};

}  // namespace laws

#endif  // LAWSDB_AQP_SAMPLING_AQP_H_

#ifndef LAWSDB_COMMON_BYTES_H_
#define LAWSDB_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace laws {

/// Append-only little-endian byte sink used by storage serialization and the
/// compression encoders.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Zigzag-encoded signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> TakeData() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential little-endian reader over a byte span; every accessor is
/// bounds-checked and returns a Status/Result rather than reading past the
/// end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Truncated("u8");
    return data_[pos_++];
  }
  Result<uint32_t> GetU32() { return GetRawAs<uint32_t>("u32"); }
  Result<uint64_t> GetU64() { return GetRawAs<uint64_t>("u64"); }
  Result<int64_t> GetI64() { return GetRawAs<int64_t>("i64"); }
  Result<double> GetDouble() { return GetRawAs<double>("double"); }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated("varint");
      const uint8_t b = data_[pos_++];
      if (shift >= 64) return Status::ParseError("varint too long");
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  Result<int64_t> GetSignedVarint() {
    LAWS_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  Result<std::string> GetString() {
    LAWS_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    // `n > remaining()` rather than `pos_ + n > size_`: a corrupt varint
    // near UINT64_MAX would wrap the addition and pass the check.
    if (n > remaining()) return Truncated("string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  Status GetRaw(void* out, size_t n) {
    if (n > remaining()) return Truncated("raw");
    if (n == 0) return Status::OK();  // out may be null (empty vector .data())
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// Reads a varint element count and validates it against the bytes that
  /// are actually left: a count claiming more than
  /// remaining() / min_bytes_per_elem elements cannot possibly be satisfied
  /// by this buffer, so it fails fast with kParseError instead of letting
  /// the caller allocate gigabytes from a corrupt length. Use for every
  /// resize()/reserve() driven by deserialized data whose per-element
  /// encoded size has a fixed lower bound.
  Result<uint64_t> GetCount(uint64_t min_bytes_per_elem, const char* what) {
    LAWS_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    const uint64_t denom = min_bytes_per_elem == 0 ? 1 : min_bytes_per_elem;
    if (n > remaining() / denom) {
      return Status::ParseError(std::string("implausible count reading ") +
                                what);
    }
    return n;
  }

  /// Overflow-safe bounds check for an upcoming `count` elements of
  /// `elem_bytes` each (e.g. before resize()+GetRaw of a typed payload).
  Status CheckAvailable(uint64_t count, uint64_t elem_bytes,
                        const char* what) const {
    const uint64_t denom = elem_bytes == 0 ? 1 : elem_bytes;
    if (count > remaining() / denom) return Truncated(what);
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> GetRawAs(const char* what) {
    if (sizeof(T) > remaining()) return Truncated(what);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Status Truncated(const char* what) const {
    return Status::ParseError(std::string("truncated buffer reading ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace laws

#endif  // LAWSDB_COMMON_BYTES_H_

#include "common/crc32c.h"

#include <bit>
#include <cstring>

namespace laws {
namespace {

/// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

/// Lookup tables for slicing-by-8, generated once at first use.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
  const auto& tab = Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // The 8-byte inner loop assumes little-endian word layout; byte-at-a-time
  // is the portable fallback (and handles the unaligned head/tail).
  if constexpr (std::endian::native == std::endian::little) {
    while (n != 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
      crc = tab.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
      --n;
    }
    while (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, sizeof(w));
      w ^= crc;
      crc = tab.t[7][w & 0xFF] ^ tab.t[6][(w >> 8) & 0xFF] ^
            tab.t[5][(w >> 16) & 0xFF] ^ tab.t[4][(w >> 24) & 0xFF] ^
            tab.t[3][(w >> 32) & 0xFF] ^ tab.t[2][(w >> 40) & 0xFF] ^
            tab.t[1][(w >> 48) & 0xFF] ^ tab.t[0][(w >> 56) & 0xFF];
      p += 8;
      n -= 8;
    }
  }
  while (n-- != 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const std::vector<uint8_t>& buf, uint32_t crc) {
  return Crc32c(buf.data(), buf.size(), crc);
}

}  // namespace laws

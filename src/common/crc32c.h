#ifndef LAWSDB_COMMON_CRC32C_H_
#define LAWSDB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace laws {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) over `data[0..n)`,
/// extending `crc` (pass 0 to start a fresh checksum). This is the
/// checksum guarding every section of the persistence image format; the
/// Castagnoli polynomial is the one used by RocksDB/LevelDB/iSCSI and has
/// better burst-error detection than the zlib CRC32.
///
/// Software slicing-by-8 implementation (~GB/s); on the save/load path the
/// cost is dwarfed by DEFLATE so checksumming stays well under the 5%
/// overhead budget.
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

uint32_t Crc32c(const std::vector<uint8_t>& buf, uint32_t crc = 0);

}  // namespace laws

#endif  // LAWSDB_COMMON_CRC32C_H_

#include "common/env.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

#include "common/logging.h"

namespace laws {
namespace {

/// One warning per variable per process. Guarded by its own mutex; the
/// slow path only runs for malformed values, which are already an error
/// condition.
std::mutex& WarnMutex() {
  static std::mutex m;
  return m;
}

std::set<std::string>& WarnedNames() {
  static std::set<std::string> names;
  return names;
}

void WarnOnce(const char* name, const char* value, const char* why) {
  std::lock_guard<std::mutex> lock(WarnMutex());
  if (!WarnedNames().insert(name).second) return;
  LAWS_LOG(Warning) << "ignoring " << name << "=\"" << value << "\": " << why
                    << " (using default)";
}

bool EqualsAsciiLower(const char* text, const char* lower) {
  for (; *text != '\0' && *lower != '\0'; ++text, ++lower) {
    const char c = (*text >= 'A' && *text <= 'Z')
                       ? static_cast<char>(*text - 'A' + 'a')
                       : *text;
    if (c != *lower) return false;
  }
  return *text == '\0' && *lower == '\0';
}

}  // namespace

bool ParseInt64Strict(const char* text, int64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  // Reject leading whitespace explicitly: strtoll would skip it, and a
  // knob value with stray spaces is a script bug worth surfacing.
  if (*text == ' ' || *text == '\t') return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return false;  // no digits / trailing junk
  if (errno == ERANGE) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

int64_t EnvInt64(const char* name, int64_t def, int64_t min_value,
                 int64_t max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return def;
  int64_t value = 0;
  if (!ParseInt64Strict(text, &value)) {
    WarnOnce(name, text, "not an integer");
    return def;
  }
  if (value < min_value || value > max_value) {
    WarnOnce(name, text, "out of range");
    return def;
  }
  return value;
}

bool ParseFlagValue(const char* text, bool def) {
  if (text == nullptr || *text == '\0') return def;
  if (EqualsAsciiLower(text, "0") || EqualsAsciiLower(text, "false") ||
      EqualsAsciiLower(text, "off")) {
    return false;
  }
  return true;
}

bool EnvFlag(const char* name, bool def) {
  return ParseFlagValue(std::getenv(name), def);
}

void ResetEnvWarningsForTest() {
  std::lock_guard<std::mutex> lock(WarnMutex());
  WarnedNames().clear();
}

}  // namespace laws

#ifndef LAWSDB_COMMON_ENV_H_
#define LAWSDB_COMMON_ENV_H_

#include <cstdint>

namespace laws {

/// Unified parsing for the LAWS_* environment knobs. Every knob in the
/// codebase goes through these helpers instead of a bare atol/strtol so
/// the rules are uniform everywhere:
///
///   - integers parse strictly: optional sign, decimal digits, nothing
///     else. "4096abc" is malformed (the old atol in block_store.cc
///     silently read it as 4096), as are "", " 42" and "0x10";
///   - a malformed or out-of-range value falls back to the default and
///     logs one warning per variable per process (warn-once, so a knob
///     typo'd in a driver script cannot flood stderr from a hot path);
///   - flags accept "0"/"false"/"off" (case-insensitive) as false and
///     any other non-empty value as true; unset/empty means default.
///
/// The full knob inventory lives in README.md ("Environment knobs").

/// Strict full-string integer parse. Returns false on null/empty input,
/// trailing garbage, or overflow; `*out` is written only on success.
bool ParseInt64Strict(const char* text, int64_t* out);

/// Reads an integer knob. Unset returns `def`; malformed input or a
/// value outside [min_value, max_value] warns once and returns `def`.
int64_t EnvInt64(const char* name, int64_t def, int64_t min_value,
                 int64_t max_value);

/// Reads a boolean knob. Unset or empty returns `def`; "0", "false",
/// "off" (case-insensitive) are false; any other value is true.
bool EnvFlag(const char* name, bool def);

/// Flag semantics over an explicit value (exposed for tests): nullptr or
/// "" yields `def`.
bool ParseFlagValue(const char* text, bool def);

/// Testing hook: clears the warn-once registry so malformed-knob tests
/// can assert the warning fires.
void ResetEnvWarningsForTest();

}  // namespace laws

#endif  // LAWSDB_COMMON_ENV_H_

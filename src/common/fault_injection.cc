#include "common/fault_injection.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace laws {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("LAWS_FAULTS");
  if (env == nullptr || *env == '\0') return;
  for (const std::string& clause : Split(env, ',')) {
    if (Trim(clause).empty()) continue;
    std::string site;
    FaultSpec spec;
    if (ParseClause(std::string(Trim(clause)), &site, &spec)) {
      Arm(site, spec);
    } else {
      LAWS_LOG(Warning) << "ignoring malformed LAWS_FAULTS clause: " << clause;
    }
  }
}

bool FaultInjector::ParseClause(const std::string& clause, std::string* site,
                                FaultSpec* spec) {
  const size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *site = clause.substr(0, eq);
  std::string rhs = clause.substr(eq + 1);

  FaultSpec out;
  const size_t at = rhs.find('@');
  if (at != std::string::npos) {
    const std::string seed_str = rhs.substr(at + 1);
    if (seed_str.empty()) return false;
    char* end = nullptr;
    out.seed = std::strtoull(seed_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    rhs = rhs.substr(0, at);
  }
  const size_t colon = rhs.find(':');
  std::string kind = rhs.substr(0, colon);
  if (colon != std::string::npos) {
    const std::string arg_str = rhs.substr(colon + 1);
    if (arg_str.empty()) return false;
    char* end = nullptr;
    out.arg = std::strtoull(arg_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
  }
  if (kind == "error") {
    out.kind = FaultSpec::Kind::kError;
  } else if (kind == "truncate") {
    out.kind = FaultSpec::Kind::kTruncate;
  } else if (kind == "bitflip") {
    out.kind = FaultSpec::Kind::kBitFlip;
  } else {
    return false;
  }
  *spec = out;
  return true;
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[site] = Armed{spec, 0};
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(site);
  active_.store(!armed_.empty(), std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  active_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFireLocked(const std::string& site,
                                     FaultSpec::Kind kind, FaultSpec* spec) {
  ++hits_[site];
  auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  Armed& a = it->second;
  if (a.spec.kind != kind) return false;
  if (a.spec.skip_hits > 0) {
    --a.spec.skip_hits;
    return false;
  }
  if (a.spec.max_triggers >= 0 &&
      a.triggers_fired >= static_cast<uint64_t>(a.spec.max_triggers)) {
    return false;
  }
  ++a.triggers_fired;
  *spec = a.spec;
  return true;
}

Status FaultInjector::Check(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultSpec spec;
  if (!ShouldFireLocked(site, FaultSpec::Kind::kError, &spec)) {
    return Status::OK();
  }
  return Status::IOError(std::string("injected fault at ") + site);
}

uint64_t FaultInjector::AllowedWriteBytes(const char* site, uint64_t n,
                                          bool* fail_after) {
  *fail_after = false;
  if (!active()) return n;
  std::lock_guard<std::mutex> lock(mu_);
  FaultSpec spec;
  if (!ShouldFireLocked(site, FaultSpec::Kind::kTruncate, &spec)) return n;
  *fail_after = true;
  return spec.arg < n ? spec.arg : n;
}

bool FaultInjector::CorruptBuffer(const char* site, uint8_t* data, size_t n) {
  if (!active() || n == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  FaultSpec spec;
  if (!ShouldFireLocked(site, FaultSpec::Kind::kBitFlip, &spec)) return false;
  Rng rng(spec.seed);
  const uint64_t flips = spec.arg == 0 ? 1 : spec.arg;
  for (uint64_t i = 0; i < flips; ++i) {
    const uint64_t bit = rng.NextU64() % (n * 8);
    data[bit >> 3] ^= static_cast<uint8_t>(1u << (bit & 7));
  }
  return true;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

std::vector<std::string> FaultInjector::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> sites;
  sites.reserve(armed_.size());
  for (const auto& [site, armed] : armed_) sites.push_back(site);
  return sites;
}

}  // namespace laws

#ifndef LAWSDB_COMMON_FAULT_INJECTION_H_
#define LAWSDB_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace laws {

/// Deterministic fault-point registry. Code on a failure-critical path
/// declares named sites (`LAWS_FAULT_POINT("persist/rename")`); tests (or
/// the `LAWS_FAULTS` environment variable) arm a site with a fault kind,
/// and the site then fails in a fully replayable way — every random choice
/// (bit positions for flips) comes from a seeded RNG stored in the spec.
///
/// When nothing is armed anywhere a fault point costs one relaxed atomic
/// load and a predictable branch, so production paths can keep their
/// points compiled in.
///
/// Env syntax (comma-separated):
///   LAWS_FAULTS="persist/rename=error,persist/write_image=truncate:512"
///   LAWS_FAULTS="persist/write_image=bitflip:3@42"   # 3 flips, seed 42
struct FaultSpec {
  enum class Kind : uint8_t {
    kError,     ///< The site returns an injected kIOError.
    kTruncate,  ///< Write sites stop after `arg` bytes, then fail.
    kBitFlip,   ///< Buffer sites flip `arg` seeded-random bits in place.
  };

  Kind kind = Kind::kError;
  /// kTruncate: bytes allowed through before the failure.
  /// kBitFlip: number of bits to flip (0 is treated as 1).
  uint64_t arg = 0;
  /// Seed for every random decision this spec makes (replayability).
  uint64_t seed = 0x1AB5DBu;
  /// Skip this many hits of the site before firing (0 = fire on first).
  uint64_t skip_hits = 0;
  /// Stop firing after this many triggers; -1 = unlimited.
  int64_t max_triggers = -1;
};

class FaultInjector {
 public:
  /// Process-wide singleton. The first call parses `LAWS_FAULTS`.
  static FaultInjector& Instance();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// True when at least one site is armed (the fault-point fast gate).
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Probes `site` for kError faults; kTruncate/kBitFlip specs do not fire
  /// here (they fire at the matching buffer/write probe). Counts a hit.
  Status Check(const char* site);

  /// Write-path probe: returns the number of bytes (<= n) the caller may
  /// write. Sets `*fail_after` when an armed kTruncate fault fired — the
  /// caller writes the allowed prefix and then reports an injected error,
  /// modelling a torn write followed by a crash.
  uint64_t AllowedWriteBytes(const char* site, uint64_t n, bool* fail_after);

  /// Buffer probe: when `site` is armed with kBitFlip, flips the spec's
  /// seeded-random bits of data[0..n) in place and returns true.
  bool CorruptBuffer(const char* site, uint8_t* data, size_t n);

  /// Total times `site` was probed (any probe kind), for test assertions.
  uint64_t HitCount(const std::string& site) const;

  /// Sites currently armed, for diagnostics.
  std::vector<std::string> ArmedSites() const;

  /// Parses one `site=kind[:arg][@seed]` clause; exposed for tests.
  /// Returns false (and leaves `*site`/`*spec` unspecified) on bad syntax.
  static bool ParseClause(const std::string& clause, std::string* site,
                          FaultSpec* spec);

 private:
  FaultInjector();

  struct Armed {
    FaultSpec spec;
    uint64_t triggers_fired = 0;
  };

  /// Looks up `site`, applies skip/max-trigger bookkeeping, and returns
  /// whether a fault of `kind` fires now (copying the spec out). Specs of
  /// a different kind are left untouched so error/truncate/bitflip probes
  /// of the same site do not consume each other's triggers. Lock held.
  bool ShouldFireLocked(const std::string& site, FaultSpec::Kind kind,
                        FaultSpec* spec);

  mutable std::mutex mu_;
  std::atomic<bool> active_{false};
  std::map<std::string, Armed> armed_;
  std::map<std::string, uint64_t> hits_;
};

}  // namespace laws

/// Declares a named fault point: when the injector is active and `site` is
/// armed with an error fault, returns the injected Status from the
/// enclosing function. Near-zero cost when nothing is armed.
#define LAWS_FAULT_POINT(site)                                               \
  do {                                                                       \
    if (::laws::FaultInjector::Instance().active()) {                        \
      LAWS_RETURN_IF_ERROR(::laws::FaultInjector::Instance().Check(site));   \
    }                                                                        \
  } while (false)

#endif  // LAWSDB_COMMON_FAULT_INJECTION_H_

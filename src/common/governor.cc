#include "common/governor.h"

#include <cstdio>

#include "common/fault_injection.h"
#include "common/metrics.h"

namespace laws {
namespace {

thread_local QueryGovernor* t_current_governor = nullptr;

/// Governor accounting (cached pointers; see metrics.h): how often each
/// limit tripped, how quickly cancellations were observed, and how much
/// memory governed queries actually peaked at.
struct GovernorMetrics {
  Counter* canceled;
  Counter* deadline_exceeded;
  Counter* budget_exceeded;
  MetricHistogram* time_to_cancel_micros;
  MetricHistogram* peak_bytes;

  static GovernorMetrics& Get() {
    static GovernorMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return GovernorMetrics{
          reg.GetCounter("governor.canceled"),
          reg.GetCounter("governor.deadline_exceeded"),
          reg.GetCounter("governor.budget_exceeded"),
          reg.GetHistogram("governor.time_to_cancel_micros"),
          reg.GetHistogram("governor.peak_bytes")};
    }();
    return m;
  }
};

int64_t NowMicros(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

QueryGovernor::QueryGovernor(ResourceLimits limits)
    : limits_(limits),
      start_(std::chrono::steady_clock::now()),
      deadline_(limits.timeout_micros > 0
                    ? start_ + std::chrono::microseconds(limits.timeout_micros)
                    : std::chrono::steady_clock::time_point::max()) {}

QueryGovernor::~QueryGovernor() {
  if (any_charge_.load(std::memory_order_relaxed)) {
    GovernorMetrics::Get().peak_bytes->Record(
        static_cast<double>(peak_bytes()));
  }
}

void QueryGovernor::Cancel() {
  // Record the cancel instant only on the first call; late duplicate
  // cancels must not shrink the observed latency.
  bool expected = false;
  if (canceled_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    cancel_at_micros_.store(ElapsedMicros(), std::memory_order_release);
  }
}

int64_t QueryGovernor::ElapsedMicros() const { return NowMicros(start_); }

void QueryGovernor::RecordCancelObserved() {
  bool expected = false;
  if (!cancel_observed_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
    return;
  }
  GovernorMetrics& m = GovernorMetrics::Get();
  m.canceled->Add();
  const int64_t canceled_at = cancel_at_micros_.load(std::memory_order_acquire);
  const int64_t latency = ElapsedMicros() - canceled_at;
  m.time_to_cancel_micros->Record(
      static_cast<double>(latency > 0 ? latency : 0));
}

Status QueryGovernor::Poll() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  // External interrupt flag (shell SIGINT, session CancelCurrent): the
  // common unset case costs one relaxed load; a set flag is consumed
  // exactly once (racing pollers agree via the exchange) and becomes a
  // sticky Cancel on this governor.
  if (external_cancel_ != nullptr &&
      external_cancel_->load(std::memory_order_relaxed) &&
      external_cancel_->exchange(false, std::memory_order_acq_rel)) {
    Cancel();
  }
  // Deterministic chaos hook: an armed governor/poll fault forces a
  // cancellation race at exactly this probe (see fault_injection.h).
  if (FaultInjector::Instance().active()) {
    if (!FaultInjector::Instance().Check("governor/poll").ok()) Cancel();
  }
  if (canceled_.load(std::memory_order_acquire)) {
    RecordCancelObserved();
    return Status::Canceled("query canceled");
  }
  if (limits_.timeout_micros > 0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    bool expected = false;
    if (deadline_reported_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      GovernorMetrics::Get().deadline_exceeded->Add();
    }
    return Status::DeadlineExceeded(
        "query deadline of " + std::to_string(limits_.timeout_micros / 1000) +
        "." + std::to_string((limits_.timeout_micros % 1000) / 100) +
        " ms exceeded");
  }
  return Status::OK();
}

Status QueryGovernor::Charge(uint64_t bytes, const char* what) {
  if (bytes == 0) return Status::OK();
  any_charge_.store(true, std::memory_order_relaxed);
  // Deterministic chaos hook: an armed governor/alloc fault turns this
  // charge into a budget exhaustion regardless of the actual budget.
  bool injected = false;
  if (FaultInjector::Instance().active()) {
    injected = !FaultInjector::Instance().Check("governor/alloc").ok();
  }
  const uint64_t used =
      used_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Track the high-water mark (relaxed CAS max: charges are coarse).
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (used > peak && !peak_bytes_.compare_exchange_weak(
                            peak, used, std::memory_order_relaxed)) {
  }
  if (injected ||
      (limits_.memory_budget_bytes > 0 && used > limits_.memory_budget_bytes)) {
    used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    GovernorMetrics::Get().budget_exceeded->Add();
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "query memory budget exceeded: charging %llu bytes for %s "
                  "on top of %llu in use (budget %llu)%s",
                  static_cast<unsigned long long>(bytes),
                  what != nullptr ? what : "materialization",
                  static_cast<unsigned long long>(used - bytes),
                  static_cast<unsigned long long>(limits_.memory_budget_bytes),
                  injected ? " [injected]" : "");
    return Status::ResourceExhausted(buf);
  }
  return Status::OK();
}

void QueryGovernor::Release(uint64_t bytes) {
  if (bytes == 0) return;
  used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::string QueryGovernor::DescribeLine() const {
  char buf[224];
  char deadline_text[48];
  if (limits_.timeout_micros > 0) {
    std::snprintf(deadline_text, sizeof(deadline_text), "%.3fms",
                  static_cast<double>(limits_.timeout_micros) / 1000.0);
  } else {
    std::snprintf(deadline_text, sizeof(deadline_text), "none");
  }
  char budget_text[48];
  if (limits_.memory_budget_bytes > 0) {
    std::snprintf(budget_text, sizeof(budget_text), "%lluB",
                  static_cast<unsigned long long>(limits_.memory_budget_bytes));
  } else {
    std::snprintf(budget_text, sizeof(budget_text), "none");
  }
  const char* tripped = canceled()
                            ? " tripped=canceled"
                            : (deadline_reported_.load(std::memory_order_relaxed)
                                   ? " tripped=deadline"
                                   : "");
  std::snprintf(buf, sizeof(buf),
                "governor: deadline=%s budget=%s peak_mem=%lluB polls=%llu%s\n",
                deadline_text, budget_text,
                static_cast<unsigned long long>(peak_bytes()),
                static_cast<unsigned long long>(polls()), tripped);
  return buf;
}

QueryGovernor* QueryGovernor::Current() { return t_current_governor; }

ScopedGovernor::ScopedGovernor(QueryGovernor* governor)
    : prev_(t_current_governor) {
  t_current_governor = governor;
}

ScopedGovernor::~ScopedGovernor() { t_current_governor = prev_; }

Status ScopedCharge::Acquire(uint64_t bytes, const char* what) {
  QueryGovernor* gov = QueryGovernor::Current();
  if (gov == nullptr || bytes == 0) return Status::OK();
  if (governor_ != nullptr && governor_ != gov) {
    return Status::Internal("ScopedCharge reused across governors");
  }
  LAWS_RETURN_IF_ERROR(gov->Charge(bytes, what));
  governor_ = gov;
  bytes_ += bytes;
  return Status::OK();
}

void ScopedCharge::ReleaseNow() {
  if (governor_ != nullptr && bytes_ > 0) governor_->Release(bytes_);
  governor_ = nullptr;
  bytes_ = 0;
}

}  // namespace laws

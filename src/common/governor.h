#ifndef LAWSDB_COMMON_GOVERNOR_H_
#define LAWSDB_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace laws {

/// Per-query resource limits enforced by QueryGovernor. Zero means
/// "unlimited" for both fields, which is also the default — an idle
/// governor (installed but unconstrained) costs one TLS read plus a
/// relaxed load per poll site.
struct ResourceLimits {
  /// Wall-clock deadline, measured from governor construction. <= 0
  /// disables the deadline.
  int64_t timeout_micros = 0;
  /// Memory budget for query-owned materializations (selection vectors,
  /// hash tables, sort permutations, intermediate tables). 0 disables.
  uint64_t memory_budget_bytes = 0;
};

/// The per-query resource governor: a deadline, a cooperative
/// cancellation token, and a memory-accounting arena, shared by every
/// stage of one query's execution. Long-running loops poll it (via
/// LAWS_GOVERNOR_POLL or Poll()) every batch/block/group/few-thousand
/// rows; large materializations charge it (via ScopedCharge). When a
/// limit trips, the poll/charge site returns a typed governor Status
/// (kCanceled / kDeadlineExceeded / kResourceExhausted) that unwinds the
/// query cleanly through the ordinary Result<> plumbing — never a crash,
/// never a torn catalog (fits register models only after success).
///
/// Installation is scoped and thread-local (like TraceSink): the driver
/// wraps execution in a ScopedGovernor and every poll site reads
/// QueryGovernor::Current(). ParallelForChunks re-installs the caller's
/// governor inside worker lanes and skips chunks whose governor has
/// already tripped, so a canceled query stops burning the pool.
///
/// Cancel() may be called from any thread (the token is atomic); all
/// other mutators are called from the query's executing threads.
///
/// Fault-injection sites (tools can arm via LAWS_FAULTS):
///   governor/poll   — an armed error forces cancellation at that poll;
///   governor/alloc  — an armed error forces budget exhaustion at that
///                     charge.
class QueryGovernor {
 public:
  explicit QueryGovernor(ResourceLimits limits = {});
  ~QueryGovernor();

  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  /// Requests cooperative cancellation. Thread-safe, idempotent, sticky.
  void Cancel();
  bool canceled() const {
    return canceled_.load(std::memory_order_acquire);
  }

  /// Binds a long-lived external interrupt flag: when `flag` is found set
  /// at a poll, it is consumed (exchanged to false) and translated into
  /// Cancel(). This is the safe cancel-token handoff for drivers whose
  /// cancel source outlives any one query (a shell SIGINT handler, a
  /// server session's CancelCurrent): the asynchronous canceller touches
  /// only the flag — which lives as long as the session — never a
  /// governor pointer that may already be destroyed. Setting an atomic
  /// bool is async-signal-safe. Call before the query starts (not
  /// concurrently with polls); `flag` may be nullptr to unbind. An
  /// interrupt that no poll observes (the query finished first, or none
  /// was running) stays set and cancels the session's next query — the
  /// "armed cancel" semantics drivers surface to users.
  void BindExternalCancel(std::atomic<bool>* flag) {
    external_cancel_ = flag;
  }

  /// The cancellation point: returns OK, or the typed governor error
  /// (kCanceled / kDeadlineExceeded). Deadline and cancellation are
  /// sticky, so once Poll fails it keeps failing — callers that run
  /// parallel regions re-poll after the barrier and get the same error.
  Status Poll();

  /// Charges `bytes` against the budget. On overflow the charge is
  /// rolled back and kResourceExhausted is returned, so accounting stays
  /// symmetric even on the failure path. `what` names the consumer for
  /// the error message ("hash join build", ...).
  Status Charge(uint64_t bytes, const char* what);
  void Release(uint64_t bytes);

  uint64_t bytes_in_use() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  const ResourceLimits& limits() const { return limits_; }

  /// Wall-clock microseconds since construction (for diagnostics).
  int64_t ElapsedMicros() const;

  /// One-line render for EXPLAIN ANALYZE: limits, peak memory, polls,
  /// and whether a limit tripped.
  std::string DescribeLine() const;

  /// The governor installed on this thread, or nullptr. Poll sites are
  /// expected to do: if (auto* g = QueryGovernor::Current()) ... .
  static QueryGovernor* Current();

 private:
  friend class ScopedGovernor;

  /// Records the cancel→observation latency histogram exactly once.
  void RecordCancelObserved();

  const ResourceLimits limits_;
  const std::chrono::steady_clock::time_point start_;
  const std::chrono::steady_clock::time_point deadline_;

  /// Session-lifetime interrupt flag (see BindExternalCancel); not owned.
  std::atomic<bool>* external_cancel_ = nullptr;

  std::atomic<bool> canceled_{false};
  /// steady_clock ticks at the moment Cancel() first ran (0 = never).
  std::atomic<int64_t> cancel_at_micros_{0};
  std::atomic<bool> cancel_observed_{false};
  std::atomic<bool> deadline_reported_{false};

  std::atomic<uint64_t> used_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> polls_{0};
  std::atomic<bool> any_charge_{false};
};

/// RAII thread-local installation of a governor. Nesting-safe (saves and
/// restores the previous governor); installing nullptr is a no-op shield
/// that uninstalls for the scope.
class ScopedGovernor {
 public:
  explicit ScopedGovernor(QueryGovernor* governor);
  ~ScopedGovernor();

  ScopedGovernor(const ScopedGovernor&) = delete;
  ScopedGovernor& operator=(const ScopedGovernor&) = delete;

 private:
  QueryGovernor* prev_;
};

/// RAII memory charge against the current governor. Acquire() is a no-op
/// (and returns OK) when no governor is installed or the bytes are zero;
/// otherwise the charge is released on destruction. One ScopedCharge can
/// Acquire() several times (charges accumulate; one release at the end),
/// which fits staged operators that grow their footprint as they run.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ~ScopedCharge() { ReleaseNow(); }

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Charges against the governor current *at this call*; mixing
  /// governors across Acquire calls on one ScopedCharge is a bug.
  Status Acquire(uint64_t bytes, const char* what);
  void ReleaseNow();

  uint64_t held_bytes() const { return bytes_; }

 private:
  QueryGovernor* governor_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace laws

/// Polls the current governor (if any) and returns its typed error from
/// the enclosing function when a limit has tripped. This is the standard
/// cancellation point for long-running loops; call it once per
/// batch/block/group or every few thousand rows.
#define LAWS_GOVERNOR_POLL()                                     \
  do {                                                           \
    if (::laws::QueryGovernor* _laws_gov =                       \
            ::laws::QueryGovernor::Current()) {                  \
      LAWS_RETURN_IF_ERROR(_laws_gov->Poll());                   \
    }                                                            \
  } while (false)

#endif  // LAWSDB_COMMON_GOVERNOR_H_

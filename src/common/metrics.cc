#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/string_util.h"

namespace laws {
namespace {

/// Bucket index for a non-negative value: 0 holds [0, 1), bucket i >= 1
/// holds [2^(i-1), 2^i). Negative/NaN values clamp into bucket 0.
int BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;
  const int e = std::ilogb(value) + 1;
  return std::min(e, 63);
}

/// Geometric midpoint of a bucket, the representative quantile value.
double BucketMid(int index) {
  if (index == 0) return 0.5;
  const double lo = std::ldexp(1.0, index - 1);
  return lo * 1.5;
}

}  // namespace

void MetricHistogram::Record(double value) {
  if (std::isnan(value)) return;  // a poisoned sample carries no information
  if (value < 0.0) value = 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

uint64_t MetricHistogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double MetricHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double MetricHistogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double MetricHistogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : max_;
}

double MetricHistogram::Mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double MetricHistogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Clamp the bucket representative into the observed range so
      // degenerate histograms answer exactly.
      return std::min(std::max(BucketMid(i), min_), max_);
    }
  }
  return max_;
}

void MetricHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(buckets_, buckets_ + kBuckets, 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return it->second.get();
}

std::vector<CounterSample> MetricsRegistry::CounterSamples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    const uint64_t v = counter->value();
    if (v != 0) out.push_back(CounterSample{name, v});
  }
  return out;
}

std::vector<HistogramSample> MetricsRegistry::HistogramSamples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    if (h->count() == 0) continue;
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->Mean();
    s.p50 = h->Quantile(0.5);
    s.p95 = h->Quantile(0.95);
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::Render() const {
  const auto counters = CounterSamples();
  const auto histograms = HistogramSamples();
  std::string out;
  char buf[256];
  if (counters.empty() && histograms.empty()) {
    return "(no metrics recorded)\n";
  }
  if (!counters.empty()) {
    out += "counters:\n";
    for (const CounterSample& c : counters) {
      std::snprintf(buf, sizeof(buf), "  %-44s %12llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += buf;
    }
  }
  if (!histograms.empty()) {
    std::snprintf(buf, sizeof(buf), "histograms:%33s %10s %10s %10s %10s\n",
                  "count", "mean", "p50", "p95", "max");
    out += buf;
    for (const HistogramSample& h : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-34s %8llu %10.4g %10.4g %10.4g %10.4g\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    h.mean, h.p50, h.p95, h.max);
      out += buf;
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& key, const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + key + "\": " + value;
  };
  for (const CounterSample& c : CounterSamples()) {
    append("counter." + c.name, std::to_string(c.value));
  }
  char buf[64];
  for (const HistogramSample& h : HistogramSamples()) {
    append("histogram." + h.name + ".count", std::to_string(h.count));
    std::snprintf(buf, sizeof(buf), "%.9g", h.sum);
    append("histogram." + h.name + ".sum", buf);
    std::snprintf(buf, sizeof(buf), "%.9g", h.p95);
    append("histogram." + h.name + ".p95", buf);
  }
  out += "}";
  return out;
}

}  // namespace laws

#ifndef LAWSDB_COMMON_METRICS_H_
#define LAWSDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace laws {

/// Process-wide observability registry: named monotonic counters and
/// value/latency histograms. This is the accounting substrate for the
/// paper's Figure 2 loop — which queries were answered from models vs.
/// exact scans, with what error bounds, at what cost — surfaced through
/// the shell's `metrics` command, EXPLAIN ANALYZE, and the BENCH_*.json
/// counter fields.
///
/// Cost model: counters are always on (one relaxed fetch_add; hot loops
/// batch into locals and add once per phase). Histograms take a per-
/// histogram mutex and are recorded only on low-frequency paths (per
/// query, per save/load, per ParallelFor) or inside trace-gated spans —
/// see trace.h for the LAWS_TRACE gate that keeps per-stage timing at
/// near-zero cost when disabled.
///
/// Lookup discipline: GetCounter/GetHistogram return stable pointers
/// (entries are never erased; ResetAll zeroes values in place), so hot
/// call sites cache the pointer in a function-local static.

/// A monotonically increasing counter. Thread-safe, relaxed ordering.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A histogram of non-negative values (microseconds, bytes, interval
/// widths): count/sum/min/max plus power-of-two buckets for approximate
/// quantiles. Guarded by a mutex — record only on paths that are per-
/// operation, not per-row.
class MetricHistogram {
 public:
  void Record(double value);

  uint64_t count() const;
  double sum() const;
  double min() const;  // +inf when empty
  double max() const;  // 0 when empty
  double Mean() const;
  /// Approximate quantile (q in [0,1]) from the log2 buckets: returns the
  /// geometric midpoint of the bucket holding the q-th sample. Exact for
  /// min/max-degenerate histograms, within 2x otherwise.
  double Quantile(double q) const;
  void Reset();

 private:
  static constexpr int kBuckets = 64;
  mutable std::mutex mutex_;
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One named counter value in a snapshot.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

/// One named histogram summary in a snapshot.
struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// The registry. Use MetricsRegistry::Global() everywhere; separate
/// instances exist only for tests.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the named counter/histogram, creating it on first use. The
  /// returned pointer is stable for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  MetricHistogram* GetHistogram(std::string_view name);

  /// Snapshot of all non-zero counters / non-empty histograms, sorted by
  /// name.
  std::vector<CounterSample> CounterSamples() const;
  std::vector<HistogramSample> HistogramSamples() const;

  /// Zeroes every counter and histogram in place (pointers stay valid).
  void ResetAll();

  /// Human-readable table of every non-zero metric — the shell's
  /// `metrics` command.
  std::string Render() const;

  /// Flat JSON object {"counter.<name>": n, ..., "histogram.<name>.count":
  /// n, ...} for machine consumers.
  std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  // std::map: stable addresses for mapped unique_ptrs, deterministic
  // iteration order for snapshots. Heterogeneous lookup via less<>.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>> histograms_;
};

}  // namespace laws

#endif  // LAWSDB_COMMON_METRICS_H_

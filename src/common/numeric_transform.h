#ifndef LAWSDB_COMMON_NUMERIC_TRANSFORM_H_
#define LAWSDB_COMMON_NUMERIC_TRANSFORM_H_

#include <cmath>
#include <cstdint>
#include <string_view>

namespace laws {

/// Elementwise transforms shared between the storage gather kernels and the
/// model linearizations: a model whose fit is closed-form in transformed
/// space (log-log OLS for the power law) names the transform here, and
/// Column::GatherNumericTransformed materializes the transformed values in
/// a single fused pass instead of gather-then-transform.
enum class NumericTransform : uint8_t {
  kIdentity,
  kLog,
};

inline double ApplyNumericTransform(NumericTransform t, double v) {
  return t == NumericTransform::kLog ? std::log(v) : v;
}

/// Inverse of the transform (exp for kLog); used to map transformed-space
/// predictions back to the original response scale.
inline double InvertNumericTransform(NumericTransform t, double v) {
  return t == NumericTransform::kLog ? std::exp(v) : v;
}

inline std::string_view NumericTransformToString(NumericTransform t) {
  return t == NumericTransform::kLog ? "log" : "identity";
}

}  // namespace laws

#endif  // LAWSDB_COMMON_NUMERIC_TRANSFORM_H_

#include "common/random.h"

#include <cassert>
#include <cmath>

namespace laws {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box–Muller transform.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n >= 1 && s > 0.0);
  // Rejection-inversion sampling (Hörmann & Derflinger).
  const double b = std::pow(2.0, s - 1.0);
  double x, t;
  do {
    x = std::floor(std::pow(NextDouble(), -1.0 / (s - 1.0 + 1e-12)));
    t = std::pow(1.0 + 1.0 / x, s - 1.0);
  } while (x > static_cast<double>(n) ||
           NextDouble() * x * (t - 1.0) * b > t * (b - 1.0));
  return static_cast<int64_t>(x);
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const auto j = static_cast<uint32_t>(UniformInt(0, i - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace laws

#ifndef LAWSDB_COMMON_RANDOM_H_
#define LAWSDB_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace laws {

/// Deterministic, seedable PRNG (xoshiro256++). Used everywhere randomness
/// is needed — data generators, sampling, property tests — so that every
/// experiment in the repository is reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [1, n] with exponent s (> 0), via rejection
  /// sampling; suitable for skewed categorical workloads.
  int64_t Zipf(int64_t n, double s);

  /// Fisher–Yates shuffle of indices [0, n); returns the permutation.
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace laws

#endif  // LAWSDB_COMMON_RANDOM_H_

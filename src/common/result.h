#ifndef LAWSDB_COMMON_RESULT_H_
#define LAWSDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace laws {

/// A value-or-error holder, the Result/StatusOr idiom. A Result is either OK
/// and holds a T, or holds a non-OK Status. Accessing value() on an error
/// Result aborts in debug builds and is undefined otherwise; check ok()
/// first or use LAWS_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`. Intentionally implicit so that
  /// functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK status. Intentionally implicit
  /// so that functions can `return Status::...;`. Passing an OK status is a
  /// programming error and converts to Internal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace laws

#endif  // LAWSDB_COMMON_RESULT_H_

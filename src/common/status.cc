#include "common/status.h"

namespace laws {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kCanceled:
      return "Canceled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

bool IsGovernorStatusCode(StatusCode code) {
  return code == StatusCode::kCanceled ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace laws

#ifndef LAWSDB_COMMON_STATUS_H_
#define LAWSDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace laws {

/// Error categories used across the library. Mirrors the usual database
/// engine taxonomy (cf. RocksDB / Arrow): a small closed set of codes plus a
/// free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIOError,
  kParseError,
  kTypeMismatch,
  kNumericError,   // singular matrix, divergent fit, NaN propagation, ...
  kAborted,
  // Resource-governor errors (common/governor.h): a governed query that
  // runs out of time, memory budget, or is canceled fails with one of
  // these — cleanly, mid-pipeline, never as a crash or a torn catalog.
  kCanceled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// True for the three resource-governor codes above — the "query was
/// stopped by policy, not by a bug" class that servers retry, degrade,
/// or report without alarming.
bool IsGovernorStatusCode(StatusCode code);

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation). The library does not throw exceptions across API boundaries;
/// every fallible public function returns Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Canceled(std::string msg) {
    return Status(StatusCode::kCanceled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace laws

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define LAWS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::laws::Status _laws_status = (expr);         \
    if (!_laws_status.ok()) return _laws_status;  \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
/// otherwise assigns the value to `lhs`.
#define LAWS_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  LAWS_ASSIGN_OR_RETURN_IMPL_(                            \
      LAWS_STATUS_CONCAT_(_laws_result, __LINE__), lhs, rexpr)

#define LAWS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define LAWS_STATUS_CONCAT_(a, b) LAWS_STATUS_CONCAT_IMPL_(a, b)
#define LAWS_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // LAWSDB_COMMON_STATUS_H_

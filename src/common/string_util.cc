#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace laws {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace laws

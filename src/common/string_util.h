#ifndef LAWSDB_COMMON_STRING_UTIL_H_
#define LAWSDB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace laws {

/// Splits `input` on `delim`. Adjacent delimiters yield empty fields; the
/// result always has (number of delimiters + 1) entries.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a byte count with binary units ("11.1 MiB").
std::string HumanBytes(uint64_t bytes);

/// Formats a double with `digits` significant digits (for report tables).
std::string FormatDouble(double v, int digits = 6);

}  // namespace laws

#endif  // LAWSDB_COMMON_STRING_UTIL_H_

#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "common/env.h"
#include "common/governor.h"
#include "common/metrics.h"

namespace laws {

namespace {

/// Set while the current thread is a pool worker or is executing a
/// ParallelFor chunk; nested parallel constructs observe it and run
/// inline instead of re-entering the scheduler.
thread_local bool tls_in_parallel_region = false;

std::shared_ptr<ThreadPool>& GlobalSlot() {
  static std::shared_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& GlobalMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial fallback: no workers exist, run inline.
    const bool saved = tls_in_parallel_region;
    tls_in_parallel_region = true;
    task();
    tls_in_parallel_region = saved;
    return;
  }
  static Counter* submitted =
      MetricsRegistry::Global().GetCounter("pool.tasks_submitted");
  static MetricHistogram* depth =
      MetricsRegistry::Global().GetHistogram("pool.queue_depth");
  size_t queued;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    queued = tasks_.size();
  }
  submitted->Add();
  depth->Record(static_cast<double>(queued));
  ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() { return *GlobalShared(); }

std::shared_ptr<ThreadPool> ThreadPool::GlobalShared() {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  std::shared_ptr<ThreadPool>& slot = GlobalSlot();
  if (!slot) slot = std::make_shared<ThreadPool>(DefaultThreadCount());
  return slot;
}

size_t ThreadPool::DefaultThreadCount() {
  // 0 means "unset, use hardware"; junk and negatives warn once.
  const int64_t from_env = EnvInt64("LAWS_THREADS", 0, 0, 1 << 16);
  if (from_env > 0) return static_cast<size_t>(from_env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::SetGlobalThreadCount(size_t n) {
  std::shared_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(GlobalMutex());
    old = std::move(GlobalSlot());
    GlobalSlot() =
        std::make_shared<ThreadPool>(n == 0 ? DefaultThreadCount() : n);
  }
  // `old` is released outside the lock. If a ParallelFor region is still
  // draining on the old pool, its GlobalShared() pin keeps the pool alive
  // and the destructor (which joins the workers) runs when that region
  // finishes — never while chunks are in flight.
}

size_t ThreadPool::ParseThreadCount(const char* text) {
  int64_t value = 0;
  if (!ParseInt64Strict(text, &value) || value <= 0) return 0;
  return static_cast<size_t>(value);
}

void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       const ParallelForOptions& options) {
  if (end <= begin) return;
  const size_t n = end - begin;
  // Floor division: never split into chunks smaller than the grain.
  const size_t grain = std::max<size_t>(1, options.grain);
  const size_t max_chunks = n / grain;
  // Pin the global pool for the whole region so a concurrent
  // SetGlobalThreadCount cannot destroy it under our chunks. The nested
  // (in-region) path never touches the global slot, so a worker thread
  // never ends up joining its own pool.
  std::shared_ptr<ThreadPool> pinned;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && max_chunks > 1 && !tls_in_parallel_region) {
    pinned = ThreadPool::GlobalShared();
    pool = pinned.get();
  }
  const size_t chunks =
      pool == nullptr ? 1 : std::min(pool->num_threads(), max_chunks);
  if (chunks <= 1 || tls_in_parallel_region) {
    // The serial path honors the same governor contract as the lanes:
    // a tripped query runs no further chunks, and the caller's next
    // poll re-observes the sticky error.
    if (QueryGovernor* gov = QueryGovernor::Current()) {
      if (!gov->Poll().ok()) return;
    }
    const bool saved = tls_in_parallel_region;
    tls_in_parallel_region = true;
    body(begin, end);
    tls_in_parallel_region = saved;
    return;
  }

  // Chunked static partition: chunk c covers
  // [begin + c*n/chunks, begin + (c+1)*n/chunks).
  struct Barrier {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = chunks;
  barrier->errors.assign(chunks, nullptr);

  // Propagate the caller's governor into every lane: re-install it for
  // the chunk's duration and skip the body outright once it has tripped
  // (the sticky error is re-observed by the caller's next poll).
  QueryGovernor* const governor = QueryGovernor::Current();
  auto run_chunk = [&body, barrier, begin, n, chunks, governor](size_t c) {
    const size_t lo = begin + c * n / chunks;
    const size_t hi = begin + (c + 1) * n / chunks;
    ScopedGovernor install(governor);
    if (governor == nullptr || governor->Poll().ok()) {
      try {
        body(lo, hi);
      } catch (...) {
        barrier->errors[c] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(barrier->mutex);
      --barrier->remaining;
    }
    barrier->done.notify_one();
  };

  for (size_t c = 1; c < chunks; ++c) {
    pool->Submit([run_chunk, c] { run_chunk(c); });
  }
  // The caller is lane 0.
  tls_in_parallel_region = true;
  run_chunk(0);
  tls_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(barrier->mutex);
    barrier->done.wait(lock, [&] { return barrier->remaining == 0; });
  }
  for (const std::exception_ptr& e : barrier->errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 const ParallelForOptions& options) {
  ParallelForChunks(
      begin, end,
      [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      options);
}

}  // namespace laws

#ifndef LAWSDB_COMMON_THREAD_POOL_H_
#define LAWSDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace laws {

/// Fixed-size worker pool behind ParallelFor — the concurrency substrate
/// for the per-group fitting, per-column compression, and data-generation
/// hot paths. A pool of `num_threads` provides `num_threads` parallel
/// lanes: `num_threads - 1` background workers plus the calling thread,
/// which always participates in ParallelFor. At num_threads == 1 no
/// threads are spawned and everything runs inline on the caller — the
/// graceful serial fallback.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` lanes (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of parallel lanes (including the caller during ParallelFor).
  size_t num_threads() const { return num_threads_; }

  /// Enqueues a task for a background worker. On a 1-lane pool (no
  /// workers) the task runs inline, immediately, on the calling thread.
  /// Submitting from inside a task is safe; tasks must not block waiting
  /// for other tasks in the same pool.
  void Submit(std::function<void()> task);

  /// The process-wide pool, built on first use with DefaultThreadCount()
  /// lanes. The reference is only guaranteed valid until the next
  /// SetGlobalThreadCount; use GlobalShared() to hold the pool across a
  /// parallel region.
  static ThreadPool& Global();

  /// Shared handle to the process-wide pool. ParallelForChunks pins the
  /// pool through this, so a concurrent SetGlobalThreadCount cannot
  /// destroy a pool whose chunks are still draining — the old pool dies
  /// only when its last in-flight region releases it.
  static std::shared_ptr<ThreadPool> GlobalShared();

  /// Lane count for the global pool: the LAWS_THREADS environment
  /// variable when set to a positive integer, otherwise hardware
  /// concurrency (>= 1). Malformed or negative values warn once and are
  /// ignored (see common/env.h).
  static size_t DefaultThreadCount();

  /// Rebuilds the global pool with `n` lanes (0 restores
  /// DefaultThreadCount()). Safe to call while ParallelFor regions are in
  /// flight: they keep the old pool alive via GlobalShared() and it is
  /// destroyed (joining its workers) when the last region drains.
  static void SetGlobalThreadCount(size_t n);

  /// Parses a LAWS_THREADS-style value: positive integers pass through,
  /// everything else (null, empty, junk, zero, negative) yields 0 for
  /// "unset". Exposed for tests.
  static size_t ParseThreadCount(const char* text);

 private:
  void WorkerLoop();

  const size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable ready_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// Tuning knobs for ParallelFor / ParallelForChunks.
struct ParallelForOptions {
  /// Minimum iterations per chunk; a range shorter than `2 * grain` runs
  /// serially on the caller. Raise this for cheap per-index bodies so the
  /// scheduling overhead cannot dominate.
  size_t grain = 1;
  /// Pool to schedule on; nullptr means ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

/// Runs body(chunk_begin, chunk_end) over a chunked static partition of
/// [begin, end): at most num_threads contiguous chunks of near-equal
/// size, one per lane. The calling thread executes the first chunk
/// itself. Exceptions thrown by any chunk are captured and the
/// lowest-indexed one is rethrown on the caller after all chunks finish
/// (the partition is deterministic for a fixed lane count, so so is the
/// choice). Nested calls — from inside a pool task or another
/// ParallelFor body — run serially inline, which makes nesting safe
/// rather than a deadlock.
///
/// Determinism contract: the partition depends on the lane count, so
/// bodies must write only to disjoint, index-addressed slots (no
/// order-dependent accumulation) for results to be bit-identical across
/// thread counts. Every parallel loop in this repository follows that
/// rule; see DESIGN.md "Threading model".
///
/// Governor contract: the caller's QueryGovernor (common/governor.h) is
/// re-installed inside every worker lane, so poll sites in the body see
/// it. Before each chunk body runs, the governor is polled; if it has
/// tripped (cancel/deadline), the remaining chunk bodies are skipped —
/// their output slots are simply left unwritten. Because governor errors
/// are sticky, a governed caller re-polls after the region returns and
/// surfaces the same typed error instead of consuming partial output.
void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       const ParallelForOptions& options = {});

/// Per-index convenience over ParallelForChunks: body(i) for i in
/// [begin, end). Use for heavyweight bodies (model fits, column
/// compression); prefer ParallelForChunks with a hand-written inner loop
/// for per-row work.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 const ParallelForOptions& options = {});

}  // namespace laws

#endif  // LAWSDB_COMMON_THREAD_POOL_H_

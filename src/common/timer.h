#ifndef LAWSDB_COMMON_TIMER_H_
#define LAWSDB_COMMON_TIMER_H_

#include <chrono>

namespace laws {

/// Monotonic wall-clock stopwatch for benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace laws

#endif  // LAWSDB_COMMON_TIMER_H_

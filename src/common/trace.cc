#include "common/trace.h"

#include <atomic>
#include <cstdio>

#include "common/env.h"
#include "common/metrics.h"

namespace laws {
namespace {

bool TraceEnabledFromEnv() { return EnvFlag("LAWS_TRACE", false); }

std::atomic<bool> g_trace_enabled{TraceEnabledFromEnv()};

thread_local TraceSink* t_current_sink = nullptr;

}  // namespace

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

TraceSink::TraceSink() : prev_(t_current_sink) { t_current_sink = this; }

TraceSink::~TraceSink() { t_current_sink = prev_; }

TraceSink* TraceSink::Current() { return t_current_sink; }

std::string TraceSink::Render() const {
  std::string out;
  char buf[160];
  for (const SpanRecord& s : spans_) {
    out.append(static_cast<size_t>(s.depth) * 2, ' ');
    out += s.name;
    if (!s.detail.empty()) {
      out += '(';
      out += s.detail;
      out += ')';
    }
    if (s.has_rows) {
      std::snprintf(buf, sizeof(buf), "  rows=%llu->%llu",
                    static_cast<unsigned long long>(s.rows_in),
                    static_cast<unsigned long long>(s.rows_out));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "  time=%.3f ms", s.micros / 1000.0);
    out += buf;
    out += '\n';
  }
  return out;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  sink_ = t_current_sink;
  active_ = sink_ != nullptr || TraceEnabled();
  if (!active_) return;
  if (sink_ != nullptr) {
    slot_ = sink_->spans_.size();
    SpanRecord rec;
    rec.name = name_;
    rec.depth = sink_->depth_;
    rec.sequence = slot_;
    sink_->spans_.push_back(std::move(rec));
    ++sink_->depth_;
  }
  start_ = Clock::now();
}

ScopedSpan::~ScopedSpan() { End(); }

void ScopedSpan::End() {
  if (!active_) return;
  active_ = false;
  const double micros =
      std::chrono::duration<double, std::micro>(Clock::now() - start_)
          .count();
  if (sink_ != nullptr) {
    sink_->spans_[slot_].micros = micros;
    --sink_->depth_;
  }
  if (TraceEnabled()) {
    // One histogram per span name; the static-per-call-site cache pattern
    // does not work here (name varies), but span ends are per-stage, not
    // per-row, so a registry lookup is acceptable.
    std::string metric = "span.";
    metric += name_;
    metric += ".micros";
    MetricsRegistry::Global().GetHistogram(metric)->Record(micros);
  }
}

void ScopedSpan::SetRows(uint64_t rows_in, uint64_t rows_out) {
  if (!active_ || sink_ == nullptr) return;
  SpanRecord& rec = sink_->spans_[slot_];
  rec.rows_in = rows_in;
  rec.rows_out = rows_out;
  rec.has_rows = true;
}

void ScopedSpan::SetDetail(std::string detail) {
  if (!active_ || sink_ == nullptr) return;
  sink_->spans_[slot_].detail = std::move(detail);
}

}  // namespace laws

#ifndef LAWSDB_COMMON_TRACE_H_
#define LAWSDB_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace laws {

/// Scoped-span tracing: RAII timers over the engine's pipeline stages
/// (executor operators, hybrid AQP arbitration, grouped fitting phases,
/// persistence). Spans are recorded into two destinations:
///
///  1. The process-wide trace gate (LAWS_TRACE=1 or SetTraceEnabled):
///     every finished span feeds a `span.<name>.micros` histogram in
///     MetricsRegistry::Global().
///  2. A thread-local TraceSink, installed per operation by EXPLAIN
///     ANALYZE: spans append name/detail/rows/time records that render as
///     the per-stage plan tree.
///
/// When neither is active a ScopedSpan costs one relaxed atomic load and
/// one thread-local read — no clock call, no allocation — which is what
/// keeps instrumentation overhead on the hot pipeline under the 2%
/// budget (DESIGN.md §10).
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// One finished span. `name` must be a string literal (stored as a
/// pointer); `detail` is optional free text (expression, decision).
struct SpanRecord {
  const char* name = "";
  std::string detail;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  bool has_rows = false;
  double micros = 0.0;
  int depth = 0;        // nesting depth at entry, for tree rendering
  size_t sequence = 0;  // entry order
};

/// Collects the spans of one traced operation. Construction installs the
/// sink as the calling thread's current sink (stacking over any previous
/// one); destruction restores the previous sink. Not thread-safe: one
/// sink belongs to one thread. Spans opened on *other* threads (e.g.
/// inside ParallelFor workers) do not reach the sink — per-phase spans
/// around parallel regions are opened on the calling thread instead.
class TraceSink {
 public:
  TraceSink();
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Renders the span tree: indentation by depth, one line per span with
  /// rows in/out (when set) and wall time.
  std::string Render() const;

  /// The calling thread's innermost sink, or nullptr.
  static TraceSink* Current();

 private:
  friend class ScopedSpan;
  std::vector<SpanRecord> spans_;
  int depth_ = 0;
  TraceSink* prev_ = nullptr;
};

/// RAII span. Opens at construction, records at destruction. All methods
/// are no-ops when the span is inactive (tracing off and no sink), so
/// call sites need no branching.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches input/output cardinality shown by EXPLAIN ANALYZE.
  void SetRows(uint64_t rows_in, uint64_t rows_out);
  /// Attaches free-text detail (predicate text, decision, path).
  void SetDetail(std::string detail);
  /// Ends the span now (for phases that finish mid-scope); destruction
  /// after End() is a no-op, as are further SetRows/SetDetail calls.
  void End();

  bool active() const { return active_; }

 private:
  using Clock = std::chrono::steady_clock;
  const char* name_;
  bool active_;
  TraceSink* sink_ = nullptr;  // sink at entry (stable across the scope)
  size_t slot_ = 0;            // index into sink_->spans_
  Clock::time_point start_{};
};

}  // namespace laws

#endif  // LAWSDB_COMMON_TRACE_H_

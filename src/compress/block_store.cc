#include "compress/block_store.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "common/env.h"
#include "common/metrics.h"

namespace laws {
namespace {

constexpr size_t kDefaultBlockRows = 4096;
constexpr double kExactIntBound = 9007199254740992.0;  // 2^53

size_t InitialBlockRows() {
  // Strict parse (common/env.h): the old atol here silently read
  // "4096abc" as 4096; now malformed values warn once and fall back.
  const int64_t v = EnvInt64("LAWS_SCAN_BLOCK_ROWS",
                             static_cast<int64_t>(kDefaultBlockRows), 1,
                             int64_t{1} << 31);
  return static_cast<size_t>(v);
}

std::atomic<size_t>& BlockRowsFlag() {
  static std::atomic<size_t> rows{InitialBlockRows()};
  return rows;
}

Counter* IndexBuildCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("scan.index_builds");
  return c;
}

Counter* IndexEvictionCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("scan.index_evictions");
  return c;
}

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// Coerces row r of a numeric column to the comparison engine's double
/// space (int64 -> cast, bool -> 0/1). Caller guarantees non-NULL.
double CoercedAt(const Column& col, size_t r) {
  switch (col.type()) {
    case DataType::kInt64:
      return static_cast<double>(col.int64_data()[r]);
    case DataType::kDouble:
      return col.double_data()[r];
    case DataType::kBool:
      return col.bool_data()[r] ? 1.0 : 0.0;
    default:
      return 0.0;  // unreachable: strings are not indexed
  }
}

ColumnBlockIndex BuildColumnIndex(const Column& col, size_t num_rows,
                                  size_t block_rows, size_t num_blocks) {
  ColumnBlockIndex out;
  if (col.type() == DataType::kString) return out;  // usable = false
  out.usable = true;
  out.zones.resize(num_blocks);
  out.runs.resize(num_blocks);

  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t start = b * block_rows;
    const size_t len = std::min(block_rows, num_rows - start);
    ZoneMap& zone = out.zones[b];
    zone.rows = static_cast<uint32_t>(len);

    std::vector<EncodedRun> runs;
    double prev_value = 0.0;
    bool prev_null = false;
    bool sorted = true;
    double prev_comparable = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < len; ++i) {
      const size_t r = start + i;
      const bool is_null = col.IsNull(r);
      const double v = is_null ? 0.0 : CoercedAt(col, r);
      if (is_null) {
        ++zone.null_count;
      } else if (std::isnan(v)) {
        ++zone.nan_count;
      } else {
        if (v < zone.min) zone.min = v;
        if (v > zone.max) zone.max = v;
        if (zone.all_integral &&
            (std::trunc(v) != v || std::fabs(v) > kExactIntBound)) {
          zone.all_integral = false;
        }
        if (v < prev_comparable) sorted = false;
        prev_comparable = v;
      }
      if (!runs.empty() && is_null == prev_null &&
          (is_null || SameBits(v, prev_value))) {
        ++runs.back().len;
      } else {
        runs.push_back({static_cast<uint32_t>(i), 1, v, is_null});
        prev_value = v;
        prev_null = is_null;
      }
    }
    if (zone.comparable_count() == 0) zone.all_integral = false;
    zone.is_constant = (len > 0 && runs.size() == 1);
    zone.sorted_asc = sorted && zone.null_count == 0 && zone.nan_count == 0;
#ifdef LAWS_TESTING_INJECT_BUG
    // Planted mutant for the mutation smoke test: shrink the zone max by
    // one ulp, so a predicate sitting exactly on the block maximum is
    // misclassified as unsatisfiable and the block is wrongly pruned.
    if (zone.comparable_count() > 0) {
      zone.max = std::nextafter(zone.max,
                                -std::numeric_limits<double>::infinity());
    }
#endif
    // Keep the run view only when it actually batches work: at least two
    // rows per run on average. Otherwise the per-run bookkeeping costs
    // more than per-row evaluation.
    if (len > 0 && runs.size() * 2 <= len) out.runs[b] = std::move(runs);
  }
  return out;
}

/// Process-wide index cache. Keyed by table address but validated through
/// a weak_ptr to the owning shared_ptr, so a freed-and-recycled address
/// can never serve another table's index.
struct CacheEntry {
  std::weak_ptr<Table> owner;
  std::shared_ptr<const BlockIndex> index;
};

std::mutex g_cache_mutex;
std::unordered_map<const Table*, CacheEntry>& Cache() {
  static auto* cache = new std::unordered_map<const Table*, CacheEntry>();
  return *cache;
}

/// `block_rows` is the caller's single read of the block-size flag:
/// validation and (on miss) the rebuild must both use the same value,
/// otherwise a concurrent SetScanBlockRows between the two reads can
/// register an index built at a different size than was validated
/// (the EnsureBlockIndex TOCTOU).
bool IndexCurrent(const BlockIndex& index, const Table& table,
                  size_t block_rows) {
  return index.data_version == table.data_version() &&
         index.num_rows == table.num_rows() &&
         index.block_rows == block_rows;
}

void EvictExpiredLocked() {
  auto& cache = Cache();
  size_t evicted = 0;
  for (auto it = cache.begin(); it != cache.end();) {
    if (it->second.owner.expired()) {
      it = cache.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted > 0) IndexEvictionCounter()->Add(evicted);
}

std::shared_ptr<const BlockIndex> BuildBlockIndexAt(const Table& table,
                                                    size_t block_rows) {
  auto index = std::make_shared<BlockIndex>();
  index->block_rows = block_rows;
  index->num_rows = table.num_rows();
  index->num_blocks =
      (index->num_rows + index->block_rows - 1) / index->block_rows;
  index->data_version = table.data_version();
  index->columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    index->columns.push_back(BuildColumnIndex(
        table.column(c), index->num_rows, index->block_rows,
        index->num_blocks));
  }
  IndexBuildCounter()->Add();
  return index;
}

}  // namespace

size_t ScanBlockRows() {
  return BlockRowsFlag().load(std::memory_order_relaxed);
}

void SetScanBlockRows(size_t rows) {
  BlockRowsFlag().store(rows == 0 ? kDefaultBlockRows : rows,
                        std::memory_order_relaxed);
}

std::shared_ptr<const BlockIndex> BuildBlockIndex(const Table& table) {
  return BuildBlockIndexAt(table, ScanBlockRows());
}

std::shared_ptr<const BlockIndex> EnsureBlockIndex(const TablePtr& table) {
  if (!table) return nullptr;
  // One read of the flag for the whole operation (validate AND build).
  const size_t block_rows = ScanBlockRows();
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    EvictExpiredLocked();
    auto it = Cache().find(table.get());
    if (it != Cache().end() && it->second.owner.lock() == table &&
        IndexCurrent(*it->second.index, *table, block_rows)) {
      return it->second.index;
    }
  }
  // Build outside the lock: index construction is a full column sweep.
  std::shared_ptr<const BlockIndex> index =
      BuildBlockIndexAt(*table, block_rows);
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    EvictExpiredLocked();
    Cache()[table.get()] = CacheEntry{table, index};
  }
  return index;
}

std::shared_ptr<const BlockIndex> FindBlockIndex(const Table& table) {
  const size_t block_rows = ScanBlockRows();
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  EvictExpiredLocked();
  auto it = Cache().find(&table);
  if (it == Cache().end()) return nullptr;
  auto owner = it->second.owner.lock();
  if (!owner || owner.get() != &table) return nullptr;
  if (!IndexCurrent(*it->second.index, table, block_rows)) return nullptr;
  return it->second.index;
}

void PurgeExpiredBlockIndexes() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  EvictExpiredLocked();
}

size_t BlockIndexCacheSize() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  EvictExpiredLocked();
  return Cache().size();
}

}  // namespace laws

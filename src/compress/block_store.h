#ifndef LAWSDB_COMPRESS_BLOCK_STORE_H_
#define LAWSDB_COMPRESS_BLOCK_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/table.h"

namespace laws {

/// Block-partitioned acceleration index for compressed-domain scans
/// (DESIGN.md §14). Columns are split into fixed-size row blocks; each
/// block of each numeric column carries a zone map (min/max over the
/// values *as the comparison engine sees them* — coerced to double —
/// plus NULL/NaN tallies and shape flags) and, when beneficial, an RLE
/// run view formed by bit-pattern equality. The plain `Table` columns
/// remain the source of truth: the index only licenses skipping or
/// batching work, so a stale or missing index is always just a slower
/// scan, never a different answer.

/// Per-block, per-column statistics. `min`/`max` cover the comparable
/// values (non-NULL, non-NaN) after the engine's double coercion, which
/// is exactly the space every SQL comparison is evaluated in — int64 →
/// double casting is monotone, so interval tests against a double
/// literal are sound even past the 2^53 integer horizon. NaNs are
/// tallied separately (§11: NaN compares as "greater" through the
/// three-way compare, so it satisfies !=, >, >= and fails =, <, <=);
/// NULLs never satisfy a predicate. -0.0 needs no special casing here
/// because IEEE == and < treat it as equal to +0.0, so either sign is a
/// valid interval endpoint.
struct ZoneMap {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint32_t rows = 0;
  uint32_t null_count = 0;
  uint32_t nan_count = 0;
  /// Every comparable value is an integer with |v| <= 2^53 (exactly
  /// representable). The license for run-weighted SUM/AVG: when all
  /// blocks are integral and the summed magnitude bound stays under
  /// 2^53, floating-point summation is exact and therefore
  /// order-insensitive — any association is bit-identical to the
  /// row-order sweep.
  bool all_integral = true;
  /// All rows share one bit pattern and null flag (constant block).
  bool is_constant = false;
  /// Comparable values are non-decreasing in row order (informational;
  /// set only when the block has no NULLs/NaNs).
  bool sorted_asc = false;

  uint32_t comparable_count() const { return rows - null_count - nan_count; }
};

/// One RLE run inside a block: rows [start, start+len) all carry the
/// same coerced-double bit pattern (`value`) and null flag. Bit-pattern
/// equality (not ==) keeps -0.0 vs +0.0 and distinct NaN payloads in
/// separate runs, so a run value is a faithful representative of every
/// row in the run under both comparison and output-identity semantics.
struct EncodedRun {
  uint32_t start = 0;  // row offset within the block
  uint32_t len = 0;
  double value = 0.0;  // coerced; unspecified when is_null
  bool is_null = false;
};

/// Index data for one column: one zone map per block, plus an optional
/// run view per block (empty vector = runs not beneficial, read the
/// plain column). Strings are not indexed (`usable` = false) — string
/// predicates are declined by the scan planner anyway.
struct ColumnBlockIndex {
  bool usable = false;
  std::vector<ZoneMap> zones;
  std::vector<std::vector<EncodedRun>> runs;
};

struct BlockIndex {
  size_t block_rows = 0;
  size_t num_rows = 0;
  size_t num_blocks = 0;
  uint64_t data_version = 0;
  std::vector<ColumnBlockIndex> columns;

  size_t BlockStart(size_t b) const { return b * block_rows; }
  size_t BlockLength(size_t b) const {
    const size_t start = BlockStart(b);
    return start >= num_rows ? 0 : std::min(block_rows, num_rows - start);
  }
};

/// Rows per block. Default 4096; LAWS_SCAN_BLOCK_ROWS overrides at
/// process start, SetScanBlockRows overrides at runtime (test hook — the
/// differential harness shrinks blocks to a handful of rows so tiny
/// fuzzer tables still span multiple blocks).
size_t ScanBlockRows();
void SetScanBlockRows(size_t rows);

/// Builds a block index for `table` with the current block size
/// (unconditionally; no caching).
std::shared_ptr<const BlockIndex> BuildBlockIndex(const Table& table);

/// Returns the cached index for `table`, building and registering it if
/// absent or stale. The cache is keyed by table identity (address,
/// validated through the owning shared_ptr so a recycled address can
/// never alias) and invalidated by data_version and block-size changes.
/// The block-size flag is read exactly once per call and threaded
/// through both the validation and the build, so a concurrent
/// SetScanBlockRows can never cache an index whose `block_rows`
/// disagrees with the size its zone maps were computed at.
std::shared_ptr<const BlockIndex> EnsureBlockIndex(const TablePtr& table);

/// Validated cache lookup by reference: returns the index only when a
/// live registration matches this table's address, data version and the
/// current block size; nullptr otherwise. Never builds.
std::shared_ptr<const BlockIndex> FindBlockIndex(const Table& table);

/// Drops cache entries whose owning table has been destroyed (the
/// weak_ptr expired). Every eviction bumps the `scan.index_evictions`
/// counter. Lookups already purge opportunistically, so a long-running
/// server that drops or replaces tables cannot pin dead indexes
/// indefinitely; call this explicitly after a catalog commit to free
/// the memory immediately rather than at the next scan.
void PurgeExpiredBlockIndexes();

/// Number of live cache entries (post-purge); test/diagnostic hook.
size_t BlockIndexCacheSize();

}  // namespace laws

#endif  // LAWSDB_COMPRESS_BLOCK_STORE_H_

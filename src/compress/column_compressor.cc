#include "compress/column_compressor.h"

#include "common/bytes.h"
#include "compress/encoding.h"

namespace laws {
namespace {

void WriteValidity(const Column& column, ByteWriter* out) {
  const bool has_nulls = column.null_count() > 0;
  out->PutU8(has_nulls ? 1 : 0);
  if (has_nulls) {
    out->PutVarint(column.validity().size());
    out->PutRaw(column.validity().data(), column.validity().size());
  }
}

Result<std::vector<uint8_t>> ReadValidity(ByteReader* in) {
  LAWS_ASSIGN_OR_RETURN(uint8_t has_nulls, in->GetU8());
  std::vector<uint8_t> validity;
  if (has_nulls) {
    LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(1, "validity bitmap"));
    validity.resize(n);
    LAWS_RETURN_IF_ERROR(in->GetRaw(validity.data(), n));
  }
  return validity;
}

std::vector<int64_t> CodesAsInt64(const std::vector<uint32_t>& codes) {
  return std::vector<int64_t>(codes.begin(), codes.end());
}

/// Encodes the column body (everything after validity) with `encoding`.
/// Returns Unimplemented when the encoding does not apply to the type.
Status EncodeBody(const Column& column, ColumnEncoding encoding,
                  ByteWriter* out) {
  const size_t n = column.size();
  switch (column.type()) {
    case DataType::kInt64: {
      const auto& data = column.int64_data();
      switch (encoding) {
        case ColumnEncoding::kPlain:
          out->PutVarint(n);
          out->PutRaw(data.data(), n * sizeof(int64_t));
          return Status::OK();
        case ColumnEncoding::kRle:
          RleEncodeInt64(data, out);
          return Status::OK();
        case ColumnEncoding::kDeltaVarint:
          DeltaVarintEncodeInt64(data, out);
          return Status::OK();
        case ColumnEncoding::kBitPack:
          BitPackEncodeInt64(data, out);
          return Status::OK();
        case ColumnEncoding::kShuffleZlib: {
          ByteWriter shuffled;
          ByteShuffleEncodeInt64(data, &shuffled);
          LAWS_ASSIGN_OR_RETURN(
              std::vector<uint8_t> z,
              ZlibCompress(shuffled.data().data(), shuffled.size()));
          out->PutVarint(z.size());
          out->PutRaw(z.data(), z.size());
          return Status::OK();
        }
        default:
          break;
      }
      break;
    }
    case DataType::kDouble: {
      const auto& data = column.double_data();
      switch (encoding) {
        case ColumnEncoding::kPlain:
          out->PutVarint(n);
          out->PutRaw(data.data(), n * sizeof(double));
          return Status::OK();
        case ColumnEncoding::kShuffleZlib: {
          ByteWriter shuffled;
          ByteShuffleEncodeDouble(data, &shuffled);
          LAWS_ASSIGN_OR_RETURN(
              std::vector<uint8_t> z,
              ZlibCompress(shuffled.data().data(), shuffled.size()));
          out->PutVarint(z.size());
          out->PutRaw(z.data(), z.size());
          return Status::OK();
        }
        default:
          break;
      }
      break;
    }
    case DataType::kString: {
      switch (encoding) {
        case ColumnEncoding::kPlain:
        case ColumnEncoding::kRle:
        case ColumnEncoding::kBitPack: {
          out->PutVarint(column.dictionary().size());
          for (const auto& s : column.dictionary()) out->PutString(s);
          const std::vector<int64_t> codes =
              CodesAsInt64(column.string_codes());
          if (encoding == ColumnEncoding::kRle) {
            RleEncodeInt64(codes, out);
          } else if (encoding == ColumnEncoding::kBitPack) {
            BitPackEncodeInt64(codes, out);
          } else {
            out->PutVarint(n);
            out->PutRaw(column.string_codes().data(), n * sizeof(uint32_t));
          }
          return Status::OK();
        }
        default:
          break;
      }
      break;
    }
    case DataType::kBool: {
      if (encoding == ColumnEncoding::kPlain) {
        out->PutVarint(n);
        out->PutRaw(column.bool_data().data(), n);
        return Status::OK();
      }
      break;
    }
  }
  return Status::Unimplemented("encoding not applicable to column type");
}

Result<Column> DecodeBody(ByteReader* in, const Field& field,
                          ColumnEncoding encoding,
                          const std::vector<uint8_t>& validity,
                          size_t expected_rows) {
  auto valid_at = [&](size_t i) {
    if (validity.empty()) return true;
    return ((validity[i >> 3] >> (i & 7)) & 1) != 0;
  };
  Column col(field.type, field.nullable || !validity.empty());

  // With a known row count every deserialized length must match it exactly;
  // otherwise expansion-capable decoders fall back to the global sanity cap.
  const uint64_t max_elements =
      expected_rows == kUnknownRowCount ? kMaxDecodedElements : expected_rows;
  auto check_row_count = [&](uint64_t n) -> Status {
    if (expected_rows != kUnknownRowCount && n != expected_rows) {
      return Status::ParseError("column length does not match row count");
    }
    return Status::OK();
  };

  auto append_int64s = [&](const std::vector<int64_t>& data) -> Status {
    for (size_t i = 0; i < data.size(); ++i) {
      if (valid_at(i)) {
        col.AppendInt64(data[i]);
      } else {
        LAWS_RETURN_IF_ERROR(col.AppendNull());
      }
    }
    return Status::OK();
  };

  switch (field.type) {
    case DataType::kInt64: {
      std::vector<int64_t> data;
      switch (encoding) {
        case ColumnEncoding::kPlain: {
          LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(8, "INT64 column"));
          LAWS_RETURN_IF_ERROR(check_row_count(n));
          data.resize(n);
          LAWS_RETURN_IF_ERROR(in->GetRaw(data.data(), n * sizeof(int64_t)));
          break;
        }
        case ColumnEncoding::kRle: {
          LAWS_ASSIGN_OR_RETURN(data, RleDecodeInt64(in, max_elements));
          break;
        }
        case ColumnEncoding::kDeltaVarint: {
          LAWS_ASSIGN_OR_RETURN(data, DeltaVarintDecodeInt64(in));
          break;
        }
        case ColumnEncoding::kBitPack: {
          LAWS_ASSIGN_OR_RETURN(data, BitPackDecodeInt64(in, max_elements));
          break;
        }
        case ColumnEncoding::kShuffleZlib: {
          LAWS_ASSIGN_OR_RETURN(uint64_t zsize,
                                in->GetCount(1, "zlib blob size"));
          std::vector<uint8_t> blob(zsize);
          LAWS_RETURN_IF_ERROR(in->GetRaw(blob.data(), zsize));
          LAWS_ASSIGN_OR_RETURN(std::vector<uint8_t> plain,
                                ZlibDecompress(blob));
          ByteReader r(plain);
          LAWS_ASSIGN_OR_RETURN(data, ByteShuffleDecodeInt64(&r));
          break;
        }
        default:
          return Status::ParseError("bad INT64 encoding tag");
      }
      LAWS_RETURN_IF_ERROR(check_row_count(data.size()));
      LAWS_RETURN_IF_ERROR(append_int64s(data));
      return col;
    }
    case DataType::kDouble: {
      std::vector<double> data;
      switch (encoding) {
        case ColumnEncoding::kPlain: {
          LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(8, "DOUBLE column"));
          LAWS_RETURN_IF_ERROR(check_row_count(n));
          data.resize(n);
          LAWS_RETURN_IF_ERROR(in->GetRaw(data.data(), n * sizeof(double)));
          break;
        }
        case ColumnEncoding::kShuffleZlib: {
          LAWS_ASSIGN_OR_RETURN(uint64_t zsize,
                                in->GetCount(1, "zlib blob size"));
          std::vector<uint8_t> blob(zsize);
          LAWS_RETURN_IF_ERROR(in->GetRaw(blob.data(), zsize));
          LAWS_ASSIGN_OR_RETURN(std::vector<uint8_t> plain,
                                ZlibDecompress(blob));
          ByteReader r(plain);
          LAWS_ASSIGN_OR_RETURN(data, ByteShuffleDecodeDouble(&r));
          break;
        }
        default:
          return Status::ParseError("bad DOUBLE encoding tag");
      }
      LAWS_RETURN_IF_ERROR(check_row_count(data.size()));
      for (size_t i = 0; i < data.size(); ++i) {
        if (valid_at(i)) {
          col.AppendDouble(data[i]);
        } else {
          LAWS_RETURN_IF_ERROR(col.AppendNull());
        }
      }
      return col;
    }
    case DataType::kString: {
      // Every dictionary entry encodes at least its 1-byte length prefix.
      LAWS_ASSIGN_OR_RETURN(uint64_t dict_size,
                            in->GetCount(1, "string dictionary"));
      std::vector<std::string> dict(dict_size);
      for (auto& s : dict) {
        LAWS_ASSIGN_OR_RETURN(s, in->GetString());
      }
      std::vector<int64_t> codes;
      if (encoding == ColumnEncoding::kRle) {
        LAWS_ASSIGN_OR_RETURN(codes, RleDecodeInt64(in, max_elements));
      } else if (encoding == ColumnEncoding::kBitPack) {
        LAWS_ASSIGN_OR_RETURN(codes, BitPackDecodeInt64(in, max_elements));
      } else if (encoding == ColumnEncoding::kPlain) {
        LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(4, "string codes"));
        std::vector<uint32_t> raw(n);
        LAWS_RETURN_IF_ERROR(in->GetRaw(raw.data(), n * sizeof(uint32_t)));
        codes.assign(raw.begin(), raw.end());
      } else {
        return Status::ParseError("bad STRING encoding tag");
      }
      LAWS_RETURN_IF_ERROR(check_row_count(codes.size()));
      for (size_t i = 0; i < codes.size(); ++i) {
        if (!valid_at(i)) {
          LAWS_RETURN_IF_ERROR(col.AppendNull());
          continue;
        }
        if (codes[i] < 0 || static_cast<uint64_t>(codes[i]) >= dict.size()) {
          return Status::ParseError("dictionary code out of range");
        }
        col.AppendString(dict[static_cast<size_t>(codes[i])]);
      }
      return col;
    }
    case DataType::kBool: {
      if (encoding != ColumnEncoding::kPlain) {
        return Status::ParseError("bad BOOL encoding tag");
      }
      LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(1, "BOOL column"));
      LAWS_RETURN_IF_ERROR(check_row_count(n));
      std::vector<uint8_t> data(n);
      LAWS_RETURN_IF_ERROR(in->GetRaw(data.data(), n));
      for (size_t i = 0; i < data.size(); ++i) {
        if (valid_at(i)) {
          col.AppendBool(data[i] != 0);
        } else {
          LAWS_RETURN_IF_ERROR(col.AppendNull());
        }
      }
      return col;
    }
  }
  return Status::Internal("corrupt column type");
}

/// Candidate non-zlib encodings for a type (kZlib wraps kPlain separately).
std::vector<ColumnEncoding> CandidatesFor(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return {ColumnEncoding::kPlain, ColumnEncoding::kRle,
              ColumnEncoding::kDeltaVarint, ColumnEncoding::kBitPack,
              ColumnEncoding::kShuffleZlib};
    case DataType::kDouble:
      return {ColumnEncoding::kPlain, ColumnEncoding::kShuffleZlib};
    case DataType::kString:
      return {ColumnEncoding::kPlain, ColumnEncoding::kRle,
              ColumnEncoding::kBitPack};
    case DataType::kBool:
      return {ColumnEncoding::kPlain};
  }
  return {ColumnEncoding::kPlain};
}

Result<CompressedColumn> CompressWith(const Column& column,
                                      ColumnEncoding encoding) {
  CompressedColumn out;
  out.uncompressed_bytes = column.MemoryBytes();
  if (encoding == ColumnEncoding::kZlib) {
    // DEFLATE over the plain body (validity stays raw up front).
    ByteWriter plain;
    LAWS_RETURN_IF_ERROR(EncodeBody(column, ColumnEncoding::kPlain, &plain));
    ByteWriter w;
    WriteValidity(column, &w);
    LAWS_ASSIGN_OR_RETURN(std::vector<uint8_t> z,
                          ZlibCompress(plain.data().data(), plain.size()));
    w.PutVarint(z.size());
    w.PutRaw(z.data(), z.size());
    out.encoding = ColumnEncoding::kZlib;
    out.payload = w.TakeData();
    return out;
  }
  ByteWriter w;
  WriteValidity(column, &w);
  LAWS_RETURN_IF_ERROR(EncodeBody(column, encoding, &w));
  out.encoding = encoding;
  out.payload = w.TakeData();
  return out;
}

}  // namespace

std::string_view ColumnEncodingToString(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain:
      return "plain";
    case ColumnEncoding::kRle:
      return "rle";
    case ColumnEncoding::kDeltaVarint:
      return "delta_varint";
    case ColumnEncoding::kBitPack:
      return "bitpack";
    case ColumnEncoding::kShuffleZlib:
      return "shuffle_zlib";
    case ColumnEncoding::kZlib:
      return "zlib";
    case ColumnEncoding::kAuto:
      return "auto";
  }
  return "?";
}

size_t CompressedTable::TotalCompressedBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns) bytes += c.compressed_bytes();
  return bytes;
}

size_t CompressedTable::TotalUncompressedBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns) bytes += c.uncompressed_bytes;
  return bytes;
}

double CompressedTable::CompressionRatio() const {
  const size_t raw = TotalUncompressedBytes();
  if (raw == 0) return 1.0;
  return static_cast<double>(TotalCompressedBytes()) /
         static_cast<double>(raw);
}

Result<CompressedColumn> CompressColumn(const Column& column,
                                        ColumnEncoding encoding) {
  if (encoding != ColumnEncoding::kAuto) {
    return CompressWith(column, encoding);
  }
  Result<CompressedColumn> best =
      Status::Internal("no applicable encoding");
  for (ColumnEncoding cand : CandidatesFor(column.type())) {
    auto c = CompressWith(column, cand);
    if (!c.ok()) continue;
    if (!best.ok() || c->payload.size() < best->payload.size()) best = c;
  }
  // Also consider generic DEFLATE.
  auto z = CompressWith(column, ColumnEncoding::kZlib);
  if (z.ok() && (!best.ok() || z->payload.size() < best->payload.size())) {
    best = z;
  }
  return best;
}

Result<Column> DecompressColumn(const CompressedColumn& compressed,
                                const Field& field, size_t expected_rows) {
  ByteReader in(compressed.payload);
  LAWS_ASSIGN_OR_RETURN(std::vector<uint8_t> validity, ReadValidity(&in));
  if (compressed.encoding == ColumnEncoding::kZlib) {
    LAWS_ASSIGN_OR_RETURN(uint64_t zsize, in.GetCount(1, "zlib blob size"));
    std::vector<uint8_t> blob(zsize);
    LAWS_RETURN_IF_ERROR(in.GetRaw(blob.data(), zsize));
    LAWS_ASSIGN_OR_RETURN(std::vector<uint8_t> plain, ZlibDecompress(blob));
    ByteReader body(plain);
    return DecodeBody(&body, field, ColumnEncoding::kPlain, validity,
                      expected_rows);
  }
  return DecodeBody(&in, field, compressed.encoding, validity, expected_rows);
}

Result<CompressedTable> CompressTable(const Table& table,
                                      ColumnEncoding encoding) {
  CompressedTable out;
  out.schema = table.schema();
  out.num_rows = table.num_rows();
  out.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    LAWS_ASSIGN_OR_RETURN(CompressedColumn cc,
                          CompressColumn(table.column(c), encoding));
    out.columns.push_back(std::move(cc));
  }
  return out;
}

Result<Table> DecompressTable(const CompressedTable& compressed) {
  std::vector<Column> columns;
  columns.reserve(compressed.columns.size());
  for (size_t c = 0; c < compressed.columns.size(); ++c) {
    LAWS_ASSIGN_OR_RETURN(
        Column col,
        DecompressColumn(compressed.columns[c], compressed.schema.field(c),
                         compressed.num_rows));
    if (col.size() != compressed.num_rows) {
      return Status::ParseError("row count mismatch after decompression");
    }
    columns.push_back(std::move(col));
  }
  return Table::FromColumns(compressed.schema, std::move(columns));
}

}  // namespace laws

#ifndef LAWSDB_COMPRESS_COLUMN_COMPRESSOR_H_
#define LAWSDB_COMPRESS_COLUMN_COMPRESSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Per-column encoding schemes. kAuto tries all applicable encodings and
/// keeps the smallest.
enum class ColumnEncoding : uint8_t {
  kPlain = 0,
  kRle = 1,
  kDeltaVarint = 2,
  kBitPack = 3,
  kShuffleZlib = 4,  // byte-shuffle + DEFLATE (doubles)
  kZlib = 5,         // DEFLATE over the plain encoding
  kAuto = 255,
};

std::string_view ColumnEncodingToString(ColumnEncoding e);

/// One compressed column: the chosen encoding and its payload.
struct CompressedColumn {
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  std::vector<uint8_t> payload;
  size_t uncompressed_bytes = 0;

  size_t compressed_bytes() const { return payload.size(); }
};

/// A generically compressed table: schema + per-column blobs. This is the
/// model-free baseline the semantic compressor is measured against.
struct CompressedTable {
  Schema schema;
  size_t num_rows = 0;
  std::vector<CompressedColumn> columns;

  size_t TotalCompressedBytes() const;
  size_t TotalUncompressedBytes() const;
  /// compressed / uncompressed, lower is better.
  double CompressionRatio() const;
};

/// Compresses one column with the requested encoding (kAuto = best of all
/// applicable).
Result<CompressedColumn> CompressColumn(const Column& column,
                                        ColumnEncoding encoding);

/// Sentinel for DecompressColumn when the caller does not know how many
/// rows to expect; decoders then fall back to the kMaxDecodedElements
/// sanity cap instead of an exact bound.
inline constexpr size_t kUnknownRowCount = static_cast<size_t>(-1);

/// Reconstructs a column; `field` supplies type/nullability. When
/// `expected_rows` is known it becomes a hard bound on every allocation
/// driven by deserialized counts (corrupt payloads fail fast with
/// kParseError instead of over-allocating) and the decoded length is
/// verified against it.
Result<Column> DecompressColumn(const CompressedColumn& compressed,
                                const Field& field,
                                size_t expected_rows = kUnknownRowCount);

/// Compresses all columns of a table (kAuto per column by default).
Result<CompressedTable> CompressTable(
    const Table& table, ColumnEncoding encoding = ColumnEncoding::kAuto);

/// Reconstructs the full table; round-trips losslessly.
Result<Table> DecompressTable(const CompressedTable& compressed);

}  // namespace laws

#endif  // LAWSDB_COMPRESS_COLUMN_COMPRESSOR_H_

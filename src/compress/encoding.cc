#include "compress/encoding.h"

#include <zlib.h>

#include <cstring>

namespace laws {

void RleEncodeInt64(const std::vector<int64_t>& values, ByteWriter* out) {
  out->PutVarint(values.size());
  size_t i = 0;
  while (i < values.size()) {
    const int64_t v = values[i];
    size_t run = 1;
    while (i + run < values.size() && values[i + run] == v) ++run;
    out->PutSignedVarint(v);
    out->PutVarint(run);
    i += run;
  }
}

Result<std::vector<int64_t>> RleDecodeInt64(ByteReader* in,
                                            uint64_t max_elements) {
  LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetVarint());
  // RLE legitimately expands (a constant column is one tiny run), so the
  // count cannot be validated against remaining(); cap it instead, and
  // reserve no more than the input could plausibly describe — growth past
  // that is earned run by run.
  if (n > max_elements) {
    return Status::ParseError("implausible RLE element count");
  }
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(std::min<uint64_t>(n, in->remaining())));
  while (out.size() < n) {
    LAWS_ASSIGN_OR_RETURN(int64_t v, in->GetSignedVarint());
    LAWS_ASSIGN_OR_RETURN(uint64_t run, in->GetVarint());
    if (run == 0 || out.size() + run > n) {
      return Status::ParseError("corrupt RLE run");
    }
    out.insert(out.end(), run, v);
  }
  return out;
}

void DeltaVarintEncodeInt64(const std::vector<int64_t>& values,
                            ByteWriter* out) {
  out->PutVarint(values.size());
  int64_t prev = 0;
  for (int64_t v : values) {
    // Wrapping subtraction keeps the transform invertible at extremes.
    out->PutSignedVarint(static_cast<int64_t>(static_cast<uint64_t>(v) -
                                              static_cast<uint64_t>(prev)));
    prev = v;
  }
}

Result<std::vector<int64_t>> DeltaVarintDecodeInt64(ByteReader* in) {
  // Every delta takes at least one encoded byte, so a count above
  // remaining() is corrupt — reject before reserving.
  LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(1, "delta-varint count"));
  std::vector<int64_t> out;
  out.reserve(n);
  int64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    LAWS_ASSIGN_OR_RETURN(int64_t d, in->GetSignedVarint());
    prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                static_cast<uint64_t>(d));
    out.push_back(prev);
  }
  return out;
}

void BitPackEncodeInt64(const std::vector<int64_t>& values, ByteWriter* out) {
  out->PutVarint(values.size());
  if (values.empty()) return;
  int64_t lo = values[0], hi = values[0];
  for (int64_t v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  int width = 0;
  while (width < 64 && (width == 64 ? 0 : (range >> width)) != 0) ++width;
  out->PutSignedVarint(lo);
  // Widths above 56 cannot be packed through a 64-bit accumulator with a
  // partial byte pending; store raw values under a sentinel width instead.
  if (width > 56) {
    out->PutU8(255);
    for (int64_t v : values) out->PutI64(v);
    return;
  }
  out->PutU8(static_cast<uint8_t>(width));
  if (width == 0) return;
  // Pack offsets LSB-first into a bit buffer.
  uint64_t acc = 0;
  int bits = 0;
  for (int64_t v : values) {
    const uint64_t off = static_cast<uint64_t>(v) - static_cast<uint64_t>(lo);
    acc |= off << bits;
    bits += width;
    while (bits >= 8) {
      out->PutU8(static_cast<uint8_t>(acc & 0xFF));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) out->PutU8(static_cast<uint8_t>(acc & 0xFF));
}

Result<std::vector<int64_t>> BitPackDecodeInt64(ByteReader* in,
                                                uint64_t max_elements) {
  LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetVarint());
  // Width 0 (constant column) packs any count into ~3 bytes, so the count
  // cannot be bounded by remaining() up front; cap it, then validate the
  // per-width payload size once the width is known.
  if (n > max_elements) {
    return Status::ParseError("implausible bit-pack element count");
  }
  std::vector<int64_t> out;
  if (n == 0) return out;
  LAWS_ASSIGN_OR_RETURN(int64_t lo, in->GetSignedVarint());
  LAWS_ASSIGN_OR_RETURN(uint8_t width, in->GetU8());
  if (width == 0) {
    out.assign(n, lo);
    return out;
  }
  if (width == 255) {
    LAWS_RETURN_IF_ERROR(in->CheckAvailable(n, 8, "bit-pack raw values"));
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LAWS_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
      out.push_back(v);
    }
    return out;
  }
  if (width > 56) {
    return Status::ParseError("corrupt bit width");
  }
  // n <= 2^28 and width <= 56, so n * width cannot overflow here.
  if (in->remaining() < (n * width + 7) / 8) {
    return Status::ParseError("truncated bit-pack payload");
  }
  out.reserve(n);
  uint64_t acc = 0;
  int bits = 0;
  const uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1);
  for (uint64_t i = 0; i < n; ++i) {
    while (bits < width) {
      LAWS_ASSIGN_OR_RETURN(uint8_t b, in->GetU8());
      acc |= static_cast<uint64_t>(b) << bits;
      bits += 8;
    }
    const uint64_t off = acc & mask;
    acc >>= width;
    bits -= width;
    out.push_back(static_cast<int64_t>(static_cast<uint64_t>(lo) + off));
  }
  return out;
}

void ByteShuffleEncodeDouble(const std::vector<double>& values,
                             ByteWriter* out) {
  out->PutVarint(values.size());
  const size_t n = values.size();
  if (n == 0) return;
  const auto* src = reinterpret_cast<const uint8_t*>(values.data());
  std::vector<uint8_t> shuffled(n * 8);
  for (size_t byte = 0; byte < 8; ++byte) {
    for (size_t i = 0; i < n; ++i) {
      shuffled[byte * n + i] = src[i * 8 + byte];
    }
  }
  out->PutRaw(shuffled.data(), shuffled.size());
}

Result<std::vector<double>> ByteShuffleDecodeDouble(ByteReader* in) {
  LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(8, "byte-shuffle count"));
  std::vector<double> out(n);
  if (n == 0) return out;
  std::vector<uint8_t> shuffled(n * 8);
  LAWS_RETURN_IF_ERROR(in->GetRaw(shuffled.data(), shuffled.size()));
  auto* dst = reinterpret_cast<uint8_t*>(out.data());
  for (size_t byte = 0; byte < 8; ++byte) {
    for (size_t i = 0; i < n; ++i) {
      dst[i * 8 + byte] = shuffled[byte * n + i];
    }
  }
  return out;
}

void ByteShuffleEncodeInt64(const std::vector<int64_t>& values,
                            ByteWriter* out) {
  out->PutVarint(values.size());
  const size_t n = values.size();
  if (n == 0) return;
  const auto* src = reinterpret_cast<const uint8_t*>(values.data());
  std::vector<uint8_t> shuffled(n * 8);
  for (size_t byte = 0; byte < 8; ++byte) {
    for (size_t i = 0; i < n; ++i) {
      shuffled[byte * n + i] = src[i * 8 + byte];
    }
  }
  out->PutRaw(shuffled.data(), shuffled.size());
}

Result<std::vector<int64_t>> ByteShuffleDecodeInt64(ByteReader* in) {
  LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(8, "byte-shuffle count"));
  std::vector<int64_t> out(n);
  if (n == 0) return out;
  std::vector<uint8_t> shuffled(n * 8);
  LAWS_RETURN_IF_ERROR(in->GetRaw(shuffled.data(), shuffled.size()));
  auto* dst = reinterpret_cast<uint8_t*>(out.data());
  for (size_t byte = 0; byte < 8; ++byte) {
    for (size_t i = 0; i < n; ++i) {
      dst[i * 8 + byte] = shuffled[byte * n + i];
    }
  }
  return out;
}

Result<std::vector<uint8_t>> ZlibCompress(const uint8_t* data, size_t size) {
  uLongf bound = compressBound(static_cast<uLong>(size));
  std::vector<uint8_t> out(sizeof(uint64_t) + bound);
  const uint64_t original = size;
  std::memcpy(out.data(), &original, sizeof(original));
  const int rc =
      compress2(out.data() + sizeof(uint64_t), &bound, data,
                static_cast<uLong>(size), /*level=*/6);
  if (rc != Z_OK) {
    return Status::Internal("zlib compress2 failed rc=" + std::to_string(rc));
  }
  out.resize(sizeof(uint64_t) + bound);
  return out;
}

Result<std::vector<uint8_t>> ZlibDecompress(const std::vector<uint8_t>& blob) {
  if (blob.size() < sizeof(uint64_t)) {
    return Status::ParseError("zlib blob too small");
  }
  uint64_t original = 0;
  std::memcpy(&original, blob.data(), sizeof(original));
  // DEFLATE expands at most ~1032:1; a larger claimed size means the header
  // is corrupt. Guard before allocating.
  const uint64_t payload = blob.size() - sizeof(uint64_t);
  if (original > payload * 1032 + 64) {
    return Status::ParseError("zlib blob claims implausible size");
  }
  std::vector<uint8_t> out(original);
  uLongf out_size = static_cast<uLongf>(original);
  const int rc = uncompress(out.data(), &out_size,
                            blob.data() + sizeof(uint64_t),
                            static_cast<uLong>(blob.size() - sizeof(uint64_t)));
  if (rc != Z_OK || out_size != original) {
    return Status::ParseError("zlib uncompress failed rc=" +
                              std::to_string(rc));
  }
  return out;
}

}  // namespace laws

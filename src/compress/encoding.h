#ifndef LAWSDB_COMPRESS_ENCODING_H_
#define LAWSDB_COMPRESS_ENCODING_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace laws {

/// Lightweight block encoders for columnar data. These are the generic
/// (model-free) compression baselines the semantic compressor is compared
/// against, in the spirit of the paper's SPARTAN/gzip discussion (§4.1,
/// ref [5]).

/// Decoded-element sanity cap for encodings whose element count can
/// legitimately exceed the encoded byte count (RLE runs, constant-column
/// bit packing). A corrupt length claiming more elements than this fails
/// with kParseError instead of attempting a multi-gigabyte allocation.
/// Callers that know the expected element count (e.g. a table's row count)
/// should pass it instead for an exact bound.
inline constexpr uint64_t kMaxDecodedElements = uint64_t{1} << 28;

/// Run-length encodes int64 values as (value, run) pairs with varints.
void RleEncodeInt64(const std::vector<int64_t>& values, ByteWriter* out);
Result<std::vector<int64_t>> RleDecodeInt64(
    ByteReader* in, uint64_t max_elements = kMaxDecodedElements);

/// Delta + zigzag + varint coding; excellent for sorted/clustered ids and
/// integer timestamps.
void DeltaVarintEncodeInt64(const std::vector<int64_t>& values,
                            ByteWriter* out);
Result<std::vector<int64_t>> DeltaVarintDecodeInt64(ByteReader* in);

/// Frame-of-reference bit packing: subtract the minimum, pack each offset
/// in ceil(log2(range+1)) bits.
void BitPackEncodeInt64(const std::vector<int64_t>& values, ByteWriter* out);
Result<std::vector<int64_t>> BitPackDecodeInt64(
    ByteReader* in, uint64_t max_elements = kMaxDecodedElements);

/// Byte-transposes IEEE doubles (all MSBs first) so entropy coders can
/// exploit exponent redundancy, then stores raw. Pair with Zlib for actual
/// size reduction.
void ByteShuffleEncodeDouble(const std::vector<double>& values,
                             ByteWriter* out);
Result<std::vector<double>> ByteShuffleDecodeDouble(ByteReader* in);

/// Same byte transposition for int64 payloads (e.g. XOR bit-deltas from the
/// semantic compressor, whose high bytes are mostly zero).
void ByteShuffleEncodeInt64(const std::vector<int64_t>& values,
                            ByteWriter* out);
Result<std::vector<int64_t>> ByteShuffleDecodeInt64(ByteReader* in);

/// DEFLATE via zlib (level 6). The output embeds the uncompressed size.
Result<std::vector<uint8_t>> ZlibCompress(const uint8_t* data, size_t size);
Result<std::vector<uint8_t>> ZlibDecompress(const std::vector<uint8_t>& blob);

}  // namespace laws

#endif  // LAWSDB_COMPRESS_ENCODING_H_

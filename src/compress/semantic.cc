#include "compress/semantic.h"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/thread_pool.h"
#include "model/model.h"

namespace laws {
namespace {

/// Non-failing numeric coercion for columns already checked to be
/// non-string; used inside parallel regions where Status cannot flow.
double CoerceNumeric(const Column& c, size_t i) {
  switch (c.type()) {
    case DataType::kInt64:
      return static_cast<double>(c.Int64At(i));
    case DataType::kDouble:
      return c.DoubleAt(i);
    case DataType::kBool:
      return c.BoolAt(i) ? 1.0 : 0.0;
    case DataType::kString:
      break;  // excluded by the callers' type checks
  }
  return 0.0;
}

/// Builds group -> parameter vector lookup from the parameter table layout
/// produced by GroupedFitToTable (group, params..., residual_se, r_squared,
/// n_obs).
Result<std::unordered_map<int64_t, Vector>> ParameterLookup(
    const Table& params, size_t num_parameters) {
  if (params.num_columns() < num_parameters + 1) {
    return Status::InvalidArgument("parameter table too narrow");
  }
  std::unordered_map<int64_t, Vector> lookup;
  lookup.reserve(params.num_rows());
  const Column& group = params.column(0);
  for (size_t r = 0; r < params.num_rows(); ++r) {
    Vector beta(num_parameters);
    for (size_t p = 0; p < num_parameters; ++p) {
      beta[p] = params.column(p + 1).DoubleAt(r);
    }
    lookup.emplace(group.Int64At(r), std::move(beta));
  }
  return lookup;
}

/// Per-row model prediction; rows without parameters (unfitted groups) or
/// with NULL inputs predict 0 so residuals degrade to the raw values.
Result<Vector> PredictRows(const Table& table, const Model& model,
                           const std::unordered_map<int64_t, Vector>& params,
                           const std::string& group_column,
                           const std::vector<std::string>& input_columns) {
  LAWS_ASSIGN_OR_RETURN(const Column* group, table.ColumnByName(group_column));
  std::vector<const Column*> inputs;
  for (const auto& name : input_columns) {
    LAWS_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    if (c->type() == DataType::kString) {
      return Status::TypeMismatch("input column '" + name +
                                  "' is not numeric");
    }
    inputs.push_back(c);
  }
  const size_t n = table.num_rows();
  Vector pred(n, 0.0);
  // Rows are independent and each lane writes disjoint pred[i] slots, so
  // the result is identical at any thread count. The grain keeps tiny
  // tables on the serial path.
  ParallelForOptions opts;
  opts.grain = 4096;
  ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
    Vector x(inputs.size());
    for (size_t i = lo; i < hi; ++i) {
      if (group->IsNull(i)) continue;
      const auto it = params.find(group->Int64At(i));
      if (it == params.end()) continue;
      bool ok = true;
      for (size_t c = 0; c < inputs.size(); ++c) {
        if (inputs[c]->IsNull(i)) {
          ok = false;
          break;
        }
        x[c] = CoerceNumeric(*inputs[c], i);
      }
      if (!ok) continue;
      const double y = model.Evaluate(x, it->second);
      pred[i] = std::isfinite(y) ? y : 0.0;
    }
  }, opts);
  return pred;
}

}  // namespace

size_t SemanticCompressedTable::TotalCompressedBytes() const {
  size_t bytes = residual_column.compressed_bytes();
  bytes += parameter_table.MemoryBytes();
  for (const auto& c : other_columns) bytes += c.compressed_bytes();
  bytes += model_source.size();
  return bytes;
}

double SemanticCompressedTable::CompressionRatio() const {
  if (uncompressed_bytes == 0) return 1.0;
  return static_cast<double>(TotalCompressedBytes()) /
         static_cast<double>(uncompressed_bytes);
}

size_t SemanticCompressedTable::OutputColumnBytes() const {
  return residual_column.compressed_bytes() + parameter_table.MemoryBytes() +
         model_source.size();
}

Result<SemanticCompressedTable> SemanticCompress(
    const Table& table, const Model& model, const GroupedFitOutput& fits,
    const GroupedFitSpec& spec, const SemanticCompressionOptions& options) {
  SemanticCompressedTable out;
  out.schema = table.schema();
  out.num_rows = table.num_rows();
  out.model_source = model.ToSource();
  out.group_column = spec.group_column;
  out.input_columns = spec.input_columns;
  out.output_column = spec.output_column;
  out.lossless = options.lossless;
  out.quantization_step = options.lossless ? 0.0 : options.quantization_step;
  out.uncompressed_bytes = table.MemoryBytes();
  if (!options.lossless && !(options.quantization_step > 0.0)) {
    return Status::InvalidArgument("lossy mode needs quantization_step > 0");
  }

  LAWS_ASSIGN_OR_RETURN(out.parameter_table,
                        GroupedFitToTable(model, fits, spec.group_column));
  LAWS_ASSIGN_OR_RETURN(
      auto lookup, ParameterLookup(out.parameter_table,
                                   model.num_parameters()));

  LAWS_ASSIGN_OR_RETURN(const Column* output_col,
                        table.ColumnByName(spec.output_column));
  if (output_col->type() != DataType::kDouble) {
    return Status::TypeMismatch(
        "semantic compression models a DOUBLE output column");
  }
  LAWS_ASSIGN_OR_RETURN(
      Vector pred, PredictRows(table, model, lookup, spec.group_column,
                               spec.input_columns));

  // Residual column, preserving nullability.
  const size_t n = table.num_rows();
  if (options.lossless) {
    // Bit-exact reconstruction requires an exactly invertible transform:
    // floating-point `pred + (y - pred)` can be off by an ulp, so lossless
    // mode stores the XOR of the IEEE bit patterns instead. Good
    // predictions zero the sign/exponent/leading-mantissa bytes, which the
    // byte-shuffled DEFLATE encoding then squeezes out.
    Column residuals(DataType::kInt64, output_col->nullable());
    for (size_t i = 0; i < n; ++i) {
      if (output_col->IsNull(i)) {
        LAWS_RETURN_IF_ERROR(residuals.AppendNull());
      } else {
        uint64_t ybits, pbits;
        const double y = output_col->DoubleAt(i);
        std::memcpy(&ybits, &y, sizeof(ybits));
        std::memcpy(&pbits, &pred[i], sizeof(pbits));
        residuals.AppendInt64(static_cast<int64_t>(ybits ^ pbits));
      }
    }
    LAWS_ASSIGN_OR_RETURN(out.residual_column,
                          CompressColumn(residuals, ColumnEncoding::kAuto));
  } else {
    const double q = options.quantization_step;
    Column residuals(DataType::kInt64, output_col->nullable());
    for (size_t i = 0; i < n; ++i) {
      if (output_col->IsNull(i)) {
        LAWS_RETURN_IF_ERROR(residuals.AppendNull());
      } else {
        const double r = output_col->DoubleAt(i) - pred[i];
        residuals.AppendInt64(static_cast<int64_t>(std::llround(r / q)));
      }
    }
    LAWS_ASSIGN_OR_RETURN(out.residual_column,
                          CompressColumn(residuals, ColumnEncoding::kAuto));
  }

  // Remaining columns, generically compressed — one independent encoding
  // search per column, fanned out across lanes. Slots are indexed by the
  // schema-order position so the blob layout never depends on scheduling.
  std::vector<size_t> keep;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.schema().field(c).name;
    if (name == spec.output_column) continue;
    keep.push_back(c);
    out.other_column_names.push_back(name);
  }
  out.other_columns.resize(keep.size());
  std::vector<Status> column_status(keep.size());
  ParallelFor(0, keep.size(), [&](size_t i) {
    auto cc = CompressColumn(table.column(keep[i]),
                             options.other_columns_encoding);
    if (cc.ok()) {
      out.other_columns[i] = std::move(*cc);
    } else {
      column_status[i] = cc.status();
    }
  });
  for (const Status& s : column_status) {
    LAWS_RETURN_IF_ERROR(s);
  }
  return out;
}

Result<Table> SemanticDecompress(const SemanticCompressedTable& compressed) {
  LAWS_ASSIGN_OR_RETURN(ModelPtr model,
                        ModelFromSource(compressed.model_source));

  // Rebuild the non-output columns first (predictions need the inputs).
  std::vector<Column> columns;
  columns.reserve(compressed.schema.num_fields());
  size_t other_idx = 0;
  // Output slot placeholder (filled below); remember its index.
  size_t output_idx = compressed.schema.num_fields();
  for (size_t c = 0; c < compressed.schema.num_fields(); ++c) {
    const Field& f = compressed.schema.field(c);
    if (f.name == compressed.output_column) {
      output_idx = c;
      columns.emplace_back(f.type, f.nullable);  // placeholder
      continue;
    }
    if (other_idx >= compressed.other_columns.size() ||
        compressed.other_column_names[other_idx] != f.name) {
      return Status::ParseError("column order mismatch in semantic blob");
    }
    LAWS_ASSIGN_OR_RETURN(
        Column col,
        DecompressColumn(compressed.other_columns[other_idx], f,
                         compressed.num_rows));
    columns.push_back(std::move(col));
    ++other_idx;
  }
  if (output_idx == compressed.schema.num_fields()) {
    return Status::ParseError("output column missing from schema");
  }

  // Assemble a temporary table of the inputs for prediction.
  std::vector<Field> tmp_fields;
  std::vector<Column> tmp_cols;
  for (size_t c = 0; c < compressed.schema.num_fields(); ++c) {
    if (c == output_idx) continue;
    tmp_fields.push_back(compressed.schema.field(c));
    tmp_cols.push_back(columns[c]);
  }
  LAWS_ASSIGN_OR_RETURN(
      Table tmp, Table::FromColumns(Schema(tmp_fields), std::move(tmp_cols)));

  LAWS_ASSIGN_OR_RETURN(
      auto lookup,
      ParameterLookup(compressed.parameter_table, model->num_parameters()));
  LAWS_ASSIGN_OR_RETURN(
      Vector pred, PredictRows(tmp, *model, lookup, compressed.group_column,
                               compressed.input_columns));

  // Reconstruct the output column from residuals.
  const Field& out_field = compressed.schema.field(output_idx);
  Column output(DataType::kDouble, out_field.nullable);
  if (compressed.lossless) {
    Field residual_field{"residual", DataType::kInt64, out_field.nullable};
    LAWS_ASSIGN_OR_RETURN(
        Column residuals,
        DecompressColumn(compressed.residual_column, residual_field,
                         compressed.num_rows));
    if (residuals.size() != compressed.num_rows) {
      return Status::ParseError("residual row count mismatch");
    }
    for (size_t i = 0; i < residuals.size(); ++i) {
      if (residuals.IsNull(i)) {
        LAWS_RETURN_IF_ERROR(output.AppendNull());
      } else {
        uint64_t pbits;
        std::memcpy(&pbits, &pred[i], sizeof(pbits));
        const uint64_t ybits =
            pbits ^ static_cast<uint64_t>(residuals.Int64At(i));
        double y;
        std::memcpy(&y, &ybits, sizeof(y));
        output.AppendDouble(y);
      }
    }
  } else {
    Field residual_field{"residual", DataType::kInt64, out_field.nullable};
    LAWS_ASSIGN_OR_RETURN(
        Column residuals,
        DecompressColumn(compressed.residual_column, residual_field,
                         compressed.num_rows));
    if (residuals.size() != compressed.num_rows) {
      return Status::ParseError("residual row count mismatch");
    }
    for (size_t i = 0; i < residuals.size(); ++i) {
      if (residuals.IsNull(i)) {
        LAWS_RETURN_IF_ERROR(output.AppendNull());
      } else {
        output.AppendDouble(pred[i] + static_cast<double>(residuals.Int64At(
                                          i)) *
                                          compressed.quantization_step);
      }
    }
  }
  columns[output_idx] = std::move(output);
  return Table::FromColumns(compressed.schema, std::move(columns));
}

Result<SemanticCompressedTable> SemanticRecompress(
    const SemanticCompressedTable& old_blob, const Model& new_model,
    const GroupedFitOutput& new_fits, const GroupedFitSpec& new_spec,
    const SemanticCompressionOptions& options) {
  if (!old_blob.lossless) {
    return Status::InvalidArgument(
        "refusing to recompress a lossy blob (errors would accumulate); "
        "recompress from the original data instead");
  }
  LAWS_ASSIGN_OR_RETURN(Table restored, SemanticDecompress(old_blob));
  return SemanticCompress(restored, new_model, new_fits, new_spec, options);
}

}  // namespace laws

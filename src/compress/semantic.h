#ifndef LAWSDB_COMPRESS_SEMANTIC_H_
#define LAWSDB_COMPRESS_SEMANTIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compress/column_compressor.h"
#include "model/grouped_fit.h"
#include "storage/table.h"

namespace laws {

/// Options for model-based ("semantic") compression — the paper's §4.1
/// opportunity: "store only the differences between the predicted and
/// observed values ... we can then recompute the original dataset without
/// loss of information".
struct SemanticCompressionOptions {
  /// Lossless mode stores XOR bit-deltas between observed and predicted
  /// IEEE doubles (exactly invertible; good predictions zero the high
  /// bytes, which byte-shuffled DEFLATE then removes). Lossy mode
  /// quantizes residuals to multiples of `quantization_step`, bounding the
  /// absolute reconstruction error by step/2 — the knob for the
  /// residual-quantization ablation.
  bool lossless = true;
  double quantization_step = 1e-4;
  /// Encoding used for the non-modeled columns.
  ColumnEncoding other_columns_encoding = ColumnEncoding::kAuto;
};

/// A semantically compressed table: the captured model (source form + per-
/// group parameters) plus residuals for the modeled output column and
/// generically compressed remaining columns.
struct SemanticCompressedTable {
  Schema schema;
  size_t num_rows = 0;

  /// Model structure in source form (ModelFromSource round-trip).
  std::string model_source;
  std::string group_column;
  std::vector<std::string> input_columns;
  std::string output_column;

  /// Per-group fitted parameters (schema: group, params..., residual_se,
  /// r_squared, n_obs).
  Table parameter_table{Schema{}};

  /// All non-output columns, generically compressed, in schema order.
  std::vector<CompressedColumn> other_columns;
  std::vector<std::string> other_column_names;

  /// The output column as residuals (lossless doubles or quantized ints).
  CompressedColumn residual_column;
  bool lossless = true;
  double quantization_step = 0.0;

  /// Residuals + parameters + other columns, in bytes.
  size_t TotalCompressedBytes() const;
  /// Raw columnar footprint of the source table.
  size_t uncompressed_bytes = 0;
  double CompressionRatio() const;
  /// Bytes spent only on reconstructing the output column (residuals +
  /// parameter table) — the apples-to-apples number against compressing
  /// the output column alone.
  size_t OutputColumnBytes() const;
};

/// Compresses `table` using a fitted grouped model. `fits` must come from
/// FitGrouped over the same table/spec. Groups without a fit fall back to
/// prediction 0 (their residuals equal the raw values), so the round trip
/// is always lossless in lossless mode.
Result<SemanticCompressedTable> SemanticCompress(
    const Table& table, const Model& model, const GroupedFitOutput& fits,
    const GroupedFitSpec& spec, const SemanticCompressionOptions& options = {});

/// Reconstructs the table. In lossless mode the result is bit-exact; in
/// lossy mode the output column deviates by at most quantization_step/2.
Result<Table> SemanticDecompress(const SemanticCompressedTable& compressed);

/// Re-bases an existing *lossless* semantic blob on a newer/better model
/// (paper §4.1: "if we base our data compression on a model, we can choose
/// to recompress the data, which is an IO-intensive process"): decompresses
/// with the old model and recompresses against `new_fits`. Refuses lossy
/// inputs — recompressing already-lossy data would silently stack error.
Result<SemanticCompressedTable> SemanticRecompress(
    const SemanticCompressedTable& old_blob, const Model& new_model,
    const GroupedFitOutput& new_fits, const GroupedFitSpec& new_spec,
    const SemanticCompressionOptions& options = {});

}  // namespace laws

#endif  // LAWSDB_COMPRESS_SEMANTIC_H_

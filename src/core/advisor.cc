#include "core/advisor.h"

#include <algorithm>
#include <unordered_map>

#include "common/random.h"
#include "model/model.h"

namespace laws {
namespace {

std::vector<std::string> DefaultBattery() {
  return {"linear(1)", "poly(2)",     "poly(3)",
          "power_law", "exponential", "logistic"};
}

/// Extracts paired non-null observations from two numeric columns.
Status ExtractPairs(const Column& in_col, const Column& out_col,
                    std::vector<double>* xs, std::vector<double>* ys) {
  if (in_col.type() == DataType::kString ||
      out_col.type() == DataType::kString) {
    return Status::TypeMismatch("advisor needs numeric columns");
  }
  for (size_t i = 0; i < in_col.size(); ++i) {
    if (in_col.IsNull(i) || out_col.IsNull(i)) continue;
    LAWS_ASSIGN_OR_RETURN(double x, in_col.NumericAt(i));
    LAWS_ASSIGN_OR_RETURN(double y, out_col.NumericAt(i));
    xs->push_back(x);
    ys->push_back(y);
  }
  return Status::OK();
}

/// Uniform row subsample (without replacement) down to `max_rows`.
void Subsample(std::vector<double>* xs, std::vector<double>* ys,
               size_t max_rows, uint64_t seed) {
  if (max_rows == 0 || xs->size() <= max_rows) return;
  Rng rng(seed);
  const auto perm = rng.Permutation(static_cast<uint32_t>(xs->size()));
  std::vector<double> nx(max_rows), ny(max_rows);
  for (size_t i = 0; i < max_rows; ++i) {
    nx[i] = (*xs)[perm[i]];
    ny[i] = (*ys)[perm[i]];
  }
  *xs = std::move(nx);
  *ys = std::move(ny);
}

ModelCandidate TryCandidate(const std::string& source,
                            const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  ModelCandidate c;
  c.model_source = source;
  auto model = ModelFromSource(source);
  if (!model.ok()) {
    c.failure = model.status().ToString();
    return c;
  }
  if ((*model)->num_inputs() != 1) {
    c.failure = "advisor battery expects single-input models";
    return c;
  }
  Matrix x(xs.size(), 1);
  Vector y(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    x(i, 0) = xs[i];
    y[i] = ys[i];
  }
  FitOptions opts;
  opts.compute_standard_errors = false;
  auto fit = FitModel(**model, x, y, opts);
  if (!fit.ok()) {
    c.failure = fit.status().ToString();
    return c;
  }
  c.fitted = true;
  c.fit = std::move(*fit);
  c.bic = c.fit.quality.bic;
  c.r_squared = c.fit.quality.r_squared;
  return c;
}

void SortCandidates(std::vector<ModelCandidate>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const ModelCandidate& a, const ModelCandidate& b) {
              if (a.fitted != b.fitted) return a.fitted;
              return a.bic < b.bic;
            });
}

}  // namespace

Result<std::vector<ModelCandidate>> SuggestModels(
    const Table& table, const std::string& input_column,
    const std::string& output_column, const AdvisorOptions& options) {
  LAWS_ASSIGN_OR_RETURN(const Column* in_col,
                        table.ColumnByName(input_column));
  LAWS_ASSIGN_OR_RETURN(const Column* out_col,
                        table.ColumnByName(output_column));
  std::vector<double> xs, ys;
  LAWS_RETURN_IF_ERROR(ExtractPairs(*in_col, *out_col, &xs, &ys));
  Subsample(&xs, &ys, options.max_rows, options.seed);
  if (xs.size() < 8) {
    return Status::InvalidArgument("too few observations for the advisor");
  }

  const auto battery = options.candidate_sources.empty()
                           ? DefaultBattery()
                           : options.candidate_sources;
  std::vector<ModelCandidate> candidates;
  candidates.reserve(battery.size());
  for (const auto& source : battery) {
    candidates.push_back(TryCandidate(source, xs, ys));
  }
  SortCandidates(&candidates);
  if (candidates.empty() || !candidates.front().fitted) {
    return Status::InvalidArgument("no candidate model could be fitted");
  }
  return candidates;
}

Result<std::vector<ModelCandidate>> SuggestGroupedModels(
    const Table& table, const std::string& group_column,
    const std::string& input_column, const std::string& output_column,
    const AdvisorOptions& options) {
  LAWS_ASSIGN_OR_RETURN(const Column* group_col,
                        table.ColumnByName(group_column));
  if (group_col->type() != DataType::kInt64) {
    return Status::TypeMismatch("group column must be INT64");
  }
  LAWS_ASSIGN_OR_RETURN(const Column* in_col,
                        table.ColumnByName(input_column));
  LAWS_ASSIGN_OR_RETURN(const Column* out_col,
                        table.ColumnByName(output_column));

  // Bucket rows per group.
  std::unordered_map<int64_t, std::vector<uint32_t>> buckets;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (group_col->IsNull(i) || in_col->IsNull(i) || out_col->IsNull(i)) {
      continue;
    }
    buckets[group_col->Int64At(i)].push_back(static_cast<uint32_t>(i));
  }
  if (buckets.empty()) {
    return Status::InvalidArgument("no usable groups");
  }

  // Sample groups deterministically.
  std::vector<int64_t> keys;
  keys.reserve(buckets.size());
  for (const auto& [k, rows] : buckets) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  Rng rng(options.seed);
  const auto perm = rng.Permutation(static_cast<uint32_t>(keys.size()));
  const size_t take = std::min(options.sample_groups, keys.size());

  const auto battery = options.candidate_sources.empty()
                           ? DefaultBattery()
                           : options.candidate_sources;
  struct Tally {
    double bic_sum = 0.0;
    double r2_sum = 0.0;
    size_t fits = 0;
    size_t failures = 0;
    ModelCandidate last;
  };
  std::vector<Tally> tallies(battery.size());

  for (size_t s = 0; s < take; ++s) {
    const auto& rows = buckets[keys[perm[s]]];
    std::vector<double> xs, ys;
    xs.reserve(rows.size());
    ys.reserve(rows.size());
    for (uint32_t r : rows) {
      auto x = in_col->NumericAt(r);
      auto y = out_col->NumericAt(r);
      if (!x.ok() || !y.ok()) continue;
      xs.push_back(*x);
      ys.push_back(*y);
    }
    if (xs.size() < 8) continue;
    for (size_t b = 0; b < battery.size(); ++b) {
      ModelCandidate c = TryCandidate(battery[b], xs, ys);
      if (c.fitted) {
        tallies[b].bic_sum += c.bic;
        tallies[b].r2_sum += c.r_squared;
        ++tallies[b].fits;
        tallies[b].last = std::move(c);
      } else {
        ++tallies[b].failures;
        tallies[b].last = std::move(c);
      }
    }
  }

  std::vector<ModelCandidate> candidates;
  candidates.reserve(battery.size());
  for (size_t b = 0; b < battery.size(); ++b) {
    ModelCandidate c;
    c.model_source = battery[b];
    // A class must fit the (large) majority of sampled groups to qualify.
    if (tallies[b].fits > 0 && tallies[b].failures <= tallies[b].fits / 4) {
      c.fitted = true;
      c.bic = tallies[b].bic_sum / static_cast<double>(tallies[b].fits);
      c.r_squared =
          tallies[b].r2_sum / static_cast<double>(tallies[b].fits);
      c.fit = tallies[b].last.fit;
    } else {
      c.failure = tallies[b].fits == 0
                      ? (tallies[b].last.failure.empty()
                             ? "no group could be fitted"
                             : tallies[b].last.failure)
                      : "failed on too many groups";
    }
    candidates.push_back(std::move(c));
  }
  SortCandidates(&candidates);
  if (candidates.empty() || !candidates.front().fitted) {
    return Status::InvalidArgument("no candidate model class qualified");
  }
  return candidates;
}

}  // namespace laws

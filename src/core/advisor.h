#ifndef LAWSDB_CORE_ADVISOR_H_
#define LAWSDB_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/fit.h"
#include "storage/table.h"

namespace laws {

/// One candidate model class evaluated by the advisor.
struct ModelCandidate {
  std::string model_source;
  bool fitted = false;
  /// Fit outcome when fitted (ungrouped) or the aggregate over sampled
  /// groups (grouped).
  FitOutput fit;
  /// Selection criterion: BIC (lower is better). For grouped advice this
  /// is the mean BIC over the sampled groups.
  double bic = 0.0;
  /// Mean R² (grouped: over sampled groups).
  double r_squared = 0.0;
  std::string failure;  // why the fit failed, when !fitted
};

/// Controls for the advisor.
struct AdvisorOptions {
  /// Model classes to try. Empty = the default battery:
  /// linear(1), poly(2), poly(3), power_law, exponential, logistic.
  std::vector<std::string> candidate_sources;
  /// Ungrouped: cap on rows used for trial fits (uniformly sampled
  /// without replacement when the table is larger). 0 = all rows.
  size_t max_rows = 20'000;
  /// Grouped: number of groups sampled for the trial fits.
  size_t sample_groups = 32;
  uint64_t seed = 1234;
};

/// The paper's vision is *autonomous and proactive* harvesting: the
/// database should be able to propose model classes itself, not only
/// intercept user fits (§6 also notes that "focusing on a single class of
/// models ... is unlikely to cover enough ground"). The advisor fits a
/// battery of model classes to (input, output) — optionally per group —
/// and ranks them by BIC, which trades fit quality against parameter
/// count. Candidates whose fit fails (domain violations, divergence) are
/// reported with the reason rather than dropped.
///
/// Returns candidates sorted best-first (fitted ones by ascending BIC,
/// failed ones last). InvalidArgument when no candidate applies at all.
Result<std::vector<ModelCandidate>> SuggestModels(
    const Table& table, const std::string& input_column,
    const std::string& output_column, const AdvisorOptions& options = {});

/// Grouped variant: samples `options.sample_groups` groups, fits every
/// candidate to each sampled group, and ranks classes by mean BIC. Useful
/// before committing to a 35k-group fit.
Result<std::vector<ModelCandidate>> SuggestGroupedModels(
    const Table& table, const std::string& group_column,
    const std::string& input_column, const std::string& output_column,
    const AdvisorOptions& options = {});

}  // namespace laws

#endif  // LAWSDB_CORE_ADVISOR_H_

#include "core/diagnose.h"

#include <algorithm>
#include <cmath>

#include "model/model.h"

namespace laws {

Result<ModelDiagnostics> DiagnoseModel(const Table& table,
                                       const CapturedModel& model,
                                       int64_t group_key) {
  LAWS_ASSIGN_OR_RETURN(ModelPtr fn, ModelFromSource(model.model_source));
  if (fn->num_inputs() != model.input_columns.size()) {
    return Status::Internal("captured model arity mismatch");
  }

  // Resolve the parameter vector: the model's own (ungrouped) or the
  // requested group's row of the parameter table.
  Vector params;
  if (!model.grouped) {
    params = model.parameters;
  } else {
    const Table& pt = model.parameter_table;
    bool found = false;
    for (size_t r = 0; r < pt.num_rows(); ++r) {
      if (pt.column(0).Int64At(r) == group_key) {
        params.resize(fn->num_parameters());
        for (size_t j = 0; j < params.size(); ++j) {
          params[j] = pt.column(j + 1).DoubleAt(r);
        }
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("group " + std::to_string(group_key) +
                              " has no captured parameters");
    }
  }

  const Column* group_col = nullptr;
  if (model.grouped) {
    LAWS_ASSIGN_OR_RETURN(group_col, table.ColumnByName(model.group_column));
  }
  std::vector<const Column*> inputs;
  for (const auto& name : model.input_columns) {
    LAWS_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    inputs.push_back(c);
  }
  LAWS_ASSIGN_OR_RETURN(const Column* output,
                        table.ColumnByName(model.output_column));

  // Collect (first input, residual) pairs for the covered rows.
  struct Point {
    double x;
    double residual;
  };
  std::vector<Point> points;
  Vector x(inputs.size());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (output->IsNull(i)) continue;
    if (model.grouped &&
        (group_col->IsNull(i) || group_col->Int64At(i) != group_key)) {
      continue;
    }
    bool ok = true;
    for (size_t c = 0; c < inputs.size(); ++c) {
      if (inputs[c]->IsNull(i)) {
        ok = false;
        break;
      }
      auto v = inputs[c]->NumericAt(i);
      if (!v.ok()) return v.status();
      x[c] = *v;
    }
    if (!ok) continue;
    const double pred = fn->Evaluate(x, params);
    auto obs = output->NumericAt(i);
    if (!obs.ok()) return obs.status();
    if (!std::isfinite(pred)) continue;
    points.push_back(Point{x[0], *obs - pred});
  }
  if (points.size() < 8) {
    return Status::InvalidArgument("too few covered rows for diagnostics");
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });

  std::vector<double> residuals;
  residuals.reserve(points.size());
  for (const Point& pt : points) residuals.push_back(pt.residual);

  ModelDiagnostics out;
  out.residuals_used = residuals.size();
  LAWS_ASSIGN_OR_RETURN(out.residual_normality,
                        KolmogorovSmirnovNormalTest(residuals));
  LAWS_ASSIGN_OR_RETURN(out.durbin_watson, DurbinWatson(residuals));
  out.healthy = out.residual_normality.normal_at_05 &&
                out.durbin_watson >= 1.0 && out.durbin_watson <= 3.0;
  return out;
}

}  // namespace laws

#ifndef LAWSDB_CORE_DIAGNOSE_H_
#define LAWSDB_CORE_DIAGNOSE_H_

#include "common/result.h"
#include "core/model_catalog.h"
#include "stats/diagnostics.h"
#include "storage/table.h"

namespace laws {

/// Residual diagnostics for a captured model against current table
/// contents — the deeper layer of "judge the quality of the fitted model"
/// (paper §3). R² alone cannot tell whether the Gaussian error bounds
/// attached to approximate answers are trustworthy (residual normality)
/// or whether the model missed smooth structure (residual
/// autocorrelation along the input axis).
struct ModelDiagnostics {
  /// KS test of residuals against a fitted normal.
  KsTestResult residual_normality;
  /// Durbin-Watson over residuals ordered by the first input (2 = clean;
  /// << 2 = missed structure).
  double durbin_watson = 2.0;
  size_t residuals_used = 0;
  /// Convenience verdict: normal residuals and DW in [1, 3].
  bool healthy = false;
};

/// Diagnoses an ungrouped captured model over the whole table, or one
/// group of a grouped model (pass the group key; ignored for ungrouped
/// models). Reads the raw rows (this is an offline quality sweep, like
/// outlier detection).
Result<ModelDiagnostics> DiagnoseModel(const Table& table,
                                       const CapturedModel& model,
                                       int64_t group_key = 0);

}  // namespace laws

#endif  // LAWSDB_CORE_DIAGNOSE_H_

#include "core/model_catalog.h"

#include <cstdio>

namespace laws {

size_t CapturedModel::StorageBytes() const {
  size_t bytes = model_source.size() + table_name.size() +
                 output_column.size() + group_column.size() +
                 subset_predicate.size();
  for (const auto& c : input_columns) bytes += c.size();
  bytes += parameters.size() * sizeof(double);
  bytes += standard_errors.size() * sizeof(double);
  if (grouped) bytes += parameter_table.MemoryBytes();
  return bytes;
}

double CapturedModel::ArbitrationQuality() const {
  return grouped ? median_r_squared : quality.adjusted_r_squared;
}

std::string CapturedModel::Summary() const {
  char buf[512];
  if (grouped) {
    std::snprintf(buf, sizeof(buf),
                  "model #%llu %s on %s.%s grouped by %s: %zu groups, "
                  "median R2=%.4f, median RSE=%.6g, %s",
                  static_cast<unsigned long long>(id), model_source.c_str(),
                  table_name.c_str(), output_column.c_str(),
                  group_column.c_str(), num_groups, median_r_squared,
                  median_residual_se,
                  subset_predicate.empty()
                      ? "full table"
                      : ("subset: " + subset_predicate).c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "model #%llu %s on %s.%s: R2=%.4f RSE=%.6g (%s)",
                  static_cast<unsigned long long>(id), model_source.c_str(),
                  table_name.c_str(), output_column.c_str(),
                  quality.r_squared, quality.residual_standard_error,
                  subset_predicate.empty()
                      ? "full table"
                      : ("subset: " + subset_predicate).c_str());
  }
  return buf;
}

ModelCatalog ModelCatalog::Clone() const {
  ModelCatalog copy;
  copy.models_ = models_;
  copy.next_id_ = next_id_;
  return copy;
}

uint64_t ModelCatalog::Store(CapturedModel model) {
  model.id = next_id_++;
  const uint64_t id = model.id;
  models_.emplace(id, std::move(model));
  return id;
}

Status ModelCatalog::RestoreWithId(CapturedModel model) {
  if (model.id == 0) {
    return Status::InvalidArgument("restored model must carry an id");
  }
  if (models_.count(model.id) > 0) {
    return Status::AlreadyExists("model id " + std::to_string(model.id) +
                                 " already present");
  }
  next_id_ = std::max(next_id_, model.id + 1);
  models_.emplace(model.id, std::move(model));
  return Status::OK();
}

Result<const CapturedModel*> ModelCatalog::Get(uint64_t id) const {
  auto it = models_.find(id);
  if (it == models_.end()) {
    return Status::NotFound("no model with id " + std::to_string(id));
  }
  return &it->second;
}

Status ModelCatalog::Remove(uint64_t id) {
  if (models_.erase(id) == 0) {
    return Status::NotFound("no model with id " + std::to_string(id));
  }
  return Status::OK();
}

size_t ModelCatalog::RemoveForTable(const std::string& table_name) {
  size_t removed = 0;
  for (auto it = models_.begin(); it != models_.end();) {
    if (it->second.table_name == table_name) {
      it = models_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<const CapturedModel*> ModelCatalog::ModelsForTable(
    const std::string& table_name) const {
  std::vector<const CapturedModel*> out;
  for (const auto& [id, m] : models_) {
    if (m.table_name == table_name) out.push_back(&m);
  }
  return out;
}

std::vector<const CapturedModel*> ModelCatalog::ModelsFor(
    const std::string& table_name, const std::string& output_column) const {
  std::vector<const CapturedModel*> out;
  for (const auto& [id, m] : models_) {
    if (m.table_name == table_name && m.output_column == output_column) {
      out.push_back(&m);
    }
  }
  return out;
}

bool ModelCatalog::IsStale(const CapturedModel& model,
                           uint64_t current_data_version) {
  return model.fitted_data_version != current_data_version;
}

Result<const CapturedModel*> ModelCatalog::BestModelFor(
    const std::string& table_name, const std::string& output_column,
    uint64_t current_data_version) const {
  const CapturedModel* best = nullptr;
  bool best_fresh = false;
  for (const CapturedModel* m : ModelsFor(table_name, output_column)) {
    const bool fresh = !IsStale(*m, current_data_version);
    // Freshness dominates; quality breaks ties within a freshness class.
    if (best == nullptr || (fresh && !best_fresh) ||
        (fresh == best_fresh &&
         m->ArbitrationQuality() > best->ArbitrationQuality())) {
      best = m;
      best_fresh = fresh;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no captured model for " + table_name + "." +
                            output_column);
  }
  return best;
}

std::vector<uint64_t> ModelCatalog::ListIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(models_.size());
  for (const auto& [id, m] : models_) ids.push_back(id);
  return ids;
}

}  // namespace laws

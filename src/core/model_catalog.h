#ifndef LAWSDB_CORE_MODEL_CATALOG_H_
#define LAWSDB_CORE_MODEL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "model/grouped_fit.h"
#include "stats/goodness_of_fit.h"
#include "storage/table.h"

namespace laws {

/// A harvested user model: everything the database retains after
/// intercepting a fit (paper §3: "store the model itself and the trained
/// parameters", plus the goodness-of-fit judgment and enough metadata to
/// detect staleness and partial coverage).
struct CapturedModel {
  uint64_t id = 0;

  /// Which data the model describes.
  std::string table_name;
  std::vector<std::string> input_columns;
  std::string output_column;
  /// Grouping column for per-group fits ("" = one global fit).
  std::string group_column;
  /// SQL predicate restricting the fitted subset ("" = whole table) — the
  /// paper's partial-model challenge.
  std::string subset_predicate;

  /// Model structure in source form (ModelFromSource round-trips it).
  std::string model_source;

  /// Ungrouped fit: the parameter vector and its quality.
  Vector parameters;
  Vector standard_errors;
  FitQuality quality;

  /// Grouped fit: per-group parameters (schema from GroupedFitToTable).
  bool grouped = false;
  Table parameter_table{Schema{}};
  size_t num_groups = 0;
  size_t groups_skipped = 0;
  size_t groups_failed = 0;
  /// Median per-group R² / residual SE, the screening quality measures.
  double median_r_squared = 0.0;
  double median_residual_se = 0.0;

  /// Table::data_version() at fit time; used for staleness detection.
  uint64_t fitted_data_version = 0;
  /// Rows used for the fit.
  size_t rows_fitted = 0;

  /// Storage footprint of the captured artifact (parameters + metadata).
  size_t StorageBytes() const;

  /// Quality used for arbitration among competing models: adjusted R² for
  /// ungrouped fits, median R² for grouped fits.
  double ArbitrationQuality() const;

  std::string Summary() const;
};

/// The model catalog: the database-side registry of harvested models. The
/// paper's lifecycle challenges land here — staleness on data change,
/// arbitration among multiple/overlapping models, partial coverage.
class ModelCatalog {
 public:
  ModelCatalog() = default;

  ModelCatalog(const ModelCatalog&) = delete;
  ModelCatalog& operator=(const ModelCatalog&) = delete;
  ModelCatalog(ModelCatalog&&) = default;
  ModelCatalog& operator=(ModelCatalog&&) = default;

  /// Deep copy for snapshot publication (serve layer). Copies every
  /// captured model (including grouped parameter tables) and preserves
  /// id assignment, so the clone's future Store() ids continue the
  /// original sequence. Model-mutating commits are rare next to queries;
  /// the copy cost buys immutable snapshots for readers.
  ModelCatalog Clone() const;

  /// Stores a captured model; assigns and returns its id.
  uint64_t Store(CapturedModel model);

  /// Reinserts a model keeping its existing id (the persistence restore
  /// path). AlreadyExists when the id is taken, InvalidArgument for id 0.
  Status RestoreWithId(CapturedModel model);

  Result<const CapturedModel*> Get(uint64_t id) const;

  Status Remove(uint64_t id);

  /// Removes every model fitted over `table_name` (use when the table is
  /// dropped). Returns the number removed.
  size_t RemoveForTable(const std::string& table_name);

  /// All models fitted over `table_name` (any output).
  std::vector<const CapturedModel*> ModelsForTable(
      const std::string& table_name) const;

  /// All models predicting `output_column` of `table_name`.
  std::vector<const CapturedModel*> ModelsFor(
      const std::string& table_name, const std::string& output_column) const;

  /// Arbitration (paper §4.1 "Multiple, partial or grouped models"): among
  /// the candidate models for (table, output), returns the one with the
  /// best arbitration quality, preferring fresh (non-stale) models.
  /// `current_data_version` marks models stale when they were fitted on an
  /// older version. NotFound when no model exists.
  Result<const CapturedModel*> BestModelFor(const std::string& table_name,
                                            const std::string& output_column,
                                            uint64_t current_data_version) const;

  /// True when the model was fitted on an older data version than
  /// `current_data_version` (paper §4.1 "Data or model changes").
  static bool IsStale(const CapturedModel& model,
                      uint64_t current_data_version);

  /// Ids of all stored models, ascending.
  std::vector<uint64_t> ListIds() const;

  size_t size() const { return models_.size(); }

 private:
  std::map<uint64_t, CapturedModel> models_;
  uint64_t next_id_ = 1;
};

}  // namespace laws

#endif  // LAWSDB_CORE_MODEL_CATALOG_H_

#include "core/persistence.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

#include "common/crc32c.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/column_compressor.h"
#include "storage/serialize.h"

namespace laws {
namespace {

constexpr char kMagic[4] = {'L', 'W', 'D', 'B'};
/// v1 wrote an unchecksummed stream; v2 is the sectioned, CRC32C-guarded
/// format described in persistence.h. v1 images are rejected with a clear
/// message rather than parsed on trust.
constexpr uint8_t kFormatVersion = 2;

/// Smallest possible section-table entry: kind + empty name + offset +
/// length + crc. Bounds the claimed section count against the bytes left.
constexpr uint64_t kMinSectionEntryBytes = 1 + 1 + 8 + 8 + 4;

const char* SectionKindName(ImageSectionKind kind) {
  switch (kind) {
    case ImageSectionKind::kTable:
      return "table";
    case ImageSectionKind::kModelCatalog:
      return "model catalog";
    case ImageSectionKind::kModel:
      return "model";
  }
  return "?";
}

void SerializeVector(const Vector& v, ByteWriter* out) {
  out->PutVarint(v.size());
  for (double x : v) out->PutDouble(x);
}

Result<Vector> DeserializeVector(ByteReader* in) {
  LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetCount(8, "parameter vector"));
  Vector v(n);
  for (auto& x : v) {
    LAWS_ASSIGN_OR_RETURN(x, in->GetDouble());
  }
  return v;
}

void SerializeQuality(const FitQuality& q, ByteWriter* out) {
  out->PutVarint(q.n_observations);
  out->PutVarint(q.n_parameters);
  out->PutDouble(q.r_squared);
  out->PutDouble(q.adjusted_r_squared);
  out->PutDouble(q.residual_standard_error);
  out->PutDouble(q.residual_sum_of_squares);
  out->PutDouble(q.total_sum_of_squares);
  out->PutDouble(q.aic);
  out->PutDouble(q.bic);
}

Result<FitQuality> DeserializeQuality(ByteReader* in) {
  FitQuality q;
  LAWS_ASSIGN_OR_RETURN(uint64_t n_obs, in->GetVarint());
  LAWS_ASSIGN_OR_RETURN(uint64_t n_par, in->GetVarint());
  q.n_observations = n_obs;
  q.n_parameters = n_par;
  LAWS_ASSIGN_OR_RETURN(q.r_squared, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.adjusted_r_squared, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.residual_standard_error, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.residual_sum_of_squares, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.total_sum_of_squares, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.aic, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.bic, in->GetDouble());
  return q;
}

/// Compressed-table image: schema + per-column (encoding, payload).
Status SerializeTableCompressed(const Table& table, ByteWriter* out) {
  LAWS_ASSIGN_OR_RETURN(CompressedTable ct, CompressTable(table));
  out->PutVarint(ct.schema.num_fields());
  for (const Field& f : ct.schema.fields()) {
    out->PutString(f.name);
    out->PutU8(static_cast<uint8_t>(f.type));
    out->PutU8(f.nullable ? 1 : 0);
  }
  out->PutVarint(ct.num_rows);
  for (const CompressedColumn& c : ct.columns) {
    out->PutU8(static_cast<uint8_t>(c.encoding));
    out->PutVarint(c.payload.size());
    out->PutRaw(c.payload.data(), c.payload.size());
  }
  return Status::OK();
}

Result<Table> DeserializeTableCompressed(ByteReader* in) {
  // A field encodes at least name length + type + nullable = 3 bytes.
  LAWS_ASSIGN_OR_RETURN(uint64_t nfields, in->GetCount(3, "field count"));
  std::vector<Field> fields;
  fields.reserve(nfields);
  for (uint64_t i = 0; i < nfields; ++i) {
    Field f;
    LAWS_ASSIGN_OR_RETURN(f.name, in->GetString());
    LAWS_ASSIGN_OR_RETURN(uint8_t t, in->GetU8());
    if (t > static_cast<uint8_t>(DataType::kBool)) {
      return Status::ParseError("bad column type tag");
    }
    f.type = static_cast<DataType>(t);
    LAWS_ASSIGN_OR_RETURN(uint8_t nullable, in->GetU8());
    f.nullable = nullable != 0;
    fields.push_back(std::move(f));
  }
  CompressedTable ct;
  ct.schema = Schema(std::move(fields));
  LAWS_ASSIGN_OR_RETURN(uint64_t rows, in->GetVarint());
  ct.num_rows = rows;
  ct.columns.reserve(ct.schema.num_fields());
  for (size_t c = 0; c < ct.schema.num_fields(); ++c) {
    CompressedColumn col;
    LAWS_ASSIGN_OR_RETURN(uint8_t enc, in->GetU8());
    col.encoding = static_cast<ColumnEncoding>(enc);
    LAWS_ASSIGN_OR_RETURN(uint64_t psize, in->GetCount(1, "column payload"));
    col.payload.resize(psize);
    LAWS_RETURN_IF_ERROR(in->GetRaw(col.payload.data(), psize));
    ct.columns.push_back(std::move(col));
  }
  return DecompressTable(ct);
}

/// One section staged for assembly (save) or parsed for loading.
struct StagedSection {
  ImageSectionKind kind;
  std::string name;
  std::vector<uint8_t> payload;
};

/// Serializes the section table; offsets are fixed-width so the header
/// size does not depend on their values (measure with zeros, then write
/// the real ones).
std::vector<uint8_t> BuildHeader(const std::vector<StagedSection>& sections,
                                 const std::vector<uint64_t>& offsets,
                                 const std::vector<uint32_t>& crcs) {
  ByteWriter h;
  h.PutRaw(kMagic, sizeof(kMagic));
  h.PutU8(kFormatVersion);
  h.PutU32(static_cast<uint32_t>(sections.size()));
  for (size_t i = 0; i < sections.size(); ++i) {
    h.PutU8(static_cast<uint8_t>(sections[i].kind));
    h.PutString(sections[i].name);
    h.PutU64(offsets[i]);
    h.PutU64(sections[i].payload.size());
    h.PutU32(crcs[i]);
  }
  return h.TakeData();
}

struct ParsedHeader {
  uint8_t version = 0;
  std::vector<ImageSection> sections;
  /// Byte offset just past the section table (start of the header CRC).
  size_t header_end = 0;
};

/// Reads and verifies magic, version, section table and header CRC, and
/// bounds-checks every section against the payload region. Everything the
/// loader trusts afterwards is covered by the header checksum.
Result<ParsedHeader> ParseHeader(const std::vector<uint8_t>& bytes) {
  ByteReader in(bytes);
  char magic[4];
  LAWS_RETURN_IF_ERROR(in.GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a LawsDB database image (bad magic)");
  }
  ParsedHeader h;
  LAWS_ASSIGN_OR_RETURN(h.version, in.GetU8());
  if (h.version != kFormatVersion) {
    return Status::ParseError(
        "unsupported database image version " + std::to_string(h.version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        "; re-save the database with a current build)");
  }
  LAWS_ASSIGN_OR_RETURN(uint32_t count, in.GetU32());
  if (count > in.remaining() / kMinSectionEntryBytes) {
    return Status::ParseError("implausible section count");
  }
  h.sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ImageSection s;
    LAWS_ASSIGN_OR_RETURN(uint8_t kind, in.GetU8());
    if (kind < static_cast<uint8_t>(ImageSectionKind::kTable) ||
        kind > static_cast<uint8_t>(ImageSectionKind::kModel)) {
      return Status::ParseError("bad section kind tag");
    }
    s.kind = static_cast<ImageSectionKind>(kind);
    LAWS_ASSIGN_OR_RETURN(s.name, in.GetString());
    LAWS_ASSIGN_OR_RETURN(s.offset, in.GetU64());
    LAWS_ASSIGN_OR_RETURN(s.length, in.GetU64());
    LAWS_ASSIGN_OR_RETURN(s.stored_crc, in.GetU32());
    h.sections.push_back(std::move(s));
  }
  h.header_end = in.position();
  LAWS_ASSIGN_OR_RETURN(uint32_t header_crc, in.GetU32());
  if (Crc32c(bytes.data(), h.header_end) != header_crc) {
    return Status::IOError("image header checksum mismatch (bytes 0.." +
                           std::to_string(h.header_end) + ")");
  }
  // Payload region: [header_end + 4, size - 4). The trailing 4 bytes hold
  // the whole-image checksum.
  if (bytes.size() < h.header_end + 4 + 4) {
    return Status::ParseError("truncated image (missing trailer checksum)");
  }
  const uint64_t payload_begin = h.header_end + 4;
  const uint64_t payload_end = bytes.size() - 4;
  for (const ImageSection& s : h.sections) {
    if (s.offset < payload_begin || s.offset > payload_end ||
        s.length > payload_end - s.offset) {
      return Status::ParseError("section '" + s.name +
                                "' out of bounds at offset " +
                                std::to_string(s.offset));
    }
  }
  return h;
}

bool VerifyImageCrc(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) return false;
  uint32_t stored;
  std::memcpy(&stored, bytes.data() + bytes.size() - 4, sizeof(stored));
  return Crc32c(bytes.data(), bytes.size() - 4) == stored;
}

Status SectionCrcStatus(const std::vector<uint8_t>& bytes,
                        const ImageSection& s) {
  if (Crc32c(bytes.data() + s.offset, s.length) != s.stored_crc) {
    return Status::IOError("checksum mismatch in " +
                           std::string(SectionKindName(s.kind)) +
                           " section '" + s.name + "' at offset " +
                           std::to_string(s.offset));
  }
  return Status::OK();
}

/// Prefixes a parse failure with where it happened.
Status InSection(const ImageSection& s, Status st) {
  return Status(st.code(), std::string(SectionKindName(s.kind)) +
                               " section '" + s.name + "' at offset " +
                               std::to_string(s.offset) + ": " +
                               st.message());
}

/// POSIX write loop; on an armed "persist/write_image" truncate fault only
/// the allowed prefix reaches the file before the injected error —
/// modelling a torn write cut short by a crash.
Status WriteAllWithFaults(int fd, const uint8_t* data, size_t n) {
  auto& faults = FaultInjector::Instance();
  bool fail_after = false;
  size_t to_write = n;
  if (faults.active()) {
    to_write = faults.AllowedWriteBytes("persist/write_image", n, &fail_after);
  }
  size_t written = 0;
  while (written < to_write) {
    const ssize_t w = ::write(fd, data + written, to_write - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(w);
  }
  if (fail_after) {
    return Status::IOError("injected torn write at persist/write_image after " +
                           std::to_string(to_write) + " bytes");
  }
  return Status::OK();
}

Status WriteImageAtomic(const std::vector<uint8_t>& bytes,
                        const std::string& path) {
  auto& faults = FaultInjector::Instance();
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  LAWS_FAULT_POINT("persist/open_tmp");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp + ": " + std::strerror(errno));
  }
  auto fail = [&](Status st) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  };

  // An armed bitflip on the write site corrupts the image between memory
  // and disk — save "succeeds", and the load-side checksums must catch it.
  const uint8_t* data = bytes.data();
  std::vector<uint8_t> corrupted;
  if (faults.active()) {
    corrupted = bytes;
    if (faults.CorruptBuffer("persist/write_image", corrupted.data(),
                             corrupted.size())) {
      data = corrupted.data();
    }
  }

  Status write_status = WriteAllWithFaults(fd, data, bytes.size());
  if (!write_status.ok()) return fail(write_status);
  {
    Status st = faults.active() ? faults.Check("persist/write_image")
                                : Status::OK();
    if (!st.ok()) return fail(st);
  }

  {
    Status st = faults.active() ? faults.Check("persist/fsync_tmp")
                                : Status::OK();
    if (!st.ok()) return fail(st);
  }
  if (::fsync(fd) != 0) {
    return fail(Status::IOError("fsync failed for " + tmp + ": " +
                                std::strerror(errno)));
  }
  if (::close(fd) != 0) {
    fd = -1;
    return fail(Status::IOError("close failed for " + tmp + ": " +
                                std::strerror(errno)));
  }
  fd = -1;

  {
    Status st =
        faults.active() ? faults.Check("persist/rename") : Status::OK();
    if (!st.ok()) return fail(st);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(Status::IOError("rename " + tmp + " -> " + path +
                                " failed: " + std::strerror(errno)));
  }

  // Make the rename itself durable: fsync the containing directory.
  // Best-effort — the data is already safely at `path` either way.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

std::string LoadReport::Summary() const {
  std::string out = std::to_string(tables_loaded) + " table(s), " +
                    std::to_string(models_loaded) + " model(s) loaded";
  if (!image_checksum_ok) out += "; whole-image checksum FAILED";
  for (const QuarantinedSection& q : quarantined) {
    out += "\nquarantined '" + q.name + "' at offset " +
           std::to_string(q.offset) + ": " + q.reason;
  }
  return out;
}

void SerializeCapturedModel(const CapturedModel& model, ByteWriter* out) {
  out->PutU64(model.id);
  out->PutString(model.table_name);
  out->PutVarint(model.input_columns.size());
  for (const auto& c : model.input_columns) out->PutString(c);
  out->PutString(model.output_column);
  out->PutString(model.group_column);
  out->PutString(model.subset_predicate);
  out->PutString(model.model_source);
  SerializeVector(model.parameters, out);
  SerializeVector(model.standard_errors, out);
  SerializeQuality(model.quality, out);
  out->PutU8(model.grouped ? 1 : 0);
  if (model.grouped) {
    SerializeTable(model.parameter_table, out);
  }
  out->PutVarint(model.num_groups);
  out->PutVarint(model.groups_skipped);
  out->PutVarint(model.groups_failed);
  out->PutDouble(model.median_r_squared);
  out->PutDouble(model.median_residual_se);
  out->PutU64(model.fitted_data_version);
  out->PutVarint(model.rows_fitted);
}

Result<CapturedModel> DeserializeCapturedModel(ByteReader* in) {
  CapturedModel m;
  LAWS_ASSIGN_OR_RETURN(m.id, in->GetU64());
  LAWS_ASSIGN_OR_RETURN(m.table_name, in->GetString());
  // An input column encodes at least its 1-byte length prefix.
  LAWS_ASSIGN_OR_RETURN(uint64_t n_inputs, in->GetCount(1, "input columns"));
  m.input_columns.resize(n_inputs);
  for (auto& c : m.input_columns) {
    LAWS_ASSIGN_OR_RETURN(c, in->GetString());
  }
  LAWS_ASSIGN_OR_RETURN(m.output_column, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.group_column, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.subset_predicate, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.model_source, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.parameters, DeserializeVector(in));
  LAWS_ASSIGN_OR_RETURN(m.standard_errors, DeserializeVector(in));
  LAWS_ASSIGN_OR_RETURN(m.quality, DeserializeQuality(in));
  LAWS_ASSIGN_OR_RETURN(uint8_t grouped, in->GetU8());
  m.grouped = grouped != 0;
  if (m.grouped) {
    LAWS_ASSIGN_OR_RETURN(m.parameter_table, DeserializeTable(in));
  }
  LAWS_ASSIGN_OR_RETURN(uint64_t num_groups, in->GetVarint());
  LAWS_ASSIGN_OR_RETURN(uint64_t skipped, in->GetVarint());
  LAWS_ASSIGN_OR_RETURN(uint64_t failed, in->GetVarint());
  m.num_groups = num_groups;
  m.groups_skipped = skipped;
  m.groups_failed = failed;
  LAWS_ASSIGN_OR_RETURN(m.median_r_squared, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(m.median_residual_se, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(m.fitted_data_version, in->GetU64());
  LAWS_ASSIGN_OR_RETURN(uint64_t rows, in->GetVarint());
  m.rows_fitted = rows;
  return m;
}

Result<ImageInfo> InspectImage(const std::vector<uint8_t>& bytes) {
  LAWS_ASSIGN_OR_RETURN(ParsedHeader h, ParseHeader(bytes));
  ImageInfo info;
  info.version = h.version;
  info.file_bytes = bytes.size();
  info.image_checksum_ok = VerifyImageCrc(bytes);
  info.sections = std::move(h.sections);
  for (ImageSection& s : info.sections) {
    s.crc_ok = SectionCrcStatus(bytes, s).ok();
  }
  return info;
}

Result<std::vector<uint8_t>> SaveDatabaseToBytes(const Catalog& data,
                                                 const ModelCatalog& models) {
  LAWS_FAULT_POINT("persist/serialize_image");
  std::vector<StagedSection> sections;

  for (const auto& name : data.ListTables()) {
    LAWS_FAULT_POINT("persist/serialize_table");
    LAWS_ASSIGN_OR_RETURN(TablePtr table, data.Get(name));
    ByteWriter w;
    // Freshness of every model fitted on this table, so staleness
    // semantics survive the round trip (loaded tables restart their
    // version counters).
    w.PutU64(table->data_version());
    LAWS_RETURN_IF_ERROR(SerializeTableCompressed(*table, &w));
    sections.push_back(
        {ImageSectionKind::kTable, name, w.TakeData()});
  }

  // The catalog manifest lists every model id the image must contain, so
  // a vanished model section is detectable even though each model also
  // carries its own CRC.
  const auto ids = models.ListIds();
  {
    ByteWriter w;
    w.PutVarint(ids.size());
    for (uint64_t id : ids) w.PutU64(id);
    sections.push_back(
        {ImageSectionKind::kModelCatalog, "model_catalog", w.TakeData()});
  }

  for (uint64_t id : ids) {
    LAWS_FAULT_POINT("persist/write_models");
    LAWS_ASSIGN_OR_RETURN(const CapturedModel* model, models.Get(id));
    ByteWriter w;
    SerializeCapturedModel(*model, &w);
    sections.push_back({ImageSectionKind::kModel,
                        "model/" + std::to_string(id), w.TakeData()});
  }

  Timer checksum_timer;
  std::vector<uint32_t> crcs(sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    crcs[i] = Crc32c(sections[i].payload);
  }
  double checksum_micros = checksum_timer.ElapsedMicros();

  // Offsets are fixed-width, so a zero-offset pass measures the header.
  std::vector<uint64_t> offsets(sections.size(), 0);
  const size_t header_bytes =
      BuildHeader(sections, offsets, crcs).size() + 4;  // + header CRC
  uint64_t running = header_bytes;
  for (size_t i = 0; i < sections.size(); ++i) {
    offsets[i] = running;
    running += sections[i].payload.size();
  }

  ByteWriter out;
  const std::vector<uint8_t> header = BuildHeader(sections, offsets, crcs);
  out.PutRaw(header.data(), header.size());
  checksum_timer.Restart();
  out.PutU32(Crc32c(header));
  checksum_micros += checksum_timer.ElapsedMicros();
  for (const StagedSection& s : sections) {
    out.PutRaw(s.payload.data(), s.payload.size());
  }
  checksum_timer.Restart();
  out.PutU32(Crc32c(out.data()));
  checksum_micros += checksum_timer.ElapsedMicros();
  {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static Counter* saves = reg.GetCounter("persist.saves");
    static Counter* save_bytes = reg.GetCounter("persist.save_bytes");
    saves->Add();
    save_bytes->Add(out.data().size());
    reg.GetHistogram("persist.save.checksum_micros")->Record(checksum_micros);
  }
  return out.TakeData();
}

Status LoadDatabaseFromBytes(const std::vector<uint8_t>& bytes, Catalog* data,
                             ModelCatalog* models, const LoadOptions& options,
                             LoadReport* report) {
  if (data == nullptr || models == nullptr) {
    return Status::InvalidArgument("null output catalog");
  }
  LoadReport local_report;
  LoadReport* rep = report != nullptr ? report : &local_report;
  *rep = LoadReport{};

  ScopedSpan load_span("LoadImage");
  {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static Counter* loads = reg.GetCounter("persist.loads");
    static Counter* load_bytes = reg.GetCounter("persist.load_bytes");
    loads->Add();
    load_bytes->Add(bytes.size());
  }

  // Header corruption is not survivable in either mode: without a trusted
  // section table nothing else can be located.
  LAWS_ASSIGN_OR_RETURN(ParsedHeader header, ParseHeader(bytes));
  rep->image_checksum_ok = VerifyImageCrc(bytes);

  auto quarantine = [&](const ImageSection& s, const std::string& reason) {
    rep->quarantined.push_back(QuarantinedSection{s.name, s.offset, reason});
  };

  // Stage everything first; the output catalogs are only touched once the
  // whole image is accepted, so a failed strict load cannot leave them
  // half-populated.
  std::map<std::string, std::pair<uint64_t, TablePtr>> loaded;
  std::vector<std::string> table_order;
  std::vector<CapturedModel> staged_models;
  std::set<uint64_t> staged_model_ids;
  std::vector<uint64_t> manifest_ids;
  bool have_manifest = false;

  for (const ImageSection& s : header.sections) {
    Status crc_status = SectionCrcStatus(bytes, s);
    if (!crc_status.ok()) {
      if (!options.tolerate_corruption) return crc_status;
      quarantine(s, crc_status.message());
      continue;
    }
    ByteReader in(bytes.data() + s.offset, s.length);
    Status parse_status = Status::OK();
    switch (s.kind) {
      case ImageSectionKind::kTable: {
        auto parse = [&]() -> Status {
          LAWS_ASSIGN_OR_RETURN(uint64_t saved_version, in.GetU64());
          LAWS_ASSIGN_OR_RETURN(Table table, DeserializeTableCompressed(&in));
          if (!in.AtEnd()) {
            return Status::ParseError("trailing bytes after table payload");
          }
          if (loaded.find(s.name) == loaded.end()) table_order.push_back(s.name);
          loaded[s.name] = {saved_version,
                            std::make_shared<Table>(std::move(table))};
          return Status::OK();
        };
        parse_status = parse();
        break;
      }
      case ImageSectionKind::kModelCatalog: {
        auto parse = [&]() -> Status {
          LAWS_ASSIGN_OR_RETURN(uint64_t count,
                                in.GetCount(8, "model manifest"));
          manifest_ids.clear();
          manifest_ids.reserve(count);
          for (uint64_t i = 0; i < count; ++i) {
            LAWS_ASSIGN_OR_RETURN(uint64_t id, in.GetU64());
            manifest_ids.push_back(id);
          }
          if (!in.AtEnd()) {
            return Status::ParseError("trailing bytes after model manifest");
          }
          have_manifest = true;
          return Status::OK();
        };
        parse_status = parse();
        break;
      }
      case ImageSectionKind::kModel: {
        auto parse = [&]() -> Status {
          LAWS_ASSIGN_OR_RETURN(CapturedModel m, DeserializeCapturedModel(&in));
          if (!in.AtEnd()) {
            return Status::ParseError("trailing bytes after model payload");
          }
          if (s.name != "model/" + std::to_string(m.id)) {
            return Status::ParseError("model id does not match section name");
          }
          if (!staged_model_ids.insert(m.id).second) {
            return Status::ParseError("duplicate model id " +
                                      std::to_string(m.id));
          }
          staged_models.push_back(std::move(m));
          return Status::OK();
        };
        parse_status = parse();
        break;
      }
    }
    if (!parse_status.ok()) {
      if (!options.tolerate_corruption) return InSection(s, parse_status);
      quarantine(s, parse_status.message());
    }
  }

  // Cross-check the manifest: every listed model must have produced a
  // section (possibly quarantined above).
  if (have_manifest) {
    for (uint64_t id : manifest_ids) {
      if (staged_model_ids.count(id) != 0) continue;
      const std::string name = "model/" + std::to_string(id);
      const bool already_quarantined =
          std::any_of(rep->quarantined.begin(), rep->quarantined.end(),
                      [&](const QuarantinedSection& q) { return q.name == name; });
      if (already_quarantined) continue;
      if (!options.tolerate_corruption) {
        return Status::ParseError("model " + std::to_string(id) +
                                  " listed in catalog manifest but missing "
                                  "from the image");
      }
      rep->quarantined.push_back(QuarantinedSection{
          name, 0, "listed in catalog manifest but missing from the image"});
    }
  } else if (!options.tolerate_corruption && !staged_models.empty()) {
    return Status::ParseError("image has model sections but no catalog "
                              "manifest");
  }

  if (!rep->image_checksum_ok && !options.tolerate_corruption) {
    // Every section passed its own CRC, so the flip sits in the trailer
    // itself (or a CRC collision); either way the image is not trustworthy.
    return Status::IOError("whole-image checksum mismatch");
  }

  // Commit.
  for (const auto& name : table_order) {
    data->RegisterOrReplace(name, loaded[name].second);
  }
  rep->tables_loaded = table_order.size();
  for (CapturedModel& m : staged_models) {
    // Re-stamp freshness against the reloaded table's version counter.
    auto it = loaded.find(m.table_name);
    if (it != loaded.end()) {
      const bool was_fresh = m.fitted_data_version == it->second.first;
      const uint64_t current = it->second.second->data_version();
      m.fitted_data_version = was_fresh ? current : current - 1;
    }
    // The image is the source of truth: replace any in-memory model with
    // the same id, mirroring RegisterOrReplace for tables.
    (void)models->Remove(m.id);
    LAWS_RETURN_IF_ERROR(models->RestoreWithId(std::move(m)));
    ++rep->models_loaded;
  }
  if (!rep->quarantined.empty()) {
    static Counter* quarantined =
        MetricsRegistry::Global().GetCounter("persist.sections_quarantined");
    quarantined->Add(rep->quarantined.size());
  }
  load_span.SetRows(header.sections.size(),
                    rep->tables_loaded + rep->models_loaded);
  return Status::OK();
}

Status SaveDatabase(const Catalog& data, const ModelCatalog& models,
                    const std::string& path) {
  ScopedSpan save_span("SaveImage");
  LAWS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                        SaveDatabaseToBytes(data, models));
  save_span.SetDetail(path);
  return WriteImageAtomic(bytes, path);
}

Status LoadDatabase(const std::string& path, Catalog* data,
                    ModelCatalog* models, const LoadOptions& options,
                    LoadReport* report) {
  LAWS_FAULT_POINT("persist/read_image");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Status::IOError("read failed for " + path);
  return LoadDatabaseFromBytes(bytes, data, models, options, report);
}

}  // namespace laws

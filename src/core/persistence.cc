#include "core/persistence.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>

#include "compress/column_compressor.h"
#include "storage/serialize.h"

namespace laws {
namespace {

constexpr char kMagic[4] = {'L', 'W', 'D', 'B'};
constexpr uint8_t kVersion = 1;

void SerializeVector(const Vector& v, ByteWriter* out) {
  out->PutVarint(v.size());
  for (double x : v) out->PutDouble(x);
}

Result<Vector> DeserializeVector(ByteReader* in) {
  LAWS_ASSIGN_OR_RETURN(uint64_t n, in->GetVarint());
  Vector v(n);
  for (auto& x : v) {
    LAWS_ASSIGN_OR_RETURN(x, in->GetDouble());
  }
  return v;
}

void SerializeQuality(const FitQuality& q, ByteWriter* out) {
  out->PutVarint(q.n_observations);
  out->PutVarint(q.n_parameters);
  out->PutDouble(q.r_squared);
  out->PutDouble(q.adjusted_r_squared);
  out->PutDouble(q.residual_standard_error);
  out->PutDouble(q.residual_sum_of_squares);
  out->PutDouble(q.total_sum_of_squares);
  out->PutDouble(q.aic);
  out->PutDouble(q.bic);
}

Result<FitQuality> DeserializeQuality(ByteReader* in) {
  FitQuality q;
  LAWS_ASSIGN_OR_RETURN(uint64_t n_obs, in->GetVarint());
  LAWS_ASSIGN_OR_RETURN(uint64_t n_par, in->GetVarint());
  q.n_observations = n_obs;
  q.n_parameters = n_par;
  LAWS_ASSIGN_OR_RETURN(q.r_squared, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.adjusted_r_squared, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.residual_standard_error, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.residual_sum_of_squares, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.total_sum_of_squares, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.aic, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(q.bic, in->GetDouble());
  return q;
}

/// Compressed-table image: schema + per-column (encoding, payload).
Status SerializeTableCompressed(const Table& table, ByteWriter* out) {
  LAWS_ASSIGN_OR_RETURN(CompressedTable ct, CompressTable(table));
  out->PutVarint(ct.schema.num_fields());
  for (const Field& f : ct.schema.fields()) {
    out->PutString(f.name);
    out->PutU8(static_cast<uint8_t>(f.type));
    out->PutU8(f.nullable ? 1 : 0);
  }
  out->PutVarint(ct.num_rows);
  for (const CompressedColumn& c : ct.columns) {
    out->PutU8(static_cast<uint8_t>(c.encoding));
    out->PutVarint(c.payload.size());
    out->PutRaw(c.payload.data(), c.payload.size());
  }
  return Status::OK();
}

Result<Table> DeserializeTableCompressed(ByteReader* in) {
  LAWS_ASSIGN_OR_RETURN(uint64_t nfields, in->GetVarint());
  std::vector<Field> fields;
  fields.reserve(nfields);
  for (uint64_t i = 0; i < nfields; ++i) {
    Field f;
    LAWS_ASSIGN_OR_RETURN(f.name, in->GetString());
    LAWS_ASSIGN_OR_RETURN(uint8_t t, in->GetU8());
    if (t > static_cast<uint8_t>(DataType::kBool)) {
      return Status::ParseError("bad column type tag");
    }
    f.type = static_cast<DataType>(t);
    LAWS_ASSIGN_OR_RETURN(uint8_t nullable, in->GetU8());
    f.nullable = nullable != 0;
    fields.push_back(std::move(f));
  }
  CompressedTable ct;
  ct.schema = Schema(std::move(fields));
  LAWS_ASSIGN_OR_RETURN(uint64_t rows, in->GetVarint());
  ct.num_rows = rows;
  ct.columns.reserve(ct.schema.num_fields());
  for (size_t c = 0; c < ct.schema.num_fields(); ++c) {
    CompressedColumn col;
    LAWS_ASSIGN_OR_RETURN(uint8_t enc, in->GetU8());
    col.encoding = static_cast<ColumnEncoding>(enc);
    LAWS_ASSIGN_OR_RETURN(uint64_t psize, in->GetVarint());
    col.payload.resize(psize);
    LAWS_RETURN_IF_ERROR(in->GetRaw(col.payload.data(), psize));
    ct.columns.push_back(std::move(col));
  }
  return DecompressTable(ct);
}

}  // namespace

void SerializeCapturedModel(const CapturedModel& model, ByteWriter* out) {
  out->PutU64(model.id);
  out->PutString(model.table_name);
  out->PutVarint(model.input_columns.size());
  for (const auto& c : model.input_columns) out->PutString(c);
  out->PutString(model.output_column);
  out->PutString(model.group_column);
  out->PutString(model.subset_predicate);
  out->PutString(model.model_source);
  SerializeVector(model.parameters, out);
  SerializeVector(model.standard_errors, out);
  SerializeQuality(model.quality, out);
  out->PutU8(model.grouped ? 1 : 0);
  if (model.grouped) {
    SerializeTable(model.parameter_table, out);
  }
  out->PutVarint(model.num_groups);
  out->PutVarint(model.groups_skipped);
  out->PutVarint(model.groups_failed);
  out->PutDouble(model.median_r_squared);
  out->PutDouble(model.median_residual_se);
  out->PutU64(model.fitted_data_version);
  out->PutVarint(model.rows_fitted);
}

Result<CapturedModel> DeserializeCapturedModel(ByteReader* in) {
  CapturedModel m;
  LAWS_ASSIGN_OR_RETURN(m.id, in->GetU64());
  LAWS_ASSIGN_OR_RETURN(m.table_name, in->GetString());
  LAWS_ASSIGN_OR_RETURN(uint64_t n_inputs, in->GetVarint());
  m.input_columns.resize(n_inputs);
  for (auto& c : m.input_columns) {
    LAWS_ASSIGN_OR_RETURN(c, in->GetString());
  }
  LAWS_ASSIGN_OR_RETURN(m.output_column, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.group_column, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.subset_predicate, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.model_source, in->GetString());
  LAWS_ASSIGN_OR_RETURN(m.parameters, DeserializeVector(in));
  LAWS_ASSIGN_OR_RETURN(m.standard_errors, DeserializeVector(in));
  LAWS_ASSIGN_OR_RETURN(m.quality, DeserializeQuality(in));
  LAWS_ASSIGN_OR_RETURN(uint8_t grouped, in->GetU8());
  m.grouped = grouped != 0;
  if (m.grouped) {
    LAWS_ASSIGN_OR_RETURN(m.parameter_table, DeserializeTable(in));
  }
  LAWS_ASSIGN_OR_RETURN(uint64_t num_groups, in->GetVarint());
  LAWS_ASSIGN_OR_RETURN(uint64_t skipped, in->GetVarint());
  LAWS_ASSIGN_OR_RETURN(uint64_t failed, in->GetVarint());
  m.num_groups = num_groups;
  m.groups_skipped = skipped;
  m.groups_failed = failed;
  LAWS_ASSIGN_OR_RETURN(m.median_r_squared, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(m.median_residual_se, in->GetDouble());
  LAWS_ASSIGN_OR_RETURN(m.fitted_data_version, in->GetU64());
  LAWS_ASSIGN_OR_RETURN(uint64_t rows, in->GetVarint());
  m.rows_fitted = rows;
  return m;
}

void SerializeModelCatalog(const ModelCatalog& models, ByteWriter* out) {
  const auto ids = models.ListIds();
  out->PutVarint(ids.size());
  for (uint64_t id : ids) {
    const auto model = models.Get(id);
    SerializeCapturedModel(**model, out);
  }
}

Status DeserializeModelCatalog(ByteReader* in, ModelCatalog* models) {
  LAWS_ASSIGN_OR_RETURN(uint64_t count, in->GetVarint());
  for (uint64_t i = 0; i < count; ++i) {
    LAWS_ASSIGN_OR_RETURN(CapturedModel m, DeserializeCapturedModel(in));
    LAWS_RETURN_IF_ERROR(models->RestoreWithId(std::move(m)));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SaveDatabaseToBytes(const Catalog& data,
                                                 const ModelCatalog& models) {
  ByteWriter out;
  out.PutRaw(kMagic, sizeof(kMagic));
  out.PutU8(kVersion);

  const auto table_names = data.ListTables();
  out.PutVarint(table_names.size());
  for (const auto& name : table_names) {
    LAWS_ASSIGN_OR_RETURN(TablePtr table, data.Get(name));
    out.PutString(name);
    // Freshness of every model fitted on this table, so staleness
    // semantics survive the round trip (loaded tables restart their
    // version counters).
    out.PutU64(table->data_version());
    LAWS_RETURN_IF_ERROR(SerializeTableCompressed(*table, &out));
  }
  SerializeModelCatalog(models, &out);
  return out.TakeData();
}

Status LoadDatabaseFromBytes(const std::vector<uint8_t>& bytes, Catalog* data,
                             ModelCatalog* models) {
  if (data == nullptr || models == nullptr) {
    return Status::InvalidArgument("null output catalog");
  }
  ByteReader in(bytes);
  char magic[4];
  LAWS_RETURN_IF_ERROR(in.GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a LawsDB database image");
  }
  LAWS_ASSIGN_OR_RETURN(uint8_t version, in.GetU8());
  if (version != kVersion) {
    return Status::ParseError("unsupported database image version");
  }

  LAWS_ASSIGN_OR_RETURN(uint64_t n_tables, in.GetVarint());
  // Saved data version -> loaded table (for freshness re-stamping).
  std::map<std::string, std::pair<uint64_t, TablePtr>> loaded;
  for (uint64_t i = 0; i < n_tables; ++i) {
    LAWS_ASSIGN_OR_RETURN(std::string name, in.GetString());
    LAWS_ASSIGN_OR_RETURN(uint64_t saved_version, in.GetU64());
    LAWS_ASSIGN_OR_RETURN(Table table, DeserializeTableCompressed(&in));
    auto ptr = std::make_shared<Table>(std::move(table));
    loaded[name] = {saved_version, ptr};
    data->RegisterOrReplace(name, ptr);
  }

  ModelCatalog restored;
  LAWS_RETURN_IF_ERROR(DeserializeModelCatalog(&in, &restored));
  for (uint64_t id : restored.ListIds()) {
    auto model = restored.Get(id);
    CapturedModel m = **model;
    // Re-stamp freshness against the reloaded table's version counter.
    auto it = loaded.find(m.table_name);
    if (it != loaded.end()) {
      const bool was_fresh =
          m.fitted_data_version == it->second.first;
      const uint64_t current = it->second.second->data_version();
      m.fitted_data_version = was_fresh ? current : current - 1;
    }
    LAWS_RETURN_IF_ERROR(models->RestoreWithId(std::move(m)));
  }
  return Status::OK();
}

Status SaveDatabase(const Catalog& data, const ModelCatalog& models,
                    const std::string& path) {
  LAWS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                        SaveDatabaseToBytes(data, models));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status LoadDatabase(const std::string& path, Catalog* data,
                    ModelCatalog* models) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Status::IOError("read failed for " + path);
  return LoadDatabaseFromBytes(bytes, data, models);
}

}  // namespace laws

#ifndef LAWSDB_CORE_PERSISTENCE_H_
#define LAWSDB_CORE_PERSISTENCE_H_

#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "core/model_catalog.h"
#include "storage/catalog.h"

namespace laws {

/// Durable storage for the whole engine state: data tables (generically
/// compressed per column) plus the model catalog. The paper's premise is
/// that captured models are retained "forever"; persistence makes that
/// literal — a reopened database still knows every harvested model, its
/// parameters and its goodness of fit.

/// Serializes one captured model, including the grouped parameter table.
void SerializeCapturedModel(const CapturedModel& model, ByteWriter* out);
Result<CapturedModel> DeserializeCapturedModel(ByteReader* in);

/// Serializes the full model catalog (ids are preserved).
void SerializeModelCatalog(const ModelCatalog& models, ByteWriter* out);
Status DeserializeModelCatalog(ByteReader* in, ModelCatalog* models);

/// Writes data catalog + model catalog into one image. Tables are stored
/// with best-of generic column compression. Model staleness survives the
/// round trip: models fresh at save time are fresh after load.
Result<std::vector<uint8_t>> SaveDatabaseToBytes(const Catalog& data,
                                                 const ModelCatalog& models);
Status LoadDatabaseFromBytes(const std::vector<uint8_t>& bytes, Catalog* data,
                             ModelCatalog* models);

/// File-based convenience wrappers.
Status SaveDatabase(const Catalog& data, const ModelCatalog& models,
                    const std::string& path);
Status LoadDatabase(const std::string& path, Catalog* data,
                    ModelCatalog* models);

}  // namespace laws

#endif  // LAWSDB_CORE_PERSISTENCE_H_

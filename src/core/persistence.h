#ifndef LAWSDB_CORE_PERSISTENCE_H_
#define LAWSDB_CORE_PERSISTENCE_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "core/model_catalog.h"
#include "storage/catalog.h"

namespace laws {

/// Durable storage for the whole engine state: data tables (generically
/// compressed per column) plus the model catalog. The paper's premise is
/// that captured models are retained "forever" and model-based answers
/// "must never lie"; persistence makes that literal — a reopened database
/// still knows every harvested model, and a damaged image can never be
/// mistaken for a healthy one.
///
/// Image format v2 (all integers little-endian, lengths LEB128 unless
/// fixed-width):
///
///   magic "LWDB" | version u8 | section_count u32
///   per section: kind u8 | name string | offset u64 | length u64 | crc u32
///   header_crc u32                       (CRC32C of every byte above)
///   section payloads, contiguous, in section-table order
///   image_crc u32                        (CRC32C of every preceding byte)
///
/// Section kinds: table (payload = data_version u64 + compressed table),
/// model catalog manifest (model ids), captured model (one per model).
/// Loaders verify the header CRC, every section CRC and the whole-image
/// CRC before trusting any parsed value; failures report the section name
/// and byte offset. SaveDatabase writes tmp + fsync + rename, so a crash
/// at any point leaves either the old image or the new one, never a
/// hybrid (fault points: persist/serialize_image, persist/serialize_table,
/// persist/write_models, persist/open_tmp, persist/write_image,
/// persist/fsync_tmp, persist/rename, persist/read_image).

/// Section kinds in the image section table.
enum class ImageSectionKind : uint8_t {
  kTable = 1,
  kModelCatalog = 2,
  kModel = 3,
};

/// One entry of a parsed image section table (InspectImage).
struct ImageSection {
  ImageSectionKind kind = ImageSectionKind::kTable;
  /// Table name for kTable, "model/<id>" for kModel, "model_catalog".
  std::string name;
  /// Absolute byte offset of the payload within the image.
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t stored_crc = 0;
  /// Whether the payload matches stored_crc.
  bool crc_ok = false;
};

/// Integrity overview of an image without parsing payloads; the debugging
/// and test face of the format.
struct ImageInfo {
  uint8_t version = 0;
  bool image_checksum_ok = false;
  uint64_t file_bytes = 0;
  std::vector<ImageSection> sections;
};

/// Reads magic, version, section table and all checksums. Fails on bad
/// magic, unsupported version or a corrupt header; per-section corruption
/// is reported via ImageSection::crc_ok, not an error.
Result<ImageInfo> InspectImage(const std::vector<uint8_t>& bytes);

/// Load behavior under corruption.
struct LoadOptions {
  /// When true, sections failing their CRC (or failing to parse) are
  /// quarantined — recorded in the LoadReport and skipped — instead of
  /// failing the whole load. A quarantined model simply does not exist in
  /// the loaded catalog, so query paths fall back to exact data rather
  /// than serving answers from damaged parameters. A quarantined table is
  /// not registered. When false (default), any integrity failure fails the
  /// load with kIOError/kParseError naming the section and byte offset.
  bool tolerate_corruption = false;
};

/// One section dropped by a tolerant load.
struct QuarantinedSection {
  std::string name;
  uint64_t offset = 0;
  std::string reason;
};

/// What a load did: section counts plus everything it had to drop.
struct LoadReport {
  size_t tables_loaded = 0;
  size_t models_loaded = 0;
  /// False when the trailing whole-image checksum did not match (tolerant
  /// loads continue on per-section checksums; strict loads fail instead).
  bool image_checksum_ok = true;
  std::vector<QuarantinedSection> quarantined;

  bool clean() const { return image_checksum_ok && quarantined.empty(); }
  /// Human-readable one-liner per quarantined section.
  std::string Summary() const;
};

/// Serializes one captured model, including the grouped parameter table.
void SerializeCapturedModel(const CapturedModel& model, ByteWriter* out);
Result<CapturedModel> DeserializeCapturedModel(ByteReader* in);

/// Writes data catalog + model catalog into one checksummed image. Tables
/// are stored with best-of generic column compression. Model staleness
/// survives the round trip: models fresh at save time are fresh after
/// load.
Result<std::vector<uint8_t>> SaveDatabaseToBytes(const Catalog& data,
                                                 const ModelCatalog& models);

/// Verifies checksums, then parses. `report` (optional) receives what was
/// loaded and what was quarantined; with options.tolerate_corruption the
/// load succeeds as long as the header is intact, dropping damaged
/// sections into the report.
Status LoadDatabaseFromBytes(const std::vector<uint8_t>& bytes, Catalog* data,
                             ModelCatalog* models,
                             const LoadOptions& options = {},
                             LoadReport* report = nullptr);

/// Atomic file save: writes `<path>.tmp.<pid>`, fsyncs, renames over
/// `path`. On any failure (including injected faults) the tmp file is
/// removed and a previously existing image at `path` is untouched.
Status SaveDatabase(const Catalog& data, const ModelCatalog& models,
                    const std::string& path);

Status LoadDatabase(const std::string& path, Catalog* data,
                    ModelCatalog* models, const LoadOptions& options = {},
                    LoadReport* report = nullptr);

}  // namespace laws

#endif  // LAWSDB_CORE_PERSISTENCE_H_

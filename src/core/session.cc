#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "model/grouped_fit.h"
#include "model/model.h"
#include "query/expr_eval.h"
#include "query/parser.h"

namespace laws {

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

namespace {

/// Applies the optional subset predicate, returning either the original
/// table (no predicate) or the filtered materialization.
Result<Table> ApplySubset(const Table& table, const std::string& where) {
  if (where.empty()) {
    return Status::Internal("ApplySubset called without predicate");
  }
  LAWS_ASSIGN_OR_RETURN(auto predicate, ParseExpression(where));
  LAWS_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                        FilterRows(*predicate, table));
  return table.GatherRows(rows);
}

/// Extracts the (inputs, outputs) observation matrix from numeric columns,
/// skipping rows with NULL in any referenced column.
Status ExtractObservations(const Table& table,
                           const std::vector<std::string>& input_columns,
                           const std::string& output_column, Matrix* inputs,
                           Vector* outputs) {
  std::vector<const Column*> in_cols;
  for (const auto& name : input_columns) {
    LAWS_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    if (c->type() == DataType::kString) {
      return Status::TypeMismatch("input column '" + name +
                                  "' is not numeric");
    }
    in_cols.push_back(c);
  }
  LAWS_ASSIGN_OR_RETURN(const Column* out_col,
                        table.ColumnByName(output_column));
  if (out_col->type() == DataType::kString) {
    return Status::TypeMismatch("output column is not numeric");
  }
  std::vector<uint32_t> usable;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (out_col->IsNull(i)) continue;
    bool ok = true;
    for (const Column* c : in_cols) {
      if (c->IsNull(i)) {
        ok = false;
        break;
      }
    }
    if (ok) usable.push_back(static_cast<uint32_t>(i));
  }
  const size_t rows = usable.size();
  const size_t num_cols = in_cols.size();
  *inputs = Matrix(rows, num_cols);
  if (num_cols == 1) {
    LAWS_RETURN_IF_ERROR(
        in_cols[0]->GatherNumeric(usable.data(), rows,
                                  inputs->mutable_data()));
  } else {
    std::vector<double> scratch(rows);
    for (size_t c = 0; c < num_cols; ++c) {
      LAWS_RETURN_IF_ERROR(
          in_cols[c]->GatherNumeric(usable.data(), rows, scratch.data()));
      double* data = inputs->mutable_data();
      for (size_t r = 0; r < rows; ++r) data[r * num_cols + c] = scratch[r];
    }
  }
  outputs->assign(rows, 0.0);
  return out_col->GatherNumeric(usable.data(), rows, outputs->data());
}

}  // namespace

Status ComputeCapturedFit(const Catalog& data, const FitRequest& request,
                          CapturedModel* captured, FitReport* report) {
  FitReport scratch;
  if (report == nullptr) report = &scratch;
  LAWS_ASSIGN_OR_RETURN(TablePtr table_ptr, data.Get(request.table));
  LAWS_ASSIGN_OR_RETURN(ModelPtr model, ModelFromSource(request.model_source));
  if (model->num_inputs() != request.input_columns.size()) {
    return Status::InvalidArgument(
        "model arity does not match input column count");
  }

  const Table* table = table_ptr.get();
  Table subset{Schema{}};
  if (!request.where.empty()) {
    LAWS_ASSIGN_OR_RETURN(subset, ApplySubset(*table, request.where));
    table = &subset;
  }

  captured->table_name = request.table;
  captured->input_columns = request.input_columns;
  captured->output_column = request.output_column;
  captured->group_column = request.group_column;
  captured->subset_predicate = request.where;
  captured->model_source = request.model_source;
  captured->fitted_data_version = table_ptr->data_version();
  captured->rows_fitted = table->num_rows();

  if (request.group_column.empty()) {
    Matrix inputs;
    Vector outputs;
    LAWS_RETURN_IF_ERROR(ExtractObservations(*table, request.input_columns,
                                             request.output_column, &inputs,
                                             &outputs));
    LAWS_ASSIGN_OR_RETURN(FitOutput fit,
                          FitModel(*model, inputs, outputs, request.options));
    captured->grouped = false;
    captured->parameters = fit.parameters;
    captured->standard_errors = fit.standard_errors;
    captured->quality = fit.quality;
    report->grouped = false;
    report->parameters = fit.parameters;
    report->quality = fit.quality;
    return Status::OK();
  }

  GroupedFitSpec spec;
  spec.group_column = request.group_column;
  spec.input_columns = request.input_columns;
  spec.output_column = request.output_column;
  spec.fit_options = request.options;
  spec.min_observations = request.min_observations;
  LAWS_ASSIGN_OR_RETURN(GroupedFitOutput fits,
                        FitGrouped(*model, *table, spec));
  LAWS_ASSIGN_OR_RETURN(
      Table param_table,
      GroupedFitToTable(*model, fits, request.group_column));

  std::vector<double> r2s, rses;
  r2s.reserve(fits.groups.size());
  for (const GroupFitResult& g : fits.groups) {
    r2s.push_back(g.fit.quality.r_squared);
    rses.push_back(g.fit.quality.residual_standard_error);
  }
  captured->grouped = true;
  captured->parameter_table = std::move(param_table);
  captured->num_groups = fits.groups.size();
  captured->groups_skipped = fits.skipped_too_few;
  captured->groups_failed = fits.failed;
  captured->median_r_squared = MedianOf(r2s);
  captured->median_residual_se = MedianOf(rses);

  report->grouped = true;
  report->num_groups = captured->num_groups;
  report->groups_skipped = captured->groups_skipped;
  report->groups_failed = captured->groups_failed;
  report->median_r_squared = captured->median_r_squared;
  report->median_residual_se = captured->median_residual_se;
  return Status::OK();
}

Result<FitReport> Session::FitInternal(const FitRequest& request,
                                       CapturedModel* captured) {
  FitReport report;
  LAWS_RETURN_IF_ERROR(ComputeCapturedFit(*data_, request, captured, &report));
  return report;
}

Result<FitReport> Session::Fit(const FitRequest& request) {
  CapturedModel captured;
  LAWS_ASSIGN_OR_RETURN(FitReport report, FitInternal(request, &captured));
  report.model_id = models_->Store(std::move(captured));
  return report;
}

Result<FitReport> Session::Refit(uint64_t model_id) {
  LAWS_ASSIGN_OR_RETURN(const CapturedModel* existing, models_->Get(model_id));
  FitRequest request;
  request.table = existing->table_name;
  request.model_source = existing->model_source;
  request.input_columns = existing->input_columns;
  request.output_column = existing->output_column;
  request.group_column = existing->group_column;
  request.where = existing->subset_predicate;

  CapturedModel refreshed;
  LAWS_ASSIGN_OR_RETURN(FitReport report, FitInternal(request, &refreshed));
  // Replace in place, keeping the id stable — holders of the old id (the
  // learning loop's hit-rate stats, anomaly fixtures, shell history) keep
  // addressing the same model after the refit.
  refreshed.id = model_id;
  LAWS_RETURN_IF_ERROR(models_->Remove(model_id));
  LAWS_RETURN_IF_ERROR(models_->RestoreWithId(std::move(refreshed)));
  report.model_id = model_id;
  return report;
}

Result<RefitReport> Session::RefitStale() {
  RefitReport report;
  for (uint64_t id : models_->ListIds()) {
    auto model = models_->Get(id);
    if (!model.ok()) continue;
    ++report.checked;
    auto table = data_->Get((*model)->table_name);
    if (!table.ok()) continue;
    if (!ModelCatalog::IsStale(**model, (*table)->data_version())) continue;
    ++report.stale;
    const double old_quality = (*model)->ArbitrationQuality();
    auto refit = Refit(id);
    if (!refit.ok()) {
      ++report.failed;
      continue;
    }
    ++report.refitted;
    const double new_quality = refit->grouped ? refit->median_r_squared
                                              : refit->quality.r_squared;
    if (std::fabs(new_quality - old_quality) > 0.05) {
      report.quality_shifted.push_back(refit->model_id);
    }
  }
  return report;
}

}  // namespace laws

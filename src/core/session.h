#ifndef LAWSDB_CORE_SESSION_H_
#define LAWSDB_CORE_SESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_catalog.h"
#include "model/fit.h"
#include "storage/catalog.h"

namespace laws {

/// A fit request as issued from the statistical environment. The dataset
/// the user manipulates is a *strawman* for a database table (paper §3,
/// Figure 2): the fit executes inside the engine and is intercepted into
/// the model catalog as a side effect.
struct FitRequest {
  /// Table the strawman wraps.
  std::string table;
  /// Model structure in source form ("power_law", "linear(2)", ...).
  std::string model_source;
  std::vector<std::string> input_columns;
  std::string output_column;
  /// Optional per-group fit (INT64 column), e.g. "source" for LOFAR.
  std::string group_column;
  /// Optional SQL predicate restricting the fit to a subset (partial
  /// model), e.g. "wavelength < 0.15".
  std::string where;
  FitOptions options;
  /// Minimum usable observations per group (grouped fits).
  size_t min_observations = 0;
};

/// What the user sees back from a fit (Figure 2 step 3: "the database
/// dutifully fits the model and returns the goodness of fit") plus the
/// handle of the captured artifact.
struct FitReport {
  uint64_t model_id = 0;
  bool grouped = false;
  /// Ungrouped: the fitted parameters.
  Vector parameters;
  FitQuality quality;
  /// Grouped: summary statistics over per-group fits.
  size_t num_groups = 0;
  size_t groups_skipped = 0;
  size_t groups_failed = 0;
  double median_r_squared = 0.0;
  double median_residual_se = 0.0;
};

/// Result of a staleness sweep (paper §4.1 "Data or model changes").
struct RefitReport {
  size_t checked = 0;
  size_t stale = 0;
  size_t refitted = 0;
  size_t failed = 0;
  /// Models whose refreshed quality changed by more than 0.05 R².
  std::vector<uint64_t> quality_shifted;
};

/// The interception session: the database end of Figure 2. Owns neither
/// catalog; both outlive the session.
class Session {
 public:
  Session(Catalog* data_catalog, ModelCatalog* model_catalog)
      : data_(data_catalog), models_(model_catalog) {}

  /// Steps 1-3 of Figure 2: execute the fit inside the database, judge the
  /// quality, store model + parameters in the model catalog, and return
  /// the goodness of fit to the user.
  Result<FitReport> Fit(const FitRequest& request);

  /// Re-fits one captured model against the table's current contents and
  /// replaces its stored parameters in place.
  Result<FitReport> Refit(uint64_t model_id);

  /// Sweeps the model catalog, re-fitting every model whose table has a
  /// newer data version — the paper's proposed reaction to data changes.
  Result<RefitReport> RefitStale();

  const ModelCatalog& model_catalog() const { return *models_; }
  Catalog* data_catalog() { return data_; }

 private:
  /// Builds the (inputs, outputs) observation set for an ungrouped fit.
  Result<FitReport> FitInternal(const FitRequest& request,
                                CapturedModel* captured);

  Catalog* data_;
  ModelCatalog* models_;
};

/// Computes the median of `values` (by copy); 0 for empty input.
double MedianOf(std::vector<double> values);

/// The fit kernel behind Session::Fit/Refit, factored out so callers that
/// only hold a const catalog (the learning loop's background refits run
/// against a snapshot-commit copy) can compute a CapturedModel without a
/// Session: extracts observations, fits, and fills `*captured` and
/// `*report` — it does NOT store anything; publication is the caller's
/// job. `report` may be nullptr.
Status ComputeCapturedFit(const Catalog& data, const FitRequest& request,
                          CapturedModel* captured, FitReport* report);

}  // namespace laws

#endif  // LAWSDB_CORE_SESSION_H_

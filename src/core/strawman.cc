#include "core/strawman.h"

#include "query/expr_eval.h"
#include "query/parser.h"

namespace laws {

Strawman Strawman::Filter(const std::string& predicate) const {
  Strawman next = *this;
  next.predicate_ = predicate_.empty()
                        ? predicate
                        : "(" + predicate_ + ") AND (" + predicate + ")";
  return next;
}

Strawman Strawman::GroupBy(const std::string& column) const {
  Strawman next = *this;
  next.group_ = column;
  return next;
}

Result<FitReport> Strawman::Fit(const std::string& model_source,
                                const std::vector<std::string>& input_columns,
                                const std::string& output_column,
                                const FitOptions& options) const {
  FitRequest request;
  request.table = table_;
  request.model_source = model_source;
  request.input_columns = input_columns;
  request.output_column = output_column;
  request.group_column = group_;
  request.where = predicate_;
  request.options = options;
  return session_->Fit(request);
}

Result<Table> Strawman::Collect() const {
  LAWS_ASSIGN_OR_RETURN(TablePtr table,
                        session_->data_catalog()->Get(table_));
  if (predicate_.empty()) return *table;
  LAWS_ASSIGN_OR_RETURN(auto expr, ParseExpression(predicate_));
  LAWS_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                        FilterRows(*expr, *table));
  return table->GatherRows(rows);
}

Result<size_t> Strawman::Count() const {
  LAWS_ASSIGN_OR_RETURN(TablePtr table,
                        session_->data_catalog()->Get(table_));
  if (predicate_.empty()) return table->num_rows();
  LAWS_ASSIGN_OR_RETURN(auto expr, ParseExpression(predicate_));
  LAWS_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                        FilterRows(*expr, *table));
  return rows.size();
}

}  // namespace laws

#ifndef LAWSDB_CORE_STRAWMAN_H_
#define LAWSDB_CORE_STRAWMAN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/session.h"

namespace laws {

/// The user-facing half of the paper's §3 mechanism: "constructing a
/// so-called 'strawman object' in the statistical environment, which wraps
/// a database table or query result, but is indistinguishable from a local
/// dataset. Any command the user performs on this object is forwarded to
/// the data management system."
///
/// This is that object, in C++: a lightweight handle over a catalog table
/// that accumulates dataframe-style operations (filters, grouping) and
/// forwards fitting into the engine — where the model is intercepted and
/// captured as a side effect. Handles are cheap values; copying one forks
/// the pending operation chain.
///
///   Strawman df(&session, "measurements");
///   auto report = df.Filter("wavelength < 0.2")
///                   .GroupBy("source")
///                   .Fit("power_law", {"wavelength"}, "intensity");
class Strawman {
 public:
  Strawman(Session* session, std::string table)
      : session_(session), table_(std::move(table)) {}

  /// Restricts subsequent operations to rows satisfying `predicate` (SQL
  /// expression syntax). Multiple filters conjoin.
  Strawman Filter(const std::string& predicate) const;

  /// Sets the grouping column for per-group fits.
  Strawman GroupBy(const std::string& column) const;

  /// Forwards the fit into the engine (Figure 2 steps 1-3): the model is
  /// fitted on this handle's current view and captured in the model
  /// catalog; the goodness of fit comes back, exactly as the paper's user
  /// sees it.
  Result<FitReport> Fit(const std::string& model_source,
                        const std::vector<std::string>& input_columns,
                        const std::string& output_column,
                        const FitOptions& options = {}) const;

  /// Materializes the handle's current view as a local table (the
  /// "indistinguishable from a local dataset" escape hatch).
  Result<Table> Collect() const;

  /// Number of rows in the current view (forwarded count, no transfer).
  Result<size_t> Count() const;

  const std::string& table() const { return table_; }
  const std::string& predicate() const { return predicate_; }
  const std::string& group_column() const { return group_; }

 private:
  Session* session_;
  std::string table_;
  std::string predicate_;  // conjunction of Filter() calls; "" = all rows
  std::string group_;      // "" = ungrouped
};

}  // namespace laws

#endif  // LAWSDB_CORE_STRAWMAN_H_

#include "learn/learner.h"

#include <algorithm>
#include <cmath>

#include "common/env.h"
#include "common/governor.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "model/fit.h"
#include "model/model.h"
#include "stats/diagnostics.h"
#include "stats/distributions.h"
#include "storage/table.h"

namespace laws {
namespace {

/// Candidate model families tried per harvested (x, y) pair. All are
/// linear in their parameters (the IncrementalOls requirement); the
/// promotion pass keeps only the best-fitting family per pair.
constexpr const char* kFamilies[] = {"linear(1)", "log_law", "poly(2)"};

/// Loop accounting (cached pointers; see metrics.h).
struct LearnCounters {
  Counter* harvest_scans;
  Counter* harvest_rows;
  Counter* harvest_aborted;
  Counter* candidates_created;
  Counter* candidates_reset;
  Counter* promoted;
  Counter* refined;
  Counter* refine_rejected;
  Counter* drift_checks;
  Counter* drift_detected;
  Counter* drift_rejected;
  Counter* refits;
  Counter* refit_failed;
  Counter* evicted;
  Counter* decisions;
  Counter* model_hits;
  Counter* ticks;

  static LearnCounters& Get() {
    static LearnCounters c = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return LearnCounters{reg.GetCounter("learn.harvest.scans"),
                           reg.GetCounter("learn.harvest.rows"),
                           reg.GetCounter("learn.harvest.aborted"),
                           reg.GetCounter("learn.candidates.created"),
                           reg.GetCounter("learn.candidates.reset"),
                           reg.GetCounter("learn.promoted"),
                           reg.GetCounter("learn.refined"),
                           reg.GetCounter("learn.refine_rejected"),
                           reg.GetCounter("learn.drift.checks"),
                           reg.GetCounter("learn.drift.detected"),
                           reg.GetCounter("learn.drift.rejected"),
                           reg.GetCounter("learn.refits"),
                           reg.GetCounter("learn.refit_failed"),
                           reg.GetCounter("learn.evicted"),
                           reg.GetCounter("learn.decisions"),
                           reg.GetCounter("learn.model_hits"),
                           reg.GetCounter("learn.ticks")};
    }();
    return c;
  }
};

double NumericAt(const Column& c, size_t row) {
  return c.type() == DataType::kInt64 ? static_cast<double>(c.Int64At(row))
                                      : c.DoubleAt(row);
}

bool IsNumericColumn(const Column* c) {
  return c != nullptr &&
         (c->type() == DataType::kInt64 || c->type() == DataType::kDouble);
}

void CollectColumnRefs(const Expr& e, std::vector<std::string>* out) {
  if (e.kind == ExprKind::kColumnRef) out->push_back(e.column_name);
  for (const auto& child : e.children) {
    if (child != nullptr) CollectColumnRefs(*child, out);
  }
}

/// Columns the statement references, in first-mention order, deduped.
/// Local on purpose: aqp/model_aqp.cc has an equivalent walker, but using
/// it from here would invert the aqp -> learn-header layering.
std::vector<std::string> ReferencedColumnsOf(const SelectStatement& stmt) {
  std::vector<std::string> cols;
  for (const auto& item : stmt.select_list) {
    if (!item.is_star && item.expr != nullptr) {
      CollectColumnRefs(*item.expr, &cols);
    }
  }
  if (stmt.where != nullptr) CollectColumnRefs(*stmt.where, &cols);
  for (const auto& g : stmt.group_by) CollectColumnRefs(*g, &cols);
  if (stmt.having != nullptr) CollectColumnRefs(*stmt.having, &cols);
  for (const auto& k : stmt.order_by) {
    if (k.expr != nullptr) CollectColumnRefs(*k.expr, &cols);
  }
  std::vector<std::string> unique;
  for (auto& name : cols) {
    if (std::find(unique.begin(), unique.end(), name) == unique.end()) {
      unique.push_back(std::move(name));
    }
  }
  return unique;
}

std::string CandidateKey(const std::string& table, const std::string& x,
                         const std::string& y, const std::string& source) {
  return table + "|" + x + "|" + y + "|" + source;
}

/// 95% prediction-interval half-width from a fit quality — the same
/// formula the model AQP path serves as its error bound, so "refine only
/// if tighter" compares exactly what users see.
double ServedHalfWidth(const FitQuality& q) {
  const double rse = q.residual_standard_error;
  if (q.n_observations <= q.n_parameters) return rse;
  const size_t df = q.n_observations - q.n_parameters;
  if (df >= 200) return 1.96 * rse;
  return StudentTQuantile(0.975, static_cast<double>(df)) * rse;
}

/// Gathers the usable (x, y) observations a candidate accumulator is
/// defined over: rows [0, row_limit) with both columns non-NULL and
/// finite, and x > 0 when the family needs it.
size_t GatherUsable(const Column& xc, const Column& yc, size_t row_limit,
                    bool needs_positive_x, std::vector<double>* xs,
                    std::vector<double>* ys) {
  for (size_t r = 0; r < row_limit; ++r) {
    if (xc.IsNull(r) || yc.IsNull(r)) continue;
    const double x = NumericAt(xc, r);
    const double y = NumericAt(yc, r);
    if (!std::isfinite(x) || !std::isfinite(y)) continue;
    if (needs_positive_x && x <= 0.0) continue;
    xs->push_back(x);
    ys->push_back(y);
  }
  return xs->size();
}

bool NeedsPositiveX(const std::string& source) { return source == "log_law"; }

}  // namespace

LearnerOptions LearnerOptions::FromEnv() {
  LearnerOptions o;
  o.enabled = EnvFlag("LAWS_LEARNING", false);
  o.max_rows_per_scan = static_cast<size_t>(
      EnvInt64("LAWS_LEARN_SCAN_ROWS", 4096, 1, int64_t{1} << 22));
  o.max_pairs_per_scan = static_cast<size_t>(
      EnvInt64("LAWS_LEARN_SCAN_PAIRS", 4, 1, 64));
  o.max_candidates = static_cast<size_t>(
      EnvInt64("LAWS_LEARN_MAX_CANDIDATES", 64, 1, 1 << 16));
  o.min_observations = static_cast<size_t>(
      EnvInt64("LAWS_LEARN_MIN_OBS", 48, 8, int64_t{1} << 20));
  o.drift_z = static_cast<double>(EnvInt64("LAWS_LEARN_DRIFT_Z", 4, 1, 64));
  o.max_models = static_cast<size_t>(
      EnvInt64("LAWS_LEARN_MAX_MODELS", 0, 0, 1 << 20));
  return o;
}

std::string LearnTickReport::Summary() const {
  return "promoted=" + std::to_string(promoted) +
         " refined=" + std::to_string(refined) +
         " refine_rejected=" + std::to_string(refine_rejected) +
         " refits=" + std::to_string(refits) +
         " refit_failed=" + std::to_string(refit_failed) +
         " evicted=" + std::to_string(evicted);
}

Learner::Learner(LearnerOptions options) : options_(options) {
  enabled_.store(options_.enabled, std::memory_order_release);
}

void Learner::SetWorkSignal(std::function<void()> signal) {
  std::lock_guard<std::mutex> lock(mutex_);
  work_signal_ = std::move(signal);
}

void Learner::SignalIfPending() {
  std::function<void()> signal;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    signal = work_signal_;
  }
  if (signal && HasPendingWork()) signal();
}

void Learner::OnExactScan(const SelectStatement& stmt, const Catalog& data,
                          const ModelCatalog& models) {
  if (!enabled()) return;
  const std::string& table_name = stmt.from_table;
  // Join results interleave two tables' columns; attributing rows to one
  // accumulator would mix laws, so joins are not harvested.
  if (table_name.empty() || !stmt.join_table.empty()) return;
  auto table = data.Get(table_name);
  if (!table.ok()) return;
  ScopedSpan span("Harvest");
  LearnCounters::Get().harvest_scans->Add();
  HarvestPairs(stmt, **table, table_name);
  CheckDrift(**table, models, table_name);
  SignalIfPending();
}

void Learner::HarvestPairs(const SelectStatement& stmt, const Table& table,
                           const std::string& table_name) {
  LearnCounters& counters = LearnCounters::Get();

  // Referenced numeric columns, in query order.
  std::vector<std::string> names;
  std::vector<const Column*> cols;
  for (auto& name : ReferencedColumnsOf(stmt)) {
    auto col = table.ColumnByName(name);
    if (!col.ok() || !IsNumericColumn(*col)) continue;
    names.push_back(std::move(name));
    cols.push_back(*col);
  }

  // Ordered (x, y) pairs, capped per scan.
  struct Pair {
    size_t x, y;
  };
  std::vector<Pair> pairs;
  for (size_t i = 0; i < names.size() && pairs.size() < options_.max_pairs_per_scan; ++i) {
    for (size_t j = 0; j < names.size() && pairs.size() < options_.max_pairs_per_scan; ++j) {
      if (i != j) pairs.push_back(Pair{i, j});
    }
  }

  for (const Pair& pair : pairs) {
    for (const char* family : kFamilies) {
      const std::string key =
          CandidateKey(table_name, names[pair.x], names[pair.y], family);

      // Phase 1 (locked): get-or-create the candidate and reserve the
      // row range [begin, end). The reservation is what makes repeated
      // scans over unchanged data harvest nothing twice — intervals
      // tighten only on genuinely new observations.
      size_t begin = 0, end = 0;
      uint64_t reserved_version = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = candidates_.find(key);
        if (it == candidates_.end()) {
          if (candidates_.size() >= options_.max_candidates) continue;
          auto model = ModelFromSource(family);
          if (!model.ok()) continue;
          auto acc = IncrementalOls::Create(**model);
          if (!acc.ok()) continue;
          it = candidates_
                   .emplace(key, Candidate(table_name, names[pair.x],
                                           names[pair.y], family,
                                           std::move(*acc)))
                   .first;
          counters.candidates_created->Add();
        }
        Candidate& cand = it->second;
        if (table.data_version() < cand.seen_version ||
            table.num_rows() < cand.seen_rows) {
          // The table was replaced wholesale (version or size went
          // backwards): restart the accumulator from scratch rather than
          // blending two unrelated populations.
          auto model = ModelFromSource(family);
          if (!model.ok()) continue;
          auto acc = IncrementalOls::Create(**model);
          if (!acc.ok()) continue;
          cand.acc = std::move(*acc);
          cand.seen_rows = 0;
          cand.solved_count = 0;
          cand.tainted = false;
          counters.candidates_reset->Add();
        }
        cand.seen_version = table.data_version();
        reserved_version = cand.seen_version;
        begin = cand.seen_rows;
        end = std::min(table.num_rows(), begin + options_.max_rows_per_scan);
        cand.seen_rows = end;
      }
      if (end <= begin) continue;

      // Phase 2 (unlocked): fold the reserved rows into a scan-local
      // accumulator. Governed: a tripped deadline/budget/cancel aborts
      // the harvest silently — learning never fails the query.
      auto model = ModelFromSource(family);
      if (!model.ok()) continue;
      auto local = IncrementalOls::Create(**model);
      if (!local.ok()) continue;
      const bool positive_x = NeedsPositiveX(family);
      const Column& xc = *cols[pair.x];
      const Column& yc = *cols[pair.y];
      Vector in(1);
      bool aborted = false;
      size_t added = 0;
      QueryGovernor* gov = QueryGovernor::Current();
      for (size_t r = begin; r < end; ++r) {
        if (((r - begin) & 1023u) == 0u && gov != nullptr &&
            !gov->Poll().ok()) {
          aborted = true;
          break;
        }
        if (xc.IsNull(r) || yc.IsNull(r)) continue;
        const double x = NumericAt(xc, r);
        const double y = NumericAt(yc, r);
        if (!std::isfinite(x) || !std::isfinite(y)) continue;
        if (positive_x && x <= 0.0) continue;
        in[0] = x;
        if (!local->Add(in, y).ok()) {
          aborted = true;
          break;
        }
        ++added;
      }

      // Phase 3 (locked): merge into the stored accumulator, unless the
      // candidate was reset behind our back (then the local rows belong
      // to a dead lineage and are dropped; the reset candidate will
      // re-reserve them).
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = candidates_.find(key);
        if (it == candidates_.end()) continue;
        Candidate& cand = it->second;
        if (cand.seen_version != reserved_version || cand.seen_rows < end) {
          continue;
        }
        if (aborted) {
          // Rows [begin, end) are reserved but (partly) unfolded: the
          // accumulator no longer matches the row range, so the batch
          // self-check must skip this candidate from now on.
          cand.tainted = true;
          counters.harvest_aborted->Add();
        } else if (cand.acc.Merge(*local).ok()) {
          counters.harvest_rows->Add(added);
        } else {
          cand.tainted = true;
        }
      }
      if (aborted) return;  // governor tripped: stop all harvest work
    }
  }
}

void Learner::CheckDrift(const Table& table, const ModelCatalog& models,
                         const std::string& table_name) {
  LearnCounters& counters = LearnCounters::Get();
  for (const CapturedModel* m : models.ModelsForTable(table_name)) {
    if (m->grouped || !m->group_column.empty() ||
        !m->subset_predicate.empty()) {
      continue;
    }
    if (m->input_columns.size() != 1) continue;
    const size_t fresh_begin = m->rows_fitted;
    if (table.num_rows() <= fresh_begin) continue;
    if (table.data_version() <= m->fitted_data_version) continue;
    if (table.num_rows() - fresh_begin < options_.drift_min_rows) continue;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ModelStats& st = model_stats_[m->id];
      if (st.drifted) continue;
      if (st.drift_checked_version >= table.data_version()) continue;
      st.drift_checked_version = table.data_version();
    }
    auto xcol = table.ColumnByName(m->input_columns[0]);
    auto ycol = table.ColumnByName(m->output_column);
    if (!xcol.ok() || !ycol.ok() || !IsNumericColumn(*xcol) ||
        !IsNumericColumn(*ycol)) {
      continue;
    }
    auto model = ModelFromSource(m->model_source);
    if (!model.ok()) continue;

    // Residuals of the fresh window against the fitted law.
    const size_t fresh_end = std::min(
        table.num_rows(), fresh_begin + options_.max_rows_per_scan);
    std::vector<double> residuals;
    residuals.reserve(fresh_end - fresh_begin);
    Vector in(1);
    for (size_t r = fresh_begin; r < fresh_end; ++r) {
      if ((*xcol)->IsNull(r) || (*ycol)->IsNull(r)) continue;
      const double x = NumericAt(**xcol, r);
      const double y = NumericAt(**ycol, r);
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      in[0] = x;
      const double pred = (*model)->Evaluate(in, m->parameters);
      if (!std::isfinite(pred)) continue;
      residuals.push_back(y - pred);
    }
    if (residuals.size() < options_.drift_min_rows) continue;
    counters.drift_checks->Add();

    const double n = static_cast<double>(residuals.size());
    double mean = 0.0;
    for (double r : residuals) mean += r;
    mean /= n;
    double var = 0.0;
    for (double r : residuals) var += (r - mean) * (r - mean);
    var /= n;
    double rse = m->quality.residual_standard_error;
    if (!(rse > 0.0)) rse = std::sqrt(var);
    if (!(rse > 0.0)) continue;

    // Mean-shift z-test against the model's own residual scale, then the
    // stats/diagnostics residual tests for shape and serial structure.
    bool drifted = std::fabs(mean) * std::sqrt(n) / rse > options_.drift_z;
    if (!drifted) {
      auto ks = KolmogorovSmirnovNormalTest(residuals);
      if (ks.ok() && ks->p_value < options_.drift_ks_p) drifted = true;
    }
    if (!drifted) {
      auto dw = DurbinWatson(residuals);
      if (dw.ok() && (*dw < 0.4 || *dw > 3.6)) drifted = true;
    }
    if (drifted) {
      std::lock_guard<std::mutex> lock(mutex_);
      model_stats_[m->id].drifted = true;
      counters.drift_detected->Add();
    }
  }
}

bool Learner::RejectModel(uint64_t model_id, std::string* why) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = model_stats_.find(model_id);
  if (it == model_stats_.end() || !it->second.drifted) return false;
  if (why != nullptr) {
    *why = "model " + std::to_string(model_id) +
           " drift-flagged (fresh rows contradict the fitted law; refit "
           "pending)";
  }
  LearnCounters::Get().drift_rejected->Add();
  return true;
}

void Learner::OnDecision(const std::string& table, uint64_t hit_model_id,
                         const ModelCatalog& models) {
  if (!enabled()) return;
  LearnCounters& counters = LearnCounters::Get();
  counters.decisions->Add();
  if (hit_model_id != 0) counters.model_hits->Add();
  auto for_table = models.ModelsForTable(table);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const CapturedModel* m : for_table) {
    ModelStats& st = model_stats_[m->id];
    ++st.opportunities;
    if (m->id == hit_model_id) ++st.hits;
  }
}

bool Learner::HasPendingWork() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, cand] : candidates_) {
    (void)key;
    const size_t need = cand.solved_count == 0
                            ? options_.min_observations
                            : cand.solved_count + options_.refine_min_new_rows;
    if (cand.acc.count() >= need) return true;
  }
  for (const auto& [id, st] : model_stats_) {
    (void)id;
    if (st.drifted) return true;
  }
  return false;
}

LearnTickReport Learner::Apply(const Catalog& data, ModelCatalog* models) {
  LearnCounters& counters = LearnCounters::Get();
  counters.ticks->Add();
  LearnTickReport report;
  std::lock_guard<std::mutex> lock(mutex_);

  // ---- Promote / refine from candidate sufficient statistics ----
  struct NewModel {
    Candidate* cand;
    FitOutput fit;
  };
  std::map<std::string, NewModel> best_new;  // keyed table|x|y
  for (auto& [key, cand] : candidates_) {
    (void)key;
    const size_t need = cand.solved_count == 0
                            ? options_.min_observations
                            : cand.solved_count + options_.refine_min_new_rows;
    if (cand.acc.count() < need) continue;
    cand.solved_count = cand.acc.count();  // rate-limit re-solves either way
    auto fit = cand.acc.Solve();
    if (!fit.ok()) continue;

    if (cand.model_id != 0) {
      // Refine path: replace the published fit only when the refreshed
      // prediction interval is no wider — intervals may tighten, never
      // lie — and the model id stays stable for pinned readers.
      auto existing = models->Get(cand.model_id);
      if (!existing.ok()) {
        cand.model_id = 0;  // evicted or dropped; back to candidacy
      } else {
        const double old_hw = ServedHalfWidth((*existing)->quality);
        const double new_hw = ServedHalfWidth(fit->quality);
        if (new_hw <= old_hw &&
            fit->quality.n_observations >= (*existing)->quality.n_observations) {
          CapturedModel updated = **existing;  // metadata carries over
          updated.parameters = fit->parameters;
          updated.standard_errors = fit->standard_errors;
          updated.quality = fit->quality;
          updated.fitted_data_version = cand.seen_version;
          updated.rows_fitted = cand.seen_rows;
          auto table = data.Get(cand.table);
          if (table.ok()) {
            updated.fitted_data_version = (*table)->data_version();
          }
          (void)models->Remove(updated.id);
          if (models->RestoreWithId(std::move(updated)).ok()) {
            ++report.refined;
            counters.refined->Add();
          }
        } else {
          ++report.refine_rejected;
          counters.refine_rejected->Add();
        }
        continue;
      }
    }

    if (fit->quality.adjusted_r_squared < options_.min_promote_quality) {
      continue;
    }
    // Adopt an exactly matching catalog model instead of duplicating it
    // (e.g. one published by Fit or by an earlier learner instance).
    bool adopted = false;
    for (const CapturedModel* m : models->ModelsForTable(cand.table)) {
      if (!m->grouped && m->group_column.empty() &&
          m->subset_predicate.empty() && m->input_columns.size() == 1 &&
          m->input_columns[0] == cand.x_column &&
          m->output_column == cand.y_column &&
          m->model_source == cand.model_source) {
        cand.model_id = m->id;
        adopted = true;
        break;
      }
    }
    if (adopted) continue;  // refined on the next pass
    const std::string pair_key =
        cand.table + "|" + cand.x_column + "|" + cand.y_column;
    auto it = best_new.find(pair_key);
    if (it == best_new.end() ||
        fit->quality.adjusted_r_squared >
            it->second.fit.quality.adjusted_r_squared) {
      best_new[pair_key] = NewModel{&cand, std::move(*fit)};
    }
  }
  for (auto& [pair_key, nm] : best_new) {
    (void)pair_key;
    Candidate& cand = *nm.cand;
    // Don't promote below an existing model over the same (table, x, y):
    // arbitration would never pick ours, it would only bloat the catalog.
    bool dominated = false;
    for (const CapturedModel* m : models->ModelsForTable(cand.table)) {
      if (!m->grouped && m->input_columns.size() == 1 &&
          m->input_columns[0] == cand.x_column &&
          m->output_column == cand.y_column &&
          m->ArbitrationQuality() >= nm.fit.quality.adjusted_r_squared) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    CapturedModel captured;
    captured.table_name = cand.table;
    captured.input_columns = {cand.x_column};
    captured.output_column = cand.y_column;
    captured.model_source = cand.model_source;
    captured.parameters = nm.fit.parameters;
    captured.standard_errors = nm.fit.standard_errors;
    captured.quality = nm.fit.quality;
    captured.grouped = false;
    captured.rows_fitted = cand.seen_rows;
    captured.fitted_data_version = cand.seen_version;
    auto table = data.Get(cand.table);
    if (table.ok()) captured.fitted_data_version = (*table)->data_version();
    cand.model_id = models->Store(std::move(captured));
    ++report.promoted;
    counters.promoted->Add();
  }

  // ---- Refit drift-flagged models against the current table ----
  for (auto& [id, st] : model_stats_) {
    if (!st.drifted) continue;
    auto existing = models->Get(id);
    if (!existing.ok()) {
      st.drifted = false;  // dropped/evicted meanwhile
      continue;
    }
    if (QueryGovernor* gov = QueryGovernor::Current()) {
      if (!gov->Poll().ok()) break;  // retry on the next tick
    }
    FitRequest request;
    request.table = (*existing)->table_name;
    request.model_source = (*existing)->model_source;
    request.input_columns = (*existing)->input_columns;
    request.output_column = (*existing)->output_column;
    request.group_column = (*existing)->group_column;
    request.where = (*existing)->subset_predicate;
    CapturedModel refreshed;
    FitReport fit_report;
    auto status = ComputeCapturedFit(data, request, &refreshed, &fit_report);
    if (!status.ok()) {
      // Keep the flag: the model stays rejected at arbitration (serving
      // exact answers) rather than serving a law the data contradicts.
      ++report.refit_failed;
      counters.refit_failed->Add();
      continue;
    }
    refreshed.id = id;
    (void)models->Remove(id);
    if (models->RestoreWithId(std::move(refreshed)).ok()) {
      st.drifted = false;
      ++report.refits;
      counters.refits->Add();
      // The refit re-anchored rows_fitted; matching candidates restart
      // their re-solve clock so a stale accumulator cannot immediately
      // overwrite the fresh fit with a wider interval (the tighter-only
      // gate would reject it anyway, but don't even try).
      for (auto& [key, cand] : candidates_) {
        (void)key;
        if (cand.model_id == id) cand.solved_count = cand.acc.count();
      }
    }
  }

  // ---- Hit-rate eviction down to the catalog cap ----
  if (options_.max_models > 0) {
    while (models->size() > options_.max_models) {
      uint64_t victim = 0;
      double victim_rate = 2.0;
      for (const auto& [id, st] : model_stats_) {
        if (st.opportunities < options_.evict_min_opportunities) continue;
        if (!models->Get(id).ok()) continue;
        const double rate = static_cast<double>(st.hits) /
                            static_cast<double>(st.opportunities);
        if (rate < victim_rate) {
          victim_rate = rate;
          victim = id;
        }
      }
      if (victim == 0) break;  // nobody eligible: respect the grace period
      (void)models->Remove(victim);
      model_stats_.erase(victim);
      for (auto& [key, cand] : candidates_) {
        (void)key;
        if (cand.model_id == victim) cand.model_id = 0;
      }
      ++report.evicted;
      counters.evicted->Add();
    }
  }

  return report;
}

std::string Learner::VerifyCandidatesAgainstBatch(const Catalog& data,
                                                  double tolerance) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, cand] : candidates_) {
    if (cand.tainted) continue;
    auto model = ModelFromSource(cand.model_source);
    if (!model.ok()) continue;
    if (cand.acc.count() <= (*model)->num_parameters()) continue;
    auto table = data.Get(cand.table);
    if (!table.ok()) continue;
    // Only meaningful when the accumulator's lineage matches the live
    // table (otherwise the rows it folded no longer exist).
    if ((*table)->data_version() != cand.seen_version ||
        (*table)->num_rows() < cand.seen_rows) {
      continue;
    }
    auto xcol = (*table)->ColumnByName(cand.x_column);
    auto ycol = (*table)->ColumnByName(cand.y_column);
    if (!xcol.ok() || !ycol.ok()) continue;
    std::vector<double> xs, ys;
    GatherUsable(**xcol, **ycol, cand.seen_rows,
                 NeedsPositiveX(cand.model_source), &xs, &ys);
    if (xs.size() != cand.acc.count()) {
      return key + ": accumulator folded " +
             std::to_string(cand.acc.count()) + " rows but the table holds " +
             std::to_string(xs.size()) + " usable rows in its range";
    }
    // Re-accumulate the same rows in one pass and compare sufficient
    // statistics entrywise. Comparing statistics (not solved parameters)
    // is deliberate: merge-vs-single-pass only reassociates sums, so the
    // statistics agree to ~n·eps, while the Gram solve would amplify
    // that noise by the squared condition number of arbitrary data.
    auto rebuilt = IncrementalOls::Create(**model);
    if (!rebuilt.ok()) continue;
    Vector in(1);
    bool add_failed = false;
    for (size_t r = 0; r < xs.size(); ++r) {
      in[0] = xs[r];
      if (!rebuilt->Add(in, ys[r]).ok()) {
        add_failed = true;
        break;
      }
    }
    if (add_failed) continue;
    auto differs = [tolerance](double a, double b) {
      const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
      return std::fabs(a - b) > tolerance * scale;
    };
    const Matrix& got_xtx = cand.acc.gram();
    const Matrix& want_xtx = rebuilt->gram();
    for (size_t i = 0; i < got_xtx.rows(); ++i) {
      for (size_t j = 0; j < got_xtx.cols(); ++j) {
        if (differs(got_xtx(i, j), want_xtx(i, j))) {
          return key + ": merged Gram entry (" + std::to_string(i) + "," +
                 std::to_string(j) + ") = " + FormatDouble(got_xtx(i, j), 9) +
                 " but a single pass over the same " +
                 std::to_string(xs.size()) + " rows gives " +
                 FormatDouble(want_xtx(i, j), 9);
        }
      }
    }
    for (size_t i = 0; i < cand.acc.moment().size(); ++i) {
      if (differs(cand.acc.moment()[i], rebuilt->moment()[i])) {
        return key + ": merged moment entry " + std::to_string(i) + " = " +
               FormatDouble(cand.acc.moment()[i], 9) +
               " but a single pass over the same " +
               std::to_string(xs.size()) + " rows gives " +
               FormatDouble(rebuilt->moment()[i], 9);
      }
    }
    if (differs(cand.acc.sum_y(), rebuilt->sum_y()) ||
        differs(cand.acc.sum_y2(), rebuilt->sum_y2())) {
      return key + ": merged response sums diverge from a single pass over " +
             std::to_string(xs.size()) + " rows";
    }
  }
  return "";
}

size_t Learner::num_candidates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return candidates_.size();
}

size_t Learner::num_drifted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [id, st] : model_stats_) {
    (void)id;
    if (st.drifted) ++n;
  }
  return n;
}

std::string Learner::StatusString() const {
  LearnCounters& c = LearnCounters::Get();
  size_t candidates = 0, drifted = 0;
  uint64_t tracked_rows = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    candidates = candidates_.size();
    for (const auto& [key, cand] : candidates_) {
      (void)key;
      tracked_rows += cand.acc.count();
    }
    for (const auto& [id, st] : model_stats_) {
      (void)id;
      if (st.drifted) ++drifted;
    }
  }
  const uint64_t decisions = c.decisions->value();
  const uint64_t hits = c.model_hits->value();
  std::string out = "learning: ";
  out += enabled() ? "on" : "off";
  out += " | candidates=" + std::to_string(candidates) +
         " tracked_rows=" + std::to_string(tracked_rows) +
         " harvested_rows=" + std::to_string(c.harvest_rows->value()) +
         " promoted=" + std::to_string(c.promoted->value()) +
         " refined=" + std::to_string(c.refined->value()) +
         " drift_flagged=" + std::to_string(drifted) +
         " refits=" + std::to_string(c.refits->value()) +
         " evicted=" + std::to_string(c.evicted->value()) + " hits=" +
         std::to_string(hits) + "/" + std::to_string(decisions);
  if (decisions > 0) {
    out += " (" +
           FormatDouble(100.0 * static_cast<double>(hits) /
                            static_cast<double>(decisions),
                        1) +
           "%)";
  }
  return out;
}

}  // namespace laws

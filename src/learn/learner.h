#ifndef LAWSDB_LEARN_LEARNER_H_
#define LAWSDB_LEARN_LEARNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_catalog.h"
#include "core/session.h"
#include "learn/observer.h"
#include "model/incremental.h"
#include "query/ast.h"
#include "storage/catalog.h"

namespace laws {

/// Knobs for the database-learning loop (Park et al.'s "Database
/// Learning" direction, ROADMAP item 4): how aggressively exact-scan
/// traffic is converted into model candidates, when candidates graduate
/// into the catalog, and when served models are drift-flagged or evicted.
/// Every field has a LAWS_LEARN_* env override (see FromEnv and the
/// README knob table).
struct LearnerOptions {
  /// Master switch (LAWS_LEARNING). Off ⇒ every hook is a no-op and the
  /// hybrid engine pays one virtual call per exact fallback, nothing
  /// else.
  bool enabled = false;

  /// Harvest budget per exact scan: at most this many new rows are
  /// folded per candidate per query (LAWS_LEARN_SCAN_ROWS). Keeps the
  /// by-product cost of one query bounded regardless of table size.
  size_t max_rows_per_scan = 4096;

  /// At most this many (x, y) column pairs are tracked per scan — the
  /// first referenced numeric columns win (LAWS_LEARN_SCAN_PAIRS).
  size_t max_pairs_per_scan = 4;

  /// Cap on concurrently tracked candidates; new pairs beyond it are
  /// ignored until candidates graduate or reset
  /// (LAWS_LEARN_MAX_CANDIDATES).
  size_t max_candidates = 64;

  /// A candidate needs at least this many folded observations before
  /// promotion is attempted (LAWS_LEARN_MIN_OBS).
  size_t min_observations = 48;

  /// Minimum adjusted R² for a harvested candidate to enter the catalog
  /// — the same "judge the quality" gate Fit applies, tightened because
  /// harvested models were never explicitly requested.
  double min_promote_quality = 0.90;

  /// A promoted/adopted model is re-solved (refined) only after this
  /// many additional harvested rows, so a hot query loop does not
  /// re-solve per query.
  size_t refine_min_new_rows = 64;

  /// Drift gate: flag a model when the mean residual of fresh rows sits
  /// more than drift_z standard errors from zero (LAWS_LEARN_DRIFT_Z),
  /// or the KS normality p-value of fresh residuals drops below
  /// drift_ks_p, or Durbin-Watson shows extreme serial correlation.
  double drift_z = 4.0;
  double drift_ks_p = 1e-4;
  /// Fresh rows needed before a drift verdict is attempted.
  size_t drift_min_rows = 32;

  /// Catalog cap for eviction; 0 = never evict (LAWS_LEARN_MAX_MODELS).
  size_t max_models = 0;
  /// A model must have been arbitrated at least this often before its
  /// hit rate can evict it — fresh models get a grace period.
  size_t evict_min_opportunities = 32;

  static LearnerOptions FromEnv();
};

/// What one maintenance pass (Learner::Apply) changed in the catalog.
struct LearnTickReport {
  size_t promoted = 0;        // new models harvested from traffic
  size_t refined = 0;         // existing models re-solved with more rows
  size_t refine_rejected = 0; // re-solve discarded (interval not tighter)
  size_t refits = 0;          // drift-flagged models refit from the table
  size_t refit_failed = 0;    // drift refits that errored (flag kept)
  size_t evicted = 0;         // models dropped by the hit-rate policy

  bool did_work() const {
    return promoted + refined + refits + evicted > 0;
  }
  std::string Summary() const;
};

/// The database-learning loop's stateful half: every exact-scan fallback
/// feeds scanned rows through mergeable OLS sufficient statistics
/// (model/incremental.h) to grow candidate models, residual tests flag
/// served models whose law the fresh data contradicts, and Apply()
/// publishes the resulting promotions/refinements/refits/evictions into
/// a ModelCatalog — under the serving layer, inside one snapshot commit.
///
/// Thread-safety: all methods are safe to call concurrently. Row
/// accumulation runs outside the mutex into a scan-local accumulator and
/// merges under the mutex, so N sessions harvesting in parallel contend
/// only on the merge.
class Learner : public LearningObserver {
 public:
  explicit Learner(LearnerOptions options = LearnerOptions::FromEnv());
  ~Learner() override = default;

  Learner(const Learner&) = delete;
  Learner& operator=(const Learner&) = delete;

  // ---- LearningObserver (hybrid-engine hooks) ----
  bool enabled() const override {
    return enabled_.load(std::memory_order_acquire);
  }
  void OnExactScan(const SelectStatement& stmt, const Catalog& data,
                   const ModelCatalog& models) override;
  bool RejectModel(uint64_t model_id, std::string* why) override;
  void OnDecision(const std::string& table, uint64_t hit_model_id,
                  const ModelCatalog& models) override;

  // ---- Lifecycle / maintenance ----

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_release); }

  /// One maintenance pass: promote ready candidates, refine adopted
  /// models (only when the refreshed prediction interval is no wider —
  /// intervals may tighten, never lie), refit drift-flagged models
  /// against the current table contents, and apply the eviction policy.
  /// `data`/`models` are the writable copies inside a snapshot commit
  /// (or the process catalogs in standalone use); ids stay stable across
  /// refinements and refits.
  LearnTickReport Apply(const Catalog& data, ModelCatalog* models);

  /// True when Apply() has something to do (ready candidate or pending
  /// drift refit) — the loop's scheduling predicate.
  bool HasPendingWork() const;

  /// Invoked (outside the learner mutex) whenever new pending work
  /// appears; the learning loop points this at its scheduler.
  void SetWorkSignal(std::function<void()> signal);

  /// Self-check for the differential harness: re-accumulates every
  /// untainted candidate's rows in a single Add()-only pass (no Merge)
  /// and compares sufficient statistics entrywise against the merged
  /// accumulator. Returns "" on agreement, else a description of the
  /// first mismatch — this is what the planted merge mutant trips.
  std::string VerifyCandidatesAgainstBatch(const Catalog& data,
                                           double tolerance) const;

  /// One-line shell status ("learning status").
  std::string StatusString() const;

  size_t num_candidates() const;
  size_t num_drifted() const;
  const LearnerOptions& options() const { return options_; }

 private:
  struct Candidate {
    std::string table;
    std::string x_column;
    std::string y_column;
    std::string model_source;
    IncrementalOls acc;
    /// Rows [0, seen_rows) of the table have been offered to `acc`
    /// (filtered rows excluded); the reservation that makes repeated
    /// scans of unchanged data harvest nothing twice.
    size_t seen_rows = 0;
    uint64_t seen_version = 0;
    /// acc.count() at the last Apply attempt; gates re-solving.
    size_t solved_count = 0;
    /// Catalog id once promoted/adopted; 0 while still a candidate.
    uint64_t model_id = 0;
    /// Set when a governor-aborted harvest lost rows: the accumulator
    /// no longer equals "all usable rows in [0, seen_rows)", so the
    /// batch self-check must skip it.
    bool tainted = false;

    Candidate(std::string t, std::string x, std::string y, std::string src,
              IncrementalOls a)
        : table(std::move(t)),
          x_column(std::move(x)),
          y_column(std::move(y)),
          model_source(std::move(src)),
          acc(std::move(a)) {}
  };

  struct ModelStats {
    uint64_t hits = 0;
    uint64_t opportunities = 0;
    /// data_version at the last drift check (skip re-checking until the
    /// table moves again).
    uint64_t drift_checked_version = 0;
    bool drifted = false;
  };

  void HarvestPairs(const SelectStatement& stmt, const Table& table,
                    const std::string& table_name);
  void CheckDrift(const Table& table, const ModelCatalog& models,
                  const std::string& table_name);
  void SignalIfPending();

  const LearnerOptions options_;
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;
  std::map<std::string, Candidate> candidates_;  // keyed table|x|y|source
  std::map<uint64_t, ModelStats> model_stats_;
  std::function<void()> work_signal_;
};

}  // namespace laws

#endif  // LAWSDB_LEARN_LEARNER_H_

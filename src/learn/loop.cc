#include "learn/loop.h"

#include <memory>
#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace laws {

LearningLoop::LearningLoop(SnapshotCatalog* snapshots, Learner* learner)
    : snapshots_(snapshots), learner_(learner) {}

LearningLoop::~LearningLoop() { Stop(); }

void LearningLoop::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (accepting_) return;
    accepting_ = true;
  }
  learner_->SetWorkSignal([this] { MaybeSchedule(); });
}

void LearningLoop::Stop() {
  learner_->SetWorkSignal(nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  idle_.wait(lock, [this] { return !tick_inflight_; });
}

Result<LearnTickReport> LearningLoop::TickNow() {
  if (!learner_->HasPendingWork()) return LearnTickReport{};
  LearnTickReport report;
  Status commit = snapshots_->Commit([&](DatabaseSnapshot* db) -> Status {
    report = learner_->Apply(db->tables, &db->models);
    if (!report.did_work()) {
      // Publishing an identical snapshot would only churn the epoch;
      // aborting the commit keeps no-op ticks invisible to readers.
      return Status::Aborted("learning tick: no catalog change");
    }
    return Status::OK();
  });
  if (!commit.ok() && commit.code() != StatusCode::kAborted) return commit;
  ticks_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

void LearningLoop::MaybeSchedule() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_ || tick_inflight_) return;
    tick_inflight_ = true;
  }
  // GlobalShared pins the pool across the task, so a concurrent
  // SetGlobalThreadCount cannot tear it down underneath the tick.
  std::shared_ptr<ThreadPool> pool = ThreadPool::GlobalShared();
  pool->Submit([this, pool] { RunBackgroundTick(); });
}

void LearningLoop::RunBackgroundTick() {
  (void)TickNow();  // failures surface via learn.* counters, not crashes
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tick_inflight_ = false;
    // Notify while still holding the mutex: Stop()'s predicate can then
    // only pass after this block unlocks, so the loop (condvar included)
    // cannot be destroyed while this thread is still inside notify_all.
    idle_.notify_all();
  }
  // Work that arrived (or failed and stayed pending) during this tick is
  // not drained here — the next harvesting query re-fires the signal, so
  // under traffic the backlog clears without ever looping hot on a
  // permanently failing refit.
}

}  // namespace laws

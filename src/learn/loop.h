#ifndef LAWSDB_LEARN_LOOP_H_
#define LAWSDB_LEARN_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/result.h"
#include "learn/learner.h"
#include "serve/snapshot.h"

namespace laws {

/// Connects a Learner to the serving layer: maintenance passes run as
/// background tasks on the process ThreadPool and publish their catalog
/// changes through one snapshot commit, so readers pinned to an older
/// epoch never observe a half-refit model — they see the whole tick or
/// none of it.
///
/// Scheduling is signal-driven: the Learner fires its work signal when a
/// harvest or drift check produces pending work, and the loop coalesces
/// signals into at most one in-flight tick. A tick that finds no work
/// publishes nothing (no epoch churn).
class LearningLoop {
 public:
  /// Neither pointer is owned; both must outlive the loop.
  LearningLoop(SnapshotCatalog* snapshots, Learner* learner);
  ~LearningLoop();

  LearningLoop(const LearningLoop&) = delete;
  LearningLoop& operator=(const LearningLoop&) = delete;

  /// Starts accepting background ticks and registers the learner's work
  /// signal. Idempotent.
  void Start();

  /// Stops accepting new ticks, detaches the work signal, and waits for
  /// any in-flight tick to finish. Idempotent; also run by the dtor.
  void Stop();

  /// One synchronous maintenance pass (shell `learning tick`, tests,
  /// benches): commits the learner's pending work as the next epoch.
  /// Returns an empty report when there was nothing to do.
  Result<LearnTickReport> TickNow();

  /// Completed ticks (background + synchronous).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void MaybeSchedule();
  void RunBackgroundTick();

  SnapshotCatalog* const snapshots_;
  Learner* const learner_;

  std::mutex mutex_;
  std::condition_variable idle_;
  bool accepting_ = false;
  bool tick_inflight_ = false;
  std::atomic<uint64_t> ticks_{0};
};

}  // namespace laws

#endif  // LAWSDB_LEARN_LOOP_H_

#ifndef LAWSDB_LEARN_OBSERVER_H_
#define LAWSDB_LEARN_OBSERVER_H_

#include <cstdint>
#include <string>

namespace laws {

struct SelectStatement;
class Catalog;
class ModelCatalog;

/// The hook surface the hybrid engine sees of the database-learning loop.
/// Header-only on purpose: laws_aqp calls through this interface without
/// linking laws_learn (the concrete Learner lives above the aqp layer,
/// next to the serving code that owns its lifecycle), so the layering
/// stays acyclic: aqp -> core, learn -> {aqp headers, core, serve}.
///
/// All methods must be thread-safe — the serving layer invokes them from
/// N concurrent sessions.
class LearningObserver {
 public:
  virtual ~LearningObserver() = default;

  /// Cheap gate the hybrid engine checks before every hook; when false
  /// the learning path costs one virtual call on fallbacks only.
  virtual bool enabled() const = 0;

  /// An exact scan just answered `stmt` over `data`: fold the scanned
  /// rows into candidate sufficient statistics and run drift checks
  /// against `models`. Must never fail the query — errors are swallowed
  /// and surfaced through counters.
  virtual void OnExactScan(const SelectStatement& stmt, const Catalog& data,
                           const ModelCatalog& models) = 0;

  /// True when `model_id` is drift-flagged and must not serve answers
  /// until its background refit lands; fills `*why` with the fallback
  /// reason shown to the user.
  virtual bool RejectModel(uint64_t model_id, std::string* why) = 0;

  /// Arbitration outcome over `table`: `hit_model_id` is the serving
  /// model on a hit, 0 on an exact fallback. Feeds the hit-rate counters
  /// that drive promotion/eviction.
  virtual void OnDecision(const std::string& table, uint64_t hit_model_id,
                          const ModelCatalog& models) = 0;
};

}  // namespace laws

#endif  // LAWSDB_LEARN_OBSERVER_H_

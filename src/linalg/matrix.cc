#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>

namespace laws {

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  Vector out;
  MultiplyVecInto(v, &out);
  return out;
}

void Matrix::MultiplyVecInto(const Vector& v, Vector* out_vec) const {
  assert(v.size() == cols_);
  Vector& out = *out_vec;
  out.resize(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
}

Matrix Matrix::Gram() const {
  Matrix g;
  GramInto(&g);
  return g;
}

void Matrix::GramInto(Matrix* out) const {
  Matrix& g = *out;
  g.ReshapeZero(cols_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t a = 0; a < cols_; ++a) {
      const double via = (*this)(i, a);
      if (via == 0.0) continue;
      for (size_t b = a; b < cols_; ++b) {
        g(a, b) += via * (*this)(i, b);
      }
    }
  }
  for (size_t a = 0; a < cols_; ++a) {
    for (size_t b = 0; b < a; ++b) g(a, b) = g(b, a);
  }
}

Vector Matrix::TransposeMultiplyVec(const Vector& b) const {
  Vector out;
  TransposeMultiplyVecInto(b, &out);
  return out;
}

void Matrix::TransposeMultiplyVecInto(const Vector& b, Vector* out_vec) const {
  assert(b.size() == rows_);
  Vector& out = *out_vec;
  out.assign(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double bi = b[i];
    if (bi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) out[j] += (*this)(i, j) * bi;
  }
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

std::string Matrix::ToString(int digits) const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%.*g", digits, (*this)(i, j));
      out += buf;
      if (j + 1 < cols_) out += ", ";
    }
    out += "]\n";
  }
  return out;
}

double Norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector Subtract(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Add(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Scale(const Vector& v, double alpha) {
  Vector out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = alpha * v[i];
  return out;
}

}  // namespace laws

#ifndef LAWSDB_LINALG_MATRIX_H_
#define LAWSDB_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace laws {

/// Column vector of doubles. A plain std::vector is used so numeric code can
/// interoperate with the rest of the library without conversions.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Sized for statistical model fitting:
/// design matrices are tall and thin (n observations x p parameters, p
/// small), so no blocking or SIMD heroics — clarity and numerical soundness
/// first.
class Matrix {
 public:
  /// Creates a rows x cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates an empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a matrix from row-major initializer data; `data.size()` must be
  /// rows*cols.
  Matrix(size_t rows, size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  static Matrix Identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Reshapes to rows x cols, reusing the existing heap buffer whenever its
  /// capacity allows — the scratch-arena primitive behind the per-lane fit
  /// kernels. Element values are unspecified afterwards; callers must
  /// overwrite every cell (gathers, Jacobian fills) or use ReshapeZero.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Reshape followed by zero-fill, for accumulation targets (Gram/normal
  /// matrices). Still allocation-free once capacity has grown.
  void ReshapeZero(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  double& operator()(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<double>& data() const { return data_; }

  /// Raw row-major storage for bulk fills (column gathers, BLAS-style
  /// kernels); size is rows() * cols().
  double* mutable_data() { return data_.data(); }

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix product this * other; dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product this * v; v.size() must equal cols().
  Vector MultiplyVec(const Vector& v) const;

  /// Allocation-free MultiplyVec: resizes `out` (capacity reuse) and writes
  /// the product into it. `out` must not alias v.
  void MultiplyVecInto(const Vector& v, Vector* out) const;

  /// Computes A^T * A directly (the Gram matrix), exploiting symmetry.
  Matrix Gram() const;

  /// Allocation-free Gram: reshapes `out` to cols x cols and accumulates
  /// into its reused buffer.
  void GramInto(Matrix* out) const;

  /// Computes A^T * b for b of length rows().
  Vector TransposeMultiplyVec(const Vector& b) const;

  /// Allocation-free TransposeMultiplyVec; `out` must not alias b.
  void TransposeMultiplyVecInto(const Vector& b, Vector* out) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Human-readable rendering for diagnostics.
  std::string ToString(int digits = 4) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Euclidean norm of v.
double Norm2(const Vector& v);

/// Dot product; sizes must agree.
double Dot(const Vector& a, const Vector& b);

/// a - b elementwise; sizes must agree.
Vector Subtract(const Vector& a, const Vector& b);

/// a + b elementwise; sizes must agree.
Vector Add(const Vector& a, const Vector& b);

/// alpha * v.
Vector Scale(const Vector& v, double alpha);

}  // namespace laws

#endif  // LAWSDB_LINALG_MATRIX_H_

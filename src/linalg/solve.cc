#include "linalg/solve.h"

#include <cmath>

namespace laws {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  Matrix l;
  LAWS_RETURN_IF_ERROR(CholeskyFactorInto(a, &l));
  return l;
}

Status CholeskyFactorInto(const Matrix& a, Matrix* l_out) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix& l = *l_out;
  l.ReshapeZero(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::NumericError(
          "matrix is not positive definite (Cholesky pivot <= 0)");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / ljj;
    }
  }
  return Status::OK();
}

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  Matrix l;
  Vector x;
  LAWS_RETURN_IF_ERROR(CholeskySolveInto(a, b, &l, &x));
  return x;
}

Status CholeskySolveInto(const Matrix& a, const Vector& b, Matrix* l_buf,
                         Vector* x_out) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("CholeskySolve: dimension mismatch");
  }
  LAWS_RETURN_IF_ERROR(CholeskyFactorInto(a, l_buf));
  const Matrix& l = *l_buf;
  const size_t n = l.rows();
  Vector& x = *x_out;
  x.resize(n);
  // Forward substitution L y = b, with y written into x.
  for (size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (size_t k = 0; k < i; ++k) v -= l(i, k) * x[k];
    x[i] = v / l(i, i);
  }
  // Back substitution L^T x = y, in place: position i still holds y[i] when
  // row i is processed (only entries above i have been overwritten).
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double v = x[i];
    for (size_t k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
  return Status::OK();
}

Result<QrFactors> QrFactorize(const Matrix& a) {
  QrFactors f;
  LAWS_RETURN_IF_ERROR(QrFactorizeInto(a, &f));
  return f;
}

Status QrFactorizeInto(const Matrix& a, QrFactors* f_out) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols");
  }
  QrFactors& f = *f_out;
  f.qr = a;  // copy-assignment reuses the destination's heap buffer
  f.tau.assign(n, 0.0);
  Matrix& qr = f.qr;
  for (size_t k = 0; k < n; ++k) {
    // Norm of the k-th column below (and including) the diagonal.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += qr(i, k) * qr(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0 || !std::isfinite(norm)) {
      return Status::NumericError("rank-deficient matrix in QR");
    }
    // Choose sign to avoid cancellation.
    const double alpha = qr(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha*e1; store normalized so v[0] = 1 implicitly.
    const double vk = qr(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) qr(i, k) /= vk;
    f.tau[k] = -vk / alpha;  // tau = 2 / (v^T v) with v[0]=1 scaling
    qr(k, k) = alpha;
    // Apply the reflection to the remaining columns.
    for (size_t j = k + 1; j < n; ++j) {
      double dot = qr(k, j);
      for (size_t i = k + 1; i < m; ++i) dot += qr(i, k) * qr(i, j);
      dot *= f.tau[k];
      qr(k, j) -= dot;
      for (size_t i = k + 1; i < m; ++i) qr(i, j) -= dot * qr(i, k);
    }
  }
  return Status::OK();
}

void ApplyQTranspose(const QrFactors& f, Vector& b) {
  const size_t m = f.qr.rows();
  const size_t n = f.qr.cols();
  for (size_t k = 0; k < n; ++k) {
    double dot = b[k];
    for (size_t i = k + 1; i < m; ++i) dot += f.qr(i, k) * b[i];
    dot *= f.tau[k];
    b[k] -= dot;
    for (size_t i = k + 1; i < m; ++i) b[i] -= dot * f.qr(i, k);
  }
}

Result<Vector> LeastSquaresQr(const Matrix& a, const Vector& b) {
  QrFactors f;
  Vector qtb;
  Vector x;
  LAWS_RETURN_IF_ERROR(LeastSquaresQrInto(a, b, &f, &qtb, &x));
  return x;
}

Status LeastSquaresQrInto(const Matrix& a, const Vector& b, QrFactors* f_buf,
                          Vector* qtb_buf, Vector* x_out) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("LeastSquaresQr: dimension mismatch");
  }
  LAWS_RETURN_IF_ERROR(QrFactorizeInto(a, f_buf));
  const QrFactors& f = *f_buf;
  Vector& qtb = *qtb_buf;
  qtb = b;
  ApplyQTranspose(f, qtb);
  const size_t n = a.cols();
  // Relative singularity threshold: a diagonal entry vanishing relative to
  // the largest one signals (numerical) rank deficiency.
  double max_diag = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::fabs(f.qr(i, i)));
  }
  const double tol = 1e-12 * max_diag;
  Vector& x = *x_out;
  x.assign(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double v = qtb[i];
    for (size_t j = i + 1; j < n; ++j) v -= f.qr(i, j) * x[j];
    const double rii = f.qr(i, i);
    if (std::fabs(rii) <= tol || !std::isfinite(rii)) {
      return Status::NumericError("singular R in QR back substitution");
    }
    x[i] = v / rii;
  }
  return Status::OK();
}

Result<Vector> LeastSquaresNormal(const Matrix& a, const Vector& b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("LeastSquaresNormal: dimension mismatch");
  }
  return CholeskySolve(a.Gram(), a.TransposeMultiplyVec(b));
}

Result<Vector> SolveLinearSystem(Matrix a, Vector b) {
  if (a.rows() != a.cols() || b.size() != a.rows()) {
    return Status::InvalidArgument("SolveLinearSystem: dimension mismatch");
  }
  const size_t n = a.rows();
  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    size_t piv = k;
    double best = std::fabs(a(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      if (std::fabs(a(i, k)) > best) {
        best = std::fabs(a(i, k));
        piv = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return Status::NumericError("singular matrix in Gaussian elimination");
    }
    if (piv != k) {
      for (size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(b[k], b[piv]);
    }
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) / a(k, k);
      if (factor == 0.0) continue;
      for (size_t j = k; j < n; ++j) a(i, j) -= factor * a(k, j);
      b[i] -= factor * b[k];
    }
  }
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double v = b[i];
    for (size_t j = i + 1; j < n; ++j) v -= a(i, j) * x[j];
    x[i] = v / a(i, i);
  }
  return x;
}

Result<Matrix> Invert(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Invert requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix work = a;
  Matrix inv = Matrix::Identity(n);
  for (size_t k = 0; k < n; ++k) {
    size_t piv = k;
    double best = std::fabs(work(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      if (std::fabs(work(i, k)) > best) {
        best = std::fabs(work(i, k));
        piv = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return Status::NumericError("singular matrix in inversion");
    }
    if (piv != k) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(work(k, j), work(piv, j));
        std::swap(inv(k, j), inv(piv, j));
      }
    }
    const double pivot = work(k, k);
    for (size_t j = 0; j < n; ++j) {
      work(k, j) /= pivot;
      inv(k, j) /= pivot;
    }
    for (size_t i = 0; i < n; ++i) {
      if (i == k) continue;
      const double factor = work(i, k);
      if (factor == 0.0) continue;
      for (size_t j = 0; j < n; ++j) {
        work(i, j) -= factor * work(k, j);
        inv(i, j) -= factor * inv(k, j);
      }
    }
  }
  return inv;
}

Result<double> ConditionEstimate(const Matrix& a) {
  LAWS_ASSIGN_OR_RETURN(QrFactors f, QrFactorize(a));
  double lo = std::fabs(f.qr(0, 0));
  double hi = lo;
  for (size_t i = 1; i < a.cols(); ++i) {
    const double r = std::fabs(f.qr(i, i));
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (lo == 0.0) return Status::NumericError("zero diagonal in R");
  return hi / lo;
}

}  // namespace laws

#ifndef LAWSDB_LINALG_SOLVE_H_
#define LAWSDB_LINALG_SOLVE_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace laws {

/// Cholesky factorization A = L * L^T for a symmetric positive-definite A.
/// Returns the lower-triangular factor L, or NumericError if A is not
/// (numerically) positive definite.
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Allocation-free variant: factors into `*l`, which is reshaped in place
/// (its heap buffer is reused across calls — the fit-scratch path).
Status CholeskyFactorInto(const Matrix& a, Matrix* l);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
Result<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Allocation-free variant of CholeskySolve: `*l` holds the factorization,
/// `*x` doubles as the forward-substitution workspace and receives the
/// solution. Both buffers are resized in place and reused across calls, so
/// a caller looping over many small systems (per-group, per-iteration
/// normal equations) performs no per-solve heap traffic after warmup.
Status CholeskySolveInto(const Matrix& a, const Vector& b, Matrix* l,
                         Vector* x);

/// Householder QR of an m x n matrix with m >= n. `r` is upper triangular
/// (n x n); `q_applied_b` support comes from ApplyQTranspose.
struct QrFactors {
  /// Compact Householder storage: the strict lower part of each column k
  /// holds the Householder vector (with implicit leading 1), the upper
  /// triangle holds R.
  Matrix qr;
  /// Householder scalar for each reflection.
  Vector tau;
};

/// Computes the Householder QR factorization. Returns NumericError for
/// rank-deficient inputs (a zero pivot column).
Result<QrFactors> QrFactorize(const Matrix& a);

/// Allocation-free variant: factors into `*f`, whose buffers are reused
/// across calls once their capacity has grown.
Status QrFactorizeInto(const Matrix& a, QrFactors* f);

/// Applies Q^T (from the factorization) to b in place.
void ApplyQTranspose(const QrFactors& f, Vector& b);

/// Solves the least-squares problem min ||A x - b||_2 via Householder QR.
/// Numerically preferable to normal equations for ill-conditioned designs.
Result<Vector> LeastSquaresQr(const Matrix& a, const Vector& b);

/// Allocation-free variant: `*f` and `*qtb` are scratch buffers reused
/// across calls; the solution lands in `*x`.
Status LeastSquaresQrInto(const Matrix& a, const Vector& b, QrFactors* f,
                          Vector* qtb, Vector* x);

/// Solves the least-squares problem by forming the normal equations
/// A^T A x = A^T b and Cholesky-solving. Faster but squares the condition
/// number; kept as an ablation baseline (see DESIGN.md §4.1).
Result<Vector> LeastSquaresNormal(const Matrix& a, const Vector& b);

/// General square solve A x = b via Gaussian elimination with partial
/// pivoting. Returns NumericError for (numerically) singular A.
Result<Vector> SolveLinearSystem(Matrix a, Vector b);

/// Inverse of a square matrix via Gauss-Jordan with partial pivoting. Used
/// for parameter covariance (X^T X)^{-1} in standard-error computation.
Result<Matrix> Invert(const Matrix& a);

/// Ratio of largest to smallest |R_ii| from a QR factorization — a cheap
/// condition-number proxy used in fit diagnostics.
Result<double> ConditionEstimate(const Matrix& a);

}  // namespace laws

#endif  // LAWSDB_LINALG_SOLVE_H_

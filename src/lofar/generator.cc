#include "lofar/generator.h"

#include <cmath>

#include "common/random.h"

namespace laws {

Result<LofarDataset> GenerateLofar(const LofarConfig& config) {
  if (config.num_sources == 0 || config.bands.empty()) {
    return Status::InvalidArgument("need sources and bands");
  }
  constexpr size_t kMinObsPerSource = 8;
  if (config.num_rows < config.num_sources * kMinObsPerSource) {
    return Status::InvalidArgument(
        "num_rows too small for per-source fits (need >= 8 per source)");
  }

  Rng rng(config.seed);
  LofarDataset dataset;
  dataset.config = config;

  // Ground-truth spectra.
  dataset.truth.reserve(config.num_sources);
  for (size_t s = 0; s < config.num_sources; ++s) {
    LofarSourceTruth t;
    t.source = static_cast<int64_t>(s + 1);
    t.p = std::exp(rng.Normal(config.log_p_mu, config.log_p_sd));
    t.alpha = rng.Normal(config.alpha_mean, config.alpha_sd);
    t.anomalous = rng.Bernoulli(config.anomalous_fraction);
    dataset.truth.push_back(t);
  }

  Schema schema({Field{"source", DataType::kInt64, false},
                 Field{"wavelength", DataType::kDouble, false},
                 Field{"intensity", DataType::kDouble, false}});
  Table table(schema);
  Column* source_col = table.mutable_column(0);
  Column* wavelength_col = table.mutable_column(1);
  Column* intensity_col = table.mutable_column(2);

  auto emit_row = [&](const LofarSourceTruth& t) {
    const double band =
        config.bands[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(config.bands.size()) - 1))];
    const double nu =
        band * (1.0 + config.band_jitter * (rng.NextDouble() - 0.5));
    double intensity;
    if (t.anomalous) {
      // Frequency-independent emission with heavy scatter: the flat /
      // turn-over spectra the paper wants to surface via goodness of fit.
      intensity = t.p * std::pow(0.15, t.alpha) *
                  std::exp(rng.Normal(0.0, 0.9));
    } else {
      intensity = t.p * std::pow(nu, t.alpha) *
                  std::exp(rng.Normal(0.0, config.noise_sd));
    }
    source_col->AppendInt64(t.source);
    wavelength_col->AppendDouble(nu);
    intensity_col->AppendDouble(intensity);
  };

  // Guarantee a well-posed fit for every source, then fill the remainder
  // uniformly.
  for (const LofarSourceTruth& t : dataset.truth) {
    for (size_t k = 0; k < kMinObsPerSource; ++k) emit_row(t);
  }
  const size_t remaining =
      config.num_rows - config.num_sources * kMinObsPerSource;
  for (size_t i = 0; i < remaining; ++i) {
    const auto s = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(config.num_sources) - 1));
    emit_row(dataset.truth[s]);
  }
  LAWS_RETURN_IF_ERROR(table.SyncRowCount());
  dataset.observations = std::move(table);
  return dataset;
}

}  // namespace laws

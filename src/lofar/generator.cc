#include "lofar/generator.h"

#include <cmath>

#include "common/random.h"
#include "common/thread_pool.h"

namespace laws {

namespace {

/// SplitMix64-style seed derivation for the per-source generator streams.
/// Each source owns an independent Rng, so sources can be generated on any
/// lane in any order and the dataset is still a pure function of the seed
/// — identical at every thread count.
uint64_t SourceSeed(uint64_t seed, uint64_t source) {
  uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (source + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Result<LofarDataset> GenerateLofar(const LofarConfig& config) {
  if (config.num_sources == 0 || config.bands.empty()) {
    return Status::InvalidArgument("need sources and bands");
  }
  constexpr size_t kMinObsPerSource = 8;
  if (config.num_rows < config.num_sources * kMinObsPerSource) {
    return Status::InvalidArgument(
        "num_rows too small for per-source fits (need >= 8 per source)");
  }

  Rng rng(config.seed);
  LofarDataset dataset;
  dataset.config = config;

  // Ground-truth spectra, drawn serially from the master stream.
  dataset.truth.reserve(config.num_sources);
  for (size_t s = 0; s < config.num_sources; ++s) {
    LofarSourceTruth t;
    t.source = static_cast<int64_t>(s + 1);
    t.p = std::exp(rng.Normal(config.log_p_mu, config.log_p_sd));
    t.alpha = rng.Normal(config.alpha_mean, config.alpha_sd);
    t.anomalous = rng.Bernoulli(config.anomalous_fraction);
    dataset.truth.push_back(t);
  }

  // Row layout (fixed before any observation is drawn): every source gets
  // kMinObsPerSource guaranteed rows first so per-source fits are
  // well-posed, then the remainder is assigned uniformly at random from
  // the master stream.
  const size_t num_sources = config.num_sources;
  const size_t guaranteed = num_sources * kMinObsPerSource;
  const size_t remaining = config.num_rows - guaranteed;
  std::vector<uint32_t> assign(remaining);
  for (size_t i = 0; i < remaining; ++i) {
    assign[i] = static_cast<uint32_t>(rng.UniformInt(
        0, static_cast<int64_t>(num_sources) - 1));
  }

  // Counting sort of the remainder assignments: remainder_rows lists, for
  // each source contiguously, the global row positions of its extra rows
  // in emission order.
  std::vector<uint32_t> counts(num_sources, 0);
  for (uint32_t s : assign) ++counts[s];
  std::vector<uint32_t> offsets(num_sources + 1, 0);
  for (size_t s = 0; s < num_sources; ++s) {
    offsets[s + 1] = offsets[s] + counts[s];
  }
  std::vector<uint32_t> remainder_rows(remaining);
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < remaining; ++i) {
      remainder_rows[cursor[assign[i]]++] =
          static_cast<uint32_t>(guaranteed + i);
    }
  }

  // Observations, one independent stream per source, written straight
  // into preallocated columnar storage (disjoint slots per source).
  std::vector<int64_t> source_data(config.num_rows);
  std::vector<double> wavelength_data(config.num_rows);
  std::vector<double> intensity_data(config.num_rows);
  const std::vector<LofarSourceTruth>& truth = dataset.truth;
  ParallelForChunks(0, num_sources, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      Rng source_rng(SourceSeed(config.seed, s));
      const LofarSourceTruth& t = truth[s];
      auto emit_row = [&](size_t row) {
        const double band =
            config.bands[static_cast<size_t>(source_rng.UniformInt(
                0, static_cast<int64_t>(config.bands.size()) - 1))];
        const double nu =
            band *
            (1.0 + config.band_jitter * (source_rng.NextDouble() - 0.5));
        double intensity;
        if (t.anomalous) {
          // Frequency-independent emission with heavy scatter: the flat /
          // turn-over spectra the paper wants to surface via goodness of
          // fit.
          intensity = t.p * std::pow(0.15, t.alpha) *
                      std::exp(source_rng.Normal(0.0, 0.9));
        } else {
          intensity = t.p * std::pow(nu, t.alpha) *
                      std::exp(source_rng.Normal(0.0, config.noise_sd));
        }
        source_data[row] = t.source;
        wavelength_data[row] = nu;
        intensity_data[row] = intensity;
      };
      for (size_t k = 0; k < kMinObsPerSource; ++k) {
        emit_row(s * kMinObsPerSource + k);
      }
      for (uint32_t r = offsets[s]; r < offsets[s + 1]; ++r) {
        emit_row(remainder_rows[r]);
      }
    }
  });

  Schema schema({Field{"source", DataType::kInt64, false},
                 Field{"wavelength", DataType::kDouble, false},
                 Field{"intensity", DataType::kDouble, false}});
  std::vector<Column> columns;
  columns.push_back(Column::FromInt64Vector(std::move(source_data)));
  columns.push_back(Column::FromDoubleVector(std::move(wavelength_data)));
  columns.push_back(Column::FromDoubleVector(std::move(intensity_data)));
  LAWS_ASSIGN_OR_RETURN(
      dataset.observations,
      Table::FromColumns(std::move(schema), std::move(columns)));
  return dataset;
}

}  // namespace laws

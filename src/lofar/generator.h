#ifndef LAWSDB_LOFAR_GENERATOR_H_
#define LAWSDB_LOFAR_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace laws {

/// Configuration for the synthetic LOFAR Transients sample. Defaults match
/// the paper's dataset exactly: 1,452,824 measurements from 35,692 sources,
/// observed in four frequency bands (paper §2 / §4.2: nu in {0.12, 0.15,
/// 0.16, 0.18} GHz). The real data is proprietary; this generator plants
/// the same physics (per-source power-law spectra I = p * nu^alpha with
/// multiplicative interference) so the fitting pipeline exercises the same
/// code paths — see DESIGN.md §1.
struct LofarConfig {
  size_t num_sources = 35'692;
  size_t num_rows = 1'452'824;
  /// Observed bands in GHz.
  std::vector<double> bands = {0.12, 0.15, 0.16, 0.18};
  /// Per-observation frequency jitter within a band (the paper's Figure 1
  /// shows spread around each band), as a fraction of the band frequency.
  double band_jitter = 0.12;
  /// Spectral index distribution: alpha ~ Normal(mean, sd). Thermal
  /// sources cluster near -0.7 (the paper's example source fits -0.69).
  double alpha_mean = -0.75;
  double alpha_sd = 0.12;
  /// log(p) ~ Normal(mu, sd): source brightness spans decades.
  double log_p_mu = -2.3;
  double log_p_sd = 0.55;
  /// Multiplicative interference: I_obs = I_true * LogNormal(0, noise_sd).
  /// The default is calibrated so a correct per-source power-law fit lands
  /// near the paper's sketched goodness of fit (Figure 2: R² = 0.92).
  double noise_sd = 0.03;
  /// Fraction of sources whose intensity is unrelated to frequency
  /// (turn-overs / flat spectra) — the paper's anomalies of interest.
  double anomalous_fraction = 0.01;
  uint64_t seed = 20150104;  // CIDR'15 opening day
};

/// Ground truth for one synthetic source (for anomaly precision/recall and
/// parameter-recovery checks).
struct LofarSourceTruth {
  int64_t source = 0;
  double p = 0.0;
  double alpha = 0.0;
  bool anomalous = false;
};

/// The generated dataset: the observations table (schema: source INT64,
/// wavelength DOUBLE, intensity DOUBLE — the paper's Table 1 layout) plus
/// ground truth.
struct LofarDataset {
  Table observations{Schema{}};
  std::vector<LofarSourceTruth> truth;
  LofarConfig config;
};

/// Generates the dataset. Rows are assigned to sources uniformly at
/// random; every source receives at least `min_obs_per_source` rows first
/// so per-source fits are well-posed.
Result<LofarDataset> GenerateLofar(const LofarConfig& config = {});

}  // namespace laws

#endif  // LAWSDB_LOFAR_GENERATOR_H_

#include "lofar/pipeline.h"

#include "common/thread_pool.h"
#include "common/timer.h"

namespace laws {

Result<LofarPipelineResult> RunLofarPipeline(const LofarConfig& config,
                                             Catalog* catalog,
                                             Session* session,
                                             const std::string& table_name) {
  LofarPipelineResult result;
  result.threads = ThreadPool::Global().num_threads();

  Timer phase;
  LAWS_ASSIGN_OR_RETURN(result.dataset, GenerateLofar(config));
  result.generate_seconds = phase.ElapsedSeconds();

  auto table = std::make_shared<Table>(std::move(result.dataset.observations));
  result.raw_bytes = table->MemoryBytes();
  catalog->RegisterOrReplace(table_name, table);
  // Keep a handle in the result for downstream use.
  result.dataset.observations = *table;

  FitRequest request;
  request.table = table_name;
  request.model_source = "power_law";
  request.input_columns = {"wavelength"};
  request.output_column = "intensity";
  request.group_column = "source";
  // The LOFAR power law linearizes exactly, so under kAuto each source is
  // solved by the closed-form log-log sum kernel (fused gather-transform,
  // no matrices, no iteration); only groups with out-of-domain data fall
  // back to warm-started Levenberg-Marquardt. The grouped fit fans the
  // per-source regressions out over the global ThreadPool.
  request.options.algorithm = FitAlgorithm::kAuto;
  phase.Restart();
  LAWS_ASSIGN_OR_RETURN(result.report, session->Fit(request));
  result.fit_seconds = phase.ElapsedSeconds();
  result.model_id = result.report.model_id;

  LAWS_ASSIGN_OR_RETURN(const CapturedModel* captured,
                        session->model_catalog().Get(result.model_id));
  result.parameter_bytes = captured->StorageBytes();
  result.parameter_ratio =
      result.raw_bytes > 0
          ? static_cast<double>(result.parameter_bytes) /
                static_cast<double>(result.raw_bytes)
          : 0.0;
  return result;
}

}  // namespace laws

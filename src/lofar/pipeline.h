#ifndef LAWSDB_LOFAR_PIPELINE_H_
#define LAWSDB_LOFAR_PIPELINE_H_

#include <string>

#include "core/session.h"
#include "lofar/generator.h"
#include "storage/catalog.h"

namespace laws {

/// End-to-end artifacts of the paper's §2 case study: generated
/// observations registered in the catalog, a grouped power-law model
/// captured through the session, and the byte accounting behind Table 1
/// ("ca. 11MB of observations with 640KB of model parameters, ca. 5%").
struct LofarPipelineResult {
  LofarDataset dataset;
  uint64_t model_id = 0;
  FitReport report;
  /// Raw columnar bytes of the observations table.
  size_t raw_bytes = 0;
  /// Bytes of the captured parameter artifact (parameter table + metadata).
  size_t parameter_bytes = 0;
  double parameter_ratio = 0.0;  // parameter_bytes / raw_bytes

  /// Phase timings for the scaling benches (generation and grouped fit
  /// both run on the ThreadPool lanes reported in `threads`).
  double generate_seconds = 0.0;
  double fit_seconds = 0.0;
  size_t threads = 1;
};

/// Generates the dataset (with `config`), registers it as `table_name` in
/// `catalog`, and captures the per-source power-law fit through `session`.
/// The session must wrap the same catalog.
Result<LofarPipelineResult> RunLofarPipeline(const LofarConfig& config,
                                             Catalog* catalog,
                                             Session* session,
                                             const std::string& table_name);

}  // namespace laws

#endif  // LAWSDB_LOFAR_PIPELINE_H_

#include "model/fit.h"

#include <cmath>

#include "linalg/solve.h"
#include "model/fit_kernels.h"

namespace laws {
namespace {

double ResidualSumOfSquares(const Vector& y, const Vector& pred) {
  double rss = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - pred[i];
    rss += r * r;
  }
  return rss;
}

/// Jacobian of the model function wrt parameters, evaluated at every row.
/// `grad` and `xrow` are scratch staging vectors.
void ComputeJacobianInto(const Model& model, const Matrix& inputs,
                         const Vector& params, Matrix* j_out, Vector* grad,
                         Vector* xrow) {
  const size_t n = inputs.rows();
  const size_t p = model.num_parameters();
  Matrix& j = *j_out;
  j.Reshape(n, p);
  Vector& x = *xrow;
  x.resize(inputs.cols());
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < inputs.cols(); ++c) x[c] = inputs(i, c);
    model.ParameterGradient(x, params, grad);
    for (size_t k = 0; k < p; ++k) j(i, k) = (*grad)[k];
  }
}

bool AllFinite(const Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// sigma^2 * (J^T J)^{-1} diagonal square roots.
Vector StandardErrors(const Matrix& jacobian, double rss, size_t n,
                      size_t p) {
  if (n <= p) return {};
  auto inv = Invert(jacobian.Gram());
  if (!inv.ok()) return {};
  const double sigma2 = rss / static_cast<double>(n - p);
  Vector se(p, 0.0);
  for (size_t k = 0; k < p; ++k) {
    const double v = sigma2 * (*inv)(k, k);
    se[k] = v > 0.0 ? std::sqrt(v) : 0.0;
  }
  return se;
}

Result<FitOutput> FitLinear(const Model& model, const Matrix& inputs,
                            const Vector& outputs, const FitOptions& options,
                            bool use_qr, FitScratch* scratch) {
  Matrix& design = scratch->design;
  LAWS_RETURN_IF_ERROR(BuildDesignMatrixInto(model, inputs, &design,
                                             &scratch->phi, &scratch->xrow));
  FitOutput out;
  if (use_qr) {
    LAWS_RETURN_IF_ERROR(LeastSquaresQrInto(design, outputs, &scratch->qr,
                                            &scratch->qtb, &out.parameters));
  } else {
    design.GramInto(&scratch->jtj);
    design.TransposeMultiplyVecInto(outputs, &scratch->jtr);
    LAWS_RETURN_IF_ERROR(CholeskySolveInto(scratch->jtj, scratch->jtr,
                                           &scratch->chol, &out.parameters));
  }
  out.converged = true;
  out.iterations = 1;
  out.algorithm_used =
      use_qr ? FitAlgorithm::kOls : FitAlgorithm::kOlsNormalEquations;
  design.MultiplyVecInto(out.parameters, &scratch->pred);
  LAWS_ASSIGN_OR_RETURN(
      out.quality,
      ComputeFitQuality(outputs, scratch->pred, model.num_parameters()));
  if (options.compute_standard_errors) {
    out.standard_errors =
        StandardErrors(design, out.quality.residual_sum_of_squares,
                       outputs.size(), model.num_parameters());
  }
  return out;
}

Result<FitOutput> FitIterative(const Model& model, const Matrix& inputs,
                               const Vector& outputs,
                               const FitOptions& options, bool damped,
                               FitScratch* scratch) {
  const size_t n = outputs.size();
  const size_t p = model.num_parameters();

  Vector beta = options.initial_parameters;
  if (beta.empty()) {
    // Prefer a closed-form transformed-space estimate as warm start: the
    // sum-accumulator kernel where the model linearizes exactly, the
    // model's own heuristic estimate otherwise.
    if (ClosedFormWarmStart(model, inputs, outputs, scratch,
                            &scratch->warm)) {
      beta = scratch->warm;
    } else if (model.LogLinearEstimate(inputs, outputs, &scratch->warm)) {
      beta = scratch->warm;
    } else {
      beta = model.InitialParameters();
    }
  }
  if (beta.size() != p) {
    return Status::InvalidArgument("initial parameter count mismatch");
  }

  Vector& pred = scratch->pred;
  PredictAllInto(model, inputs, beta, &pred, &scratch->xrow);
  double rss = ResidualSumOfSquares(outputs, pred);
  if (!std::isfinite(rss)) {
    return Status::NumericError("non-finite residuals at starting point");
  }

  double lambda = options.initial_lambda;
  FitOutput out;
  out.algorithm_used = damped ? FitAlgorithm::kLevenbergMarquardt
                              : FitAlgorithm::kGaussNewton;
  bool converged = false;
  size_t iter = 0;
  for (; iter < options.max_iterations && !converged; ++iter) {
    Matrix& jacobian = scratch->jacobian;
    ComputeJacobianInto(model, inputs, beta, &jacobian, &scratch->grad,
                        &scratch->xrow);
    // Residuals r = y - f; normal direction solves (J^T J) step = J^T r.
    Vector& residuals = scratch->residuals;
    residuals.resize(n);
    for (size_t i = 0; i < n; ++i) residuals[i] = outputs[i] - pred[i];
    jacobian.TransposeMultiplyVecInto(residuals, &scratch->jtr);
    Matrix& jtj = scratch->jtj;
    jacobian.GramInto(&jtj);

    bool accepted = false;
    // LM retries with increasing damping inside one outer iteration; plain
    // Gauss-Newton takes the raw step once.
    for (int attempt = 0; attempt < (damped ? 25 : 1); ++attempt) {
      Matrix& system = scratch->system;
      system = jtj;  // copy-assignment reuses the destination buffer
      if (damped) {
        for (size_t k = 0; k < p; ++k) {
          // Marquardt scaling: damp proportionally to the curvature, with a
          // floor so zero-curvature directions stay solvable.
          const double d = std::max(jtj(k, k), 1e-12);
          system(k, k) = jtj(k, k) + lambda * d;
        }
      }
      Vector& step = scratch->step;
      const Status solved =
          CholeskySolveInto(system, scratch->jtr, &scratch->chol, &step);
      if (!solved.ok()) {
        if (!damped) return solved;
        lambda *= 10.0;
        continue;
      }
      Vector& candidate = scratch->candidate;
      candidate.resize(p);
      for (size_t k = 0; k < p; ++k) candidate[k] = beta[k] + step[k];
      if (!AllFinite(candidate)) {
        if (!damped) {
          return Status::NumericError("Gauss-Newton produced non-finite step");
        }
        lambda *= 10.0;
        continue;
      }
      Vector& cand_pred = scratch->cand_pred;
      PredictAllInto(model, inputs, candidate, &cand_pred, &scratch->xrow);
      const double cand_rss = ResidualSumOfSquares(outputs, cand_pred);
      if (damped && (!std::isfinite(cand_rss) || cand_rss > rss)) {
        lambda *= 10.0;
        continue;
      }
      if (!damped && !std::isfinite(cand_rss)) {
        return Status::NumericError("Gauss-Newton diverged (non-finite RSS)");
      }
      // Accept.
      const double step_norm = Norm2(step);
      const double beta_norm = Norm2(beta);
      const double rss_drop = rss - cand_rss;
      beta = candidate;
      pred.swap(cand_pred);
      const double prev_rss = rss;
      rss = cand_rss;
      if (damped) lambda = std::max(lambda / 10.0, 1e-12);
      accepted = true;
      if (step_norm <= options.parameter_tolerance * (1.0 + beta_norm) ||
          (prev_rss > 0.0 &&
           std::fabs(rss_drop) <= options.residual_tolerance * prev_rss)) {
        converged = true;
      }
      break;
    }
    if (!accepted) {
      // LM could not find a descent direction: treat the current point as
      // the (local) optimum.
      converged = true;
    }
  }

  out.parameters = beta;
  out.iterations = iter;
  out.converged = converged;
  LAWS_ASSIGN_OR_RETURN(out.quality, ComputeFitQuality(outputs, pred, p));
  if (options.compute_standard_errors) {
    ComputeJacobianInto(model, inputs, beta, &scratch->jacobian,
                        &scratch->grad, &scratch->xrow);
    out.standard_errors = StandardErrors(
        scratch->jacobian, out.quality.residual_sum_of_squares, n, p);
  }
  return out;
}

Result<FitOutput> FitLogLinearOnly(const Model& model, const Matrix& inputs,
                                   const Vector& outputs,
                                   const FitOptions& options,
                                   FitScratch* scratch) {
  // Models with an exact linearization go through the sum-accumulator
  // kernel; a kernel failure here is a domain/degeneracy error, reported
  // as before.
  Result<FitOutput> kernel_fit = FitOutput{};
  if (TryClosedFormFit(model, inputs, outputs, options, scratch,
                       &kernel_fit)) {
    return kernel_fit;
  }
  ModelLinearization lin;
  if (model.Linearization(&lin) && model.num_inputs() == 1) {
    return Status::InvalidArgument(
        "model '" + model.name() +
        "' has no log-linear transformation (or data violates its domain)");
  }
  // Other models fall back to their heuristic transformed-space estimate.
  Vector params;
  if (!model.LogLinearEstimate(inputs, outputs, &params)) {
    return Status::InvalidArgument(
        "model '" + model.name() +
        "' has no log-linear transformation (or data violates its domain)");
  }
  FitOutput out;
  out.parameters = std::move(params);
  out.converged = true;
  out.iterations = 1;
  out.algorithm_used = FitAlgorithm::kLogLinear;
  PredictAllInto(model, inputs, out.parameters, &scratch->pred,
                 &scratch->xrow);
  LAWS_ASSIGN_OR_RETURN(
      out.quality,
      ComputeFitQuality(outputs, scratch->pred, model.num_parameters()));
  if (options.compute_standard_errors) {
    ComputeJacobianInto(model, inputs, out.parameters, &scratch->jacobian,
                        &scratch->grad, &scratch->xrow);
    out.standard_errors =
        StandardErrors(scratch->jacobian,
                       out.quality.residual_sum_of_squares, outputs.size(),
                       model.num_parameters());
  }
  return out;
}

}  // namespace

std::string_view FitAlgorithmToString(FitAlgorithm a) {
  switch (a) {
    case FitAlgorithm::kAuto:
      return "auto";
    case FitAlgorithm::kOls:
      return "ols_qr";
    case FitAlgorithm::kOlsNormalEquations:
      return "ols_normal";
    case FitAlgorithm::kGaussNewton:
      return "gauss_newton";
    case FitAlgorithm::kLevenbergMarquardt:
      return "levenberg_marquardt";
    case FitAlgorithm::kLogLinear:
      return "log_linear";
  }
  return "?";
}

Vector PredictAll(const Model& model, const Matrix& inputs,
                  const Vector& params) {
  Vector pred;
  Vector x;
  PredictAllInto(model, inputs, params, &pred, &x);
  return pred;
}

void PredictAllInto(const Model& model, const Matrix& inputs,
                    const Vector& params, Vector* pred_out, Vector* xrow) {
  const size_t n = inputs.rows();
  Vector& pred = *pred_out;
  pred.resize(n);
  Vector& x = *xrow;
  x.resize(inputs.cols());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < inputs.cols(); ++j) x[j] = inputs(i, j);
    pred[i] = model.Evaluate(x, params);
  }
}

Result<Matrix> BuildDesignMatrix(const Model& model, const Matrix& inputs) {
  Matrix design;
  Vector phi;
  Vector x;
  LAWS_RETURN_IF_ERROR(
      BuildDesignMatrixInto(model, inputs, &design, &phi, &x));
  return design;
}

Status BuildDesignMatrixInto(const Model& model, const Matrix& inputs,
                             Matrix* design_out, Vector* phi_buf,
                             Vector* xrow) {
  if (!model.IsLinearInParameters()) {
    return Status::InvalidArgument("model '" + model.name() +
                                   "' is not linear in its parameters");
  }
  const size_t n = inputs.rows();
  const size_t p = model.num_parameters();
  Matrix& design = *design_out;
  design.Reshape(n, p);
  Vector& phi = *phi_buf;
  Vector& x = *xrow;
  x.resize(inputs.cols());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < inputs.cols(); ++j) x[j] = inputs(i, j);
    LAWS_RETURN_IF_ERROR(model.BasisFunctions(x, &phi));
    for (size_t k = 0; k < p; ++k) design(i, k) = phi[k];
  }
  return Status::OK();
}

Result<FitOutput> FitModel(const Model& model, const Matrix& inputs,
                           const Vector& outputs, const FitOptions& options) {
  FitScratch scratch;
  return FitModel(model, inputs, outputs, options, &scratch);
}

Result<FitOutput> FitModel(const Model& model, const Matrix& inputs,
                           const Vector& outputs, const FitOptions& options,
                           FitScratch* scratch) {
  if (inputs.rows() != outputs.size()) {
    return Status::InvalidArgument("inputs/outputs row count mismatch");
  }
  if (inputs.cols() != model.num_inputs()) {
    return Status::InvalidArgument("input arity does not match model");
  }
  if (outputs.size() <= model.num_parameters()) {
    return Status::InvalidArgument(
        "need more observations than parameters (n > p)");
  }

  switch (options.algorithm) {
    case FitAlgorithm::kAuto: {
      if (options.closed_form_fast_path) {
        Result<FitOutput> fast = FitOutput{};
        if (TryClosedFormFit(model, inputs, outputs, options, scratch,
                             &fast)) {
          return fast;
        }
      }
      if (model.IsLinearInParameters()) {
        return FitLinear(model, inputs, outputs, options, /*use_qr=*/true,
                         scratch);
      }
      return FitIterative(model, inputs, outputs, options, /*damped=*/true,
                          scratch);
    }
    case FitAlgorithm::kOls:
      return FitLinear(model, inputs, outputs, options, /*use_qr=*/true,
                       scratch);
    case FitAlgorithm::kOlsNormalEquations:
      return FitLinear(model, inputs, outputs, options, /*use_qr=*/false,
                       scratch);
    case FitAlgorithm::kGaussNewton:
      return FitIterative(model, inputs, outputs, options, /*damped=*/false,
                          scratch);
    case FitAlgorithm::kLevenbergMarquardt:
      return FitIterative(model, inputs, outputs, options, /*damped=*/true,
                          scratch);
    case FitAlgorithm::kLogLinear:
      return FitLogLinearOnly(model, inputs, outputs, options, scratch);
  }
  return Status::Internal("unknown fit algorithm");
}

}  // namespace laws

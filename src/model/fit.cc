#include "model/fit.h"

#include <cmath>

#include "linalg/solve.h"

namespace laws {
namespace {

Vector RowOf(const Matrix& inputs, size_t i) {
  Vector x(inputs.cols());
  for (size_t j = 0; j < inputs.cols(); ++j) x[j] = inputs(i, j);
  return x;
}

double ResidualSumOfSquares(const Vector& y, const Vector& pred) {
  double rss = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - pred[i];
    rss += r * r;
  }
  return rss;
}

/// Jacobian of the model function wrt parameters, evaluated at every row.
Matrix ComputeJacobian(const Model& model, const Matrix& inputs,
                       const Vector& params) {
  const size_t n = inputs.rows();
  const size_t p = model.num_parameters();
  Matrix j(n, p);
  Vector grad;
  for (size_t i = 0; i < n; ++i) {
    const Vector x = RowOf(inputs, i);
    model.ParameterGradient(x, params, &grad);
    for (size_t k = 0; k < p; ++k) j(i, k) = grad[k];
  }
  return j;
}

bool AllFinite(const Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// sigma^2 * (J^T J)^{-1} diagonal square roots.
Vector StandardErrors(const Matrix& jacobian, double rss, size_t n,
                      size_t p) {
  if (n <= p) return {};
  auto inv = Invert(jacobian.Gram());
  if (!inv.ok()) return {};
  const double sigma2 = rss / static_cast<double>(n - p);
  Vector se(p, 0.0);
  for (size_t k = 0; k < p; ++k) {
    const double v = sigma2 * (*inv)(k, k);
    se[k] = v > 0.0 ? std::sqrt(v) : 0.0;
  }
  return se;
}

Result<FitOutput> FitLinear(const Model& model, const Matrix& inputs,
                            const Vector& outputs, const FitOptions& options,
                            bool use_qr) {
  LAWS_ASSIGN_OR_RETURN(Matrix design, BuildDesignMatrix(model, inputs));
  Result<Vector> beta = use_qr ? LeastSquaresQr(design, outputs)
                               : LeastSquaresNormal(design, outputs);
  if (!beta.ok()) return beta.status();
  FitOutput out;
  out.parameters = std::move(*beta);
  out.converged = true;
  out.iterations = 1;
  out.algorithm_used =
      use_qr ? FitAlgorithm::kOls : FitAlgorithm::kOlsNormalEquations;
  const Vector pred = design.MultiplyVec(out.parameters);
  LAWS_ASSIGN_OR_RETURN(
      out.quality,
      ComputeFitQuality(outputs, pred, model.num_parameters()));
  if (options.compute_standard_errors) {
    out.standard_errors =
        StandardErrors(design, out.quality.residual_sum_of_squares,
                       outputs.size(), model.num_parameters());
  }
  return out;
}

Result<FitOutput> FitIterative(const Model& model, const Matrix& inputs,
                               const Vector& outputs,
                               const FitOptions& options, bool damped) {
  const size_t n = outputs.size();
  const size_t p = model.num_parameters();

  Vector beta = options.initial_parameters;
  if (beta.empty()) {
    // Prefer a closed-form transformed-space estimate as warm start.
    Vector warm;
    if (model.LogLinearEstimate(inputs, outputs, &warm)) {
      beta = std::move(warm);
    } else {
      beta = model.InitialParameters();
    }
  }
  if (beta.size() != p) {
    return Status::InvalidArgument("initial parameter count mismatch");
  }

  Vector pred = PredictAll(model, inputs, beta);
  double rss = ResidualSumOfSquares(outputs, pred);
  if (!std::isfinite(rss)) {
    return Status::NumericError("non-finite residuals at starting point");
  }

  double lambda = options.initial_lambda;
  FitOutput out;
  out.algorithm_used = damped ? FitAlgorithm::kLevenbergMarquardt
                              : FitAlgorithm::kGaussNewton;
  bool converged = false;
  size_t iter = 0;
  for (; iter < options.max_iterations && !converged; ++iter) {
    const Matrix jacobian = ComputeJacobian(model, inputs, beta);
    // Residuals r = y - f; normal direction solves (J^T J) step = J^T r.
    Vector residuals(n);
    for (size_t i = 0; i < n; ++i) residuals[i] = outputs[i] - pred[i];
    const Vector jtr = jacobian.TransposeMultiplyVec(residuals);
    Matrix jtj = jacobian.Gram();

    bool accepted = false;
    // LM retries with increasing damping inside one outer iteration; plain
    // Gauss-Newton takes the raw step once.
    for (int attempt = 0; attempt < (damped ? 25 : 1); ++attempt) {
      Matrix system = jtj;
      if (damped) {
        for (size_t k = 0; k < p; ++k) {
          // Marquardt scaling: damp proportionally to the curvature, with a
          // floor so zero-curvature directions stay solvable.
          const double d = std::max(jtj(k, k), 1e-12);
          system(k, k) = jtj(k, k) + lambda * d;
        }
      }
      auto step = CholeskySolve(system, jtr);
      if (!step.ok()) {
        if (!damped) return step.status();
        lambda *= 10.0;
        continue;
      }
      const Vector candidate = Add(beta, *step);
      if (!AllFinite(candidate)) {
        if (!damped) {
          return Status::NumericError("Gauss-Newton produced non-finite step");
        }
        lambda *= 10.0;
        continue;
      }
      const Vector cand_pred = PredictAll(model, inputs, candidate);
      const double cand_rss = ResidualSumOfSquares(outputs, cand_pred);
      if (damped && (!std::isfinite(cand_rss) || cand_rss > rss)) {
        lambda *= 10.0;
        continue;
      }
      if (!damped && !std::isfinite(cand_rss)) {
        return Status::NumericError("Gauss-Newton diverged (non-finite RSS)");
      }
      // Accept.
      const double step_norm = Norm2(*step);
      const double beta_norm = Norm2(beta);
      const double rss_drop = rss - cand_rss;
      beta = candidate;
      pred = cand_pred;
      const double prev_rss = rss;
      rss = cand_rss;
      if (damped) lambda = std::max(lambda / 10.0, 1e-12);
      accepted = true;
      if (step_norm <= options.parameter_tolerance * (1.0 + beta_norm) ||
          (prev_rss > 0.0 &&
           std::fabs(rss_drop) <= options.residual_tolerance * prev_rss)) {
        converged = true;
      }
      break;
    }
    if (!accepted) {
      // LM could not find a descent direction: treat the current point as
      // the (local) optimum.
      converged = true;
    }
  }

  out.parameters = beta;
  out.iterations = iter;
  out.converged = converged;
  LAWS_ASSIGN_OR_RETURN(out.quality, ComputeFitQuality(outputs, pred, p));
  if (options.compute_standard_errors) {
    const Matrix jacobian = ComputeJacobian(model, inputs, beta);
    out.standard_errors = StandardErrors(
        jacobian, out.quality.residual_sum_of_squares, n, p);
  }
  return out;
}

Result<FitOutput> FitLogLinearOnly(const Model& model, const Matrix& inputs,
                                   const Vector& outputs,
                                   const FitOptions& options) {
  Vector params;
  if (!model.LogLinearEstimate(inputs, outputs, &params)) {
    return Status::InvalidArgument(
        "model '" + model.name() +
        "' has no log-linear transformation (or data violates its domain)");
  }
  FitOutput out;
  out.parameters = std::move(params);
  out.converged = true;
  out.iterations = 1;
  out.algorithm_used = FitAlgorithm::kLogLinear;
  const Vector pred = PredictAll(model, inputs, out.parameters);
  LAWS_ASSIGN_OR_RETURN(
      out.quality,
      ComputeFitQuality(outputs, pred, model.num_parameters()));
  if (options.compute_standard_errors) {
    const Matrix jacobian = ComputeJacobian(model, inputs, out.parameters);
    out.standard_errors =
        StandardErrors(jacobian, out.quality.residual_sum_of_squares,
                       outputs.size(), model.num_parameters());
  }
  return out;
}

}  // namespace

std::string_view FitAlgorithmToString(FitAlgorithm a) {
  switch (a) {
    case FitAlgorithm::kAuto:
      return "auto";
    case FitAlgorithm::kOls:
      return "ols_qr";
    case FitAlgorithm::kOlsNormalEquations:
      return "ols_normal";
    case FitAlgorithm::kGaussNewton:
      return "gauss_newton";
    case FitAlgorithm::kLevenbergMarquardt:
      return "levenberg_marquardt";
    case FitAlgorithm::kLogLinear:
      return "log_linear";
  }
  return "?";
}

Vector PredictAll(const Model& model, const Matrix& inputs,
                  const Vector& params) {
  const size_t n = inputs.rows();
  Vector pred(n);
  Vector x(inputs.cols());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < inputs.cols(); ++j) x[j] = inputs(i, j);
    pred[i] = model.Evaluate(x, params);
  }
  return pred;
}

Result<Matrix> BuildDesignMatrix(const Model& model, const Matrix& inputs) {
  if (!model.IsLinearInParameters()) {
    return Status::InvalidArgument("model '" + model.name() +
                                   "' is not linear in its parameters");
  }
  const size_t n = inputs.rows();
  const size_t p = model.num_parameters();
  Matrix design(n, p);
  Vector phi;
  Vector x(inputs.cols());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < inputs.cols(); ++j) x[j] = inputs(i, j);
    LAWS_RETURN_IF_ERROR(model.BasisFunctions(x, &phi));
    for (size_t k = 0; k < p; ++k) design(i, k) = phi[k];
  }
  return design;
}

Result<FitOutput> FitModel(const Model& model, const Matrix& inputs,
                           const Vector& outputs, const FitOptions& options) {
  if (inputs.rows() != outputs.size()) {
    return Status::InvalidArgument("inputs/outputs row count mismatch");
  }
  if (inputs.cols() != model.num_inputs()) {
    return Status::InvalidArgument("input arity does not match model");
  }
  if (outputs.size() <= model.num_parameters()) {
    return Status::InvalidArgument(
        "need more observations than parameters (n > p)");
  }

  switch (options.algorithm) {
    case FitAlgorithm::kAuto:
      if (model.IsLinearInParameters()) {
        return FitLinear(model, inputs, outputs, options, /*use_qr=*/true);
      }
      return FitIterative(model, inputs, outputs, options, /*damped=*/true);
    case FitAlgorithm::kOls:
      return FitLinear(model, inputs, outputs, options, /*use_qr=*/true);
    case FitAlgorithm::kOlsNormalEquations:
      return FitLinear(model, inputs, outputs, options, /*use_qr=*/false);
    case FitAlgorithm::kGaussNewton:
      return FitIterative(model, inputs, outputs, options, /*damped=*/false);
    case FitAlgorithm::kLevenbergMarquardt:
      return FitIterative(model, inputs, outputs, options, /*damped=*/true);
    case FitAlgorithm::kLogLinear:
      return FitLogLinearOnly(model, inputs, outputs, options);
  }
  return Status::Internal("unknown fit algorithm");
}

}  // namespace laws

#ifndef LAWSDB_MODEL_FIT_H_
#define LAWSDB_MODEL_FIT_H_

#include <string>

#include "common/result.h"
#include "linalg/matrix.h"
#include "model/model.h"
#include "stats/goodness_of_fit.h"

namespace laws {

/// Fitting algorithms (paper §3): OLS with an analytic solution for models
/// linear in their parameters, iterative optimization (Gauss-Newton /
/// Levenberg-Marquardt) otherwise.
enum class FitAlgorithm {
  /// OLS for linear models; log-linear warm start + Levenberg-Marquardt
  /// otherwise.
  kAuto,
  /// OLS via Householder QR (requires IsLinearInParameters()).
  kOls,
  /// OLS via normal equations + Cholesky; ablation baseline, squares the
  /// condition number.
  kOlsNormalEquations,
  /// Plain Gauss-Newton iteration.
  kGaussNewton,
  /// Levenberg-Marquardt damped Gauss-Newton.
  kLevenbergMarquardt,
  /// Closed-form estimate in transformed space only (e.g. log-log OLS for
  /// power laws); error if the model has no such transformation.
  kLogLinear,
};

std::string_view FitAlgorithmToString(FitAlgorithm a);

/// Controls for FitModel.
struct FitOptions {
  FitAlgorithm algorithm = FitAlgorithm::kAuto;
  size_t max_iterations = 100;
  /// Converged when the relative step norm falls below this.
  double parameter_tolerance = 1e-10;
  /// ... or when the relative RSS improvement falls below this.
  double residual_tolerance = 1e-12;
  /// Starting point for iterative algorithms; empty = model default /
  /// log-linear estimate.
  Vector initial_parameters;
  /// Initial Levenberg-Marquardt damping.
  double initial_lambda = 1e-3;
  /// Compute per-parameter standard errors from sigma^2 (J^T J)^{-1}.
  bool compute_standard_errors = true;
};

/// The outcome of a fit: estimated parameters plus the quality metadata the
/// capture layer stores alongside the model.
struct FitOutput {
  Vector parameters;
  FitQuality quality;
  /// Per-parameter standard errors (empty when not computed or when the
  /// information matrix is singular).
  Vector standard_errors;
  size_t iterations = 0;
  bool converged = false;
  FitAlgorithm algorithm_used = FitAlgorithm::kAuto;
};

/// Fits `model` to observations: `inputs` is n x num_inputs, `outputs` has
/// n entries. Returns NumericError when the fit diverges or the design is
/// singular; InvalidArgument for dimension problems (including n <= p — the
/// paper's "more observed input/output pairs than model parameters").
Result<FitOutput> FitModel(const Model& model, const Matrix& inputs,
                           const Vector& outputs,
                           const FitOptions& options = {});

/// Evaluates the model at every row of `inputs` with fixed parameters.
Vector PredictAll(const Model& model, const Matrix& inputs,
                  const Vector& params);

/// Builds the n x p design matrix of basis functions for a linear model.
Result<Matrix> BuildDesignMatrix(const Model& model, const Matrix& inputs);

}  // namespace laws

#endif  // LAWSDB_MODEL_FIT_H_

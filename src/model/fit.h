#ifndef LAWSDB_MODEL_FIT_H_
#define LAWSDB_MODEL_FIT_H_

#include <string>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "model/model.h"
#include "stats/goodness_of_fit.h"

namespace laws {

/// Fitting algorithms (paper §3): OLS with an analytic solution for models
/// linear in their parameters, iterative optimization (Gauss-Newton /
/// Levenberg-Marquardt) otherwise.
enum class FitAlgorithm {
  /// OLS for linear models; log-linear warm start + Levenberg-Marquardt
  /// otherwise.
  kAuto,
  /// OLS via Householder QR (requires IsLinearInParameters()).
  kOls,
  /// OLS via normal equations + Cholesky; ablation baseline, squares the
  /// condition number.
  kOlsNormalEquations,
  /// Plain Gauss-Newton iteration.
  kGaussNewton,
  /// Levenberg-Marquardt damped Gauss-Newton.
  kLevenbergMarquardt,
  /// Closed-form estimate in transformed space only (e.g. log-log OLS for
  /// power laws); error if the model has no such transformation.
  kLogLinear,
};

std::string_view FitAlgorithmToString(FitAlgorithm a);

/// Controls for FitModel.
struct FitOptions {
  FitAlgorithm algorithm = FitAlgorithm::kAuto;
  size_t max_iterations = 100;
  /// Converged when the relative step norm falls below this.
  double parameter_tolerance = 1e-10;
  /// ... or when the relative RSS improvement falls below this.
  double residual_tolerance = 1e-12;
  /// Starting point for iterative algorithms; empty = model default /
  /// log-linear estimate.
  Vector initial_parameters;
  /// Initial Levenberg-Marquardt damping.
  double initial_lambda = 1e-3;
  /// Compute per-parameter standard errors from sigma^2 (J^T J)^{-1}.
  bool compute_standard_errors = true;
  /// Under kAuto, models that expose an exact Linearization() (power law,
  /// exponential, log law, simple linear) are solved closed-form over
  /// running sums — no design matrix, no solver, no iteration. Data that
  /// violates the transform domain falls back to the iterative path
  /// automatically. Disable to force the pre-kernel dispatch (ablation).
  bool closed_form_fast_path = true;
};

/// The outcome of a fit: estimated parameters plus the quality metadata the
/// capture layer stores alongside the model.
struct FitOutput {
  Vector parameters;
  FitQuality quality;
  /// Per-parameter standard errors (empty when not computed or when the
  /// information matrix is singular).
  Vector standard_errors;
  size_t iterations = 0;
  bool converged = false;
  FitAlgorithm algorithm_used = FitAlgorithm::kAuto;
};

/// Reusable per-lane workspace for the fit kernels. FitGrouped owns one
/// per ParallelFor lane and threads it through FitModel down to the
/// linear-algebra layer, so the thousands of small per-group fits reuse a
/// handful of heap buffers instead of allocating Matrix/Vector temporaries
/// on every group and every LM iteration. Buffers hold unspecified values
/// between calls; every consumer resizes before use. Default-constructed
/// cost is zero — a cold FitScratch is just empty vectors.
struct FitScratch {
  // Group gather staging (grouped fit): observation matrix, outputs, and
  // one column's worth of gather staging.
  Matrix inputs;
  Vector outputs;
  Vector column;
  // Transformed-space staging for the closed-form linearized kernel.
  Vector tx;
  Vector ty;
  // Per-row model evaluation temporaries.
  Vector xrow;
  Vector grad;
  Vector phi;
  // Prediction / residual vectors.
  Vector pred;
  Vector cand_pred;
  Vector residuals;
  // Dense factors and systems.
  Matrix design;
  Matrix jacobian;
  Matrix jtj;
  Matrix system;
  Matrix chol;
  QrFactors qr;
  // Solver right-hand sides and iterates.
  Vector jtr;
  Vector step;
  Vector candidate;
  Vector warm;
  Vector qtb;
};

/// Fits `model` to observations: `inputs` is n x num_inputs, `outputs` has
/// n entries. Returns NumericError when the fit diverges or the design is
/// singular; InvalidArgument for dimension problems (including n <= p — the
/// paper's "more observed input/output pairs than model parameters").
Result<FitOutput> FitModel(const Model& model, const Matrix& inputs,
                           const Vector& outputs,
                           const FitOptions& options = {});

/// Scratch-threaded variant: identical results, but all intermediate
/// buffers live in `*scratch` and are reused across calls. The hot path
/// for grouped fitting.
Result<FitOutput> FitModel(const Model& model, const Matrix& inputs,
                           const Vector& outputs, const FitOptions& options,
                           FitScratch* scratch);

/// Evaluates the model at every row of `inputs` with fixed parameters.
Vector PredictAll(const Model& model, const Matrix& inputs,
                  const Vector& params);

/// Allocation-free PredictAll into scratch->pred-style buffers: `pred` is
/// resized to n, `xrow` is the per-row staging vector.
void PredictAllInto(const Model& model, const Matrix& inputs,
                    const Vector& params, Vector* pred, Vector* xrow);

/// Builds the n x p design matrix of basis functions for a linear model.
Result<Matrix> BuildDesignMatrix(const Model& model, const Matrix& inputs);

/// Allocation-free BuildDesignMatrix; `phi` and `xrow` are staging buffers.
Status BuildDesignMatrixInto(const Model& model, const Matrix& inputs,
                             Matrix* design, Vector* phi, Vector* xrow);

}  // namespace laws

#endif  // LAWSDB_MODEL_FIT_H_

#include "model/fit_kernels.h"

#include <cmath>

namespace laws {

bool SimpleOlsSolve(const double* x, const double* y, size_t n, double* b0,
                    double* b1, SimpleRegressionSums* sums) {
  if (n < 2) return false;
  // Pass 1: means. Non-finite inputs (log of a non-positive value gathered
  // as -inf/NaN) poison the means and are rejected by the finiteness check
  // below — no separate domain scan needed.
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  const double mean_x = sum_x * inv_n;
  const double mean_y = sum_y * inv_n;
  // Pass 2: centered second moments (numerically stable vs raw sums).
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (!(sxx > 0.0) || !std::isfinite(sxx) || !std::isfinite(sxy) ||
      !std::isfinite(syy)) {
    return false;  // constant x, or out-of-domain data
  }
  const double slope = sxy / sxx;
  const double intercept = mean_y - slope * mean_x;
  if (!std::isfinite(slope) || !std::isfinite(intercept)) return false;
  *b1 = slope;
  *b0 = intercept;
  if (sums != nullptr) {
    sums->n = n;
    sums->mean_x = mean_x;
    sums->mean_y = mean_y;
    sums->sxx = sxx;
    sums->sxy = sxy;
    sums->syy = syy;
  }
  return true;
}

bool TransformValues(NumericTransform transform, const double* values,
                     size_t n, Vector* out_vec) {
  Vector& out = *out_vec;
  out.resize(n);
  bool finite = true;
  for (size_t i = 0; i < n; ++i) {
    const double v = ApplyNumericTransform(transform, values[i]);
    out[i] = v;
    finite = finite && std::isfinite(v);
  }
  return finite;
}

void MapLinearizedParameters(const ModelLinearization& lin, double b0,
                             double b1, Vector* params) {
  params->resize(2);
  (*params)[0] = lin.param_map == ModelLinearization::ParamMap::kExpInterceptSlope
                     ? std::exp(b0)
                     : b0;
  (*params)[1] = b1;
}

Result<FitOutput> ClosedFormLinearizedFit(const Model& model,
                                          const ModelLinearization& lin,
                                          const double* tx, const double* ty,
                                          size_t n, const Vector& original_y,
                                          const FitOptions& options,
                                          FitScratch* scratch) {
  double b0 = 0.0;
  double b1 = 0.0;
  SimpleRegressionSums sums;
  if (!SimpleOlsSolve(tx, ty, n, &b0, &b1, &sums)) {
    return Status::NumericError(
        "closed-form linearized fit is degenerate or out of domain");
  }
  FitOutput out;
  MapLinearizedParameters(lin, b0, b1, &out.parameters);
  for (double p : out.parameters) {
    if (!std::isfinite(p)) {
      return Status::NumericError(
          "closed-form linearized fit produced non-finite parameters");
    }
  }
  out.converged = true;
  out.iterations = 1;
  out.algorithm_used = FitAlgorithm::kLogLinear;
  // Predictions in original space come straight from the transformed
  // inputs: invert the y-transform of the fitted line, no model Evaluate
  // virtual call per row.
  Vector& pred = scratch->pred;
  pred.resize(n);
  if (lin.y_transform == NumericTransform::kLog) {
    for (size_t i = 0; i < n; ++i) pred[i] = std::exp(b0 + b1 * tx[i]);
  } else {
    for (size_t i = 0; i < n; ++i) pred[i] = b0 + b1 * tx[i];
  }
  const size_t p = model.num_parameters();
  LAWS_ASSIGN_OR_RETURN(out.quality, ComputeFitQuality(original_y, pred, p));
  if (options.compute_standard_errors && n > 2) {
    // Exact OLS standard errors in transformed space; the exponentiated
    // intercept gets the delta-method map se(exp(b0)) ~= exp(b0) * se(b0).
    const double rss_t = std::max(sums.syy - b1 * sums.sxy, 0.0);
    const double s2 = rss_t / static_cast<double>(n - 2);
    const double se_b1 = std::sqrt(s2 / sums.sxx);
    const double se_b0 = std::sqrt(
        s2 * (1.0 / static_cast<double>(n) + sums.mean_x * sums.mean_x / sums.sxx));
    out.standard_errors.resize(2);
    out.standard_errors[0] =
        lin.param_map == ModelLinearization::ParamMap::kExpInterceptSlope
            ? out.parameters[0] * se_b0
            : se_b0;
    out.standard_errors[1] = se_b1;
  }
  return out;
}

namespace {

/// Transforms the single input column and the outputs into scratch->tx/ty.
/// Returns false when the model has no linearization, the data is not
/// single-input, or a transform lands out of domain.
bool StageLinearizedData(const Model& model, const Matrix& inputs,
                         const Vector& outputs, FitScratch* scratch,
                         ModelLinearization* lin) {
  if (!model.Linearization(lin)) return false;
  if (model.num_inputs() != 1 || inputs.cols() != 1) return false;
  const size_t n = inputs.rows();
  if (n != outputs.size()) return false;
  Vector& tx = scratch->tx;
  tx.resize(n);
  bool finite = true;
  for (size_t i = 0; i < n; ++i) {
    const double v = ApplyNumericTransform(lin->x_transform, inputs(i, 0));
    tx[i] = v;
    finite = finite && std::isfinite(v);
  }
  if (!finite) return false;
  return TransformValues(lin->y_transform, outputs.data(), n, &scratch->ty);
}

}  // namespace

bool TryClosedFormFit(const Model& model, const Matrix& inputs,
                      const Vector& outputs, const FitOptions& options,
                      FitScratch* scratch, Result<FitOutput>* out) {
  ModelLinearization lin;
  if (!StageLinearizedData(model, inputs, outputs, scratch, &lin)) {
    return false;
  }
  Result<FitOutput> fit = ClosedFormLinearizedFit(
      model, lin, scratch->tx.data(), scratch->ty.data(), outputs.size(),
      outputs, options, scratch);
  if (!fit.ok()) return false;  // degenerate: take the generic path
  *out = std::move(fit);
  return true;
}

bool ClosedFormWarmStart(const Model& model, const Matrix& inputs,
                         const Vector& outputs, FitScratch* scratch,
                         Vector* params) {
  ModelLinearization lin;
  if (!StageLinearizedData(model, inputs, outputs, scratch, &lin)) {
    return false;
  }
  double b0 = 0.0;
  double b1 = 0.0;
  if (!SimpleOlsSolve(scratch->tx.data(), scratch->ty.data(), outputs.size(),
                      &b0, &b1, nullptr)) {
    return false;
  }
  MapLinearizedParameters(lin, b0, b1, params);
  for (double p : *params) {
    if (!std::isfinite(p)) return false;
  }
  return true;
}

}  // namespace laws

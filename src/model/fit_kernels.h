#ifndef LAWSDB_MODEL_FIT_KERNELS_H_
#define LAWSDB_MODEL_FIT_KERNELS_H_

#include <cstddef>

#include "common/result.h"
#include "model/fit.h"
#include "model/model.h"

namespace laws {

/// Specialized fitting kernels (paper §3): the paper's workhorse models —
/// power law I = p * nu^alpha, exponential, log law, simple linear — are
/// exact ordinary least squares after an elementwise transform, so their
/// fit reduces to one pass of running sums followed by a 2x2 closed-form
/// solve. No design matrix, no factorization, no iteration; the only
/// floating-point state is five centered sums. These kernels are the fast
/// path under FitAlgorithm::kAuto and the warm start for the iterative
/// path when options demand iteration.

/// Centered sufficient statistics of a simple regression y = b0 + b1 * x,
/// accumulated in one pass (two reads per point).
struct SimpleRegressionSums {
  size_t n = 0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  double sxx = 0.0;  // sum (x - mean_x)^2
  double sxy = 0.0;  // sum (x - mean_x)(y - mean_y)
  double syy = 0.0;  // sum (y - mean_y)^2
};

/// Closed-form simple OLS over `n` points: slope b1 = Sxy/Sxx, intercept
/// b0 = mean_y - b1 * mean_x. Returns false when the problem is degenerate
/// (n < 2, constant x, or non-finite inputs such as log of a non-positive
/// value) — callers route those groups to the iterative / skip path. On
/// success fills `sums` with the centered statistics for standard-error
/// computation.
bool SimpleOlsSolve(const double* x, const double* y, size_t n, double* b0,
                    double* b1, SimpleRegressionSums* sums);

/// Elementwise transform of `n` values into `out` (resized). Returns true
/// iff every transformed value is finite, i.e. the data respects the
/// transform's domain.
bool TransformValues(NumericTransform transform, const double* values,
                     size_t n, Vector* out);

/// Maps the transformed-space regression (b0, b1) back to model
/// parameters per the linearization's ParamMap.
void MapLinearizedParameters(const ModelLinearization& lin, double b0,
                             double b1, Vector* params);

/// Fits a linearizable model in closed form from already-transformed data:
/// `tx`/`ty` are the transformed inputs/outputs, `original_y` the
/// untransformed outputs used for original-space fit quality. Produces a
/// complete FitOutput (algorithm_used = kLogLinear): parameters via the
/// ParamMap, quality against `original_y`, and — when requested —
/// transformed-space standard errors with a delta-method map for
/// exponentiated intercepts. Returns NumericError when the regression is
/// degenerate or out of domain; callers treat that as "take the generic
/// path", not as a failed fit.
Result<FitOutput> ClosedFormLinearizedFit(const Model& model,
                                          const ModelLinearization& lin,
                                          const double* tx, const double* ty,
                                          size_t n, const Vector& original_y,
                                          const FitOptions& options,
                                          FitScratch* scratch);

/// FitModel-shaped front end: detects a usable linearization on `model`,
/// transforms the (single) input column and outputs into scratch->tx/ty,
/// and runs ClosedFormLinearizedFit. Returns true and fills `*out` only
/// when the closed form applies and succeeds; false means "fall through to
/// the generic dispatch" (no linearization, multi-input data, domain
/// violation, or degenerate regression).
bool TryClosedFormFit(const Model& model, const Matrix& inputs,
                      const Vector& outputs, const FitOptions& options,
                      FitScratch* scratch, Result<FitOutput>* out);

/// Closed-form warm start for the iterative path: solves the linearized
/// regression and maps parameters, without quality or standard errors.
/// Returns false when no linearization applies or the data is out of
/// domain (callers fall back to Model::LogLinearEstimate / defaults).
bool ClosedFormWarmStart(const Model& model, const Matrix& inputs,
                         const Vector& outputs, FitScratch* scratch,
                         Vector* params);

}  // namespace laws

#endif  // LAWSDB_MODEL_FIT_KERNELS_H_

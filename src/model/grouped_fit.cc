#include "model/grouped_fit.h"

#include <algorithm>
#include <utility>

#include "common/governor.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "model/fit_kernels.h"

namespace laws {

namespace {

/// One contiguous run of rows for a single group key inside the keyed row
/// index built by FitGrouped.
struct GroupSlice {
  int64_t key = 0;
  size_t offset = 0;
  size_t length = 0;
};

/// Per-group outcome slot, written by exactly one ParallelFor lane and
/// merged serially in group order so the output (and the skipped/failed
/// tallies) is bit-identical across thread counts.
struct GroupOutcome {
  enum class Kind : uint8_t { kSkipped, kFailed, kFitted } kind =
      Kind::kSkipped;
  FitOutput fit;
};

/// Assembles the (inputs, outputs) observation block for one group via
/// bulk column gathers — one type dispatch per column instead of a
/// Result-unwrapping NumericAt per cell.
Status GatherObservations(const std::vector<const Column*>& input_cols,
                          const Column& output_col, const uint32_t* rows,
                          size_t n, Matrix* inputs, Vector* outputs,
                          Vector* scratch) {
  inputs->Reshape(n, input_cols.size());
  if (input_cols.size() == 1) {
    // Single-input models (the paper's power law) fill the n x 1 design
    // block contiguously.
    LAWS_RETURN_IF_ERROR(
        input_cols[0]->GatherNumeric(rows, n, inputs->mutable_data()));
  } else {
    scratch->resize(n);
    double* data = inputs->mutable_data();
    const size_t num_cols = input_cols.size();
    for (size_t c = 0; c < num_cols; ++c) {
      LAWS_RETURN_IF_ERROR(
          input_cols[c]->GatherNumeric(rows, n, scratch->data()));
      for (size_t r = 0; r < n; ++r) data[r * num_cols + c] = (*scratch)[r];
    }
  }
  outputs->resize(n);
  return output_col.GatherNumeric(rows, n, outputs->data());
}

}  // namespace

Result<GroupedFitOutput> FitGrouped(const Model& model, const Table& table,
                                    const GroupedFitSpec& spec) {
  LAWS_ASSIGN_OR_RETURN(const Column* group_col,
                        table.ColumnByName(spec.group_column));
  if (group_col->type() != DataType::kInt64) {
    return Status::TypeMismatch("group column must be INT64");
  }
  if (spec.input_columns.size() != model.num_inputs()) {
    return Status::InvalidArgument(
        "input column count does not match model arity");
  }
  std::vector<const Column*> input_cols;
  input_cols.reserve(spec.input_columns.size());
  for (const std::string& name : spec.input_columns) {
    LAWS_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    if (c->type() == DataType::kString) {
      return Status::TypeMismatch("input column '" + name +
                                  "' is not numeric");
    }
    input_cols.push_back(c);
  }
  LAWS_ASSIGN_OR_RETURN(const Column* output_col,
                        table.ColumnByName(spec.output_column));
  if (output_col->type() == DataType::kString) {
    return Status::TypeMismatch("output column is not numeric");
  }

  ScopedSpan fit_span("FitGrouped");
  // Group by sorting a (key, row) index instead of hashing rows into
  // per-key vectors: one allocation, cache-friendly, and the sort on
  // (key, row) pairs both orders groups by key (the output contract) and
  // keeps rows within a group in first-seen order.
  ScopedSpan index_span("GroupIndex");
  const size_t n = table.num_rows();
  ScopedCharge charge;
  LAWS_RETURN_IF_ERROR(charge.Acquire(
      n * (sizeof(std::pair<int64_t, uint32_t>) + sizeof(uint32_t)),
      "grouped fit index"));
  std::vector<std::pair<int64_t, uint32_t>> keyed;
  keyed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 4096 == 0) LAWS_GOVERNOR_POLL();
    if (group_col->IsNull(i) || output_col->IsNull(i)) continue;
    bool usable = true;
    for (const Column* c : input_cols) {
      if (c->IsNull(i)) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    keyed.emplace_back(group_col->Int64At(i), static_cast<uint32_t>(i));
  }
  std::sort(keyed.begin(), keyed.end());

  // Row indices in group-sorted order, plus one slice per group.
  std::vector<uint32_t> row_index(keyed.size());
  std::vector<GroupSlice> groups;
  for (size_t i = 0; i < keyed.size(); ++i) {
    row_index[i] = keyed[i].second;
    if (i == 0 || keyed[i].first != keyed[i - 1].first) {
      groups.push_back(GroupSlice{keyed[i].first, i, 0});
    }
    ++groups.back().length;
  }
  keyed.clear();
  keyed.shrink_to_fit();
  index_span.SetRows(n, groups.size());
  index_span.End();

  const size_t floor_obs =
      std::max(model.num_parameters() + 1, spec.min_observations);

  // The paper's hot configuration — a single-input model with an exact
  // linearization (power law) — skips matrix assembly entirely: the fused
  // gather-transform materializes log(x)/log(y) straight out of column
  // storage and the closed-form sum kernel fits each group with zero
  // allocations after lane warm-up. Groups whose data violates the
  // transform domain fall back to the generic FitModel dispatch.
  ModelLinearization lin;
  const bool linearizable = input_cols.size() == 1 &&
                            model.num_inputs() == 1 &&
                            model.Linearization(&lin);
  const bool fast_closed = linearizable &&
                           spec.fit_options.algorithm == FitAlgorithm::kAuto &&
                           spec.fit_options.closed_form_fast_path;
  const bool fast_loglinear =
      linearizable && spec.fit_options.algorithm == FitAlgorithm::kLogLinear;

  // Fit groups in parallel. Each lane owns a disjoint slice of the
  // outcome array and a FitScratch arena reused across the groups it
  // processes (and threaded through FitModel down to the solvers);
  // per-group results are pure functions of the group's rows, so outcomes
  // are independent of the partition. The span is opened on the calling
  // thread (worker lanes never see the trace sink), so it measures the
  // whole parallel region.
  ScopedSpan loop_span("FitLoop");
  LAWS_RETURN_IF_ERROR(charge.Acquire(
      groups.size() * sizeof(GroupOutcome), "grouped fit outcomes"));
  std::vector<GroupOutcome> outcomes(groups.size());
  ParallelForChunks(0, groups.size(), [&](size_t lo, size_t hi) {
    // ParallelForChunks installed the caller's governor in this lane.
    // A lane that observes a tripped governor abandons its remaining
    // groups (slots stay kSkipped); the re-poll after the region turns
    // that partial state into the typed error before it can escape.
    QueryGovernor* const governor = QueryGovernor::Current();
    FitScratch scratch;
    for (size_t g = lo; g < hi; ++g) {
      if (governor != nullptr && !governor->Poll().ok()) return;
      const GroupSlice& slice = groups[g];
      GroupOutcome& slot = outcomes[g];
      if (slice.length < floor_obs) {
        slot.kind = GroupOutcome::Kind::kSkipped;
        continue;
      }
      const uint32_t* rows = row_index.data() + slice.offset;
      const size_t len = slice.length;
      if (fast_closed || fast_loglinear) {
        scratch.tx.resize(len);
        scratch.ty.resize(len);
        Status st = input_cols[0]->GatherNumericTransformed(
            rows, len, scratch.tx.data(), lin.x_transform);
        if (st.ok()) {
          st = output_col->GatherNumericTransformed(
              rows, len, scratch.ty.data(), lin.y_transform);
        }
        const Vector* orig_y = &scratch.ty;
        if (st.ok() && lin.y_transform != NumericTransform::kIdentity) {
          scratch.outputs.resize(len);
          st = output_col->GatherNumeric(rows, len, scratch.outputs.data());
          orig_y = &scratch.outputs;
        }
        if (!st.ok()) {
          slot.kind = GroupOutcome::Kind::kFailed;
          continue;
        }
        auto fast = ClosedFormLinearizedFit(model, lin, scratch.tx.data(),
                                            scratch.ty.data(), len, *orig_y,
                                            spec.fit_options, &scratch);
        if (fast.ok()) {
          slot.kind = GroupOutcome::Kind::kFitted;
          slot.fit = std::move(*fast);
          continue;
        }
        if (fast_loglinear) {
          // Explicit kLogLinear has no fallback: out-of-domain or
          // degenerate groups are failed fits, as before.
          slot.kind = GroupOutcome::Kind::kFailed;
          continue;
        }
        // else: domain violation under kAuto — take the generic path,
        // which warm-starts LM from whatever structure survives.
      }
      const Status gathered =
          GatherObservations(input_cols, *output_col, rows, len,
                             &scratch.inputs, &scratch.outputs,
                             &scratch.column);
      if (!gathered.ok()) {
        // Unreachable after the type checks above; count as a failed fit
        // rather than crossing the parallel region with an error.
        slot.kind = GroupOutcome::Kind::kFailed;
        continue;
      }
      auto fit = FitModel(model, scratch.inputs, scratch.outputs,
                          spec.fit_options, &scratch);
      if (!fit.ok()) {
        slot.kind = GroupOutcome::Kind::kFailed;
        continue;
      }
      slot.kind = GroupOutcome::Kind::kFitted;
      slot.fit = std::move(*fit);
    }
  });

  loop_span.SetRows(row_index.size(), groups.size());
  loop_span.End();

  // Surface a mid-region cancel/deadline before the partial outcome
  // array can be merged into a result (sticky-error contract; see
  // thread_pool.h).
  LAWS_GOVERNOR_POLL();

  // Deterministic merge in group-key order. Dispatch accounting happens
  // here, in the serial pass, so the parallel lanes never contend on
  // shared counters: closed-form fits carry algorithm_used == kLogLinear,
  // everything else went through the iterative dispatch.
  ScopedSpan merge_span("MergeOutcomes");
  uint64_t closed_form = 0, iterative = 0, iterations = 0;
  GroupedFitOutput out;
  out.rows_processed = n;
  out.groups.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    switch (outcomes[g].kind) {
      case GroupOutcome::Kind::kSkipped:
        ++out.skipped_too_few;
        break;
      case GroupOutcome::Kind::kFailed:
        ++out.failed;
        break;
      case GroupOutcome::Kind::kFitted:
        if (outcomes[g].fit.algorithm_used == FitAlgorithm::kLogLinear) {
          ++closed_form;
        } else {
          ++iterative;
          iterations += outcomes[g].fit.iterations;
        }
        out.groups.push_back(
            GroupFitResult{groups[g].key, std::move(outcomes[g].fit)});
        break;
    }
  }
  {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static Counter* fitted = reg.GetCounter("fit.groups_fitted");
    static Counter* skipped = reg.GetCounter("fit.groups_skipped");
    static Counter* failed = reg.GetCounter("fit.groups_failed");
    static Counter* closed = reg.GetCounter("fit.dispatch.closed_form");
    static Counter* iter = reg.GetCounter("fit.dispatch.iterative");
    static Counter* iters = reg.GetCounter("fit.iterations");
    fitted->Add(out.groups.size());
    skipped->Add(out.skipped_too_few);
    failed->Add(out.failed);
    closed->Add(closed_form);
    iter->Add(iterative);
    iters->Add(iterations);
  }
  merge_span.SetRows(groups.size(), out.groups.size());
  fit_span.SetRows(n, out.groups.size());
  return out;
}

Result<Table> GroupedFitToTable(const Model& model,
                                const GroupedFitOutput& fits,
                                const std::string& group_name) {
  std::vector<Field> fields;
  fields.push_back(Field{group_name, DataType::kInt64, false});
  for (const std::string& pname : model.parameter_names()) {
    fields.push_back(Field{pname, DataType::kDouble, false});
  }
  fields.push_back(Field{"residual_se", DataType::kDouble, false});
  fields.push_back(Field{"r_squared", DataType::kDouble, false});
  fields.push_back(Field{"n_obs", DataType::kInt64, false});

  Table table{Schema(std::move(fields))};
  std::vector<Value> row;
  for (const GroupFitResult& g : fits.groups) {
    row.clear();
    row.push_back(Value::Int64(g.group_key));
    for (double p : g.fit.parameters) row.push_back(Value::Double(p));
    row.push_back(Value::Double(g.fit.quality.residual_standard_error));
    row.push_back(Value::Double(g.fit.quality.r_squared));
    row.push_back(
        Value::Int64(static_cast<int64_t>(g.fit.quality.n_observations)));
    LAWS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace laws

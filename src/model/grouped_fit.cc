#include "model/grouped_fit.h"

#include <algorithm>
#include <unordered_map>

namespace laws {

Result<GroupedFitOutput> FitGrouped(const Model& model, const Table& table,
                                    const GroupedFitSpec& spec) {
  LAWS_ASSIGN_OR_RETURN(const Column* group_col,
                        table.ColumnByName(spec.group_column));
  if (group_col->type() != DataType::kInt64) {
    return Status::TypeMismatch("group column must be INT64");
  }
  if (spec.input_columns.size() != model.num_inputs()) {
    return Status::InvalidArgument(
        "input column count does not match model arity");
  }
  std::vector<const Column*> input_cols;
  input_cols.reserve(spec.input_columns.size());
  for (const std::string& name : spec.input_columns) {
    LAWS_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    if (c->type() == DataType::kString) {
      return Status::TypeMismatch("input column '" + name +
                                  "' is not numeric");
    }
    input_cols.push_back(c);
  }
  LAWS_ASSIGN_OR_RETURN(const Column* output_col,
                        table.ColumnByName(spec.output_column));
  if (output_col->type() == DataType::kString) {
    return Status::TypeMismatch("output column is not numeric");
  }

  // Bucket row indices by group key, preserving first-seen order within
  // groups.
  std::unordered_map<int64_t, std::vector<uint32_t>> buckets;
  const size_t n = table.num_rows();
  for (size_t i = 0; i < n; ++i) {
    if (group_col->IsNull(i) || output_col->IsNull(i)) continue;
    bool usable = true;
    for (const Column* c : input_cols) {
      if (c->IsNull(i)) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    buckets[group_col->Int64At(i)].push_back(static_cast<uint32_t>(i));
  }

  const size_t floor_obs =
      std::max(model.num_parameters() + 1, spec.min_observations);

  GroupedFitOutput out;
  out.rows_processed = n;
  out.groups.reserve(buckets.size());
  for (auto& [key, rows] : buckets) {
    if (rows.size() < floor_obs) {
      ++out.skipped_too_few;
      continue;
    }
    Matrix inputs(rows.size(), input_cols.size());
    Vector outputs(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      const uint32_t row = rows[r];
      for (size_t c = 0; c < input_cols.size(); ++c) {
        LAWS_ASSIGN_OR_RETURN(double v, input_cols[c]->NumericAt(row));
        inputs(r, c) = v;
      }
      LAWS_ASSIGN_OR_RETURN(outputs[r], output_col->NumericAt(row));
    }
    auto fit = FitModel(model, inputs, outputs, spec.fit_options);
    if (!fit.ok()) {
      ++out.failed;
      continue;
    }
    out.groups.push_back(GroupFitResult{key, std::move(*fit)});
  }
  std::sort(out.groups.begin(), out.groups.end(),
            [](const GroupFitResult& a, const GroupFitResult& b) {
              return a.group_key < b.group_key;
            });
  return out;
}

Result<Table> GroupedFitToTable(const Model& model,
                                const GroupedFitOutput& fits,
                                const std::string& group_name) {
  std::vector<Field> fields;
  fields.push_back(Field{group_name, DataType::kInt64, false});
  for (const std::string& pname : model.parameter_names()) {
    fields.push_back(Field{pname, DataType::kDouble, false});
  }
  fields.push_back(Field{"residual_se", DataType::kDouble, false});
  fields.push_back(Field{"r_squared", DataType::kDouble, false});
  fields.push_back(Field{"n_obs", DataType::kInt64, false});

  Table table{Schema(std::move(fields))};
  std::vector<Value> row;
  for (const GroupFitResult& g : fits.groups) {
    row.clear();
    row.push_back(Value::Int64(g.group_key));
    for (double p : g.fit.parameters) row.push_back(Value::Double(p));
    row.push_back(Value::Double(g.fit.quality.residual_standard_error));
    row.push_back(Value::Double(g.fit.quality.r_squared));
    row.push_back(
        Value::Int64(static_cast<int64_t>(g.fit.quality.n_observations)));
    LAWS_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace laws

#ifndef LAWSDB_MODEL_GROUPED_FIT_H_
#define LAWSDB_MODEL_GROUPED_FIT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/fit.h"
#include "storage/table.h"

namespace laws {

/// Describes a per-group fit over a table, the paper's §2 workload: fit
/// I = p * nu^alpha for every LOFAR source. The group column must be INT64
/// (source ids, SKUs, sensor ids, ...).
struct GroupedFitSpec {
  std::string group_column;
  std::vector<std::string> input_columns;
  std::string output_column;
  FitOptions fit_options;
  /// Groups with fewer usable observations than max(num_parameters + 1,
  /// min_observations) are skipped (counted in skipped_too_few).
  size_t min_observations = 0;
};

/// Fit result for one group.
struct GroupFitResult {
  int64_t group_key = 0;
  FitOutput fit;
};

/// All per-group fits plus bookkeeping about groups that could not be
/// fitted.
struct GroupedFitOutput {
  std::vector<GroupFitResult> groups;
  /// Groups skipped for having too few observations.
  size_t skipped_too_few = 0;
  /// Groups whose fit returned an error (singular/diverged).
  size_t failed = 0;
  /// Total rows consumed from the source table.
  size_t rows_processed = 0;
};

/// Runs the grouped fit. Rows with NULL in any referenced column are
/// ignored. Groups are returned sorted by key.
Result<GroupedFitOutput> FitGrouped(const Model& model, const Table& table,
                                    const GroupedFitSpec& spec);

/// Materializes the grouped-fit output as a parameter table — the paper's
/// Table 1 right-hand side. Schema: [<group_name> INT64, <one DOUBLE column
/// per model parameter>, residual_se DOUBLE, r_squared DOUBLE, n_obs INT64].
Result<Table> GroupedFitToTable(const Model& model,
                                const GroupedFitOutput& fits,
                                const std::string& group_name);

}  // namespace laws

#endif  // LAWSDB_MODEL_GROUPED_FIT_H_

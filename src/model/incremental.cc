#include "model/incremental.h"

#include <cmath>

#include "linalg/solve.h"

namespace laws {

IncrementalOls::IncrementalOls(ModelPtr model)
    : model_(std::move(model)),
      xtx_(model_->num_parameters(), model_->num_parameters()),
      xty_(model_->num_parameters(), 0.0) {}

Result<IncrementalOls> IncrementalOls::Create(const Model& model) {
  if (!model.IsLinearInParameters()) {
    return Status::InvalidArgument(
        "incremental OLS requires a model linear in its parameters");
  }
  return IncrementalOls(model.Clone());
}

Status IncrementalOls::Add(const Vector& inputs, double y) {
  if (inputs.size() != model_->num_inputs()) {
    return Status::InvalidArgument("input arity mismatch");
  }
  Vector& phi = phi_;
  LAWS_RETURN_IF_ERROR(model_->BasisFunctions(inputs, &phi));
  const size_t p = phi.size();
  for (size_t i = 0; i < p; ++i) {
    xty_[i] += phi[i] * y;
    for (size_t j = 0; j < p; ++j) {
      xtx_(i, j) += phi[i] * phi[j];
    }
  }
  sum_y_ += y;
  sum_y2_ += y * y;
  ++n_;
  return Status::OK();
}

Status IncrementalOls::AddBatch(const Matrix& inputs, const Vector& y) {
  if (inputs.rows() != y.size()) {
    return Status::InvalidArgument("batch size mismatch");
  }
  Vector x(inputs.cols());
  for (size_t r = 0; r < inputs.rows(); ++r) {
    for (size_t c = 0; c < inputs.cols(); ++c) x[c] = inputs(r, c);
    LAWS_RETURN_IF_ERROR(Add(x, y[r]));
  }
  return Status::OK();
}

Status IncrementalOls::Merge(const IncrementalOls& other) {
  if (other.model_->ToSource() != model_->ToSource()) {
    return Status::InvalidArgument("merging accumulators of different models");
  }
  const size_t p = xty_.size();
  for (size_t i = 0; i < p; ++i) {
    xty_[i] += other.xty_[i];
    for (size_t j = 0; j < p; ++j) xtx_(i, j) += other.xtx_(i, j);
  }
#ifdef LAWS_TESTING_INJECT_BUG
  // Planted mutant for the learning-harness smoke test: corrupt one
  // merged sufficient statistic. Every scan-local accumulator merged into
  // a stored candidate drifts Phi^T y a little further from the data, so
  // the harvested parameters silently diverge from a batch OLS over the
  // same rows — exactly what VerifyCandidatesAgainstBatch must catch.
  xty_[0] += 1.0;
#endif
  sum_y_ += other.sum_y_;
  sum_y2_ += other.sum_y2_;
  n_ += other.n_;
  return Status::OK();
}

Result<FitOutput> IncrementalOls::Solve() const {
  const size_t p = model_->num_parameters();
  if (n_ <= p) {
    return Status::InvalidArgument(
        "need more observations than parameters (n > p)");
  }
  LAWS_ASSIGN_OR_RETURN(Vector beta, CholeskySolve(xtx_, xty_));

  FitOutput out;
  out.parameters = beta;
  out.converged = true;
  out.iterations = 1;
  out.algorithm_used = FitAlgorithm::kOlsNormalEquations;

  // Quality from the sufficient statistics:
  //   RSS = y'y - 2 b'X'y + b'X'Xb,  TSS = y'y - n*mean^2.
  const double nd = static_cast<double>(n_);
  double bxtxb = 0.0;
  for (size_t i = 0; i < p; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < p; ++j) acc += xtx_(i, j) * beta[j];
    bxtxb += beta[i] * acc;
  }
  double rss = sum_y2_ - 2.0 * Dot(beta, xty_) + bxtxb;
  rss = std::max(rss, 0.0);  // guard cancellation
  const double mean = sum_y_ / nd;
  const double tss = std::max(sum_y2_ - nd * mean * mean, 0.0);

  FitQuality q;
  q.n_observations = n_;
  q.n_parameters = p;
  q.residual_sum_of_squares = rss;
  q.total_sum_of_squares = tss;
  q.r_squared = tss > 0.0 ? 1.0 - rss / tss : (rss == 0.0 ? 1.0 : 0.0);
  const double pd = static_cast<double>(p);
  q.adjusted_r_squared =
      tss > 0.0 ? 1.0 - (rss / (nd - pd)) / (tss / (nd - 1.0)) : q.r_squared;
  q.residual_standard_error = std::sqrt(rss / (nd - pd));
  const double sigma2 = std::max(rss / nd, 1e-300);
  const double log_lik = -0.5 * nd * (std::log(2.0 * M_PI * sigma2) + 1.0);
  q.aic = 2.0 * (pd + 1.0) - 2.0 * log_lik;
  q.bic = std::log(nd) * (pd + 1.0) - 2.0 * log_lik;
  out.quality = q;

  // Standard errors from sigma^2 (X'X)^{-1}.
  auto inv = Invert(xtx_);
  if (inv.ok()) {
    const double s2 = rss / (nd - pd);
    out.standard_errors.assign(p, 0.0);
    for (size_t i = 0; i < p; ++i) {
      const double v = s2 * (*inv)(i, i);
      out.standard_errors[i] = v > 0.0 ? std::sqrt(v) : 0.0;
    }
  }
  return out;
}

}  // namespace laws

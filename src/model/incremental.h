#ifndef LAWSDB_MODEL_INCREMENTAL_H_
#define LAWSDB_MODEL_INCREMENTAL_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "model/fit.h"
#include "model/model.h"

namespace laws {

/// Incremental OLS for models linear in their parameters. Maintains the
/// sufficient statistics (Phi^T Phi, Phi^T y, sum y, sum y^2, n) so
/// appended observations update the fit in O(p^2) per row without ever
/// revisiting old data — the paper's observation that "if ten times more
/// observations per source are collected, the model will only get more
/// precise, not larger in terms of storage or processing requirements"
/// made operational. Accumulators are mergeable, so partial fits combine
/// across partitions or refresh epochs.
///
/// The trade-off vs FitModel(kOls): this is the normal-equations path, so
/// it inherits the squared condition number (see the solver ablation).
class IncrementalOls {
 public:
  /// `model` must be linear in its parameters; it is cloned.
  /// Check ok() (via Create) before use.
  static Result<IncrementalOls> Create(const Model& model);

  IncrementalOls(IncrementalOls&&) = default;
  IncrementalOls& operator=(IncrementalOls&&) = default;
  IncrementalOls(const IncrementalOls&) = delete;
  IncrementalOls& operator=(const IncrementalOls&) = delete;

  /// Folds in one observation.
  Status Add(const Vector& inputs, double y);

  /// Folds in a batch (rows of `inputs` paired with `y`).
  Status AddBatch(const Matrix& inputs, const Vector& y);

  /// Combines another accumulator over the same model class.
  Status Merge(const IncrementalOls& other);

  size_t count() const { return n_; }

  // Sufficient-statistic accessors, used by self-checks (the learning
  // harness re-accumulates a candidate's rows in one pass and compares
  // statistics entrywise) and diagnostics. Solved parameters are NOT the
  // right thing to compare across accumulation orders: the Gram solve
  // amplifies reassociation noise by the squared condition number.
  const Matrix& gram() const { return xtx_; }
  const Vector& moment() const { return xty_; }
  double sum_y() const { return sum_y_; }
  double sum_y2() const { return sum_y2_; }

  /// Solves the accumulated normal equations. Needs n > p; NumericError
  /// for singular Gram matrices. Can be called repeatedly as data
  /// accumulates.
  Result<FitOutput> Solve() const;

 private:
  explicit IncrementalOls(ModelPtr model);

  ModelPtr model_;
  Matrix xtx_;   // Phi^T Phi
  Vector xty_;   // Phi^T y
  Vector phi_;   // basis-function staging, reused across Add() calls
  double sum_y_ = 0.0;
  double sum_y2_ = 0.0;
  size_t n_ = 0;
};

}  // namespace laws

#endif  // LAWSDB_MODEL_INCREMENTAL_H_

#include "model/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "linalg/solve.h"

namespace laws {
namespace {

constexpr double kNumericStep = 1e-6;

double StepFor(double v) {
  return kNumericStep * std::max(1.0, std::fabs(v));
}

}  // namespace

void Model::ParameterGradient(const Vector& inputs, const Vector& params,
                              Vector* grad) const {
  grad->assign(num_parameters(), 0.0);
  Vector p = params;
  for (size_t j = 0; j < num_parameters(); ++j) {
    const double h = StepFor(params[j]);
    p[j] = params[j] + h;
    const double fp = Evaluate(inputs, p);
    p[j] = params[j] - h;
    const double fm = Evaluate(inputs, p);
    p[j] = params[j];
    (*grad)[j] = (fp - fm) / (2.0 * h);
  }
}

void Model::InputGradient(const Vector& inputs, const Vector& params,
                          Vector* grad) const {
  grad->assign(num_inputs(), 0.0);
  Vector x = inputs;
  for (size_t j = 0; j < num_inputs(); ++j) {
    const double h = StepFor(inputs[j]);
    x[j] = inputs[j] + h;
    const double fp = Evaluate(x, params);
    x[j] = inputs[j] - h;
    const double fm = Evaluate(x, params);
    x[j] = inputs[j];
    (*grad)[j] = (fp - fm) / (2.0 * h);
  }
}

Status Model::BasisFunctions(const Vector& /*inputs*/, Vector* /*phi*/) const {
  return Status::Unimplemented("model '" + name() +
                               "' is not linear in its parameters");
}

bool Model::LogLinearEstimate(const Matrix& /*inputs*/,
                              const Vector& /*outputs*/,
                              Vector* /*params*/) const {
  return false;
}

// --- LinearModel -----------------------------------------------------------

std::vector<std::string> LinearModel::parameter_names() const {
  std::vector<std::string> names = {"intercept"};
  for (size_t i = 0; i < num_inputs_; ++i) {
    names.push_back("b" + std::to_string(i + 1));
  }
  return names;
}

double LinearModel::Evaluate(const Vector& inputs,
                             const Vector& params) const {
  double y = params[0];
  for (size_t i = 0; i < num_inputs_; ++i) y += params[i + 1] * inputs[i];
  return y;
}

void LinearModel::ParameterGradient(const Vector& inputs,
                                    const Vector& /*params*/,
                                    Vector* grad) const {
  grad->assign(num_parameters(), 0.0);
  (*grad)[0] = 1.0;
  for (size_t i = 0; i < num_inputs_; ++i) (*grad)[i + 1] = inputs[i];
}

void LinearModel::InputGradient(const Vector& /*inputs*/,
                                const Vector& params, Vector* grad) const {
  grad->assign(num_inputs_, 0.0);
  for (size_t i = 0; i < num_inputs_; ++i) (*grad)[i] = params[i + 1];
}

Status LinearModel::BasisFunctions(const Vector& inputs, Vector* phi) const {
  phi->assign(num_parameters(), 0.0);
  (*phi)[0] = 1.0;
  for (size_t i = 0; i < num_inputs_; ++i) (*phi)[i + 1] = inputs[i];
  return Status::OK();
}

bool LinearModel::Linearization(ModelLinearization* out) const {
  if (num_inputs_ != 1) return false;
  *out = ModelLinearization{};  // identity transforms, {b0, b1} directly
  return true;
}

std::string LinearModel::ToSource() const {
  return "linear(" + std::to_string(num_inputs_) + ")";
}

std::string LinearModel::Formula() const {
  std::string f = "y = b0";
  for (size_t i = 0; i < num_inputs_; ++i) {
    f += " + b" + std::to_string(i + 1) + "*x" + std::to_string(i);
  }
  return f;
}

// --- PolynomialModel -------------------------------------------------------

std::vector<std::string> PolynomialModel::parameter_names() const {
  std::vector<std::string> names;
  for (size_t i = 0; i <= degree_; ++i) {
    names.push_back("c" + std::to_string(i));
  }
  return names;
}

double PolynomialModel::Evaluate(const Vector& inputs,
                                 const Vector& params) const {
  // Horner's scheme.
  const double x = inputs[0];
  double y = params[degree_];
  for (size_t i = degree_; i > 0; --i) y = y * x + params[i - 1];
  return y;
}

void PolynomialModel::ParameterGradient(const Vector& inputs,
                                        const Vector& /*params*/,
                                        Vector* grad) const {
  grad->assign(num_parameters(), 0.0);
  const double x = inputs[0];
  double pow = 1.0;
  for (size_t i = 0; i <= degree_; ++i) {
    (*grad)[i] = pow;
    pow *= x;
  }
}

void PolynomialModel::InputGradient(const Vector& inputs,
                                    const Vector& params,
                                    Vector* grad) const {
  grad->assign(1, 0.0);
  const double x = inputs[0];
  double pow = 1.0;
  for (size_t i = 1; i <= degree_; ++i) {
    (*grad)[0] += static_cast<double>(i) * params[i] * pow;
    pow *= x;
  }
}

Status PolynomialModel::BasisFunctions(const Vector& inputs,
                                       Vector* phi) const {
  phi->assign(num_parameters(), 0.0);
  double pow = 1.0;
  for (size_t i = 0; i <= degree_; ++i) {
    (*phi)[i] = pow;
    pow *= inputs[0];
  }
  return Status::OK();
}

std::string PolynomialModel::ToSource() const {
  return "poly(" + std::to_string(degree_) + ")";
}

std::string PolynomialModel::Formula() const {
  std::string f = "y = c0";
  for (size_t i = 1; i <= degree_; ++i) {
    f += " + c" + std::to_string(i) + "*x0^" + std::to_string(i);
  }
  return f;
}

// --- PowerLawModel ---------------------------------------------------------

double PowerLawModel::Evaluate(const Vector& inputs,
                               const Vector& params) const {
  return params[0] * std::pow(inputs[0], params[1]);
}

void PowerLawModel::ParameterGradient(const Vector& inputs,
                                      const Vector& params,
                                      Vector* grad) const {
  grad->assign(2, 0.0);
  const double x = inputs[0];
  const double xa = std::pow(x, params[1]);
  (*grad)[0] = xa;                                          // d/dp
  (*grad)[1] = x > 0.0 ? params[0] * xa * std::log(x) : 0.0;  // d/dalpha
}

void PowerLawModel::InputGradient(const Vector& inputs, const Vector& params,
                                  Vector* grad) const {
  grad->assign(1, 0.0);
  (*grad)[0] = params[0] * params[1] * std::pow(inputs[0], params[1] - 1.0);
}

bool PowerLawModel::LogLinearEstimate(const Matrix& inputs,
                                      const Vector& outputs,
                                      Vector* params) const {
  const size_t n = outputs.size();
  if (n < 2 || inputs.cols() < 1) return false;
  Matrix design(n, 2);
  Vector logy(n);
  for (size_t i = 0; i < n; ++i) {
    if (inputs(i, 0) <= 0.0 || outputs[i] <= 0.0) return false;
    design(i, 0) = 1.0;
    design(i, 1) = std::log(inputs(i, 0));
    logy[i] = std::log(outputs[i]);
  }
  auto beta = LeastSquaresQr(design, logy);
  if (!beta.ok()) return false;
  params->assign(2, 0.0);
  (*params)[0] = std::exp((*beta)[0]);
  (*params)[1] = (*beta)[1];
  return true;
}

bool PowerLawModel::Linearization(ModelLinearization* out) const {
  out->x_transform = NumericTransform::kLog;
  out->y_transform = NumericTransform::kLog;
  out->param_map = ModelLinearization::ParamMap::kExpInterceptSlope;
  return true;
}

// --- ExponentialModel ------------------------------------------------------

double ExponentialModel::Evaluate(const Vector& inputs,
                                  const Vector& params) const {
  return params[0] * std::exp(params[1] * inputs[0]);
}

void ExponentialModel::ParameterGradient(const Vector& inputs,
                                         const Vector& params,
                                         Vector* grad) const {
  grad->assign(2, 0.0);
  const double e = std::exp(params[1] * inputs[0]);
  (*grad)[0] = e;
  (*grad)[1] = params[0] * inputs[0] * e;
}

void ExponentialModel::InputGradient(const Vector& inputs,
                                     const Vector& params,
                                     Vector* grad) const {
  grad->assign(1, 0.0);
  (*grad)[0] = params[0] * params[1] * std::exp(params[1] * inputs[0]);
}

bool ExponentialModel::LogLinearEstimate(const Matrix& inputs,
                                         const Vector& outputs,
                                         Vector* params) const {
  const size_t n = outputs.size();
  if (n < 2 || inputs.cols() < 1) return false;
  Matrix design(n, 2);
  Vector logy(n);
  for (size_t i = 0; i < n; ++i) {
    if (outputs[i] <= 0.0) return false;
    design(i, 0) = 1.0;
    design(i, 1) = inputs(i, 0);
    logy[i] = std::log(outputs[i]);
  }
  auto beta = LeastSquaresQr(design, logy);
  if (!beta.ok()) return false;
  params->assign(2, 0.0);
  (*params)[0] = std::exp((*beta)[0]);
  (*params)[1] = (*beta)[1];
  return true;
}

bool ExponentialModel::Linearization(ModelLinearization* out) const {
  out->x_transform = NumericTransform::kIdentity;
  out->y_transform = NumericTransform::kLog;
  out->param_map = ModelLinearization::ParamMap::kExpInterceptSlope;
  return true;
}

// --- LogisticModel ---------------------------------------------------------

double LogisticModel::Evaluate(const Vector& inputs,
                               const Vector& params) const {
  const double z = -params[1] * (inputs[0] - params[2]);
  return params[0] / (1.0 + std::exp(z));
}

void LogisticModel::ParameterGradient(const Vector& inputs,
                                      const Vector& params,
                                      Vector* grad) const {
  grad->assign(3, 0.0);
  const double L = params[0];
  const double k = params[1];
  const double x0 = params[2];
  const double e = std::exp(-k * (inputs[0] - x0));
  const double denom = 1.0 + e;
  (*grad)[0] = 1.0 / denom;                                     // dL
  (*grad)[1] = L * e * (inputs[0] - x0) / (denom * denom);      // dk
  (*grad)[2] = -L * e * k / (denom * denom);                    // dx0
}

// --- SeasonalModel ---------------------------------------------------------

std::vector<std::string> SeasonalModel::parameter_names() const {
  std::vector<std::string> names = {"level", "sin", "cos"};
  if (with_trend_) names.push_back("trend");
  return names;
}

double SeasonalModel::Evaluate(const Vector& inputs,
                               const Vector& params) const {
  const double w = 2.0 * M_PI * inputs[0] / period_;
  double y = params[0] + params[1] * std::sin(w) + params[2] * std::cos(w);
  if (with_trend_) y += params[3] * inputs[0];
  return y;
}

void SeasonalModel::ParameterGradient(const Vector& inputs,
                                      const Vector& /*params*/,
                                      Vector* grad) const {
  Vector phi;
  (void)BasisFunctions(inputs, &phi);
  *grad = phi;
}

Status SeasonalModel::BasisFunctions(const Vector& inputs,
                                     Vector* phi) const {
  phi->assign(num_parameters(), 0.0);
  const double w = 2.0 * M_PI * inputs[0] / period_;
  (*phi)[0] = 1.0;
  (*phi)[1] = std::sin(w);
  (*phi)[2] = std::cos(w);
  if (with_trend_) (*phi)[3] = inputs[0];
  return Status::OK();
}

std::string SeasonalModel::ToSource() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seasonal(%.17g%s)", period_,
                with_trend_ ? "" : ",notrend");
  return buf;
}

std::string SeasonalModel::Formula() const {
  std::string f = "y = level + a*sin(2pi*x0/T) + b*cos(2pi*x0/T)";
  if (with_trend_) f += " + trend*x0";
  return f;
}

// --- GaussianPeakModel -------------------------------------------------------

double GaussianPeakModel::Evaluate(const Vector& inputs,
                                   const Vector& params) const {
  const double d = inputs[0] - params[1];
  const double s2 = params[2] * params[2];
  return params[0] * std::exp(-d * d / (2.0 * s2));
}

void GaussianPeakModel::ParameterGradient(const Vector& inputs,
                                          const Vector& params,
                                          Vector* grad) const {
  grad->assign(3, 0.0);
  const double amp = params[0];
  const double mu = params[1];
  const double sigma = params[2];
  const double d = inputs[0] - mu;
  const double s2 = sigma * sigma;
  const double e = std::exp(-d * d / (2.0 * s2));
  (*grad)[0] = e;                          // d/d amp
  (*grad)[1] = amp * e * d / s2;           // d/d mu
  (*grad)[2] = amp * e * d * d / (s2 * sigma);  // d/d sigma
}

void GaussianPeakModel::InputGradient(const Vector& inputs,
                                      const Vector& params,
                                      Vector* grad) const {
  grad->assign(1, 0.0);
  const double d = inputs[0] - params[1];
  const double s2 = params[2] * params[2];
  (*grad)[0] = -params[0] * std::exp(-d * d / (2.0 * s2)) * d / s2;
}

bool GaussianPeakModel::LogLinearEstimate(const Matrix& inputs,
                                          const Vector& outputs,
                                          Vector* params) const {
  const size_t n = outputs.size();
  if (n < 3 || inputs.cols() < 1) return false;
  // Moment start: treat positive outputs as a density over x.
  double amp = 0.0, wsum = 0.0, mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = std::max(outputs[i], 0.0);
    amp = std::max(amp, outputs[i]);
    wsum += w;
    mean += w * inputs(i, 0);
  }
  if (amp <= 0.0 || wsum <= 0.0) return false;
  mean /= wsum;
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = std::max(outputs[i], 0.0);
    const double d = inputs(i, 0) - mean;
    var += w * d * d;
  }
  var /= wsum;
  if (!(var > 0.0)) return false;
  params->assign(3, 0.0);
  (*params)[0] = amp;
  (*params)[1] = mean;
  (*params)[2] = std::sqrt(var);
  return true;
}

// --- LogLawModel -------------------------------------------------------------

double LogLawModel::Evaluate(const Vector& inputs,
                             const Vector& params) const {
  return params[0] + params[1] * std::log(inputs[0]);
}

void LogLawModel::ParameterGradient(const Vector& inputs,
                                    const Vector& /*params*/,
                                    Vector* grad) const {
  grad->assign(2, 0.0);
  (*grad)[0] = 1.0;
  (*grad)[1] = std::log(inputs[0]);
}

void LogLawModel::InputGradient(const Vector& inputs, const Vector& params,
                                Vector* grad) const {
  grad->assign(1, 0.0);
  (*grad)[0] = params[1] / inputs[0];
}

bool LogLawModel::Linearization(ModelLinearization* out) const {
  out->x_transform = NumericTransform::kLog;
  out->y_transform = NumericTransform::kIdentity;
  out->param_map = ModelLinearization::ParamMap::kInterceptSlope;
  return true;
}

Status LogLawModel::BasisFunctions(const Vector& inputs, Vector* phi) const {
  if (inputs[0] <= 0.0) {
    return Status::InvalidArgument("log_law requires positive inputs");
  }
  phi->assign(2, 0.0);
  (*phi)[0] = 1.0;
  (*phi)[1] = std::log(inputs[0]);
  return Status::OK();
}

// --- PiecewisePolynomialModel -----------------------------------------------

PiecewisePolynomialModel::PiecewisePolynomialModel(
    std::vector<double> breakpoints, size_t degree)
    : breakpoints_(std::move(breakpoints)), degree_(degree) {}

size_t PiecewisePolynomialModel::SegmentOf(double x) const {
  // First breakpoint > x determines the segment.
  const auto it =
      std::upper_bound(breakpoints_.begin(), breakpoints_.end(), x);
  return static_cast<size_t>(it - breakpoints_.begin());
}

std::vector<std::string> PiecewisePolynomialModel::parameter_names() const {
  std::vector<std::string> names;
  for (size_t s = 0; s < num_segments(); ++s) {
    for (size_t d = 0; d <= degree_; ++d) {
      names.push_back("s" + std::to_string(s) + "_c" + std::to_string(d));
    }
  }
  return names;
}

double PiecewisePolynomialModel::Evaluate(const Vector& inputs,
                                          const Vector& params) const {
  const double x = inputs[0];
  const size_t seg = SegmentOf(x);
  const size_t base = seg * (degree_ + 1);
  double y = params[base + degree_];
  for (size_t i = degree_; i > 0; --i) y = y * x + params[base + i - 1];
  return y;
}

Status PiecewisePolynomialModel::BasisFunctions(const Vector& inputs,
                                                Vector* phi) const {
  phi->assign(num_parameters(), 0.0);
  const double x = inputs[0];
  const size_t base = SegmentOf(x) * (degree_ + 1);
  double pow = 1.0;
  for (size_t i = 0; i <= degree_; ++i) {
    (*phi)[base + i] = pow;
    pow *= x;
  }
  return Status::OK();
}

std::string PiecewisePolynomialModel::ToSource() const {
  std::string src = "piecewise_poly(" + std::to_string(degree_) + ";";
  char buf[64];
  for (size_t i = 0; i < breakpoints_.size(); ++i) {
    if (i > 0) src += ",";
    std::snprintf(buf, sizeof(buf), "%.17g", breakpoints_[i]);
    src += buf;
  }
  src += ")";
  return src;
}

std::string PiecewisePolynomialModel::Formula() const {
  return "y = poly_s(x0) for segment s of " +
         std::to_string(num_segments()) + " (degree " +
         std::to_string(degree_) + ")";
}

// --- ModelFromSource --------------------------------------------------------

Result<ModelPtr> ModelFromSource(const std::string& source) {
  const std::string src(Trim(source));
  auto parse_args = [&](std::string_view name) -> Result<std::string> {
    if (!StartsWith(src, std::string(name) + "(") || src.back() != ')') {
      return Status::ParseError("malformed model source: " + src);
    }
    return src.substr(name.size() + 1, src.size() - name.size() - 2);
  };

  if (src == "power_law") return ModelPtr(new PowerLawModel());
  if (src == "exponential") return ModelPtr(new ExponentialModel());
  if (src == "logistic") return ModelPtr(new LogisticModel());
  if (src == "gaussian_peak") return ModelPtr(new GaussianPeakModel());
  if (src == "log_law") return ModelPtr(new LogLawModel());
  if (StartsWith(src, "linear(")) {
    LAWS_ASSIGN_OR_RETURN(std::string args, parse_args("linear"));
    const long k = std::strtol(args.c_str(), nullptr, 10);
    if (k < 1) return Status::ParseError("linear() needs >= 1 input");
    return ModelPtr(new LinearModel(static_cast<size_t>(k)));
  }
  if (StartsWith(src, "poly(")) {
    LAWS_ASSIGN_OR_RETURN(std::string args, parse_args("poly"));
    const long d = std::strtol(args.c_str(), nullptr, 10);
    if (d < 0) return Status::ParseError("poly() needs degree >= 0");
    return ModelPtr(new PolynomialModel(static_cast<size_t>(d)));
  }
  if (StartsWith(src, "seasonal(")) {
    LAWS_ASSIGN_OR_RETURN(std::string args, parse_args("seasonal"));
    const std::vector<std::string> parts = Split(args, ',');
    const double period = std::strtod(parts[0].c_str(), nullptr);
    if (!(period > 0.0)) return Status::ParseError("seasonal() needs T > 0");
    const bool with_trend =
        parts.size() < 2 || std::string(Trim(parts[1])) != "notrend";
    return ModelPtr(new SeasonalModel(period, with_trend));
  }
  if (StartsWith(src, "piecewise_poly(")) {
    LAWS_ASSIGN_OR_RETURN(std::string args, parse_args("piecewise_poly"));
    const std::vector<std::string> halves = Split(args, ';');
    if (halves.size() != 2) {
      return Status::ParseError("piecewise_poly(degree;b1,b2,...) expected");
    }
    const long d = std::strtol(halves[0].c_str(), nullptr, 10);
    if (d < 0) return Status::ParseError("bad piecewise degree");
    std::vector<double> breaks;
    if (!Trim(halves[1]).empty()) {
      for (const std::string& b : Split(halves[1], ',')) {
        breaks.push_back(std::strtod(b.c_str(), nullptr));
      }
    }
    for (size_t i = 1; i < breaks.size(); ++i) {
      if (breaks[i] <= breaks[i - 1]) {
        return Status::ParseError("breakpoints must be strictly increasing");
      }
    }
    return ModelPtr(
        new PiecewisePolynomialModel(std::move(breaks), static_cast<size_t>(d)));
  }
  return Status::ParseError("unknown model source: " + src);
}

}  // namespace laws

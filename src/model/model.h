#ifndef LAWSDB_MODEL_MODEL_H_
#define LAWSDB_MODEL_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/numeric_transform.h"
#include "common/result.h"
#include "linalg/matrix.h"

namespace laws {

/// Exact linearization of a two-parameter, single-input model: after
/// transforming x' = t_x(x) and y' = t_y(y), the fit is the closed-form
/// simple regression y' = b0 + b1 * x'. The specialized fit kernels (see
/// model/fit_kernels.h) use this to bypass design matrices and solvers
/// entirely — the paper's power law I = p * nu^alpha becomes log-log OLS
/// over five running sums.
struct ModelLinearization {
  NumericTransform x_transform = NumericTransform::kIdentity;
  NumericTransform y_transform = NumericTransform::kIdentity;
  /// How the transformed-space (b0, b1) map back onto the model's two
  /// parameters, in parameter_names() order.
  enum class ParamMap : uint8_t {
    /// params = {b0, b1} (linear, log law).
    kInterceptSlope,
    /// params = {exp(b0), b1} (power law, exponential).
    kExpInterceptSlope,
  };
  ParamMap param_map = ParamMap::kInterceptSlope;
};

/// A user-supplied statistical model, the paper's central object (§3):
/// "an arbitrary function of the input variables and various constant but
/// unknown parameters". Implementations provide the function, its dimension
/// metadata, and (optionally) analytic derivatives and linear structure.
///
/// Models are stored in the model catalog in a textual source form
/// (ToSource) and reconstructed with ModelFromSource, mirroring the paper's
/// "store the models in their source code form inside the database".
class Model {
 public:
  virtual ~Model() = default;

  /// Short type name ("power_law", "linear", ...).
  virtual std::string name() const = 0;

  /// Number of unknown parameters beta.
  virtual size_t num_parameters() const = 0;

  /// Number of input variables x.
  virtual size_t num_inputs() const = 0;

  /// Human-readable parameter names, in order ("p", "alpha", ...).
  virtual std::vector<std::string> parameter_names() const = 0;

  /// Evaluates f(x; beta). `inputs` has num_inputs entries, `params`
  /// num_parameters.
  virtual double Evaluate(const Vector& inputs,
                          const Vector& params) const = 0;

  /// Gradient of f with respect to the parameters at (x, beta); fills
  /// `grad` (resized to num_parameters). Default: central differences.
  virtual void ParameterGradient(const Vector& inputs, const Vector& params,
                                 Vector* grad) const;

  /// Gradient of f with respect to the inputs at (x, beta); fills `grad`
  /// (resized to num_inputs). Default: central differences. Used by the
  /// model-exploration opportunity (high-gradient region finding, §4.2).
  virtual void InputGradient(const Vector& inputs, const Vector& params,
                             Vector* grad) const;

  /// True when f(x; beta) = sum_j beta_j * phi_j(x): the fit has an exact
  /// OLS solution and aggregate queries admit analytic answers (§4.2).
  virtual bool IsLinearInParameters() const { return false; }

  /// For linear-in-parameters models: evaluates the basis functions
  /// phi_j(x) into `phi` (resized to num_parameters). Unimplemented
  /// otherwise.
  virtual Status BasisFunctions(const Vector& inputs, Vector* phi) const;

  /// Optional closed-form parameter estimate via transformation (e.g.
  /// power law / exponential fit by OLS in log space). Returns false when
  /// the model has no such transformation or the data violates its domain;
  /// fitters use it to obtain starting values.
  virtual bool LogLinearEstimate(const Matrix& inputs, const Vector& outputs,
                                 Vector* params) const;

  /// Optional exact linearization y' = b0 + b1 * x' (see
  /// ModelLinearization). When provided, the fit kernels solve the model
  /// in closed form with no matrix or solver; data that violates the
  /// transform domain (log of a non-positive value) is detected at fit
  /// time and routed to the iterative path. Returns false when the model
  /// has no such structure.
  virtual bool Linearization(ModelLinearization* /*out*/) const {
    return false;
  }

  /// Reasonable default starting parameters for iterative fitting.
  virtual Vector InitialParameters() const {
    return Vector(num_parameters(), 1.0);
  }

  /// Serializes the model structure (not fitted parameters) as source text,
  /// e.g. "power_law" or "poly(3)". Round-trips through ModelFromSource.
  virtual std::string ToSource() const = 0;

  /// Formula rendering with parameter placeholders, for documentation and
  /// EXPLAIN output, e.g. "y = p * x0^alpha".
  virtual std::string Formula() const = 0;

  virtual std::unique_ptr<Model> Clone() const = 0;
};

using ModelPtr = std::unique_ptr<Model>;

/// y = b0 + b1*x0 + ... + bk*x{k-1}: affine model over k inputs (intercept
/// included). Linear in parameters.
class LinearModel : public Model {
 public:
  explicit LinearModel(size_t num_inputs) : num_inputs_(num_inputs) {}

  std::string name() const override { return "linear"; }
  size_t num_parameters() const override { return num_inputs_ + 1; }
  size_t num_inputs() const override { return num_inputs_; }
  std::vector<std::string> parameter_names() const override;
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  void InputGradient(const Vector& inputs, const Vector& params,
                     Vector* grad) const override;
  bool IsLinearInParameters() const override { return true; }
  Status BasisFunctions(const Vector& inputs, Vector* phi) const override;
  /// Single-input linear regression is its own (identity) linearization.
  bool Linearization(ModelLinearization* out) const override;
  std::string ToSource() const override;
  std::string Formula() const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<LinearModel>(num_inputs_);
  }

 private:
  size_t num_inputs_;
};

/// y = b0 + b1*x + ... + bd*x^d: univariate polynomial of degree d. Linear
/// in parameters.
class PolynomialModel : public Model {
 public:
  explicit PolynomialModel(size_t degree) : degree_(degree) {}

  std::string name() const override { return "poly"; }
  size_t degree() const { return degree_; }
  size_t num_parameters() const override { return degree_ + 1; }
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override;
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  void InputGradient(const Vector& inputs, const Vector& params,
                     Vector* grad) const override;
  bool IsLinearInParameters() const override { return true; }
  Status BasisFunctions(const Vector& inputs, Vector* phi) const override;
  std::string ToSource() const override;
  std::string Formula() const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<PolynomialModel>(degree_);
  }

 private:
  size_t degree_;
};

/// I = p * nu^alpha: the paper's LOFAR spectral model (§2). Nonlinear, but
/// log-linearizable when all observations are positive.
class PowerLawModel : public Model {
 public:
  PowerLawModel() = default;

  std::string name() const override { return "power_law"; }
  size_t num_parameters() const override { return 2; }  // p, alpha
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override {
    return {"p", "alpha"};
  }
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  void InputGradient(const Vector& inputs, const Vector& params,
                     Vector* grad) const override;
  bool LogLinearEstimate(const Matrix& inputs, const Vector& outputs,
                         Vector* params) const override;
  /// log y = log p + alpha * log x: exact log-log OLS.
  bool Linearization(ModelLinearization* out) const override;
  Vector InitialParameters() const override { return {1.0, -1.0}; }
  std::string ToSource() const override { return "power_law"; }
  std::string Formula() const override { return "y = p * x0^alpha"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<PowerLawModel>();
  }
};

/// y = a * exp(b*x): exponential growth/decay. Nonlinear,
/// log-linearizable for positive observations.
class ExponentialModel : public Model {
 public:
  ExponentialModel() = default;

  std::string name() const override { return "exponential"; }
  size_t num_parameters() const override { return 2; }  // a, b
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override {
    return {"a", "b"};
  }
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  void InputGradient(const Vector& inputs, const Vector& params,
                     Vector* grad) const override;
  bool LogLinearEstimate(const Matrix& inputs, const Vector& outputs,
                         Vector* params) const override;
  /// log y = log a + b * x: exact semilog OLS.
  bool Linearization(ModelLinearization* out) const override;
  Vector InitialParameters() const override { return {1.0, 0.1}; }
  std::string ToSource() const override { return "exponential"; }
  std::string Formula() const override { return "y = a * exp(b * x0)"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<ExponentialModel>();
  }
};

/// y = L / (1 + exp(-k*(x - x0))): logistic curve. Nonlinear.
class LogisticModel : public Model {
 public:
  LogisticModel() = default;

  std::string name() const override { return "logistic"; }
  size_t num_parameters() const override { return 3; }  // L, k, x0
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override {
    return {"L", "k", "x0"};
  }
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  Vector InitialParameters() const override { return {1.0, 1.0, 0.0}; }
  std::string ToSource() const override { return "logistic"; }
  std::string Formula() const override {
    return "y = L / (1 + exp(-k * (x0_in - x0)))";
  }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<LogisticModel>();
  }
};

/// y = b0 + b1*sin(2*pi*x/T) + b2*cos(2*pi*x/T) [+ linear trend b3*x]:
/// seasonal model with known period T. Linear in parameters — the workhorse
/// for the retail workload's planted regularities.
class SeasonalModel : public Model {
 public:
  explicit SeasonalModel(double period, bool with_trend = true)
      : period_(period), with_trend_(with_trend) {}

  std::string name() const override { return "seasonal"; }
  double period() const { return period_; }
  size_t num_parameters() const override { return with_trend_ ? 4 : 3; }
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override;
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  bool IsLinearInParameters() const override { return true; }
  Status BasisFunctions(const Vector& inputs, Vector* phi) const override;
  std::string ToSource() const override;
  std::string Formula() const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<SeasonalModel>(period_, with_trend_);
  }

 private:
  double period_;
  bool with_trend_;
};

/// y = amp * exp(-(x - mu)^2 / (2 sigma^2)): Gaussian peak, the standard
/// spectral-line shape in astronomy and chromatography. Nonlinear.
class GaussianPeakModel : public Model {
 public:
  GaussianPeakModel() = default;

  std::string name() const override { return "gaussian_peak"; }
  size_t num_parameters() const override { return 3; }  // amp, mu, sigma
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override {
    return {"amp", "mu", "sigma"};
  }
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  void InputGradient(const Vector& inputs, const Vector& params,
                     Vector* grad) const override;
  /// Moment-based warm start: amp from the max, mu/sigma from the
  /// amplitude-weighted mean/spread.
  bool LogLinearEstimate(const Matrix& inputs, const Vector& outputs,
                         Vector* params) const override;
  Vector InitialParameters() const override { return {1.0, 0.0, 1.0}; }
  std::string ToSource() const override { return "gaussian_peak"; }
  std::string Formula() const override {
    return "y = amp * exp(-(x0 - mu)^2 / (2*sigma^2))";
  }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<GaussianPeakModel>();
  }
};

/// y = a + b * ln(x): logarithmic law (Weber-Fechner response, coupon
/// collection, loading curves). Linear in its parameters with basis
/// {1, ln x}; requires positive inputs.
class LogLawModel : public Model {
 public:
  LogLawModel() = default;

  std::string name() const override { return "log_law"; }
  size_t num_parameters() const override { return 2; }  // a, b
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override {
    return {"a", "b"};
  }
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  void ParameterGradient(const Vector& inputs, const Vector& params,
                         Vector* grad) const override;
  void InputGradient(const Vector& inputs, const Vector& params,
                     Vector* grad) const override;
  bool IsLinearInParameters() const override { return true; }
  Status BasisFunctions(const Vector& inputs, Vector* phi) const override;
  /// y = a + b * log x: exact OLS over the transformed input.
  bool Linearization(ModelLinearization* out) const override;
  std::string ToSource() const override { return "log_law"; }
  std::string Formula() const override { return "y = a + b * ln(x0)"; }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<LogLawModel>();
  }
};

/// FunctionDB-style piecewise polynomial over fixed breakpoints: each
/// segment [break_i, break_{i+1}) carries its own degree-d polynomial.
/// Linear in parameters (block-diagonal basis).
class PiecewisePolynomialModel : public Model {
 public:
  /// `breakpoints` must be strictly increasing interior breakpoints; with b
  /// breakpoints there are b+1 segments.
  PiecewisePolynomialModel(std::vector<double> breakpoints, size_t degree);

  std::string name() const override { return "piecewise_poly"; }
  const std::vector<double>& breakpoints() const { return breakpoints_; }
  size_t degree() const { return degree_; }
  size_t num_segments() const { return breakpoints_.size() + 1; }
  size_t num_parameters() const override {
    return num_segments() * (degree_ + 1);
  }
  size_t num_inputs() const override { return 1; }
  std::vector<std::string> parameter_names() const override;
  double Evaluate(const Vector& inputs, const Vector& params) const override;
  bool IsLinearInParameters() const override { return true; }
  Status BasisFunctions(const Vector& inputs, Vector* phi) const override;
  std::string ToSource() const override;
  std::string Formula() const override;
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<PiecewisePolynomialModel>(breakpoints_, degree_);
  }

  /// Index of the segment containing x.
  size_t SegmentOf(double x) const;

 private:
  std::vector<double> breakpoints_;
  size_t degree_;
};

/// Reconstructs a model from its ToSource() form. Supported grammar:
///   "linear(<k>)", "poly(<degree>)", "power_law", "exponential",
///   "logistic", "seasonal(<period>[,notrend])",
///   "piecewise_poly(<degree>;b1,b2,...)".
Result<ModelPtr> ModelFromSource(const std::string& source);

}  // namespace laws

#endif  // LAWSDB_MODEL_MODEL_H_

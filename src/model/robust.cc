#include "model/robust.h"

#include <algorithm>
#include <cmath>

#include "linalg/solve.h"

namespace laws {

double MadScale(const Vector& residuals) {
  if (residuals.size() < 2) return 0.0;
  Vector abs_dev(residuals.size());
  Vector sorted = residuals;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  const double median = n % 2 == 1
                            ? sorted[n / 2]
                            : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  for (size_t i = 0; i < n; ++i) {
    abs_dev[i] = std::fabs(residuals[i] - median);
  }
  std::sort(abs_dev.begin(), abs_dev.end());
  const double mad = n % 2 == 1
                         ? abs_dev[n / 2]
                         : 0.5 * (abs_dev[n / 2 - 1] + abs_dev[n / 2]);
  return 1.4826 * mad;
}

Result<FitOutput> FitRobustLinear(const Model& model, const Matrix& inputs,
                                  const Vector& outputs,
                                  const RobustFitOptions& options) {
  if (!model.IsLinearInParameters()) {
    return Status::InvalidArgument(
        "robust fitting implemented for models linear in their parameters");
  }
  if (inputs.rows() != outputs.size()) {
    return Status::InvalidArgument("inputs/outputs row count mismatch");
  }
  if (outputs.size() <= model.num_parameters()) {
    return Status::InvalidArgument(
        "need more observations than parameters (n > p)");
  }
  LAWS_ASSIGN_OR_RETURN(Matrix design, BuildDesignMatrix(model, inputs));
  const size_t n = design.rows();
  const size_t p = design.cols();

  // Start from plain OLS.
  LAWS_ASSIGN_OR_RETURN(Vector beta, LeastSquaresQr(design, outputs));

  Vector weights(n, 1.0);
  size_t iter = 0;
  bool converged = false;
  for (; iter < options.max_iterations && !converged; ++iter) {
    // Residuals and robust scale.
    Vector residuals(n);
    for (size_t i = 0; i < n; ++i) {
      double pred = 0.0;
      for (size_t j = 0; j < p; ++j) pred += design(i, j) * beta[j];
      residuals[i] = outputs[i] - pred;
    }
    const double scale = std::max(MadScale(residuals), 1e-12);
    // Huber weights: 1 inside delta*scale, delta*scale/|r| outside.
    const double cutoff = options.delta * scale;
    for (size_t i = 0; i < n; ++i) {
      const double ar = std::fabs(residuals[i]);
      weights[i] = ar <= cutoff ? 1.0 : cutoff / ar;
    }
    // Weighted least squares: scale rows by sqrt(w).
    Matrix wx(n, p);
    Vector wy(n);
    for (size_t i = 0; i < n; ++i) {
      const double sw = std::sqrt(weights[i]);
      for (size_t j = 0; j < p; ++j) wx(i, j) = sw * design(i, j);
      wy[i] = sw * outputs[i];
    }
    auto next = LeastSquaresQr(wx, wy);
    if (!next.ok()) return next.status();
    double step = 0.0, norm = 0.0;
    for (size_t j = 0; j < p; ++j) {
      step += ((*next)[j] - beta[j]) * ((*next)[j] - beta[j]);
      norm += beta[j] * beta[j];
    }
    beta = std::move(*next);
    if (std::sqrt(step) <= options.tolerance * (1.0 + std::sqrt(norm))) {
      converged = true;
    }
  }

  FitOutput out;
  out.parameters = beta;
  out.iterations = iter;
  out.converged = converged;
  out.algorithm_used = FitAlgorithm::kOls;  // IRLS over OLS sub-steps
  const Vector pred = design.MultiplyVec(beta);
  LAWS_ASSIGN_OR_RETURN(out.quality, ComputeFitQuality(outputs, pred, p));
  return out;
}

}  // namespace laws

#ifndef LAWSDB_MODEL_ROBUST_H_
#define LAWSDB_MODEL_ROBUST_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "model/fit.h"
#include "model/model.h"

namespace laws {

/// Options for robust (Huber) fitting.
struct RobustFitOptions {
  /// Huber threshold in units of the robust residual scale (MAD-based):
  /// residuals beyond `delta` scales get linear rather than quadratic
  /// loss, i.e. bounded influence. 1.345 gives 95% Gaussian efficiency.
  double delta = 1.345;
  size_t max_iterations = 50;
  /// Stop when parameters move less than this (relative).
  double tolerance = 1e-8;
};

/// Robust regression for models linear in their parameters, via
/// iteratively reweighted least squares with Huber weights. The LOFAR
/// use case: a handful of corrupted observations inside an otherwise
/// well-behaved source would drag an OLS fit (and inflate its residual
/// SE, masking the *real* anomalies); the Huber fit bounds their
/// influence. Reports the same FitOutput as FitModel; `quality` is
/// computed on the unweighted residuals so it stays comparable with OLS.
Result<FitOutput> FitRobustLinear(const Model& model, const Matrix& inputs,
                                  const Vector& outputs,
                                  const RobustFitOptions& options = {});

/// Median absolute deviation scaled to estimate sigma under normality
/// (x 1.4826). 0 for fewer than two values.
double MadScale(const Vector& residuals);

}  // namespace laws

#endif  // LAWSDB_MODEL_ROBUST_H_

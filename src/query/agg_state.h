#ifndef LAWSDB_QUERY_AGG_STATE_H_
#define LAWSDB_QUERY_AGG_STATE_H_

#include <cmath>
#include <limits>
#include <string>

#include "query/ast.h"
#include "storage/types.h"

namespace laws {

/// Accumulator for one aggregate over one group, shared between the
/// row-sweep aggregator in executor.cc and the encoded run-weighted
/// aggregator in compressed_scan.cc — both paths must finalize through
/// the same AggFinalValue so their results are bit-identical. SQL
/// semantics: NULLs are ignored; COUNT(*) counts rows; empty groups
/// cannot occur (hash groups exist only for seen keys).
struct AggState {
  size_t count = 0;       // non-null inputs (or rows for COUNT(*))
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  // Welford accumulators for VARIANCE/STDDEV.
  double mean = 0.0;
  double m2 = 0.0;
  bool any = false;
  // MIN/MAX skip NaN, so a group whose inputs were all NaN never updates
  // min/max; this flag distinguishes that case (result NaN) from the
  // untouched ±inf seeds leaking out.
  bool saw_comparable = false;
  // For MIN/MAX over strings.
  std::string smin, smax;
  bool is_string = false;
};

inline Value AggFinalValue(const Expr& agg, const AggState& s) {
  switch (agg.aggregate_func) {
    case AggregateFunc::kCount:
      return Value::Int64(static_cast<int64_t>(s.count));
    case AggregateFunc::kSum:
      return s.any ? Value::Double(s.sum) : Value::Null();
    case AggregateFunc::kAvg:
      return s.count > 0 ? Value::Double(s.sum / static_cast<double>(s.count))
                         : Value::Null();
    case AggregateFunc::kMin:
      if (!s.any) return Value::Null();
      if (s.is_string) return Value::String(s.smin);
      return s.saw_comparable
                 ? Value::Double(s.min)
                 : Value::Double(std::numeric_limits<double>::quiet_NaN());
    case AggregateFunc::kMax:
      if (!s.any) return Value::Null();
      if (s.is_string) return Value::String(s.smax);
      return s.saw_comparable
                 ? Value::Double(s.max)
                 : Value::Double(std::numeric_limits<double>::quiet_NaN());
    case AggregateFunc::kVariance:
      return s.count > 1 && !s.is_string
                 ? Value::Double(s.m2 / static_cast<double>(s.count - 1))
                 : Value::Null();
    case AggregateFunc::kStddev:
      return s.count > 1 && !s.is_string
                 ? Value::Double(
                       std::sqrt(s.m2 / static_cast<double>(s.count - 1)))
                 : Value::Null();
  }
  return Value::Null();
}

}  // namespace laws

#endif  // LAWSDB_QUERY_AGG_STATE_H_

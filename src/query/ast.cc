#include "query/ast.h"

namespace laws {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSubtract:
      return "-";
    case BinaryOp::kMultiply:
      return "*";
    case BinaryOp::kDivide:
      return "/";
    case BinaryOp::kModulo:
      return "%";
    case BinaryOp::kEqual:
      return "=";
    case BinaryOp::kNotEqual:
      return "<>";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEqual:
      return "<=";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEqual:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string_view AggregateFuncToString(AggregateFunc f) {
  switch (f) {
    case AggregateFunc::kCount:
      return "COUNT";
    case AggregateFunc::kSum:
      return "SUM";
    case AggregateFunc::kAvg:
      return "AVG";
    case AggregateFunc::kMin:
      return "MIN";
    case AggregateFunc::kMax:
      return "MAX";
    case AggregateFunc::kVariance:
      return "VARIANCE";
    case AggregateFunc::kStddev:
      return "STDDEV";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_string()) {
        // Escape embedded quotes by doubling so the rendered literal
        // re-parses to the same value.
        std::string out = "'";
        for (const char ch : literal.str()) {
          if (ch == '\'') out += "''";
          else out += ch;
        }
        return out + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return column_name;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNegate ? std::string("-")
                                           : std::string("NOT ")) +
             children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             std::string(BinaryOpToString(binary_op)) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kAggregate:
      return std::string(AggregateFuncToString(aggregate_func)) + "(" +
             children[0]->ToString() + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      const size_t pairs = (children.size() - (case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString() + " THEN " +
               children[2 * i + 1]->ToString();
      }
      if (case_has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregate) return true;
  for (const auto& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumnRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::MakeUnary(UnaryOp op,
                                      std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::MakeFunctionCall(
    std::string name, std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function_name = std::move(name);
  e->children = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::MakeAggregate(AggregateFunc f,
                                          std::unique_ptr<Expr> arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->aggregate_func = f;
  e->children.push_back(std::move(arg));
  return e;
}

std::unique_ptr<Expr> Expr::MakeCase(
    std::vector<std::unique_ptr<Expr>> branches,
    std::unique_ptr<Expr> else_expr) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  e->children = std::move(branches);
  if (else_expr != nullptr) {
    e->case_has_else = true;
    e->children.push_back(std::move(else_expr));
  }
  return e;
}

std::unique_ptr<Expr> Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column_name = column_name;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->function_name = function_name;
  e->aggregate_func = aggregate_func;
  e->case_has_else = case_has_else;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    if (select_list[i].is_star) {
      out += "*";
    } else {
      out += select_list[i].expr->ToString();
      if (!select_list[i].alias.empty()) out += " AS " + select_list[i].alias;
    }
  }
  out += " FROM " + from_table;
  if (!join_table.empty()) {
    out += " JOIN " + join_table + " ON ";
    for (size_t i = 0; i < join_keys.size(); ++i) {
      if (i > 0) out += " AND ";
      out += join_keys[i].left_column + " = " + join_keys[i].right_column;
    }
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace laws

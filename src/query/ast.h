#ifndef LAWSDB_QUERY_AST_H_
#define LAWSDB_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/types.h"

namespace laws {

/// Expression node kinds for the SQL subset.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,
  kAggregate,
  kCase,  // searched CASE WHEN ... THEN ... [ELSE ...] END
  kStar,  // COUNT(*) argument
};

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kAnd,
  kOr,
};

enum class AggregateFunc { kCount, kSum, kAvg, kMin, kMax, kVariance, kStddev };

std::string_view BinaryOpToString(BinaryOp op);
std::string_view AggregateFuncToString(AggregateFunc f);

/// A node in the expression tree. A single variant-style struct keeps the
/// tree easy to build in the parser and walk in the evaluator.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string column_name;

  // kUnary
  UnaryOp unary_op = UnaryOp::kNegate;

  // kBinary
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunctionCall: name in `function_name`, args in `children`.
  std::string function_name;

  // kAggregate
  AggregateFunc aggregate_func = AggregateFunc::kCount;

  // kCase: children hold [when1, then1, when2, then2, ..., else?]; this
  // flag records whether the trailing ELSE branch is present.
  bool case_has_else = false;

  /// Operands: 1 for unary, 2 for binary, n for calls, 1 for aggregates
  /// (possibly a kStar node).
  std::vector<std::unique_ptr<Expr>> children;

  /// Renders the expression back to SQL-ish text (diagnostics, column
  /// naming).
  std::string ToString() const;

  /// True if any node in this subtree is an aggregate call.
  bool ContainsAggregate() const;

  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumnRef(std::string name);
  static std::unique_ptr<Expr> MakeUnary(UnaryOp op,
                                         std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> MakeBinary(BinaryOp op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> MakeFunctionCall(
      std::string name, std::vector<std::unique_ptr<Expr>> args);
  static std::unique_ptr<Expr> MakeAggregate(AggregateFunc f,
                                             std::unique_ptr<Expr> arg);
  /// Builds a searched CASE: `branches` holds (when, then) pairs flattened
  /// as [w1, t1, w2, t2, ...]; `else_expr` may be null.
  static std::unique_ptr<Expr> MakeCase(
      std::vector<std::unique_ptr<Expr>> branches,
      std::unique_ptr<Expr> else_expr);
  static std::unique_ptr<Expr> MakeStar();

  std::unique_ptr<Expr> Clone() const;
};

/// One SELECT-list item: expression plus optional alias; `is_star` for bare
/// `*`.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;
  bool is_star = false;
};

/// One ORDER BY key.
struct OrderKey {
  std::unique_ptr<Expr> expr;
  bool ascending = true;
};

/// One equi-join key pair for `FROM a JOIN b ON a_col = b_col`.
struct JoinKey {
  std::string left_column;
  std::string right_column;
};

/// Parsed SELECT statement. Supports single-table scans plus one optional
/// INNER equi-join (enough to join observations with captured parameter
/// tables); filters, grouped aggregates, HAVING, ORDER BY, LIMIT and
/// DISTINCT.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::string from_table;
  /// Optional INNER JOIN: empty = none.
  std::string join_table;
  std::vector<JoinKey> join_keys;
  std::unique_ptr<Expr> where;    // may be null
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;   // may be null
  std::vector<OrderKey> order_by;
  int64_t limit = -1;             // -1 = no limit

  std::string ToString() const;
};

}  // namespace laws

#endif  // LAWSDB_QUERY_AST_H_

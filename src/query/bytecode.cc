#include "query/bytecode.h"

#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "query/expr_eval.h"

namespace laws {
namespace {

/// The compiler's view of one evaluated subexpression: which register it
/// lives in and its static type. Every node's type is fully determined by
/// the schema (the tree-walker's EvalResult::type() is data-independent),
/// which is what makes ahead-of-time specialization sound.
struct NodeRes {
  uint16_t slot = 0;
  DataType type = DataType::kDouble;
};

bool IsNumeric(DataType t) { return t != DataType::kString; }

/// True when the subtree references no column, aggregate or star — i.e.
/// EvaluateConstant can fold it (modulo runtime errors, which veto the
/// fold and leave the instruction sequence to error identically at run
/// time).
bool IsConstSubtree(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef || e.kind == ExprKind::kAggregate ||
      e.kind == ExprKind::kStar) {
    return false;
  }
  for (const auto& c : e.children) {
    if (!IsConstSubtree(*c)) return false;
  }
  return true;
}

/// CSE identity key for a subtree. Expr::ToString() is NOT usable here:
/// it renders double literals through %.10g, so distinct constants that
/// round to the same text (1 vs 1.0000000000001, int64 0 vs double 0.0)
/// would collide and the second occurrence would be rewired onto the
/// first one's register — wrong value, or wrong static type for the
/// CASE/COALESCE unification rules. This key tags every node kind and
/// renders literals exactly (doubles by bit pattern).
void AppendCseKey(const Expr& e, std::string* out) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      const Value& v = e.literal;
      if (v.is_null()) {
        *out += "Ln";
      } else if (v.is_int64()) {
        *out += "Li";
        *out += std::to_string(v.int64());
      } else if (v.is_bool()) {
        *out += v.boolean() ? "Lb1" : "Lb0";
      } else if (v.is_double()) {
        uint64_t bits = 0;
        const double d = v.dbl();
        std::memcpy(&bits, &d, sizeof(bits));
        char buf[24];
        std::snprintf(buf, sizeof(buf), "Ld%016llx",
                      static_cast<unsigned long long>(bits));
        *out += buf;
      } else {
        *out += "Ls";
        *out += v.str();
      }
      break;
    }
    case ExprKind::kColumnRef:
      *out += "C";
      *out += e.column_name;
      break;
    case ExprKind::kUnary:
      *out += "U";
      *out += std::to_string(static_cast<int>(e.unary_op));
      break;
    case ExprKind::kBinary:
      *out += "B";
      *out += std::to_string(static_cast<int>(e.binary_op));
      break;
    case ExprKind::kFunctionCall:
      *out += "F";
      *out += e.function_name;
      break;
    case ExprKind::kCase:
      *out += e.case_has_else ? "Ke" : "K";
      break;
    case ExprKind::kAggregate:
      *out += "A";
      *out += std::to_string(static_cast<int>(e.aggregate_func));
      break;
    case ExprKind::kStar:
      *out += "*";
      break;
  }
  if (!e.children.empty()) {
    *out += "(";
    for (const auto& c : e.children) {
      AppendCseKey(*c, out);
      *out += ",";
    }
    *out += ")";
  }
}

std::string CseKey(const Expr& e) {
  std::string key;
  AppendCseKey(e, &key);
  return key;
}

class Compiler {
 public:
  explicit Compiler(const Schema& schema) : schema_(schema) {}

  std::optional<CompiledExpr> Compile(const Expr& expr) {
    CountUses(expr);
    auto root = CompileNode(expr);
    if (!root.has_value()) return std::nullopt;
    program_.num_slots = next_slot_;
    program_.result_slot = root->slot;
    program_.result_type = root->type;
    return std::move(program_);
  }

 private:
  // --- Register allocation ----------------------------------------------
  // Slots are SSA-flavored: a fresh slot per instruction output, recycled
  // through a free list once the value's last use has been emitted. CSE
  // results are pinned for the program's lifetime so later occurrences
  // reference the original register directly (no copy instruction).

  uint16_t AllocSlot() {
    if (!free_slots_.empty()) {
      const uint16_t s = free_slots_.back();
      free_slots_.pop_back();
      return s;
    }
    return next_slot_++;
  }

  void ReleaseSlot(uint16_t slot) {
    if (pinned_.count(slot) == 0) free_slots_.push_back(slot);
  }

  void CountUses(const Expr& e) {
    ++use_count_[CseKey(e)];
    for (const auto& c : e.children) CountUses(*c);
  }

  // --- Emission helpers --------------------------------------------------

  NodeRes Emit(OpCode op, DataType out_type, uint16_t a = 0, uint16_t b = 0,
               uint32_t aux = 0) {
    Instruction ins;
    ins.op = op;
    ins.out = AllocSlot();
    ins.a = a;
    ins.b = b;
    ins.aux = aux;
    program_.code.push_back(ins);
    return NodeRes{ins.out, out_type};
  }

  NodeRes EmitConst(const Value& v) {
    if (v.is_null()) {
      // The tree-walker types a NULL literal as DOUBLE.
      return Emit(OpCode::kConstNull, DataType::kDouble);
    }
    const auto idx = static_cast<uint32_t>(program_.constants.size());
    program_.constants.push_back(v);
    if (v.is_int64()) return Emit(OpCode::kConstI64, DataType::kInt64, 0, 0, idx);
    if (v.is_double()) return Emit(OpCode::kConstF64, DataType::kDouble, 0, 0, idx);
    return Emit(OpCode::kConstBool, DataType::kBool, 0, 0, idx);
  }

  /// Coerces a numeric value to double, releasing the source register.
  /// No-op for values already double.
  NodeRes ToF64(NodeRes r) {
    if (r.type == DataType::kDouble) return r;
    const OpCode op = r.type == DataType::kInt64 ? OpCode::kCastI64F64
                                                 : OpCode::kCastBoolF64;
    ReleaseSlot(r.slot);
    return Emit(op, DataType::kDouble, r.slot);
  }

  /// Memoizing compile: shared subexpressions (by exact structural
  /// identity — see CseKey) compile once into a pinned register.
  std::optional<NodeRes> CompileNode(const Expr& e) {
    const std::string repr = CseKey(e);
    auto hit = memo_.find(repr);
    if (hit != memo_.end()) return hit->second;

    std::optional<NodeRes> res = CompileNodeUncached(e);
    if (res.has_value() && use_count_[repr] > 1) {
      pinned_.insert(res->slot);
      memo_.emplace(repr, *res);
    }
    return res;
  }

  std::optional<NodeRes> CompileNodeUncached(const Expr& e) {
    // Constant folding: a column-free subtree that evaluates cleanly
    // becomes one load from the literal pool. A fold-time error (1/0,
    // overflow) vetoes the fold so the runtime errors exactly when the
    // tree-walker would (i.e. only when rows actually flow through). A
    // NULL fold result also vetoes: the folded value would forget the
    // operator's static output type (nullif(c, c) stays INT64, a NULL
    // comparison stays BOOL), so the subtree compiles normally and the
    // type rules below reproduce the tree-walker's column type.
    if (e.kind != ExprKind::kLiteral && IsConstSubtree(e)) {
      Result<Value> folded = EvaluateConstant(e);
      if (folded.ok() && !folded->is_null()) {
        if (folded->is_string()) return std::nullopt;
        return EmitConst(*folded);
      }
    }

    switch (e.kind) {
      case ExprKind::kLiteral:
        if (e.literal.is_string()) return std::nullopt;
        return EmitConst(e.literal);
      case ExprKind::kColumnRef:
        return CompileColumnRef(e);
      case ExprKind::kUnary:
        return CompileUnary(e);
      case ExprKind::kBinary:
        return CompileBinary(e);
      case ExprKind::kFunctionCall:
        return CompileFunction(e);
      case ExprKind::kCase:
        return CompileCase(e);
      case ExprKind::kAggregate:
      case ExprKind::kStar:
        return std::nullopt;
    }
    return std::nullopt;
  }

  std::optional<NodeRes> CompileColumnRef(const Expr& e) {
    Result<size_t> idx = schema_.FieldIndex(e.column_name);
    if (!idx.ok()) return std::nullopt;  // tree-walker raises NotFound
    const DataType t = schema_.field(*idx).type;
    OpCode op;
    switch (t) {
      case DataType::kInt64:
        op = OpCode::kLoadColI64;
        break;
      case DataType::kDouble:
        op = OpCode::kLoadColF64;
        break;
      case DataType::kBool:
        op = OpCode::kLoadColBool;
        break;
      case DataType::kString:
        return std::nullopt;  // strings stay on the tree-walker tier
      default:
        return std::nullopt;
    }
    const auto ref = static_cast<uint32_t>(program_.columns.size());
    program_.columns.push_back(
        {static_cast<uint32_t>(*idx), e.column_name});
    return Emit(op, t, 0, 0, ref);
  }

  std::optional<NodeRes> CompileUnary(const Expr& e) {
    auto operand = CompileNode(*e.children[0]);
    if (!operand.has_value()) return std::nullopt;
    if (e.unary_op == UnaryOp::kNegate) {
      if (!IsNumeric(operand->type)) return std::nullopt;
      if (operand->type == DataType::kInt64) {
        ReleaseSlot(operand->slot);
        return Emit(OpCode::kNegI64, DataType::kInt64, operand->slot);
      }
      NodeRes v = ToF64(*operand);
      ReleaseSlot(v.slot);
      return Emit(OpCode::kNegF64, DataType::kDouble, v.slot);
    }
    // NOT
    if (operand->type != DataType::kBool) return std::nullopt;
    ReleaseSlot(operand->slot);
    return Emit(OpCode::kNotBool, DataType::kBool, operand->slot);
  }

  std::optional<NodeRes> CompileBinary(const Expr& e) {
    auto lhs = CompileNode(*e.children[0]);
    if (!lhs.has_value()) return std::nullopt;
    auto rhs = CompileNode(*e.children[1]);
    if (!rhs.has_value()) return std::nullopt;

    switch (e.binary_op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSubtract:
      case BinaryOp::kMultiply:
      case BinaryOp::kDivide:
      case BinaryOp::kModulo: {
        if (!IsNumeric(lhs->type) || !IsNumeric(rhs->type)) {
          return std::nullopt;
        }
        const bool int_result = lhs->type == DataType::kInt64 &&
                                rhs->type == DataType::kInt64 &&
                                e.binary_op != BinaryOp::kDivide;
        if (int_result) {
          OpCode op;
          switch (e.binary_op) {
            case BinaryOp::kAdd:      op = OpCode::kAddI64; break;
            case BinaryOp::kSubtract: op = OpCode::kSubI64; break;
            case BinaryOp::kMultiply: op = OpCode::kMulI64; break;
            default:                  op = OpCode::kModI64; break;
          }
          ReleaseSlot(lhs->slot);
          ReleaseSlot(rhs->slot);
          return Emit(op, DataType::kInt64, lhs->slot, rhs->slot);
        }
        NodeRes a = ToF64(*lhs);
        NodeRes b = ToF64(*rhs);
        OpCode op;
        switch (e.binary_op) {
          case BinaryOp::kAdd:      op = OpCode::kAddF64; break;
          case BinaryOp::kSubtract: op = OpCode::kSubF64; break;
          case BinaryOp::kMultiply: op = OpCode::kMulF64; break;
          case BinaryOp::kDivide:   op = OpCode::kDivF64; break;
          default:                  op = OpCode::kModF64; break;
        }
        ReleaseSlot(a.slot);
        ReleaseSlot(b.slot);
        return Emit(op, DataType::kDouble, a.slot, b.slot);
      }
      case BinaryOp::kEqual:
      case BinaryOp::kNotEqual:
      case BinaryOp::kLess:
      case BinaryOp::kLessEqual:
      case BinaryOp::kGreater:
      case BinaryOp::kGreaterEqual: {
        // String comparison stays on the tree-walker; numeric pairs
        // compare through double coercion (§11 comparison horizon).
        if (!IsNumeric(lhs->type) || !IsNumeric(rhs->type)) {
          return std::nullopt;
        }
        NodeRes a = ToF64(*lhs);
        NodeRes b = ToF64(*rhs);
        OpCode op;
        switch (e.binary_op) {
          case BinaryOp::kEqual:        op = OpCode::kCmpEqF64; break;
          case BinaryOp::kNotEqual:     op = OpCode::kCmpNeF64; break;
          case BinaryOp::kLess:         op = OpCode::kCmpLtF64; break;
          case BinaryOp::kLessEqual:    op = OpCode::kCmpLeF64; break;
          case BinaryOp::kGreater:      op = OpCode::kCmpGtF64; break;
          default:                      op = OpCode::kCmpGeF64; break;
        }
        ReleaseSlot(a.slot);
        ReleaseSlot(b.slot);
        return Emit(op, DataType::kBool, a.slot, b.slot);
      }
      case BinaryOp::kAnd:
      case BinaryOp::kOr: {
        if (lhs->type != DataType::kBool || rhs->type != DataType::kBool) {
          return std::nullopt;
        }
        const OpCode op = e.binary_op == BinaryOp::kAnd ? OpCode::kAnd3VL
                                                        : OpCode::kOr3VL;
        ReleaseSlot(lhs->slot);
        ReleaseSlot(rhs->slot);
        return Emit(op, DataType::kBool, lhs->slot, rhs->slot);
      }
    }
    return std::nullopt;
  }

  std::optional<NodeRes> CompileFunction(const Expr& e) {
    const std::string& f = e.function_name;

    auto unary_f64 = [&](OpCode op) -> std::optional<NodeRes> {
      if (e.children.size() != 1) return std::nullopt;
      auto arg = CompileNode(*e.children[0]);
      if (!arg.has_value() || !IsNumeric(arg->type)) return std::nullopt;
      NodeRes a = ToF64(*arg);
      ReleaseSlot(a.slot);
      return Emit(op, DataType::kDouble, a.slot);
    };

    if (f == "abs") {
      if (e.children.size() != 1) return std::nullopt;
      auto arg = CompileNode(*e.children[0]);
      if (!arg.has_value() || !IsNumeric(arg->type)) return std::nullopt;
      if (arg->type == DataType::kInt64) {
        ReleaseSlot(arg->slot);
        return Emit(OpCode::kAbsI64, DataType::kInt64, arg->slot);
      }
      NodeRes a = ToF64(*arg);
      ReleaseSlot(a.slot);
      return Emit(OpCode::kAbsF64, DataType::kDouble, a.slot);
    }
    if (f == "ln" || f == "log") return unary_f64(OpCode::kLnF64);
    if (f == "log10") return unary_f64(OpCode::kLog10F64);
    if (f == "exp") return unary_f64(OpCode::kExpF64);
    if (f == "sqrt") return unary_f64(OpCode::kSqrtF64);
    if (f == "sin") return unary_f64(OpCode::kSinF64);
    if (f == "cos") return unary_f64(OpCode::kCosF64);
    if (f == "floor") return unary_f64(OpCode::kFloorF64);
    if (f == "ceil") return unary_f64(OpCode::kCeilF64);
    if (f == "round") return unary_f64(OpCode::kRoundF64);
    if (f == "pow" || f == "power") {
      if (e.children.size() != 2) return std::nullopt;
      auto lhs = CompileNode(*e.children[0]);
      if (!lhs.has_value() || !IsNumeric(lhs->type)) return std::nullopt;
      auto rhs = CompileNode(*e.children[1]);
      if (!rhs.has_value() || !IsNumeric(rhs->type)) return std::nullopt;
      NodeRes a = ToF64(*lhs);
      NodeRes b = ToF64(*rhs);
      ReleaseSlot(a.slot);
      ReleaseSlot(b.slot);
      return Emit(OpCode::kPowF64, DataType::kDouble, a.slot, b.slot);
    }
    if (f == "coalesce") {
      if (e.children.empty()) return std::nullopt;
      std::vector<NodeRes> args;
      bool all_int = true, all_bool = true;
      for (const auto& child : e.children) {
        auto a = CompileNode(*child);
        if (!a.has_value() || !IsNumeric(a->type)) return std::nullopt;
        all_int &= a->type == DataType::kInt64;
        all_bool &= a->type == DataType::kBool;
        args.push_back(*a);
      }
      // Numeric family unification, exactly as the tree-walker: a uniform
      // INT64 or BOOL list keeps its type, any mix promotes to DOUBLE.
      const DataType t = all_int    ? DataType::kInt64
                         : all_bool ? DataType::kBool
                                    : DataType::kDouble;
      const OpCode op = all_int    ? OpCode::kCoalesceI64
                        : all_bool ? OpCode::kCoalesceBool
                                   : OpCode::kCoalesceF64;
      std::vector<uint16_t> slots;
      for (NodeRes& a : args) {
        if (t == DataType::kDouble) a = ToF64(a);
        slots.push_back(a.slot);
      }
      for (uint16_t s : slots) ReleaseSlot(s);
      const auto list = static_cast<uint32_t>(program_.arg_lists.size());
      program_.arg_lists.push_back(std::move(slots));
      return Emit(op, t, 0, 0, list);
    }
    if (f == "nullif") {
      if (e.children.size() != 2) return std::nullopt;
      auto lhs = CompileNode(*e.children[0]);
      if (!lhs.has_value() || !IsNumeric(lhs->type)) return std::nullopt;
      auto rhs = CompileNode(*e.children[1]);
      if (!rhs.has_value() || !IsNumeric(rhs->type)) return std::nullopt;
      OpCode op;
      switch (lhs->type) {
        case DataType::kInt64:  op = OpCode::kNullIfI64; break;
        case DataType::kDouble: op = OpCode::kNullIfF64; break;
        default:                op = OpCode::kNullIfBool; break;
      }
      ReleaseSlot(lhs->slot);
      ReleaseSlot(rhs->slot);
      const auto list = static_cast<uint32_t>(program_.arg_lists.size());
      // The third entry tags b's physical type so the evaluator can read
      // it numerically without a cast instruction.
      program_.arg_lists.push_back(
          {lhs->slot, rhs->slot, static_cast<uint16_t>(rhs->type)});
      return Emit(op, lhs->type, 0, 0, list);
    }
    return std::nullopt;  // unknown function: tree-walker diagnoses
  }

  std::optional<NodeRes> CompileCase(const Expr& e) {
    const bool has_else = e.case_has_else;
    const size_t pairs = (e.children.size() - (has_else ? 1 : 0)) / 2;
    std::vector<NodeRes> whens, thens;
    for (size_t i = 0; i < pairs; ++i) {
      auto w = CompileNode(*e.children[2 * i]);
      if (!w.has_value() || w->type != DataType::kBool) return std::nullopt;
      auto t = CompileNode(*e.children[2 * i + 1]);
      if (!t.has_value() || !IsNumeric(t->type)) return std::nullopt;
      whens.push_back(*w);
      thens.push_back(*t);
    }
    if (has_else) {
      auto t = CompileNode(*e.children.back());
      if (!t.has_value() || !IsNumeric(t->type)) return std::nullopt;
      thens.push_back(*t);
    }
    bool all_int = true, all_bool = true;
    for (const NodeRes& t : thens) {
      all_int &= t.type == DataType::kInt64;
      all_bool &= t.type == DataType::kBool;
    }
    const DataType t = all_int    ? DataType::kInt64
                       : all_bool ? DataType::kBool
                                  : DataType::kDouble;
    const OpCode op = all_int    ? OpCode::kCaseI64
                      : all_bool ? OpCode::kCaseBool
                                 : OpCode::kCaseF64;
    if (t == DataType::kDouble) {
      for (NodeRes& b : thens) b = ToF64(b);
    }
    // Layout: [w1, t1, w2, t2, ..., else?]. Odd length = ELSE present.
    std::vector<uint16_t> slots;
    for (size_t i = 0; i < pairs; ++i) {
      slots.push_back(whens[i].slot);
      slots.push_back(thens[i].slot);
    }
    if (has_else) slots.push_back(thens.back().slot);
    for (uint16_t s : slots) ReleaseSlot(s);
    const auto list = static_cast<uint32_t>(program_.arg_lists.size());
    program_.arg_lists.push_back(std::move(slots));
    return Emit(op, t, 0, 0, list);
  }

  const Schema& schema_;
  CompiledExpr program_;
  uint16_t next_slot_ = 0;
  std::vector<uint16_t> free_slots_;
  std::unordered_map<std::string, size_t> use_count_;
  std::unordered_map<std::string, NodeRes> memo_;
  std::unordered_set<uint16_t> pinned_;
};

}  // namespace

std::string_view OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadColI64:  return "loadcol.i64";
    case OpCode::kLoadColF64:  return "loadcol.f64";
    case OpCode::kLoadColBool: return "loadcol.bool";
    case OpCode::kConstI64:    return "const.i64";
    case OpCode::kConstF64:    return "const.f64";
    case OpCode::kConstBool:   return "const.bool";
    case OpCode::kConstNull:   return "const.null";
    case OpCode::kCastI64F64:  return "cast.i64.f64";
    case OpCode::kCastBoolF64: return "cast.bool.f64";
    case OpCode::kNegI64:      return "neg.i64";
    case OpCode::kNegF64:      return "neg.f64";
    case OpCode::kNotBool:     return "not.bool";
    case OpCode::kAbsI64:      return "abs.i64";
    case OpCode::kAbsF64:      return "abs.f64";
    case OpCode::kLnF64:       return "ln.f64";
    case OpCode::kLog10F64:    return "log10.f64";
    case OpCode::kExpF64:      return "exp.f64";
    case OpCode::kSqrtF64:     return "sqrt.f64";
    case OpCode::kSinF64:      return "sin.f64";
    case OpCode::kCosF64:      return "cos.f64";
    case OpCode::kFloorF64:    return "floor.f64";
    case OpCode::kCeilF64:     return "ceil.f64";
    case OpCode::kRoundF64:    return "round.f64";
    case OpCode::kAddI64:      return "add.i64";
    case OpCode::kSubI64:      return "sub.i64";
    case OpCode::kMulI64:      return "mul.i64";
    case OpCode::kModI64:      return "mod.i64";
    case OpCode::kAddF64:      return "add.f64";
    case OpCode::kSubF64:      return "sub.f64";
    case OpCode::kMulF64:      return "mul.f64";
    case OpCode::kDivF64:      return "div.f64";
    case OpCode::kModF64:      return "mod.f64";
    case OpCode::kPowF64:      return "pow.f64";
    case OpCode::kCmpEqF64:    return "cmpeq.f64";
    case OpCode::kCmpNeF64:    return "cmpne.f64";
    case OpCode::kCmpLtF64:    return "cmplt.f64";
    case OpCode::kCmpLeF64:    return "cmple.f64";
    case OpCode::kCmpGtF64:    return "cmpgt.f64";
    case OpCode::kCmpGeF64:    return "cmpge.f64";
    case OpCode::kAnd3VL:      return "and.3vl";
    case OpCode::kOr3VL:       return "or.3vl";
    case OpCode::kCoalesceI64: return "coalesce.i64";
    case OpCode::kCoalesceF64: return "coalesce.f64";
    case OpCode::kCoalesceBool:return "coalesce.bool";
    case OpCode::kNullIfI64:   return "nullif.i64";
    case OpCode::kNullIfF64:   return "nullif.f64";
    case OpCode::kNullIfBool:  return "nullif.bool";
    case OpCode::kCaseI64:     return "case.i64";
    case OpCode::kCaseF64:     return "case.f64";
    case OpCode::kCaseBool:    return "case.bool";
  }
  return "?";
}

std::string CompiledExpr::ToString() const {
  std::string out;
  for (const Instruction& ins : code) {
    if (!out.empty()) out += "; ";
    out += "s" + std::to_string(ins.out) + "=";
    out += OpCodeName(ins.op);
    switch (ins.op) {
      case OpCode::kLoadColI64:
      case OpCode::kLoadColF64:
      case OpCode::kLoadColBool:
        out += "(" + columns[ins.aux].name + ")";
        break;
      case OpCode::kConstI64:
      case OpCode::kConstF64:
      case OpCode::kConstBool:
        out += "(" + constants[ins.aux].ToString() + ")";
        break;
      case OpCode::kConstNull:
        out += "()";
        break;
      case OpCode::kCoalesceI64:
      case OpCode::kCoalesceF64:
      case OpCode::kCoalesceBool:
      case OpCode::kCaseI64:
      case OpCode::kCaseF64:
      case OpCode::kCaseBool: {
        out += "(";
        const auto& list = arg_lists[ins.aux];
        for (size_t i = 0; i < list.size(); ++i) {
          if (i > 0) out += ",";
          out += "s" + std::to_string(list[i]);
        }
        out += ")";
        break;
      }
      case OpCode::kNullIfI64:
      case OpCode::kNullIfF64:
      case OpCode::kNullIfBool: {
        const auto& list = arg_lists[ins.aux];
        out += "(s" + std::to_string(list[0]) + ",s" +
               std::to_string(list[1]) + ")";
        break;
      }
      case OpCode::kCastI64F64:
      case OpCode::kCastBoolF64:
      case OpCode::kNegI64:
      case OpCode::kNegF64:
      case OpCode::kNotBool:
      case OpCode::kAbsI64:
      case OpCode::kAbsF64:
      case OpCode::kLnF64:
      case OpCode::kLog10F64:
      case OpCode::kExpF64:
      case OpCode::kSqrtF64:
      case OpCode::kSinF64:
      case OpCode::kCosF64:
      case OpCode::kFloorF64:
      case OpCode::kCeilF64:
      case OpCode::kRoundF64:
        out += "(s" + std::to_string(ins.a) + ")";
        break;
      default:
        out += "(s" + std::to_string(ins.a) + ",s" +
               std::to_string(ins.b) + ")";
        break;
    }
  }
  return out;
}

std::optional<CompiledExpr> CompileExpr(const Expr& expr,
                                        const Schema& schema) {
  Compiler compiler(schema);
  return compiler.Compile(expr);
}

}  // namespace laws

#ifndef LAWSDB_QUERY_BYTECODE_H_
#define LAWSDB_QUERY_BYTECODE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "query/ast.h"
#include "storage/schema.h"

namespace laws {

/// Compile-once expression tier: an `Expr` tree is lowered to a flat
/// postfix program of typed opcodes executed by a stack machine over
/// column batches (vector_eval.h). The compiler performs constant folding
/// (through the tree-walker's own EvaluateConstant, so folded values carry
/// identical semantics), common-subexpression elimination by expression
/// identity, and int64/double/bool type specialization. Register slots are
/// assigned statically — the stack depth at every instruction is known at
/// compile time — so the runtime never manages a dynamic stack and CSE
/// reuses a pinned slot instead of recomputing or copying.
///
/// Anything outside the compilable subset (string-typed values anywhere in
/// the tree, aggregates, unknown functions, arity or type errors) makes
/// CompileExpr return nullopt and the caller falls back to the row-proven
/// tree-walker, which raises exactly the diagnostics it always raised.
/// Compiled programs therefore fail only on data-dependent numeric errors
/// (division by zero, checked-int64 overflow), with the tree-walker's
/// exact messages. DESIGN.md §13 documents the ISA and the invariants
/// against the §11 NaN/NULL semantics.

/// Typed opcodes. Naming: suffix is the *output* type family; comparison
/// inputs are always doubles (the tree-walker compares every numeric pair
/// through double coercion — the §11 2^53 horizon — so the compiled tier
/// must too).
enum class OpCode : uint8_t {
  // Loads. aux = column index (schema position) or constant-pool index.
  kLoadColI64,
  kLoadColF64,
  kLoadColBool,
  kConstI64,
  kConstF64,
  kConstBool,
  kConstNull,  // typed as F64, every lane NULL (the tree-walker's NULL type)

  // Numeric coercions (int64/bool -> double, NULLs pass through).
  kCastI64F64,
  kCastBoolF64,

  // Unary.
  kNegI64,  // checked: -INT64_MIN -> NumericError
  kNegF64,
  kNotBool,
  kAbsI64,  // checked: abs(INT64_MIN) -> NumericError
  kAbsF64,
  kLnF64,
  kLog10F64,
  kExpF64,
  kSqrtF64,
  kSinF64,
  kCosF64,
  kFloorF64,
  kCeilF64,
  kRoundF64,

  // Binary arithmetic. I64 variants are overflow-checked; kModI64 defines
  // INT64_MIN % -1 = 0 and errors on zero; kDivF64/kModF64 error on a 0.0
  // divisor reached by a non-NULL lane.
  kAddI64,
  kSubI64,
  kMulI64,
  kModI64,
  kAddF64,
  kSubF64,
  kMulF64,
  kDivF64,
  kModF64,
  kPowF64,

  // Comparisons: double inputs, bool output, NULL-propagating. Lane
  // semantics replicate the tree-walker's three-way compare (NaN sorts as
  // "greater": NaN > x is true, NaN == x and NaN < x are false).
  kCmpEqF64,
  kCmpNeF64,
  kCmpLtF64,
  kCmpLeF64,
  kCmpGtF64,
  kCmpGeF64,

  // Three-valued logic over bool inputs.
  kAnd3VL,
  kOr3VL,

  // N-ary selects. aux indexes CompiledExpr::arg_lists, whose entries are
  // operand slot lists; the suffix is the unified output type (the
  // compiler inserts casts on branches so every operand already has it).
  kCoalesceI64,
  kCoalesceF64,
  kCoalesceBool,
  // NULLIF(a, b): output = a's type; lanes where both are non-NULL and
  // numerically equal (double compare) become NULL. arg_list = {a, b,
  // b_type_tag} where the tag says how to read b's slot numerically.
  kNullIfI64,
  kNullIfF64,
  kNullIfBool,
  // Searched CASE: arg_list = {w1, t1, w2, t2, ..., [else]}; aux's low bit
  // of the *list length* disambiguates the ELSE (odd length = has ELSE).
  kCaseI64,
  kCaseF64,
  kCaseBool,
};

std::string_view OpCodeName(OpCode op);

/// One instruction: out = op(a, b). Slots are batch-sized registers in the
/// evaluator; `aux` is the opcode-specific immediate (column index,
/// constant index, or arg-list index).
struct Instruction {
  OpCode op;
  uint16_t out = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint32_t aux = 0;
};

/// A compiled expression program. Immutable once built; executable any
/// number of times over any table with the schema it was compiled for.
struct CompiledExpr {
  std::vector<Instruction> code;
  /// Literal pool, indexed by Const* instructions' aux.
  std::vector<Value> constants;
  /// Column references, indexed by LoadCol* instructions' aux. `index` is
  /// the schema position; `name` is kept for the disassembly.
  struct ColRef {
    uint32_t index = 0;
    std::string name;
  };
  std::vector<ColRef> columns;
  /// Operand slot lists for n-ary opcodes (CASE/COALESCE/NULLIF).
  std::vector<std::vector<uint16_t>> arg_lists;
  /// Registers the evaluator must provision.
  uint16_t num_slots = 0;
  /// Slot holding the final value after the last instruction.
  uint16_t result_slot = 0;
  DataType result_type = DataType::kDouble;

  /// Compact one-line disassembly, e.g.
  /// "s0=loadcol.f64(da); s1=const.f64(1); s0=add.f64(s0,s1)" — the
  /// program dump surfaced by EXPLAIN ANALYZE.
  std::string ToString() const;
};

/// Lowers `expr` against `schema`. Returns nullopt when the expression is
/// outside the compilable subset (see file comment); never raises — every
/// error case is the tree-walker's to diagnose.
std::optional<CompiledExpr> CompileExpr(const Expr& expr,
                                        const Schema& schema);

}  // namespace laws

#endif  // LAWSDB_QUERY_BYTECODE_H_

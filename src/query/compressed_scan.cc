#include "query/compressed_scan.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "common/env.h"
#include "common/governor.h"
#include "common/metrics.h"
#include "compress/block_store.h"

namespace laws {
namespace {

// --- Engine toggle ---------------------------------------------------------

ScanEngine InitialScanEngine() {
  return EnvFlag("LAWS_SCAN_DECODE", false) ? ScanEngine::kDecode
                                            : ScanEngine::kCompressed;
}

std::atomic<int>& ScanEngineFlag() {
  static std::atomic<int> engine{static_cast<int>(InitialScanEngine())};
  return engine;
}

// --- Counters --------------------------------------------------------------

Counter* BlocksTotalCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("scan.blocks_total");
  return c;
}
Counter* BlocksPrunedCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("scan.blocks_pruned");
  return c;
}
Counter* BlocksTakenCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("scan.blocks_taken");
  return c;
}
Counter* RunsSkippedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("scan.runs_skipped");
  return c;
}
Counter* EncodedAggCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("scan.encoded_agg");
  return c;
}
Counter* FallbackDecodeCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("scan.fallback_decode");
  return c;
}

// --- Predicate classification ----------------------------------------------
//
// The compressed tier only accepts the shapes whose evaluation under the
// engine's §11 semantics is total (no column-level type errors, no
// arithmetic that could overflow): comparisons between numeric column
// refs and numeric/NULL literals (optionally negated), AND/OR/NOT over
// statically-boolean operands, bare boolean column refs and boolean
// literals. Everything else declines so the decode path keeps its exact
// error behavior.

enum class Tri : uint8_t { kTrue, kFalse, kNull };

constexpr uint8_t kT = 1;  // TRUE possible
constexpr uint8_t kF = 2;  // FALSE possible
constexpr uint8_t kN = 4;  // NULL possible

uint8_t TriBit(Tri v) {
  switch (v) {
    case Tri::kTrue: return kT;
    case Tri::kFalse: return kF;
    case Tri::kNull: return kN;
  }
  return kN;
}

struct ScanPred {
  enum class Kind { kCmp, kAnd, kOr, kNot, kBoolCol, kConst };
  Kind kind = Kind::kConst;

  // kCmp: each side is a column (index >= 0) or a constant.
  BinaryOp op = BinaryOp::kEqual;
  int lhs_col = -1;
  int rhs_col = -1;
  double lhs_val = 0.0;
  double rhs_val = 0.0;
  bool lhs_null = false;
  bool rhs_null = false;

  int col = -1;        // kBoolCol
  Tri const_val = Tri::kTrue;  // kConst

  std::unique_ptr<ScanPred> a, b;  // kAnd/kOr both; kNot uses a
};

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEqual:
    case BinaryOp::kNotEqual:
    case BinaryOp::kLess:
    case BinaryOp::kLessEqual:
    case BinaryOp::kGreater:
    case BinaryOp::kGreaterEqual:
      return true;
    default:
      return false;
  }
}

/// Classifies one comparison side. Accepts numeric (non-string) column
/// refs, numeric/bool/NULL literals, and unary minus over a numeric
/// literal (the engine negates in int64 space first, so -INT64_MIN would
/// overflow there — decline it rather than diverge).
bool ClassifySide(const Expr& e, const Table& t, int* col, double* val,
                  bool* is_null) {
  *col = -1;
  *val = 0.0;
  *is_null = false;
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      const auto idx = t.schema().FieldIndex(e.column_name);
      if (!idx.ok()) return false;
      if (t.column(*idx).type() == DataType::kString) return false;
      *col = static_cast<int>(*idx);
      return true;
    }
    case ExprKind::kLiteral: {
      const Value& v = e.literal;
      if (v.is_null()) {
        *is_null = true;
        return true;
      }
      if (v.is_int64()) { *val = static_cast<double>(v.int64()); return true; }
      if (v.is_double()) { *val = v.dbl(); return true; }
      if (v.is_bool()) { *val = v.boolean() ? 1.0 : 0.0; return true; }
      return false;
    }
    case ExprKind::kUnary: {
      if (e.unary_op != UnaryOp::kNegate) return false;
      const Expr& c = *e.children[0];
      if (c.kind != ExprKind::kLiteral) return false;
      if (c.literal.is_int64()) {
        const int64_t iv = c.literal.int64();
        if (iv == std::numeric_limits<int64_t>::min()) return false;
        *val = -static_cast<double>(iv);
        return true;
      }
      if (c.literal.is_double()) { *val = -c.literal.dbl(); return true; }
      return false;
    }
    default:
      return false;
  }
}

std::unique_ptr<ScanPred> Classify(const Expr& e, const Table& t) {
  switch (e.kind) {
    case ExprKind::kBinary: {
      if (IsComparisonOp(e.binary_op)) {
        auto p = std::make_unique<ScanPred>();
        p->kind = ScanPred::Kind::kCmp;
        p->op = e.binary_op;
        if (!ClassifySide(*e.children[0], t, &p->lhs_col, &p->lhs_val,
                          &p->lhs_null) ||
            !ClassifySide(*e.children[1], t, &p->rhs_col, &p->rhs_val,
                          &p->rhs_null)) {
          return nullptr;
        }
        return p;
      }
      if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
        auto a = Classify(*e.children[0], t);
        if (a == nullptr) return nullptr;
        auto b = Classify(*e.children[1], t);
        if (b == nullptr) return nullptr;
        auto p = std::make_unique<ScanPred>();
        p->kind = e.binary_op == BinaryOp::kAnd ? ScanPred::Kind::kAnd
                                                : ScanPred::Kind::kOr;
        p->a = std::move(a);
        p->b = std::move(b);
        return p;
      }
      return nullptr;
    }
    case ExprKind::kUnary: {
      if (e.unary_op != UnaryOp::kNot) return nullptr;
      auto a = Classify(*e.children[0], t);
      if (a == nullptr) return nullptr;
      auto p = std::make_unique<ScanPred>();
      p->kind = ScanPred::Kind::kNot;
      p->a = std::move(a);
      return p;
    }
    case ExprKind::kColumnRef: {
      const auto idx = t.schema().FieldIndex(e.column_name);
      if (!idx.ok()) return nullptr;
      if (t.column(*idx).type() != DataType::kBool) return nullptr;
      auto p = std::make_unique<ScanPred>();
      p->kind = ScanPred::Kind::kBoolCol;
      p->col = static_cast<int>(*idx);
      return p;
    }
    case ExprKind::kLiteral: {
      // Only a boolean literal is a valid predicate on its own; a NULL or
      // numeric literal is a column-level type error on the decode path.
      if (!e.literal.is_bool()) return nullptr;
      auto p = std::make_unique<ScanPred>();
      p->kind = ScanPred::Kind::kConst;
      p->const_val = e.literal.boolean() ? Tri::kTrue : Tri::kFalse;
      return p;
    }
    default:
      return nullptr;
  }
}

void CollectCols(const ScanPred& p, std::vector<int>* cols) {
  auto add = [cols](int c) {
    if (c < 0) return;
    for (int existing : *cols) {
      if (existing == c) return;
    }
    cols->push_back(c);
  };
  switch (p.kind) {
    case ScanPred::Kind::kCmp:
      add(p.lhs_col);
      add(p.rhs_col);
      break;
    case ScanPred::Kind::kBoolCol:
      add(p.col);
      break;
    case ScanPred::Kind::kAnd:
    case ScanPred::Kind::kOr:
      CollectCols(*p.a, cols);
      CollectCols(*p.b, cols);
      break;
    case ScanPred::Kind::kNot:
      CollectCols(*p.a, cols);
      break;
    case ScanPred::Kind::kConst:
      break;
  }
}

// --- Scalar evaluation ------------------------------------------------------
//
// Replicates EvaluateComparison/EvaluateLogical (expr_eval.cc) exactly
// for the classified shapes: either side NULL -> NULL; three-way compare
// c in the coerced double space with NaN landing in c = 1 regardless of
// which side it is on; Kleene 3VL for AND/OR/NOT.

bool CmpToBool(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEqual: return c == 0;
    case BinaryOp::kNotEqual: return c != 0;
    case BinaryOp::kLess: return c < 0;
    case BinaryOp::kLessEqual: return c <= 0;
    case BinaryOp::kGreater: return c > 0;
    case BinaryOp::kGreaterEqual: return c >= 0;
    default: return false;
  }
}

/// Result of `op` when the three-way compare lands in c = 1 — the slot
/// every NaN comparison falls into, whichever side the NaN is on.
bool OpAtC1(BinaryOp op) { return CmpToBool(op, 1); }

/// `vals`/`nulls` are indexed by table column ordinal and populated for
/// every column the predicate references.
Tri EvalPred(const ScanPred& p, const double* vals, const uint8_t* nulls) {
  switch (p.kind) {
    case ScanPred::Kind::kCmp: {
      const bool an = p.lhs_col >= 0 ? nulls[p.lhs_col] != 0 : p.lhs_null;
      const bool bn = p.rhs_col >= 0 ? nulls[p.rhs_col] != 0 : p.rhs_null;
      if (an || bn) return Tri::kNull;
      const double a = p.lhs_col >= 0 ? vals[p.lhs_col] : p.lhs_val;
      const double b = p.rhs_col >= 0 ? vals[p.rhs_col] : p.rhs_val;
      const int c = a < b ? -1 : (a == b ? 0 : 1);
      return CmpToBool(p.op, c) ? Tri::kTrue : Tri::kFalse;
    }
    case ScanPred::Kind::kBoolCol:
      if (nulls[p.col] != 0) return Tri::kNull;
      return vals[p.col] != 0.0 ? Tri::kTrue : Tri::kFalse;
    case ScanPred::Kind::kConst:
      return p.const_val;
    case ScanPred::Kind::kNot: {
      const Tri v = EvalPred(*p.a, vals, nulls);
      if (v == Tri::kNull) return Tri::kNull;
      return v == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
    }
    case ScanPred::Kind::kAnd: {
      const Tri x = EvalPred(*p.a, vals, nulls);
      const Tri y = EvalPred(*p.b, vals, nulls);
      if (x == Tri::kFalse || y == Tri::kFalse) return Tri::kFalse;
      if (x == Tri::kNull || y == Tri::kNull) return Tri::kNull;
      return Tri::kTrue;
    }
    case ScanPred::Kind::kOr: {
      const Tri x = EvalPred(*p.a, vals, nulls);
      const Tri y = EvalPred(*p.b, vals, nulls);
      if (x == Tri::kTrue || y == Tri::kTrue) return Tri::kTrue;
      if (x == Tri::kNull || y == Tri::kNull) return Tri::kNull;
      return Tri::kFalse;
    }
  }
  return Tri::kNull;
}

// --- Zone-map analysis ------------------------------------------------------
//
// Per block, the possible-truth-set of a predicate: which of {T, F, N}
// its row-level result could take. Computed bottom-up; every case is a
// superset approximation, which is sound for both decisions that use it
// (prune when T is impossible, take the whole block when only T is
// possible).

Tri And3(Tri x, Tri y) {
  if (x == Tri::kFalse || y == Tri::kFalse) return Tri::kFalse;
  if (x == Tri::kNull || y == Tri::kNull) return Tri::kNull;
  return Tri::kTrue;
}
Tri Or3(Tri x, Tri y) {
  if (x == Tri::kTrue || y == Tri::kTrue) return Tri::kTrue;
  if (x == Tri::kNull || y == Tri::kNull) return Tri::kNull;
  return Tri::kFalse;
}

uint8_t ComposeSets(uint8_t sa, uint8_t sb, Tri (*op3)(Tri, Tri)) {
  static constexpr Tri kAll[3] = {Tri::kTrue, Tri::kFalse, Tri::kNull};
  uint8_t out = 0;
  for (Tri x : kAll) {
    if ((sa & TriBit(x)) == 0) continue;
    for (Tri y : kAll) {
      if ((sb & TriBit(y)) == 0) continue;
      out |= TriBit(op3(x, y));
    }
  }
  return out;
}

/// Possible-set of `col interval_op lit` for one block. `interval_op` is
/// the comparison rewritten with the column on the left (mirrored when
/// the column is the right operand: a < b <=> b > a for comparable
/// values); `nan_op` is the ORIGINAL operator, because a NaN row lands in
/// c = 1 on either side, so its result is nan_op(c=1) un-mirrored.
uint8_t ColCmpConstSet(const ZoneMap& z, BinaryOp interval_op,
                       BinaryOp nan_op, double lit, bool lit_null) {
  if (z.rows == 0) return 0;
  if (lit_null) return kN;  // NULL literal: every row's result is NULL
  uint8_t s = 0;
  if (z.null_count > 0) s |= kN;
  const uint32_t comparable = z.comparable_count();
  if (std::isnan(lit)) {
    // Every non-null row compares into c = 1 against a NaN literal.
    if (comparable + z.nan_count > 0) s |= OpAtC1(nan_op) ? kT : kF;
    return s;
  }
  if (z.nan_count > 0) s |= OpAtC1(nan_op) ? kT : kF;
  if (comparable > 0) {
    bool t = true, f = true;
    switch (interval_op) {
      case BinaryOp::kLess:
        t = z.min < lit;
        f = z.max >= lit;
        break;
      case BinaryOp::kLessEqual:
        t = z.min <= lit;
        f = z.max > lit;
        break;
      case BinaryOp::kGreater:
        t = z.max > lit;
        f = z.min <= lit;
        break;
      case BinaryOp::kGreaterEqual:
        t = z.max >= lit;
        f = z.min < lit;
        break;
      case BinaryOp::kEqual:
        t = z.min <= lit && lit <= z.max;
        f = !(z.min == lit && z.max == lit);
        break;
      case BinaryOp::kNotEqual:
        t = !(z.min == lit && z.max == lit);
        f = z.min <= lit && lit <= z.max;
        break;
      default:
        break;
    }
    if (t) s |= kT;
    if (f) s |= kF;
  }
  return s;
}

BinaryOp MirrorOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLess: return BinaryOp::kGreater;
    case BinaryOp::kLessEqual: return BinaryOp::kGreaterEqual;
    case BinaryOp::kGreater: return BinaryOp::kLess;
    case BinaryOp::kGreaterEqual: return BinaryOp::kLessEqual;
    default: return op;  // =, != are symmetric
  }
}

uint8_t PossibleSet(const ScanPred& p, const BlockIndex& index, size_t b) {
  switch (p.kind) {
    case ScanPred::Kind::kCmp: {
      if (p.lhs_col >= 0 && p.rhs_col >= 0) {
        // Column vs column: no interval reasoning (yet); anything the row
        // evaluator could produce is possible.
        const ZoneMap& za = index.columns[p.lhs_col].zones[b];
        const ZoneMap& zb = index.columns[p.rhs_col].zones[b];
        uint8_t s = kT | kF;
        if (za.null_count > 0 || zb.null_count > 0) s |= kN;
        return s;
      }
      if (p.lhs_col >= 0) {
        return ColCmpConstSet(index.columns[p.lhs_col].zones[b], p.op, p.op,
                              p.rhs_val, p.rhs_null);
      }
      if (p.rhs_col >= 0) {
        return ColCmpConstSet(index.columns[p.rhs_col].zones[b],
                              MirrorOp(p.op), p.op, p.lhs_val, p.lhs_null);
      }
      // Constant comparison: evaluate it once.
      return TriBit(EvalPred(p, nullptr, nullptr));
    }
    case ScanPred::Kind::kBoolCol: {
      const ZoneMap& z = index.columns[p.col].zones[b];
      uint8_t s = 0;
      if (z.comparable_count() > 0) {
        if (z.max >= 1.0) s |= kT;
        if (z.min <= 0.0) s |= kF;
      }
      if (z.null_count > 0) s |= kN;
      return s;
    }
    case ScanPred::Kind::kConst:
      return TriBit(p.const_val);
    case ScanPred::Kind::kNot: {
      const uint8_t sa = PossibleSet(*p.a, index, b);
      uint8_t s = sa & kN;
      if (sa & kT) s |= kF;
      if (sa & kF) s |= kT;
      return s;
    }
    case ScanPred::Kind::kAnd:
      return ComposeSets(PossibleSet(*p.a, index, b),
                         PossibleSet(*p.b, index, b), And3);
    case ScanPred::Kind::kOr:
      return ComposeSets(PossibleSet(*p.a, index, b),
                         PossibleSet(*p.b, index, b), Or3);
  }
  return kT | kF | kN;
}

// --- Row access -------------------------------------------------------------

double CoercedAt(const Column& col, size_t r) {
  switch (col.type()) {
    case DataType::kInt64:
      return static_cast<double>(col.int64_data()[r]);
    case DataType::kDouble:
      return col.double_data()[r];
    case DataType::kBool:
      return col.bool_data()[r] ? 1.0 : 0.0;
    default:
      return 0.0;  // unreachable: classification rejects strings
  }
}

}  // namespace

ScanEngine GlobalScanEngine() {
  return static_cast<ScanEngine>(
      ScanEngineFlag().load(std::memory_order_relaxed));
}

void SetGlobalScanEngine(ScanEngine engine) {
  ScanEngineFlag().store(static_cast<int>(engine), std::memory_order_relaxed);
}

std::string ScanStats::Describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "zonescan: blocks=%zu pruned=%zu taken=%zu runs_skipped=%zu",
                blocks_total, blocks_pruned, blocks_taken, rows_run_skipped);
  return buf;
}

std::optional<std::vector<uint32_t>> CompressedFilterRows(
    const Expr& pred, const Table& table, ScanStats* stats) {
  if (GlobalScanEngine() != ScanEngine::kCompressed) return std::nullopt;
  const std::shared_ptr<const BlockIndex> index = FindBlockIndex(table);
  if (index == nullptr) return std::nullopt;
  const std::unique_ptr<ScanPred> plan = Classify(pred, table);
  if (plan == nullptr) {
    FallbackDecodeCounter()->Add();
    return std::nullopt;
  }
  std::vector<int> cols;
  CollectCols(*plan, &cols);

  const size_t nb = index->num_blocks;
  ScanStats local;
  ScanStats* st = stats != nullptr ? stats : &local;
  *st = ScanStats{};  // fresh tally per scan, even when the caller reuses one
  st->blocks_total = nb;
  if (nb == 0) return std::vector<uint32_t>{};  // empty table: empty selection

  // Pass 1 (zone maps only): classify every block as NONE / ALL / SOME,
  // and check whether the SOME blocks can at least be batched by runs.
  std::vector<uint8_t> verdict(nb);  // 0 = prune, 1 = take all, 2 = evaluate
  bool every_some_block_has_runs = true;
  bool any_some = false;
  for (size_t b = 0; b < nb; ++b) {
    const uint8_t s = PossibleSet(*plan, *index, b);
    if ((s & kT) == 0) {
      verdict[b] = 0;
      ++st->blocks_pruned;
    } else if (s == kT) {
      verdict[b] = 1;
      ++st->blocks_taken;
    } else {
      verdict[b] = 2;
      any_some = true;
      for (int c : cols) {
        if (index->columns[c].runs[b].empty()) {
          every_some_block_has_runs = false;
          break;
        }
      }
    }
  }

  // Bail to the decode path when the index buys nothing: no block pruned
  // or fully taken, and the SOME blocks cannot be run-batched — a plain
  // per-row walk here would just be a slower bytecode VM.
  if (st->blocks_pruned == 0 && st->blocks_taken == 0 &&
      !(any_some && every_some_block_has_runs && !cols.empty())) {
    FallbackDecodeCounter()->Add();
    st->blocks_pruned = 0;
    st->blocks_total = 0;
    return std::nullopt;
  }

  // Pass 2: materialize the selection. This walk cannot return a Status
  // (declining is the contract), so when the governor trips mid-walk the
  // scan declines instead: the caller falls back to the decode path,
  // whose first poll surfaces the same sticky typed error.
  std::vector<uint32_t> out;
  std::vector<double> vals(table.num_columns(), 0.0);
  std::vector<uint8_t> nulls(table.num_columns(), 0);
  std::vector<size_t> run_pos(cols.size(), 0);
  QueryGovernor* const governor = QueryGovernor::Current();
  for (size_t b = 0; b < nb; ++b) {
    if (governor != nullptr && !governor->Poll().ok()) {
      FallbackDecodeCounter()->Add();
      return std::nullopt;
    }
    if (verdict[b] == 0) continue;
    const size_t start = index->BlockStart(b);
    const size_t len = index->BlockLength(b);
    if (verdict[b] == 1) {
      for (size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<uint32_t>(start + i));
      }
      continue;
    }
    bool runs_ok = !cols.empty();
    for (int c : cols) {
      if (index->columns[c].runs[b].empty()) {
        runs_ok = false;
        break;
      }
    }
    if (runs_ok) {
      // Merged-run walk: advance through the aligned run partitions of
      // every referenced column, evaluating once per joint segment.
      std::fill(run_pos.begin(), run_pos.end(), 0);
      size_t pos = 0;
      while (pos < len) {
        size_t seg_end = len;
        for (size_t i = 0; i < cols.size(); ++i) {
          const EncodedRun& r = index->columns[cols[i]].runs[b][run_pos[i]];
          vals[cols[i]] = r.value;
          nulls[cols[i]] = r.is_null ? 1 : 0;
          seg_end = std::min(seg_end, static_cast<size_t>(r.start) + r.len);
        }
        if (EvalPred(*plan, vals.data(), nulls.data()) == Tri::kTrue) {
          for (size_t i = pos; i < seg_end; ++i) {
            out.push_back(static_cast<uint32_t>(start + i));
          }
        }
        st->rows_run_skipped += seg_end - pos - 1;
        for (size_t i = 0; i < cols.size(); ++i) {
          const EncodedRun& r = index->columns[cols[i]].runs[b][run_pos[i]];
          if (static_cast<size_t>(r.start) + r.len == seg_end) ++run_pos[i];
        }
        pos = seg_end;
      }
    } else {
      for (size_t i = 0; i < len; ++i) {
        const size_t row = start + i;
        for (int c : cols) {
          const Column& column = table.column(c);
          const bool is_null = column.IsNull(row);
          nulls[c] = is_null ? 1 : 0;
          vals[c] = is_null ? 0.0 : CoercedAt(column, row);
        }
        if (EvalPred(*plan, vals.data(), nulls.data()) == Tri::kTrue) {
          out.push_back(static_cast<uint32_t>(row));
        }
      }
    }
  }

  BlocksTotalCounter()->Add(st->blocks_total);
  BlocksPrunedCounter()->Add(st->blocks_pruned);
  BlocksTakenCounter()->Add(st->blocks_taken);
  RunsSkippedCounter()->Add(st->rows_run_skipped);
  return out;
}

namespace {

/// Folds the zone maps (and run views, for SUM) of one column into an
/// AggState equivalent to the executor's row sweep. `need_sum` callers
/// additionally require the exactness proof; when it fails, the fold
/// still serves COUNT/MIN/MAX but `sum_exact` stays false.
struct ColumnFold {
  AggState state;
  bool sum_exact = false;
};

ColumnFold FoldColumn(const Table& table, const BlockIndex& index, int col) {
  constexpr double kExactIntBound = 9007199254740992.0;  // 2^53
  ColumnFold fold;
  AggState& s = fold.state;
  const ColumnBlockIndex& ci = index.columns[col];

  uint64_t nan_total = 0;
  bool integral = true;
  double magnitude_bound = 0.0;
  for (size_t b = 0; b < index.num_blocks; ++b) {
    const ZoneMap& z = ci.zones[b];
    s.count += z.rows - z.null_count;
    nan_total += z.nan_count;
    const uint32_t comparable = z.comparable_count();
    if (comparable > 0) {
      s.saw_comparable = true;
      s.min = std::min(s.min, z.min);
      s.max = std::max(s.max, z.max);
      if (!z.all_integral) integral = false;
      magnitude_bound += std::max(std::fabs(z.min), std::fabs(z.max)) *
                         static_cast<double>(comparable);
    }
  }
  s.any = s.count > 0;

  // Exactness proof for SUM/AVG: no NaN can poison the total, every
  // addend is an exactly-representable integer, and every partial sum
  // stays within [-2^53, 2^53] where double addition is exact — so the
  // run-weighted fold below is bit-identical to the row sweep in any
  // association order.
  if (nan_total != 0 || !integral || magnitude_bound > kExactIntBound ||
      std::isnan(magnitude_bound)) {
    return fold;
  }
  for (size_t b = 0; b < index.num_blocks; ++b) {
    const ZoneMap& z = ci.zones[b];
    if (z.rows == z.null_count) continue;
    const std::vector<EncodedRun>& runs = ci.runs[b];
    if (!runs.empty()) {
      for (const EncodedRun& r : runs) {
        if (!r.is_null) s.sum += r.value * static_cast<double>(r.len);
      }
    } else {
      const Column& column = table.column(col);
      const size_t start = index.BlockStart(b);
      const size_t len = index.BlockLength(b);
      for (size_t i = 0; i < len; ++i) {
        if (!column.IsNull(start + i)) s.sum += CoercedAt(column, start + i);
      }
    }
  }
  fold.sum_exact = true;
  return fold;
}

}  // namespace

std::optional<std::vector<AggState>> EncodedGlobalAggregate(
    const Table& table, const std::vector<const Expr*>& slots) {
  if (GlobalScanEngine() != ScanEngine::kCompressed) return std::nullopt;
  const std::shared_ptr<const BlockIndex> index = FindBlockIndex(table);
  if (index == nullptr) return std::nullopt;

  std::vector<AggState> states;
  states.reserve(slots.size());
  for (const Expr* slot : slots) {
    if (slot == nullptr || slot->kind != ExprKind::kAggregate) {
      return std::nullopt;
    }
    const AggregateFunc func = slot->aggregate_func;
    if (slot->children[0]->kind == ExprKind::kStar) {
      if (func != AggregateFunc::kCount) return std::nullopt;
      AggState s;
      s.count = table.num_rows();
      s.any = s.count > 0;
      states.push_back(std::move(s));
      continue;
    }
    // VARIANCE/STDDEV run Welford recurrences whose result depends on
    // input order; a zone fold cannot reproduce them bit-for-bit.
    if (func == AggregateFunc::kVariance || func == AggregateFunc::kStddev) {
      return std::nullopt;
    }
    const Expr& arg = *slot->children[0];
    if (arg.kind != ExprKind::kColumnRef) return std::nullopt;
    const auto idx = table.schema().FieldIndex(arg.column_name);
    if (!idx.ok()) return std::nullopt;
    if (!index->columns[*idx].usable) return std::nullopt;  // string column
    ColumnFold fold = FoldColumn(table, *index, static_cast<int>(*idx));
    if ((func == AggregateFunc::kSum || func == AggregateFunc::kAvg) &&
        !fold.sum_exact) {
      return std::nullopt;
    }
    states.push_back(std::move(fold.state));
  }
  EncodedAggCounter()->Add();
  return states;
}

}  // namespace laws

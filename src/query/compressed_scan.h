#ifndef LAWSDB_QUERY_COMPRESSED_SCAN_H_
#define LAWSDB_QUERY_COMPRESSED_SCAN_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "query/agg_state.h"
#include "query/ast.h"
#include "storage/table.h"

namespace laws {

/// Compressed-domain scan planner (DESIGN.md §14). Filters and global
/// aggregates are attempted directly on the block index built by
/// compress/block_store: zone maps prune whole blocks, RLE runs are
/// evaluated once per run, and SUM/COUNT/MIN/MAX/AVG fold zone
/// statistics without touching rows. Every entry point either produces a
/// result bit-identical to the decode-then-evaluate path or declines
/// (returns nullopt) so the caller falls back — never a third outcome.

/// Scan-tier selector, mirroring ExprEngine (vector_eval.h). kCompressed
/// is the default; LAWS_SCAN_DECODE=1 in the environment forces kDecode
/// at startup (escape hatch + differential-tier hook).
enum class ScanEngine {
  kCompressed,
  kDecode,
};

ScanEngine GlobalScanEngine();
void SetGlobalScanEngine(ScanEngine engine);

/// Per-scan statistics for EXPLAIN ANALYZE span details (the process-wide
/// scan.* counters are bumped internally).
struct ScanStats {
  size_t blocks_total = 0;
  size_t blocks_pruned = 0;   // zone map proved no row can pass
  size_t blocks_taken = 0;    // zone map proved every row passes
  size_t rows_run_skipped = 0;  // rows decided by a run-mate's evaluation

  std::string Describe() const;
};

/// Attempts to evaluate WHERE predicate `pred` over `table` in the
/// compressed domain. Returns the selected row indices (ascending) —
/// bit-identical to FilterRows on the same inputs — or nullopt when:
///  - the scan engine is kDecode, or the table has no current block
///    index registered (EnsureBlockIndex was never called / data moved);
///  - the predicate falls outside the conservative class (anything that
///    could raise a column-level type error, touch strings, or evaluate
///    arithmetic: those shapes keep their existing error behavior on the
///    decode path);
///  - the zone maps neither prune nor fully take any block and no
///    referenced column has a run view (the per-row scalar walk would
///    only duplicate the bytecode VM's work, slower).
std::optional<std::vector<uint32_t>> CompressedFilterRows(
    const Expr& pred, const Table& table, ScanStats* stats);

/// Attempts a global (no GROUP BY) aggregation over `table` entirely from
/// zone statistics and run views. `slots` are the unique aggregate calls
/// in statement order. Supported: COUNT(*)/COUNT/MIN/MAX over numeric
/// column refs unconditionally, SUM/AVG additionally gated on an
/// exactness proof (all blocks integral, total magnitude under 2^53, no
/// NaNs) so the fold is bit-identical to the row sweep in any order.
/// Returns one finalized-compatible AggState per slot, or nullopt to
/// decline (engine off, no index, unsupported shape, exactness unproven).
std::optional<std::vector<AggState>> EncodedGlobalAggregate(
    const Table& table, const std::vector<const Expr*>& slots);

}  // namespace laws

#endif  // LAWSDB_QUERY_COMPRESSED_SCAN_H_

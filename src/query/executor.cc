#include "query/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/governor.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/block_store.h"
#include "query/agg_state.h"
#include "query/compressed_scan.h"
#include "query/expr_eval.h"
#include "query/vector_eval.h"
#include "query/parser.h"

namespace laws {
namespace {

/// Row stride between governor polls inside per-row loops: frequent
/// enough that a canceled query stops within microseconds, sparse enough
/// that the poll (one TLS read + one relaxed load when idle) stays
/// invisible in profiles.
constexpr size_t kGovernorPollStride = 4096;

/// A unique aggregate call discovered in the statement.
struct AggSlot {
  const Expr* node;       // canonical instance
  std::string key;        // ToString identity
  std::string hidden_name;
  bool is_star = false;
};

void CollectAggregates(const Expr& expr, std::vector<AggSlot>* slots) {
  if (expr.kind == ExprKind::kAggregate) {
    const std::string key = expr.ToString();
    for (const AggSlot& s : *slots) {
      if (s.key == key) return;
    }
    AggSlot slot;
    slot.node = &expr;
    slot.key = key;
    slot.hidden_name = "__agg" + std::to_string(slots->size());
    slot.is_star = expr.children[0]->kind == ExprKind::kStar;
    slots->push_back(std::move(slot));
    return;  // aggregates cannot nest
  }
  for (const auto& c : expr.children) CollectAggregates(*c, slots);
}

/// Replaces aggregate nodes and group-key expressions with column refs into
/// the intermediate aggregated table.
std::unique_ptr<Expr> RewriteForAggregated(
    const Expr& expr, const std::vector<AggSlot>& slots,
    const std::vector<std::string>& key_exprs,
    const std::vector<std::string>& key_names) {
  const std::string repr = expr.ToString();
  for (size_t i = 0; i < key_exprs.size(); ++i) {
    if (repr == key_exprs[i]) return Expr::MakeColumnRef(key_names[i]);
  }
  if (expr.kind == ExprKind::kAggregate) {
    for (const AggSlot& s : slots) {
      if (s.key == repr) return Expr::MakeColumnRef(s.hidden_name);
    }
  }
  auto out = expr.Clone();
  for (auto& c : out->children) {
    c = RewriteForAggregated(*c, slots, key_exprs, key_names);
  }
  return out;
}

/// Folds a group-key value into its canonical GROUP BY identity. Doubles
/// need two fixes before text serialization: every NaN bit pattern maps to
/// one key (printf renders the sign bit as "nan" vs "-nan", which would
/// split NaN rows into separate groups), and -0.0 folds into +0.0
/// (== equal values must share a group, but their rendered texts differ).
Value CanonicalGroupValue(Value v) {
  if (v.is_double()) {
    const double d = v.dbl();
    if (std::isnan(d)) return Value::Double(std::numeric_limits<double>::quiet_NaN());
    if (d == 0.0) return Value::Double(0.0);
  }
  return v;
}

/// Appends a canonical, collision-free encoding of `col[row]` to `key`: a
/// one-byte type tag, then a fixed-width payload (length-prefixed for
/// strings). Doubles are canonicalized first — every NaN bit pattern folds
/// to one quiet NaN and -0.0 to +0.0 — and then encoded by bit pattern.
/// The previous text serialization had two collision classes this removes:
/// "%.10g" merged doubles differing past ten significant digits, and the
/// bare '|' separator let strings containing '|' (or the literal "NULL")
/// alias values from adjacent columns.
void AppendCanonicalKey(const Column& col, size_t row, std::string* key) {
  if (col.IsNull(row)) {
    key->push_back('N');
    return;
  }
  switch (col.type()) {
    case DataType::kInt64: {
      const int64_t v = col.Int64At(row);
      key->push_back('i');
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case DataType::kDouble: {
      double v = col.DoubleAt(row);
      if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
      if (v == 0.0) v = 0.0;  // fold -0.0
      key->push_back('d');
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case DataType::kBool:
      key->push_back(col.BoolAt(row) ? 'T' : 'F');
      return;
    case DataType::kString: {
      const std::string_view s = col.StringAt(row);
      const uint32_t len = static_cast<uint32_t>(s.size());
      key->push_back('s');
      key->append(reinterpret_cast<const char*>(&len), sizeof(len));
      key->append(s.data(), s.size());
      return;
    }
  }
}

/// Serializes a row's group-key values into a hashable string.
std::string MakeGroupKey(const std::vector<Column>& key_cols, size_t row) {
  std::string key;
  for (const Column& c : key_cols) {
    AppendCanonicalKey(c, row, &key);
  }
  return key;
}

// AggState and AggFinalValue live in query/agg_state.h, shared with the
// encoded run-weighted aggregator (compressed_scan.cc).

Result<Table> Aggregate(const Table& input, const SelectStatement& stmt,
                        const std::vector<AggSlot>& slots,
                        std::vector<std::string>* key_names) {
  // Evaluate group-key expressions. Key and argument columns are the
  // aggregation's big materializations; charge them as they appear.
  ScopedCharge charge;
  std::vector<Column> key_cols;
  key_cols.reserve(stmt.group_by.size());
  for (const auto& g : stmt.group_by) {
    LAWS_GOVERNOR_POLL();
    LAWS_ASSIGN_OR_RETURN(Column c, EvaluateExprAuto(*g, input));
    LAWS_RETURN_IF_ERROR(charge.Acquire(c.MemoryBytes(), "group keys"));
    key_cols.push_back(std::move(c));
  }
  std::vector<size_t> representative_row;  // first row of each group
  std::vector<std::vector<AggState>> states;
  std::vector<Column> arg_cols;

  // Global aggregations over an indexed base table can often be folded
  // from zone statistics and run views without touching rows (DESIGN.md
  // §14). EncodedGlobalAggregate only answers when the fold is provably
  // bit-identical to the sweep below, so the shortcut is invisible to
  // everything downstream.
  bool encoded = false;
  LAWS_GOVERNOR_POLL();
  if (stmt.group_by.empty()) {
    std::vector<const Expr*> nodes;
    nodes.reserve(slots.size());
    for (const AggSlot& s : slots) nodes.push_back(s.node);
    if (auto enc = EncodedGlobalAggregate(input, nodes)) {
      states.push_back(std::move(*enc));
      representative_row.push_back(0);
      encoded = true;
    }
  }

  if (!encoded) {
    // Evaluate aggregate argument columns (once each).
    arg_cols.reserve(slots.size());
    for (const AggSlot& s : slots) {
      if (s.is_star) {
        arg_cols.emplace_back(DataType::kInt64);  // unused placeholder
        continue;
      }
      LAWS_GOVERNOR_POLL();
      LAWS_ASSIGN_OR_RETURN(Column c,
                            EvaluateExprAuto(*s.node->children[0], input));
      // SUM/AVG/VARIANCE/STDDEV over a string argument is a planning-time
      // type error, not a data-dependent one (the old behavior errored only
      // when some group actually held a non-null string).
      const AggregateFunc func = s.node->aggregate_func;
      if (c.type() == DataType::kString &&
          (func == AggregateFunc::kSum || func == AggregateFunc::kAvg ||
           func == AggregateFunc::kVariance ||
           func == AggregateFunc::kStddev)) {
        return Status::TypeMismatch(std::string(AggregateFuncToString(func)) +
                                    "() requires a numeric argument");
      }
      LAWS_RETURN_IF_ERROR(
          charge.Acquire(c.MemoryBytes(), "aggregate arguments"));
      arg_cols.push_back(std::move(c));
    }

    // Pass 1: hash rows into groups. Only the key columns are touched here;
    // each row records its group ordinal for the columnar update pass.
    std::unordered_map<std::string, size_t> group_index;
    const size_t n = input.num_rows();
    LAWS_RETURN_IF_ERROR(
        charge.Acquire(n * sizeof(uint32_t), "group-of vector"));
    std::vector<uint32_t> group_of(n);
    for (size_t row = 0; row < n; ++row) {
      if (row % kGovernorPollStride == 0) LAWS_GOVERNOR_POLL();
      const std::string key = MakeGroupKey(key_cols, row);
      auto [it, inserted] = group_index.emplace(key, states.size());
      if (inserted) {
        representative_row.push_back(row);
        states.emplace_back(slots.size());
      }
      group_of[row] = static_cast<uint32_t>(it->second);
    }

    // Pass 2: one columnar sweep per aggregate slot. Numeric arguments are
    // materialized with a single bulk GatherNumericMasked — one type
    // dispatch per column instead of a Result-wrapped NumericAt per cell.
    // Rows are processed in table order, so the Welford mean/m2 recurrences
    // see values in exactly the same order (and produce bit-identical
    // results) as the old row-at-a-time loop.
    LAWS_RETURN_IF_ERROR(charge.Acquire(
        n * (sizeof(uint32_t) + sizeof(double) + sizeof(uint8_t)),
        "aggregate sweep buffers"));
    std::vector<uint32_t> all_rows(n);
    for (size_t i = 0; i < n; ++i) all_rows[i] = static_cast<uint32_t>(i);
    std::vector<double> arg_values(n);
    std::vector<uint8_t> arg_nulls(n);
    for (size_t a = 0; a < slots.size(); ++a) {
      LAWS_GOVERNOR_POLL();
      if (slots[a].is_star) {
        for (size_t row = 0; row < n; ++row) {
          AggState& s = states[group_of[row]][a];
          ++s.count;
          s.any = true;
        }
        continue;
      }
      const Column& arg = arg_cols[a];
      if (arg.type() == DataType::kString) {
        // Strings keep the element-wise path (dictionary lookups, ordering).
        for (size_t row = 0; row < n; ++row) {
          if (row % kGovernorPollStride == 0) LAWS_GOVERNOR_POLL();
          if (arg.IsNull(row)) continue;
          AggState& s = states[group_of[row]][a];
          ++s.count;
          s.any = true;
          s.is_string = true;
          const std::string v(arg.StringAt(row));
          if (s.count == 1 || v < s.smin) s.smin = v;
          if (s.count == 1 || v > s.smax) s.smax = v;
        }
        continue;
      }
      const auto gathered =
          arg.GatherNumericMasked(all_rows.data(), n, arg_values.data(),
                                  arg_nulls.data());
      if (!gathered.ok()) return gathered.status();
#ifdef LAWS_TESTING_INJECT_BUG
      // Deliberate off-by-one for the mutation smoke check in
      // tools/check_differential.sh: the merge sweep drops the last input
      // row. Never defined in production builds.
      const size_t sweep_rows = n > 0 ? n - 1 : 0;
#else
      const size_t sweep_rows = n;
#endif
      for (size_t row = 0; row < sweep_rows; ++row) {
        if (row % kGovernorPollStride == 0) LAWS_GOVERNOR_POLL();
        if (arg_nulls[row]) continue;
        AggState& s = states[group_of[row]][a];
        ++s.count;
        s.any = true;
        const double v = arg_values[row];
        if (!std::isnan(v)) s.saw_comparable = true;
        s.sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
        const double delta = v - s.mean;
        s.mean += delta / static_cast<double>(s.count);
        s.m2 += delta * (v - s.mean);
      }
    }
  }

  // Global aggregation with no GROUP BY and zero rows still yields one row
  // (COUNT(*) = 0, SUM = NULL, ...).
  if (stmt.group_by.empty() && states.empty()) {
    representative_row.push_back(0);
    states.emplace_back(slots.size());
  }

  // Build the intermediate table: key columns then aggregate columns.
  std::vector<Field> fields;
  key_names->clear();
  for (size_t k = 0; k < key_cols.size(); ++k) {
    const std::string name = "__key" + std::to_string(k);
    key_names->push_back(name);
    fields.push_back(Field{name, key_cols[k].type(), true});
  }
  for (size_t a = 0; a < slots.size(); ++a) {
    const DataType t =
        slots[a].node->aggregate_func == AggregateFunc::kCount
            ? DataType::kInt64
            : (!slots[a].is_star && a < arg_cols.size() &&
                       arg_cols[a].type() == DataType::kString
                   ? DataType::kString
                   : DataType::kDouble);
    fields.push_back(Field{slots[a].hidden_name, t, true});
  }
  Table out{Schema(std::move(fields))};
  std::vector<Value> row_values;
  for (size_t g = 0; g < states.size(); ++g) {
    row_values.clear();
    for (size_t k = 0; k < key_cols.size(); ++k) {
      // For the synthetic empty-input global group there are no keys. Key
      // values pass through the same canonicalization as the hash key, so
      // a group whose first row held -0.0 (or a sign-flipped NaN) emits
      // the canonical key, not a first-seen artifact.
      row_values.push_back(
          key_cols.empty() || input.num_rows() == 0
              ? Value::Null()
              : CanonicalGroupValue(
                    key_cols[k].GetValue(representative_row[g])));
    }
    for (size_t a = 0; a < slots.size(); ++a) {
      row_values.push_back(AggFinalValue(*slots[a].node, states[g][a]));
    }
    LAWS_RETURN_IF_ERROR(out.AppendRow(row_values));
  }
  return out;
}

Result<Table> SortRows(Table table, const SelectStatement& stmt,
                       const std::vector<std::unique_ptr<Expr>>& keys) {
  if (keys.empty()) return table;
  ScopedCharge charge;
  std::vector<Column> key_cols;
  for (const auto& k : keys) {
    LAWS_GOVERNOR_POLL();
    LAWS_ASSIGN_OR_RETURN(Column c, EvaluateExprAuto(*k, table));
    LAWS_RETURN_IF_ERROR(charge.Acquire(c.MemoryBytes(), "sort keys"));
    key_cols.push_back(std::move(c));
  }
  LAWS_RETURN_IF_ERROR(charge.Acquire(
      table.num_rows() * sizeof(uint32_t), "sort permutation"));
  std::vector<uint32_t> perm(table.num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
  // The comparator cannot return an error, so deadline/cancel are
  // observed between comparisons and surfaced after the sort: track the
  // first tripped status and re-check before gathering. (stable_sort
  // must run to completion for the comparator to stay well-defined.)
  bool incomparable = false;
  size_t comparisons = 0;
  Status tripped;
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
    if (tripped.ok() && ++comparisons % kGovernorPollStride == 0) {
      if (QueryGovernor* gov = QueryGovernor::Current()) {
        tripped = gov->Poll();
      }
    }
    for (size_t k = 0; k < key_cols.size(); ++k) {
      int c = CompareOrderValues(key_cols[k].GetValue(x),
                                 key_cols[k].GetValue(y), &incomparable);
      if (!stmt.order_by[k].ascending) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  });
  if (!tripped.ok()) return tripped;
  if (incomparable) {
    // The comparator stayed a valid total order (type-ranked), so the
    // sort itself was well-defined — but silently interleaving strings
    // with numbers would hide a type bug, so surface it instead.
    return Status::TypeMismatch(
        "ORDER BY key mixes string and numeric values");
  }
  return table.GatherRows(perm);
}

/// INNER equi-join: hash-builds on the right side, probes with the left.
/// Right-side columns whose names collide with left ones are exposed as
/// "<right_table>_<name>". NULL keys never match (SQL semantics).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<JoinKey>& keys,
                       const std::string& right_name) {
  if (keys.empty()) {
    return Status::InvalidArgument("JOIN requires at least one ON key");
  }
  std::vector<const Column*> left_keys, right_keys;
  for (const JoinKey& k : keys) {
    LAWS_ASSIGN_OR_RETURN(const Column* lc,
                          left.ColumnByName(k.left_column));
    LAWS_ASSIGN_OR_RETURN(const Column* rc,
                          right.ColumnByName(k.right_column));
    if (lc->type() != rc->type()) {
      return Status::TypeMismatch("join key type mismatch on " +
                                  k.left_column + " = " + k.right_column);
    }
    left_keys.push_back(lc);
    right_keys.push_back(rc);
  }

  // SQL equi-join semantics: NULL keys never match, and neither do NaN
  // keys (NaN = NaN is false). -0.0 and +0.0 must match, which the
  // canonical encoding guarantees.
  auto row_key = [](const std::vector<const Column*>& cols, size_t row,
                    std::string* out) {
    out->clear();
    for (const Column* c : cols) {
      if (c->IsNull(row)) return false;
      if (c->type() == DataType::kDouble && std::isnan(c->DoubleAt(row))) {
        return false;
      }
      AppendCanonicalKey(*c, row, out);
    }
    return true;
  };

  // Build on the right side. The hash table is the join's dominant
  // allocation; charge a conservative per-entry estimate up front and
  // the match vectors as they grow.
  ScopedCharge charge;
  LAWS_RETURN_IF_ERROR(charge.Acquire(
      right.num_rows() * (sizeof(uint32_t) + 2 * sizeof(void*)),
      "hash join build"));
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  build.reserve(right.num_rows());
  std::string key;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (r % kGovernorPollStride == 0) LAWS_GOVERNOR_POLL();
    if (!row_key(right_keys, r, &key)) continue;
    build[key].push_back(static_cast<uint32_t>(r));
  }

  // Probe with the left side, collecting matching row-index pairs. The
  // output can be quadratic in the inputs (many-to-many keys), so the
  // match vectors are re-charged as they double.
  std::vector<uint32_t> left_rows, right_rows;
  uint64_t charged_matches = 0;
  for (size_t l = 0; l < left.num_rows(); ++l) {
    if (l % kGovernorPollStride == 0) LAWS_GOVERNOR_POLL();
    if (!row_key(left_keys, l, &key)) continue;
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (uint32_t r : it->second) {
      left_rows.push_back(static_cast<uint32_t>(l));
      right_rows.push_back(r);
    }
    if (left_rows.size() > charged_matches) {
      const uint64_t grown = left_rows.size() - charged_matches;
      LAWS_RETURN_IF_ERROR(charge.Acquire(grown * 2 * sizeof(uint32_t),
                                          "hash join matches"));
      charged_matches = left_rows.size();
    }
  }

  // Assemble the output schema: left fields, then right fields with
  // collision-avoiding names.
  std::vector<Field> fields = left.schema().fields();
  std::vector<std::string> right_out_names;
  for (const Field& f : right.schema().fields()) {
    Field out = f;
    if (left.schema().HasField(f.name)) {
      out.name = right_name + "_" + f.name;
      if (left.schema().HasField(out.name)) {
        return Status::InvalidArgument("cannot disambiguate join column " +
                                       f.name);
      }
    }
    right_out_names.push_back(out.name);
    fields.push_back(std::move(out));
  }

  std::vector<Column> columns;
  columns.reserve(fields.size());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    columns.push_back(left.column(c).Gather(left_rows));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    columns.push_back(right.column(c).Gather(right_rows));
  }
  return Table::FromColumns(Schema(std::move(fields)), std::move(columns));
}

/// Keeps the first occurrence of each distinct row (order-preserving).
/// DISTINCT uses grouping identity: NULLs equal each other, all NaNs are
/// one class, -0.0 equals +0.0 — and the canonical encoding keeps NULL
/// distinct from the string "NULL" and doubles apart past ten digits.
Result<Table> DistinctRows(Table table) {
  ScopedCharge charge;
  LAWS_RETURN_IF_ERROR(charge.Acquire(
      table.num_rows() * (sizeof(uint32_t) + 2 * sizeof(void*)),
      "distinct hash set"));
  std::unordered_set<std::string> seen;
  seen.reserve(table.num_rows());
  std::vector<uint32_t> keep;
  std::string key;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (r % kGovernorPollStride == 0) LAWS_GOVERNOR_POLL();
    key.clear();
    for (size_t c = 0; c < table.num_columns(); ++c) {
      AppendCanonicalKey(table.column(c), r, &key);
    }
    if (seen.insert(key).second) keep.push_back(static_cast<uint32_t>(r));
  }
  if (keep.size() == table.num_rows()) return table;
  return table.GatherRows(keep);
}

Table LimitRows(Table table, int64_t limit) {
  if (limit < 0 || static_cast<size_t>(limit) >= table.num_rows()) {
    return table;
  }
  std::vector<uint32_t> head(static_cast<size_t>(limit));
  for (size_t i = 0; i < head.size(); ++i) head[i] = static_cast<uint32_t>(i);
  return table.GatherRows(head);
}

/// Substitutes references to select-list aliases in ORDER BY / HAVING with
/// the aliased expressions.
std::unique_ptr<Expr> SubstituteAliases(const Expr& expr,
                                        const SelectStatement& stmt) {
  if (expr.kind == ExprKind::kColumnRef) {
    for (const SelectItem& item : stmt.select_list) {
      if (!item.is_star && !item.alias.empty() &&
          item.alias == expr.column_name) {
        return item.expr->Clone();
      }
    }
  }
  auto out = expr.Clone();
  for (auto& c : out->children) c = SubstituteAliases(*c, stmt);
  return out;
}

}  // namespace

int CompareOrderValues(const Value& a, const Value& b, bool* incomparable) {
  const bool an = a.is_null();
  const bool bn = b.is_null();
  if (an || bn) {
    if (an && bn) return 0;
    return an ? 1 : -1;  // NULLs last ascending
  }
  const bool as = a.is_string();
  const bool bs = b.is_string();
  if (as && bs) {
    return a.str() < b.str() ? -1 : (a.str() == b.str() ? 0 : 1);
  }
  if (as != bs) {
    // Mixed string/number: rank numbers (and NaN) before strings so the
    // order stays total, and flag the pair as incomparable.
    if (incomparable != nullptr) *incomparable = true;
    return as ? 1 : -1;
  }
  // Both numeric: AsDouble cannot fail for non-null, non-string values.
  const double x = *a.AsDouble();
  const double y = *b.AsDouble();
  const bool xn = std::isnan(x);
  const bool yn = std::isnan(y);
  if (xn || yn) {
    if (xn && yn) return 0;  // all NaNs are one equivalence class
    return xn ? 1 : -1;      // numbers < NaN
  }
  return x < y ? -1 : (x == y ? 0 : 1);
}

// Note: `source` must already incorporate the statement's JOIN when one is
// present — ExecuteSelect materializes it; callers passing explicit tables
// (the AQP layer) use joinless statements.
Result<Table> ExecuteSelectOnTable(const Table& source,
                                   const SelectStatement& stmt) {
  {
    // Synthetic zero-cost span recording the source cardinality, so the
    // EXPLAIN ANALYZE tree starts at the scan like the static plan does.
    ScopedSpan scan("Scan");
    scan.SetRows(source.num_rows(), source.num_rows());
  }

  // Stage outputs are the pipeline's big materializations; each is
  // charged against the current governor (if any) and held until the
  // query finishes, which models the executor's true high-water mark
  // closely enough for a coarse budget.
  ScopedCharge pipeline_charge;
  LAWS_GOVERNOR_POLL();

  // 1. WHERE.
  Table filtered{Schema{}};
  const Table* current = &source;
  if (stmt.where != nullptr) {
    ScopedSpan span("Filter");
    std::vector<uint32_t> selection;
    // Compressed-domain first: when the table carries a block index and
    // the predicate is in the conservative class, zone maps prune whole
    // blocks and RLE runs batch the rest (DESIGN.md §14) — bit-identical
    // to the decode path or declined, never approximate.
    ScanStats scan_stats;
    if (auto compressed =
            CompressedFilterRows(*stmt.where, source, &scan_stats)) {
      selection = std::move(*compressed);
      if (span.active()) {
        span.SetDetail(stmt.where->ToString() + " | " +
                       scan_stats.Describe());
      }
    } else {
      std::string disasm;
      LAWS_ASSIGN_OR_RETURN(
          selection,
          FilterRowsAuto(*stmt.where, source,
                         span.active() ? &disasm : nullptr));
      if (span.active()) {
        span.SetDetail(disasm.empty() ? stmt.where->ToString()
                                      : stmt.where->ToString() +
                                            " | bytecode: " + disasm);
      }
    }
    filtered = source.GatherRows(selection);
    LAWS_RETURN_IF_ERROR(
        pipeline_charge.Acquire(filtered.MemoryBytes(), "filter output"));
    current = &filtered;
    span.SetRows(source.num_rows(), filtered.num_rows());
  }

  // 2. Aggregation if needed.
  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.select_list) {
    if (!item.is_star && item.expr->ContainsAggregate()) has_aggregate = true;
  }
  if (stmt.having != nullptr) has_aggregate = true;

  std::vector<SelectItem> projected_items;
  std::unique_ptr<Expr> having;
  std::vector<std::unique_ptr<Expr>> order_exprs;
  Table aggregated{Schema{}};

  if (has_aggregate) {
    // Collect aggregates across all clauses (aliases resolved first).
    std::vector<AggSlot> slots;
    std::vector<std::unique_ptr<Expr>> resolved_order;
    std::unique_ptr<Expr> resolved_having;
    for (const SelectItem& item : stmt.select_list) {
      if (item.is_star) {
        return Status::InvalidArgument("SELECT * is invalid with GROUP BY");
      }
      CollectAggregates(*item.expr, &slots);
    }
    if (stmt.having != nullptr) {
      resolved_having = SubstituteAliases(*stmt.having, stmt);
      CollectAggregates(*resolved_having, &slots);
    }
    for (const OrderKey& k : stmt.order_by) {
      resolved_order.push_back(SubstituteAliases(*k.expr, stmt));
      CollectAggregates(*resolved_order.back(), &slots);
    }

    std::vector<std::string> key_names;
    {
      ScopedSpan span("HashAggregate");
      if (span.active()) {
        std::string keys;
        for (const auto& g : stmt.group_by) {
          if (!keys.empty()) keys += ", ";
          keys += g->ToString();
        }
        span.SetDetail(keys.empty() ? "<global>" : keys);
      }
      const size_t rows_in = current->num_rows();
      LAWS_ASSIGN_OR_RETURN(aggregated,
                            Aggregate(*current, stmt, slots, &key_names));
      span.SetRows(rows_in, aggregated.num_rows());
    }
    LAWS_RETURN_IF_ERROR(pipeline_charge.Acquire(aggregated.MemoryBytes(),
                                                 "aggregate output"));
    current = &aggregated;

    std::vector<std::string> key_reprs;
    for (const auto& g : stmt.group_by) key_reprs.push_back(g->ToString());

    for (const SelectItem& item : stmt.select_list) {
      SelectItem out;
      out.alias = item.alias.empty() ? item.expr->ToString() : item.alias;
      out.expr =
          RewriteForAggregated(*item.expr, slots, key_reprs, key_names);
      // Validate: after rewriting, plain column refs must resolve to key or
      // aggregate columns.
      projected_items.push_back(std::move(out));
    }
    if (resolved_having != nullptr) {
      having =
          RewriteForAggregated(*resolved_having, slots, key_reprs, key_names);
    }
    for (auto& k : resolved_order) {
      order_exprs.push_back(
          RewriteForAggregated(*k, slots, key_reprs, key_names));
    }
  } else {
    for (const SelectItem& item : stmt.select_list) {
      if (item.is_star) {
        for (const Field& f : source.schema().fields()) {
          SelectItem out;
          out.alias = f.name;
          out.expr = Expr::MakeColumnRef(f.name);
          projected_items.push_back(std::move(out));
        }
        continue;
      }
      SelectItem out;
      out.alias = item.alias.empty() ? item.expr->ToString() : item.alias;
      out.expr = item.expr->Clone();
      projected_items.push_back(std::move(out));
    }
    for (const OrderKey& k : stmt.order_by) {
      order_exprs.push_back(SubstituteAliases(*k.expr, stmt));
    }
  }

  // 3. HAVING.
  Table post_having{Schema{}};
  if (having != nullptr) {
    ScopedSpan span("Filter[having]");
    const size_t rows_in = current->num_rows();
    std::string disasm;
    LAWS_ASSIGN_OR_RETURN(
        std::vector<uint32_t> selection,
        FilterRowsAuto(*having, *current,
                       span.active() ? &disasm : nullptr));
    if (span.active()) {
      span.SetDetail(disasm.empty()
                         ? having->ToString()
                         : having->ToString() + " | bytecode: " + disasm);
    }
    post_having = current->GatherRows(selection);
    LAWS_RETURN_IF_ERROR(
        pipeline_charge.Acquire(post_having.MemoryBytes(), "having output"));
    current = &post_having;
    span.SetRows(rows_in, post_having.num_rows());
  }

  // 4. ORDER BY is applied before projection (it may reference
  // non-projected columns); LIMIT waits until after DISTINCT.
  Table sorted{Schema{}};
  if (!order_exprs.empty()) {
    ScopedSpan span("Sort");
    if (span.active()) {
      std::string keys;
      for (size_t k = 0; k < stmt.order_by.size(); ++k) {
        if (k > 0) keys += ", ";
        keys += order_exprs[k]->ToString();
        keys += stmt.order_by[k].ascending ? " ASC" : " DESC";
      }
      span.SetDetail(keys);
    }
    const size_t rows_in = current->num_rows();
    LAWS_ASSIGN_OR_RETURN(sorted, SortRows(*current, stmt, order_exprs));
    LAWS_RETURN_IF_ERROR(
        pipeline_charge.Acquire(sorted.MemoryBytes(), "sort output"));
    current = &sorted;
    span.SetRows(rows_in, sorted.num_rows());
  }

  // 5. Projection.
  Table projected{Schema{}};
  {
    ScopedSpan span("Project");
    const size_t rows_in = current->num_rows();
    std::vector<Field> out_fields;
    std::vector<Column> out_cols;
    std::string detail;
    for (const SelectItem& item : projected_items) {
      LAWS_GOVERNOR_POLL();
      std::string disasm;
      LAWS_ASSIGN_OR_RETURN(
          Column c, EvaluateExprAuto(*item.expr, *current,
                                     span.active() ? &disasm : nullptr));
      if (span.active()) {
        if (!detail.empty()) detail += ", ";
        detail += item.alias;
        if (!disasm.empty()) detail += " | bytecode: " + disasm;
      }
      LAWS_RETURN_IF_ERROR(
          pipeline_charge.Acquire(c.MemoryBytes(), "projection output"));
      out_fields.push_back(Field{item.alias, c.type(), true});
      out_cols.push_back(std::move(c));
    }
    if (span.active()) span.SetDetail(detail);
    auto built =
        Table::FromColumns(Schema(std::move(out_fields)), std::move(out_cols));
    if (!built.ok()) return built.status();
    projected = std::move(*built);
    span.SetRows(rows_in, projected.num_rows());
  }

  // 6. DISTINCT, then LIMIT.
  if (stmt.distinct) {
    ScopedSpan span("Distinct");
    const size_t rows_in = projected.num_rows();
    LAWS_ASSIGN_OR_RETURN(projected, DistinctRows(std::move(projected)));
    span.SetRows(rows_in, projected.num_rows());
  }
  if (stmt.limit >= 0) {
    ScopedSpan span("Limit");
    if (span.active()) span.SetDetail(std::to_string(stmt.limit));
    const size_t rows_in = projected.num_rows();
    projected = LimitRows(std::move(projected), stmt.limit);
    span.SetRows(rows_in, projected.num_rows());
    return projected;
  }
  return projected;
}

Result<Table> ExecuteSelect(const Catalog& catalog,
                            const SelectStatement& stmt) {
  static Counter* executed =
      MetricsRegistry::Global().GetCounter("query.executed");
  executed->Add();
  LAWS_ASSIGN_OR_RETURN(TablePtr table, catalog.Get(stmt.from_table));
  if (stmt.join_table.empty()) {
    // Register (or refresh) the block index for the base table so the
    // compressed scan tier can serve this and later queries. Joined and
    // derived tables stay unindexed — they fall back to decode.
    if (GlobalScanEngine() == ScanEngine::kCompressed) {
      EnsureBlockIndex(table);
    }
    return ExecuteSelectOnTable(*table, stmt);
  }
  LAWS_ASSIGN_OR_RETURN(TablePtr right, catalog.Get(stmt.join_table));
  Table joined{Schema{}};
  {
    ScopedSpan span("HashJoin");
    if (span.active()) {
      std::string keys = stmt.from_table + " \xE2\x8B\x88 " + stmt.join_table;
      for (const JoinKey& k : stmt.join_keys) {
        keys += " on " + k.left_column + " = " + k.right_column;
      }
      span.SetDetail(keys);
    }
    LAWS_ASSIGN_OR_RETURN(
        joined, HashJoin(*table, *right, stmt.join_keys, stmt.join_table));
    span.SetRows(table->num_rows() + right->num_rows(), joined.num_rows());
  }
  ScopedCharge joined_charge;
  LAWS_RETURN_IF_ERROR(
      joined_charge.Acquire(joined.MemoryBytes(), "join output"));
  return ExecuteSelectOnTable(joined, stmt);
}

Result<Table> ExecuteQuery(const Catalog& catalog, const std::string& sql) {
  SelectStatement stmt;
  {
    ScopedSpan span("Parse");
    LAWS_ASSIGN_OR_RETURN(stmt, ParseSelect(sql));
  }
  return ExecuteSelect(catalog, stmt);
}

Result<std::string> ExplainSelect(const Catalog& catalog,
                                  const SelectStatement& stmt) {
  LAWS_ASSIGN_OR_RETURN(TablePtr table, catalog.Get(stmt.from_table));
  // Assemble the pipeline outside-in, then print outermost first.
  std::vector<std::string> ops;
  if (stmt.limit >= 0) ops.push_back("Limit(" + std::to_string(stmt.limit) + ")");
  if (stmt.distinct) ops.push_back("Distinct");
  {
    std::string proj = "Project(";
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      if (i > 0) proj += ", ";
      proj += stmt.select_list[i].is_star
                  ? "*"
                  : stmt.select_list[i].expr->ToString();
    }
    ops.push_back(proj + ")");
  }
  if (!stmt.order_by.empty()) {
    std::string sort = "Sort(";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) sort += ", ";
      sort += stmt.order_by[i].expr->ToString();
      sort += stmt.order_by[i].ascending ? " ASC" : " DESC";
    }
    ops.push_back(sort + ")");
  }
  if (stmt.having != nullptr) {
    ops.push_back("Filter[having](" + stmt.having->ToString() + ")");
  }
  bool has_aggregate = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.select_list) {
    if (!item.is_star && item.expr->ContainsAggregate()) has_aggregate = true;
  }
  if (has_aggregate) {
    std::string agg = "HashAggregate(keys: ";
    if (stmt.group_by.empty()) {
      agg += "<global>";
    } else {
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        if (i > 0) agg += ", ";
        agg += stmt.group_by[i]->ToString();
      }
    }
    ops.push_back(agg + ")");
  }
  if (stmt.where != nullptr) {
    ops.push_back("Filter(" + stmt.where->ToString() + ")");
  }
  if (!stmt.join_table.empty()) {
    std::string join = "HashJoin(" + stmt.from_table + " ⋈ " +
                       stmt.join_table + " on ";
    for (size_t i = 0; i < stmt.join_keys.size(); ++i) {
      if (i > 0) join += " AND ";
      join += stmt.join_keys[i].left_column + " = " +
              stmt.join_keys[i].right_column;
    }
    ops.push_back(join + ")");
  }
  ops.push_back("Scan(" + stmt.from_table + ", " +
                std::to_string(table->num_rows()) + " rows)");

  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    out.append(i * 2, ' ');
    out += ops[i];
    out += '\n';
  }
  return out;
}

Result<std::string> ExplainQuery(const Catalog& catalog,
                                 const std::string& sql) {
  LAWS_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return ExplainSelect(catalog, stmt);
}

Result<std::string> ExplainAnalyzeQuery(const Catalog& catalog,
                                        const std::string& sql) {
  TraceSink sink;
  Timer total;
  // Expression-tier accounting for this query: the counters are process-
  // global, so snapshot before and report the delta.
  Counter* compiled = MetricsRegistry::Global().GetCounter("expr.compiled");
  Counter* fallback =
      MetricsRegistry::Global().GetCounter("expr.fallback_treewalk");
  Counter* batches = MetricsRegistry::Global().GetCounter("expr.batches");
  Counter* blocks = MetricsRegistry::Global().GetCounter("scan.blocks_total");
  Counter* pruned = MetricsRegistry::Global().GetCounter("scan.blocks_pruned");
  Counter* run_skips =
      MetricsRegistry::Global().GetCounter("scan.runs_skipped");
  Counter* enc_agg = MetricsRegistry::Global().GetCounter("scan.encoded_agg");
  const uint64_t compiled0 = compiled->value();
  const uint64_t fallback0 = fallback->value();
  const uint64_t batches0 = batches->value();
  const uint64_t blocks0 = blocks->value();
  const uint64_t pruned0 = pruned->value();
  const uint64_t run_skips0 = run_skips->value();
  const uint64_t enc_agg0 = enc_agg->value();
  size_t result_rows = 0;
  // A governed query may be stopped mid-plan; that is a legitimate
  // outcome worth explaining, so the partial trace is still rendered
  // with the stop reason. Any other error propagates as usual.
  Status stopped;
  {
    ScopedSpan span("Query");
    SelectStatement stmt;
    {
      ScopedSpan parse_span("Parse");
      LAWS_ASSIGN_OR_RETURN(stmt, ParseSelect(sql));
    }
    Result<Table> result = ExecuteSelect(catalog, stmt);
    if (result.ok()) {
      result_rows = result->num_rows();
    } else if (IsGovernorStatusCode(result.status().code())) {
      stopped = result.status();
    } else {
      return result.status();
    }
  }
  std::string out = sink.Render();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "expr: engine=%s compiled=%llu fallback_treewalk=%llu "
                "batches=%llu\n",
                GlobalExprEngine() == ExprEngine::kBytecode ? "bytecode"
                                                            : "treewalk",
                static_cast<unsigned long long>(compiled->value() - compiled0),
                static_cast<unsigned long long>(fallback->value() - fallback0),
                static_cast<unsigned long long>(batches->value() - batches0));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "scan: engine=%s blocks=%llu pruned=%llu runs_skipped=%llu "
      "encoded_agg=%llu\n",
      GlobalScanEngine() == ScanEngine::kCompressed ? "compressed" : "decode",
      static_cast<unsigned long long>(blocks->value() - blocks0),
      static_cast<unsigned long long>(pruned->value() - pruned0),
      static_cast<unsigned long long>(run_skips->value() - run_skips0),
      static_cast<unsigned long long>(enc_agg->value() - enc_agg0));
  out += buf;
  if (QueryGovernor* gov = QueryGovernor::Current()) {
    out += gov->DescribeLine();
  }
  if (!stopped.ok()) {
    out += "query stopped: " + stopped.ToString() + "\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf), "%zu row%s in %.3f ms\n", result_rows,
                result_rows == 1 ? "" : "s", total.ElapsedMillis());
  out += buf;
  return out;
}

}  // namespace laws

#ifndef LAWSDB_QUERY_EXECUTOR_H_
#define LAWSDB_QUERY_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"
#include "storage/catalog.h"

namespace laws {

/// Executes a parsed SELECT against the catalog. This is the *exact* query
/// path: full scans, filters, hash aggregation. The approximate path
/// (laws::aqp) answers the same statements from captured models instead.
Result<Table> ExecuteSelect(const Catalog& catalog,
                            const SelectStatement& stmt);

/// Parses and executes SQL text.
Result<Table> ExecuteQuery(const Catalog& catalog, const std::string& sql);

/// Executes a SELECT against an explicit table (ignores the FROM name).
/// Used by the AQP layer to run rewritten plans over reconstructed data.
Result<Table> ExecuteSelectOnTable(const Table& table,
                                   const SelectStatement& stmt);

/// Renders the execution plan for a statement as indented text, one
/// operator per line, innermost (scan) last — a minimal EXPLAIN for
/// diagnostics and tests.
Result<std::string> ExplainSelect(const Catalog& catalog,
                                  const SelectStatement& stmt);
Result<std::string> ExplainQuery(const Catalog& catalog,
                                 const std::string& sql);

}  // namespace laws

#endif  // LAWSDB_QUERY_EXECUTOR_H_

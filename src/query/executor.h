#ifndef LAWSDB_QUERY_EXECUTOR_H_
#define LAWSDB_QUERY_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"
#include "storage/catalog.h"

namespace laws {

/// Executes a parsed SELECT against the catalog. This is the *exact* query
/// path: full scans, filters, hash aggregation. The approximate path
/// (laws::aqp) answers the same statements from captured models instead.
Result<Table> ExecuteSelect(const Catalog& catalog,
                            const SelectStatement& stmt);

/// Parses and executes SQL text.
Result<Table> ExecuteQuery(const Catalog& catalog, const std::string& sql);

/// Executes a SELECT against an explicit table (ignores the FROM name).
/// Used by the AQP layer to run rewritten plans over reconstructed data.
Result<Table> ExecuteSelectOnTable(const Table& table,
                                   const SelectStatement& stmt);

/// Three-way comparison defining the total order used by ORDER BY:
/// numbers (int64/double/bool, compared as doubles) < NaN < strings <
/// NULL, ascending. Every NaN compares equal to every other NaN, so the
/// order is a valid strict weak ordering even over NaN-bearing keys
/// (std::stable_sort requires this; the previous comparator returned the
/// same sign for NaN compared in either direction, which is UB).
///
/// A number-vs-string pair has no meaningful order; it is still ranked
/// deterministically (numbers first) to keep the comparator total, and
/// reported through `incomparable` (set to true, never cleared) so
/// callers can surface a type error instead of silently sorting — per-
/// column typing makes this unreachable from SQL today, but the executor
/// sorts Values, not columns, so the comparator must stay defensive.
int CompareOrderValues(const Value& a, const Value& b,
                       bool* incomparable = nullptr);

/// Renders the execution plan for a statement as indented text, one
/// operator per line, innermost (scan) last — a minimal EXPLAIN for
/// diagnostics and tests.
Result<std::string> ExplainSelect(const Catalog& catalog,
                                  const SelectStatement& stmt);
Result<std::string> ExplainQuery(const Catalog& catalog,
                                 const std::string& sql);

/// EXPLAIN ANALYZE over the exact engine: actually executes the query
/// under a TraceSink and renders the measured per-stage plan tree — each
/// operator with rows in/out and wall time — followed by a result-
/// cardinality/total-time line. The hybrid (model-vs-exact) variant lives
/// on HybridQueryEngine::ExplainAnalyze, which adds the arbitration
/// decision to the tree.
Result<std::string> ExplainAnalyzeQuery(const Catalog& catalog,
                                        const std::string& sql);

}  // namespace laws

#endif  // LAWSDB_QUERY_EXECUTOR_H_

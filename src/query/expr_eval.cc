#include "query/expr_eval.h"

#include <cmath>
#include <functional>
#include <limits>

#include "common/governor.h"
#include "common/string_util.h"

namespace laws {
namespace {

/// Internal value carrier for vectorized evaluation: either a whole column
/// or a broadcast scalar. Broadcasting literals avoids materializing
/// constant columns over large tables.
struct EvalResult {
  bool is_scalar = false;
  Value scalar;      // when is_scalar
  Column column{DataType::kDouble};  // when !is_scalar

  size_t size(size_t table_rows) const {
    return is_scalar ? table_rows : column.size();
  }
  bool IsNullAt(size_t i) const {
    return is_scalar ? scalar.is_null() : column.IsNull(i);
  }
  Value At(size_t i) const {
    return is_scalar ? scalar : column.GetValue(i);
  }
  DataType type() const {
    if (!is_scalar) return column.type();
    if (scalar.is_int64()) return DataType::kInt64;
    if (scalar.is_double()) return DataType::kDouble;
    if (scalar.is_string()) return DataType::kString;
    if (scalar.is_bool()) return DataType::kBool;
    return DataType::kDouble;  // NULL literal: treated as double
  }
  double NumAt(size_t i) const {
    if (is_scalar) {
      if (scalar.is_int64()) return static_cast<double>(scalar.int64());
      if (scalar.is_bool()) return scalar.boolean() ? 1.0 : 0.0;
      return scalar.dbl();
    }
    switch (column.type()) {
      case DataType::kInt64:
        return static_cast<double>(column.Int64At(i));
      case DataType::kDouble:
        return column.DoubleAt(i);
      case DataType::kBool:
        return column.BoolAt(i) ? 1.0 : 0.0;
      case DataType::kString:
        return 0.0;  // guarded by type checks before use
    }
    return 0.0;
  }
  int64_t IntAt(size_t i) const {
    if (is_scalar) return scalar.int64();
    return column.Int64At(i);
  }
  bool BoolValAt(size_t i) const {
    if (is_scalar) return scalar.boolean();
    return column.BoolAt(i);
  }
  std::string_view StrAt(size_t i) const {
    if (is_scalar) return scalar.str();
    return column.StringAt(i);
  }
};

bool IsNumeric(DataType t) { return t != DataType::kString; }

Result<EvalResult> Evaluate(const Expr& expr, const Table& table);

Result<EvalResult> EvaluateUnary(const Expr& expr, const Table& table) {
  LAWS_ASSIGN_OR_RETURN(EvalResult operand, Evaluate(*expr.children[0], table));
  const size_t n = operand.size(table.num_rows());
  if (expr.unary_op == UnaryOp::kNegate) {
    if (!IsNumeric(operand.type())) {
      return Status::TypeMismatch("cannot negate a string");
    }
    EvalResult out;
    if (operand.type() == DataType::kInt64) {
      out.column = Column(DataType::kInt64);
      for (size_t i = 0; i < n; ++i) {
        if (operand.IsNullAt(i)) {
          LAWS_RETURN_IF_ERROR(out.column.AppendNull());
        } else {
          int64_t v = 0;
          if (__builtin_sub_overflow(int64_t{0}, operand.IntAt(i), &v)) {
            return Status::NumericError("integer overflow in negation");
          }
          out.column.AppendInt64(v);
        }
      }
    } else {
      out.column = Column(DataType::kDouble);
      for (size_t i = 0; i < n; ++i) {
        if (operand.IsNullAt(i)) {
          LAWS_RETURN_IF_ERROR(out.column.AppendNull());
        } else {
          out.column.AppendDouble(-operand.NumAt(i));
        }
      }
    }
    return out;
  }
  // NOT
  if (operand.type() != DataType::kBool) {
    return Status::TypeMismatch("NOT requires a boolean operand");
  }
  EvalResult out;
  out.column = Column(DataType::kBool);
  for (size_t i = 0; i < n; ++i) {
    if (operand.IsNullAt(i)) {
      LAWS_RETURN_IF_ERROR(out.column.AppendNull());
    } else {
      out.column.AppendBool(!operand.BoolValAt(i));
    }
  }
  return out;
}

Result<EvalResult> EvaluateArithmetic(const Expr& expr, EvalResult lhs,
                                      EvalResult rhs, size_t n) {
  if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
    return Status::TypeMismatch("arithmetic on non-numeric operand");
  }
  const bool int_result = lhs.type() == DataType::kInt64 &&
                          rhs.type() == DataType::kInt64 &&
                          expr.binary_op != BinaryOp::kDivide;
  EvalResult out;
  if (int_result) {
    out.column = Column(DataType::kInt64);
    for (size_t i = 0; i < n; ++i) {
      if (lhs.IsNullAt(i) || rhs.IsNullAt(i)) {
        LAWS_RETURN_IF_ERROR(out.column.AppendNull());
        continue;
      }
      const int64_t a = lhs.IntAt(i);
      const int64_t b = rhs.IntAt(i);
      int64_t v = 0;
      bool overflow = false;
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
          overflow = __builtin_add_overflow(a, b, &v);
          break;
        case BinaryOp::kSubtract:
          overflow = __builtin_sub_overflow(a, b, &v);
          break;
        case BinaryOp::kMultiply:
          overflow = __builtin_mul_overflow(a, b, &v);
          break;
        case BinaryOp::kModulo:
          if (b == 0) return Status::NumericError("modulo by zero");
          // INT64_MIN % -1 overflows in hardware even though the
          // mathematical remainder is 0.
          v = b == -1 ? 0 : a % b;
          break;
        default:
          return Status::Internal("bad int arithmetic op");
      }
      if (overflow) {
        return Status::NumericError("integer overflow in arithmetic");
      }
      out.column.AppendInt64(v);
    }
    return out;
  }
  out.column = Column(DataType::kDouble);
  for (size_t i = 0; i < n; ++i) {
    if (lhs.IsNullAt(i) || rhs.IsNullAt(i)) {
      LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      continue;
    }
    const double a = lhs.NumAt(i);
    const double b = rhs.NumAt(i);
    double v = 0.0;
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        v = a + b;
        break;
      case BinaryOp::kSubtract:
        v = a - b;
        break;
      case BinaryOp::kMultiply:
        v = a * b;
        break;
      case BinaryOp::kDivide:
        if (b == 0.0) return Status::NumericError("division by zero");
        v = a / b;
        break;
      case BinaryOp::kModulo:
        if (b == 0.0) return Status::NumericError("modulo by zero");
        v = std::fmod(a, b);
        break;
      default:
        return Status::Internal("bad arithmetic op");
    }
    out.column.AppendDouble(v);
  }
  return out;
}

Result<EvalResult> EvaluateComparison(const Expr& expr, EvalResult lhs,
                                      EvalResult rhs, size_t n) {
  const bool strings =
      lhs.type() == DataType::kString && rhs.type() == DataType::kString;
  if (!strings && (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type()))) {
    return Status::TypeMismatch("cannot compare string with numeric");
  }
  EvalResult out;
  out.column = Column(DataType::kBool);
  auto cmp_to_bool = [&](int c) {
    switch (expr.binary_op) {
      case BinaryOp::kEqual:
        return c == 0;
      case BinaryOp::kNotEqual:
        return c != 0;
      case BinaryOp::kLess:
        return c < 0;
      case BinaryOp::kLessEqual:
        return c <= 0;
      case BinaryOp::kGreater:
        return c > 0;
      case BinaryOp::kGreaterEqual:
        return c >= 0;
      default:
        return false;
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (lhs.IsNullAt(i) || rhs.IsNullAt(i)) {
      LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      continue;
    }
    int c;
    if (strings) {
      const auto a = lhs.StrAt(i);
      const auto b = rhs.StrAt(i);
      c = a < b ? -1 : (a == b ? 0 : 1);
    } else {
      const double a = lhs.NumAt(i);
      const double b = rhs.NumAt(i);
      c = a < b ? -1 : (a == b ? 0 : 1);
    }
    out.column.AppendBool(cmp_to_bool(c));
  }
  return out;
}

Result<EvalResult> EvaluateLogical(const Expr& expr, EvalResult lhs,
                                   EvalResult rhs, size_t n) {
  if (lhs.type() != DataType::kBool || rhs.type() != DataType::kBool) {
    return Status::TypeMismatch("AND/OR require boolean operands");
  }
  const bool is_and = expr.binary_op == BinaryOp::kAnd;
  EvalResult out;
  out.column = Column(DataType::kBool);
  for (size_t i = 0; i < n; ++i) {
    const bool lnull = lhs.IsNullAt(i);
    const bool rnull = rhs.IsNullAt(i);
    const bool l = lnull ? false : lhs.BoolValAt(i);
    const bool r = rnull ? false : rhs.BoolValAt(i);
    // Three-valued logic.
    if (is_and) {
      if ((!lnull && !l) || (!rnull && !r)) {
        out.column.AppendBool(false);
      } else if (lnull || rnull) {
        LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      } else {
        out.column.AppendBool(true);
      }
    } else {
      if ((!lnull && l) || (!rnull && r)) {
        out.column.AppendBool(true);
      } else if (lnull || rnull) {
        LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      } else {
        out.column.AppendBool(false);
      }
    }
  }
  return out;
}

Result<EvalResult> EvaluateFunction(const Expr& expr, const Table& table) {
  const std::string& f = expr.function_name;
  const size_t n = table.num_rows();

  auto unary_math = [&](double (*fn)(double)) -> Result<EvalResult> {
    if (expr.children.size() != 1) {
      return Status::InvalidArgument(f + "() takes one argument");
    }
    LAWS_ASSIGN_OR_RETURN(EvalResult a, Evaluate(*expr.children[0], table));
    if (!IsNumeric(a.type())) {
      return Status::TypeMismatch(f + "() requires a numeric argument");
    }
    EvalResult out;
    out.column = Column(DataType::kDouble);
    const size_t rows = a.size(n);
    for (size_t i = 0; i < rows; ++i) {
      if (a.IsNullAt(i)) {
        LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      } else {
        out.column.AppendDouble(fn(a.NumAt(i)));
      }
    }
    return out;
  };

  if (f == "abs") {
    if (expr.children.size() != 1) {
      return Status::InvalidArgument("abs() takes one argument");
    }
    LAWS_ASSIGN_OR_RETURN(EvalResult a, Evaluate(*expr.children[0], table));
    if (!IsNumeric(a.type())) {
      return Status::TypeMismatch("abs() requires a numeric argument");
    }
    EvalResult out;
    const size_t rows = a.size(n);
    if (a.type() == DataType::kInt64) {
      out.column = Column(DataType::kInt64);
      for (size_t i = 0; i < rows; ++i) {
        if (a.IsNullAt(i)) {
          LAWS_RETURN_IF_ERROR(out.column.AppendNull());
        } else {
          const int64_t v = a.IntAt(i);
          if (v == std::numeric_limits<int64_t>::min()) {
            return Status::NumericError("integer overflow in abs()");
          }
          out.column.AppendInt64(v < 0 ? -v : v);
        }
      }
    } else {
      out.column = Column(DataType::kDouble);
      for (size_t i = 0; i < rows; ++i) {
        if (a.IsNullAt(i)) {
          LAWS_RETURN_IF_ERROR(out.column.AppendNull());
        } else {
          out.column.AppendDouble(std::fabs(a.NumAt(i)));
        }
      }
    }
    return out;
  }
  if (f == "ln" || f == "log") return unary_math([](double x) { return std::log(x); });
  if (f == "log10") return unary_math([](double x) { return std::log10(x); });
  if (f == "exp") return unary_math([](double x) { return std::exp(x); });
  if (f == "sqrt") return unary_math([](double x) { return std::sqrt(x); });
  if (f == "sin") return unary_math([](double x) { return std::sin(x); });
  if (f == "cos") return unary_math([](double x) { return std::cos(x); });
  if (f == "floor") return unary_math([](double x) { return std::floor(x); });
  if (f == "ceil") return unary_math([](double x) { return std::ceil(x); });
  if (f == "round") return unary_math([](double x) { return std::round(x); });
  if (f == "coalesce") {
    if (expr.children.empty()) {
      return Status::InvalidArgument("coalesce() needs arguments");
    }
    std::vector<EvalResult> args;
    args.reserve(expr.children.size());
    bool any_string = false, all_string = true;
    bool all_int = true, all_bool = true;
    for (const auto& child : expr.children) {
      LAWS_ASSIGN_OR_RETURN(EvalResult a, Evaluate(*child, table));
      any_string |= a.type() == DataType::kString;
      all_string &= a.type() == DataType::kString;
      all_int &= a.type() == DataType::kInt64;
      all_bool &= a.type() == DataType::kBool;
      args.push_back(std::move(a));
    }
    if (any_string && !all_string) {
      return Status::TypeMismatch("coalesce() mixes strings and numerics");
    }
    // Numeric family unification: only a uniform INT64 or BOOL argument
    // list keeps its type; any mix promotes to DOUBLE. (Picking the first
    // argument's type here would read the wrong backing vector for the
    // other arguments.)
    EvalResult out;
    const DataType t = all_string ? DataType::kString
                       : all_int  ? DataType::kInt64
                       : all_bool ? DataType::kBool
                                  : DataType::kDouble;
    out.column = Column(t);
    for (size_t i = 0; i < n; ++i) {
      const EvalResult* hit = nullptr;
      for (const EvalResult& a : args) {
        if (!a.IsNullAt(i)) {
          hit = &a;
          break;
        }
      }
      if (hit == nullptr) {
        LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      } else if (t == DataType::kString) {
        out.column.AppendString(hit->StrAt(i));
      } else if (t == DataType::kDouble) {
        out.column.AppendDouble(hit->NumAt(i));
      } else if (t == DataType::kInt64) {
        out.column.AppendInt64(hit->IntAt(i));
      } else {
        out.column.AppendBool(hit->BoolValAt(i));
      }
    }
    return out;
  }
  if (f == "nullif") {
    if (expr.children.size() != 2) {
      return Status::InvalidArgument("nullif() takes two arguments");
    }
    LAWS_ASSIGN_OR_RETURN(EvalResult a, Evaluate(*expr.children[0], table));
    LAWS_ASSIGN_OR_RETURN(EvalResult b, Evaluate(*expr.children[1], table));
    EvalResult out;
    out.column = Column(a.type());
    const size_t rows = std::max(a.size(n), b.size(n));
    for (size_t i = 0; i < rows; ++i) {
      bool equal = false;
      if (!a.IsNullAt(i) && !b.IsNullAt(i)) {
        if (a.type() == DataType::kString && b.type() == DataType::kString) {
          equal = a.StrAt(i) == b.StrAt(i);
        } else if (IsNumeric(a.type()) && IsNumeric(b.type())) {
          equal = a.NumAt(i) == b.NumAt(i);
        } else {
          return Status::TypeMismatch("nullif() type mismatch");
        }
      }
      if (a.IsNullAt(i) || equal) {
        LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      } else {
        LAWS_RETURN_IF_ERROR(out.column.AppendValue(a.At(i)));
      }
    }
    return out;
  }
  if (f == "pow" || f == "power") {
    if (expr.children.size() != 2) {
      return Status::InvalidArgument("pow() takes two arguments");
    }
    LAWS_ASSIGN_OR_RETURN(EvalResult a, Evaluate(*expr.children[0], table));
    LAWS_ASSIGN_OR_RETURN(EvalResult b, Evaluate(*expr.children[1], table));
    if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
      return Status::TypeMismatch("pow() requires numeric arguments");
    }
    EvalResult out;
    out.column = Column(DataType::kDouble);
    const size_t rows = std::max(a.size(n), b.size(n));
    for (size_t i = 0; i < rows; ++i) {
      if (a.IsNullAt(i) || b.IsNullAt(i)) {
        LAWS_RETURN_IF_ERROR(out.column.AppendNull());
      } else {
        out.column.AppendDouble(std::pow(a.NumAt(i), b.NumAt(i)));
      }
    }
    return out;
  }
  return Status::InvalidArgument("unknown function: " + f);
}

Result<EvalResult> Evaluate(const Expr& expr, const Table& table) {
  // One cancellation point per expression node: each node's loops run
  // the full table, so this bounds the treewalker's cancel latency to
  // one column pass.
  LAWS_GOVERNOR_POLL();
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      EvalResult out;
      out.is_scalar = true;
      out.scalar = expr.literal;
      return out;
    }
    case ExprKind::kColumnRef: {
      LAWS_ASSIGN_OR_RETURN(const Column* col,
                            table.ColumnByName(expr.column_name));
      EvalResult out;
      out.column = *col;  // copy; acceptable at this scale
      return out;
    }
    case ExprKind::kUnary:
      return EvaluateUnary(expr, table);
    case ExprKind::kBinary: {
      LAWS_ASSIGN_OR_RETURN(EvalResult lhs,
                            Evaluate(*expr.children[0], table));
      LAWS_ASSIGN_OR_RETURN(EvalResult rhs,
                            Evaluate(*expr.children[1], table));
      const size_t n =
          std::max(lhs.size(table.num_rows()), rhs.size(table.num_rows()));
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSubtract:
        case BinaryOp::kMultiply:
        case BinaryOp::kDivide:
        case BinaryOp::kModulo:
          return EvaluateArithmetic(expr, std::move(lhs), std::move(rhs), n);
        case BinaryOp::kEqual:
        case BinaryOp::kNotEqual:
        case BinaryOp::kLess:
        case BinaryOp::kLessEqual:
        case BinaryOp::kGreater:
        case BinaryOp::kGreaterEqual:
          return EvaluateComparison(expr, std::move(lhs), std::move(rhs), n);
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvaluateLogical(expr, std::move(lhs), std::move(rhs), n);
      }
      return Status::Internal("bad binary op");
    }
    case ExprKind::kFunctionCall:
      return EvaluateFunction(expr, table);
    case ExprKind::kCase: {
      const size_t pairs =
          (expr.children.size() - (expr.case_has_else ? 1 : 0)) / 2;
      std::vector<EvalResult> whens, thens;
      for (size_t i = 0; i < pairs; ++i) {
        LAWS_ASSIGN_OR_RETURN(EvalResult w,
                              Evaluate(*expr.children[2 * i], table));
        if (w.type() != DataType::kBool) {
          return Status::TypeMismatch("CASE WHEN condition is not boolean");
        }
        LAWS_ASSIGN_OR_RETURN(EvalResult t,
                              Evaluate(*expr.children[2 * i + 1], table));
        whens.push_back(std::move(w));
        thens.push_back(std::move(t));
      }
      EvalResult else_r;
      bool has_else = expr.case_has_else;
      if (has_else) {
        LAWS_ASSIGN_OR_RETURN(else_r, Evaluate(*expr.children.back(), table));
        thens.push_back(std::move(else_r));
      }
      // Result type: all branch values must share a family; within the
      // numeric family only a uniform INT64 or BOOL branch list keeps its
      // type, any mix promotes to DOUBLE. (Falling back to the first
      // branch's type would read the wrong backing vector for the others.)
      bool any_string = false, all_string = true, all_int = true,
           all_bool = true;
      for (const EvalResult& t : thens) {
        any_string |= t.type() == DataType::kString;
        all_string &= t.type() == DataType::kString;
        all_int &= t.type() == DataType::kInt64;
        all_bool &= t.type() == DataType::kBool;
      }
      if (any_string && !all_string) {
        return Status::TypeMismatch("CASE mixes strings and numerics");
      }
      const DataType out_type = all_string ? DataType::kString
                                : all_int  ? DataType::kInt64
                                : all_bool ? DataType::kBool
                                           : DataType::kDouble;
      EvalResult out;
      out.column = Column(out_type);
      const size_t n = table.num_rows();
      for (size_t i = 0; i < n; ++i) {
        const EvalResult* hit = nullptr;
        for (size_t b = 0; b < pairs; ++b) {
          if (!whens[b].IsNullAt(i) && whens[b].BoolValAt(i)) {
            hit = &thens[b];
            break;
          }
        }
        if (hit == nullptr && has_else) hit = &thens.back();
        if (hit == nullptr || hit->IsNullAt(i)) {
          LAWS_RETURN_IF_ERROR(out.column.AppendNull());
        } else if (out_type == DataType::kString) {
          out.column.AppendString(hit->StrAt(i));
        } else if (out_type == DataType::kInt64) {
          out.column.AppendInt64(hit->IntAt(i));
        } else if (out_type == DataType::kDouble) {
          out.column.AppendDouble(hit->NumAt(i));
        } else {
          out.column.AppendBool(hit->BoolValAt(i));
        }
      }
      return out;
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate in scalar context (missing GROUP BY handling?)");
    case ExprKind::kStar:
      return Status::InvalidArgument("* outside COUNT(*)");
  }
  return Status::Internal("bad expression kind");
}

}  // namespace

Result<Column> EvaluateExpr(const Expr& expr, const Table& table) {
  LAWS_ASSIGN_OR_RETURN(EvalResult r, Evaluate(expr, table));
  if (!r.is_scalar) return std::move(r.column);
  // Broadcast the scalar into a full column.
  const size_t n = table.num_rows();
  DataType t = r.type();
  Column col(t);
  for (size_t i = 0; i < n; ++i) {
    if (r.scalar.is_null()) {
      LAWS_RETURN_IF_ERROR(col.AppendNull());
    } else {
      LAWS_RETURN_IF_ERROR(col.AppendValue(r.scalar));
    }
  }
  return col;
}

Result<Value> EvaluateConstant(const Expr& expr) {
  // A one-row, zero-column table lets composite constant expressions (e.g.
  // -3, 1+2) evaluate through the vectorized path.
  Table dummy{Schema{}};
  LAWS_RETURN_IF_ERROR(dummy.AppendRow({}));
  LAWS_ASSIGN_OR_RETURN(EvalResult r, Evaluate(expr, dummy));
  if (r.is_scalar) return r.scalar;
  if (r.column.size() == 1) return r.column.GetValue(0);
  return Status::InvalidArgument("expression is not constant");
}

Result<std::vector<uint32_t>> FilterRows(const Expr& predicate,
                                         const Table& table) {
  LAWS_ASSIGN_OR_RETURN(Column mask, EvaluateExpr(predicate, table));
  if (mask.type() != DataType::kBool) {
    return Status::TypeMismatch("WHERE predicate is not boolean");
  }
  std::vector<uint32_t> selected;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (!mask.IsNull(i) && mask.BoolAt(i)) {
      selected.push_back(static_cast<uint32_t>(i));
    }
  }
  return selected;
}

}  // namespace laws

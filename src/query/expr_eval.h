#ifndef LAWSDB_QUERY_EXPR_EVAL_H_
#define LAWSDB_QUERY_EXPR_EVAL_H_

#include "common/result.h"
#include "query/ast.h"
#include "storage/table.h"

namespace laws {

/// Evaluates a scalar expression (no aggregates) over every row of `table`,
/// producing a column of table.num_rows() values. SQL NULL semantics:
/// NULL propagates through arithmetic/comparisons; AND/OR use three-valued
/// logic.
Result<Column> EvaluateExpr(const Expr& expr, const Table& table);

/// Evaluates an expression with no column references to a single Value.
Result<Value> EvaluateConstant(const Expr& expr);

/// Evaluates a boolean predicate over the table and returns the indices of
/// rows where it is TRUE (NULL and FALSE rows are excluded).
Result<std::vector<uint32_t>> FilterRows(const Expr& predicate,
                                         const Table& table);

}  // namespace laws

#endif  // LAWSDB_QUERY_EXPR_EVAL_H_

#include "query/lexer.h"

#include <cctype>

namespace laws {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      tokens.push_back(
          Token{TokenType::kIdentifier, sql.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_double = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        }
      }
      tokens.push_back(Token{is_double ? TokenType::kDoubleLit
                                       : TokenType::kIntegerLit,
                             sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back(Token{TokenType::kStringLit, std::move(text), start});
      continue;
    }
    // Multi-char operators first.
    auto two = sql.substr(i, 2);
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
      tokens.push_back(Token{TokenType::kOperator, two, start});
      i += 2;
      continue;
    }
    if (std::string("+-*/%=<>(),.;").find(c) != std::string::npos) {
      tokens.push_back(Token{TokenType::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  tokens.push_back(Token{TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace laws

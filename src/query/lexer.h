#ifndef LAWSDB_QUERY_LEXER_H_
#define LAWSDB_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace laws {

enum class TokenType {
  kIdentifier,   // column/table names; keywords are identifiers the parser
                 // matches case-insensitively
  kIntegerLit,
  kDoubleLit,
  kStringLit,
  kOperator,     // + - * / % = <> != < <= > >= ( ) , . ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // raw text (unquoted for strings)
  size_t position = 0;  // byte offset, for error messages

  bool Is(TokenType t) const { return type == t; }
};

/// Tokenizes a SQL string. Errors carry byte offsets.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace laws

#endif  // LAWSDB_QUERY_LEXER_H_

#include "query/parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "query/lexer.h"

namespace laws {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelectStatement() {
    LAWS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    if (MatchKeyword("DISTINCT")) stmt.distinct = true;
    LAWS_RETURN_IF_ERROR(ParseSelectList(&stmt));
    LAWS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    LAWS_ASSIGN_OR_RETURN(stmt.from_table, ExpectIdentifier("table name"));
    if (MatchKeyword("JOIN")) {
      LAWS_ASSIGN_OR_RETURN(stmt.join_table,
                            ExpectIdentifier("join table name"));
      LAWS_RETURN_IF_ERROR(ExpectKeyword("ON"));
      do {
        JoinKey key;
        LAWS_ASSIGN_OR_RETURN(key.left_column,
                              ExpectIdentifier("join key column"));
        LAWS_RETURN_IF_ERROR(ExpectOperator("="));
        LAWS_ASSIGN_OR_RETURN(key.right_column,
                              ExpectIdentifier("join key column"));
        stmt.join_keys.push_back(std::move(key));
      } while (MatchKeyword("AND"));
    }
    if (MatchKeyword("WHERE")) {
      LAWS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      LAWS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        LAWS_ASSIGN_OR_RETURN(auto e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (MatchOperator(","));
    }
    if (MatchKeyword("HAVING")) {
      LAWS_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (MatchKeyword("ORDER")) {
      LAWS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderKey key;
        LAWS_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          key.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
      } while (MatchOperator(","));
    }
    if (MatchKeyword("LIMIT")) {
      const Token& t = Peek();
      if (!t.Is(TokenType::kIntegerLit)) {
        return ErrorHere("expected integer after LIMIT");
      }
      stmt.limit = std::strtoll(t.text.c_str(), nullptr, 10);
      Advance();
    }
    MatchOperator(";");
    if (!Peek().Is(TokenType::kEnd)) {
      return ErrorHere("trailing input after statement");
    }
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseStandaloneExpr() {
    LAWS_ASSIGN_OR_RETURN(auto e, ParseExpr());
    if (!Peek().Is(TokenType::kEnd)) {
      return ErrorHere("trailing input after expression");
    }
    return e;
  }

 private:
  // --- token helpers -----------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool MatchKeyword(std::string_view kw) {
    const Token& t = Peek();
    if (t.Is(TokenType::kIdentifier) && EqualsIgnoreCase(t.text, kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool PeekKeyword(std::string_view kw) const {
    const Token& t = Peek();
    return t.Is(TokenType::kIdentifier) && EqualsIgnoreCase(t.text, kw);
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " near '" +
                                Peek().text + "' (offset " +
                                std::to_string(Peek().position) + ")");
    }
    return Status::OK();
  }
  bool MatchOperator(std::string_view op) {
    const Token& t = Peek();
    if (t.Is(TokenType::kOperator) && t.text == op) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectOperator(std::string_view op) {
    if (!MatchOperator(op)) {
      return Status::ParseError("expected '" + std::string(op) + "' near '" +
                                Peek().text + "' (offset " +
                                std::to_string(Peek().position) + ")");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    const Token& t = Peek();
    if (!t.Is(TokenType::kIdentifier)) {
      return Status::ParseError("expected " + std::string(what) + " near '" +
                                t.text + "'");
    }
    std::string name = t.text;
    Advance();
    return name;
  }
  Status ErrorHere(std::string_view msg) const {
    return Status::ParseError(std::string(msg) + " near '" + Peek().text +
                              "' (offset " +
                              std::to_string(Peek().position) + ")");
  }

  // --- grammar ------------------------------------------------------------
  Status ParseSelectList(SelectStatement* stmt) {
    do {
      SelectItem item;
      if (MatchOperator("*")) {
        item.is_star = true;
      } else {
        LAWS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          LAWS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Peek().Is(TokenType::kIdentifier) && !IsClauseKeyword()) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt->select_list.push_back(std::move(item));
    } while (MatchOperator(","));
    return Status::OK();
  }

  bool IsClauseKeyword() const {
    static const char* kClauses[] = {"FROM",  "WHERE", "GROUP", "HAVING",
                                     "ORDER", "LIMIT", "ASC",   "DESC",
                                     "AND",   "OR",    "AS",    "BY",
                                     "JOIN",  "ON",    "DISTINCT"};
    for (const char* kw : kClauses) {
      if (PeekKeyword(kw)) return true;
    }
    return false;
  }

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    LAWS_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      LAWS_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    LAWS_ASSIGN_OR_RETURN(auto lhs, ParseNot());
    while (MatchKeyword("AND")) {
      LAWS_ASSIGN_OR_RETURN(auto rhs, ParseNot());
      lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (MatchKeyword("NOT")) {
      LAWS_ASSIGN_OR_RETURN(auto operand, ParseNot());
      return Expr::MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    LAWS_ASSIGN_OR_RETURN(auto lhs, ParseAdditive());
    // BETWEEN lo AND hi  =>  lhs >= lo AND lhs <= hi
    if (MatchKeyword("BETWEEN")) {
      LAWS_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
      LAWS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      LAWS_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
      auto ge = Expr::MakeBinary(BinaryOp::kGreaterEqual, lhs->Clone(),
                                 std::move(lo));
      auto le =
          Expr::MakeBinary(BinaryOp::kLessEqual, std::move(lhs), std::move(hi));
      return Expr::MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
    }
    // IN (v1, v2, ...)  =>  lhs = v1 OR lhs = v2 ...
    if (MatchKeyword("IN")) {
      LAWS_RETURN_IF_ERROR(ExpectOperator("("));
      std::unique_ptr<Expr> disjunction;
      do {
        LAWS_ASSIGN_OR_RETURN(auto v, ParseAdditive());
        auto eq =
            Expr::MakeBinary(BinaryOp::kEqual, lhs->Clone(), std::move(v));
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : Expr::MakeBinary(BinaryOp::kOr,
                                             std::move(disjunction),
                                             std::move(eq));
      } while (MatchOperator(","));
      LAWS_RETURN_IF_ERROR(ExpectOperator(")"));
      return disjunction;
    }
    struct OpMap {
      const char* text;
      BinaryOp op;
    };
    static const OpMap kOps[] = {
        {"=", BinaryOp::kEqual},      {"<>", BinaryOp::kNotEqual},
        {"!=", BinaryOp::kNotEqual},  {"<=", BinaryOp::kLessEqual},
        {">=", BinaryOp::kGreaterEqual}, {"<", BinaryOp::kLess},
        {">", BinaryOp::kGreater},
    };
    for (const OpMap& m : kOps) {
      if (MatchOperator(m.text)) {
        LAWS_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
        return Expr::MakeBinary(m.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    LAWS_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
    while (true) {
      if (MatchOperator("+")) {
        LAWS_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
        lhs = Expr::MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (MatchOperator("-")) {
        LAWS_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
        lhs = Expr::MakeBinary(BinaryOp::kSubtract, std::move(lhs),
                               std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    LAWS_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (true) {
      if (MatchOperator("*")) {
        LAWS_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
        lhs = Expr::MakeBinary(BinaryOp::kMultiply, std::move(lhs),
                               std::move(rhs));
      } else if (MatchOperator("/")) {
        LAWS_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
        lhs = Expr::MakeBinary(BinaryOp::kDivide, std::move(lhs),
                               std::move(rhs));
      } else if (MatchOperator("%")) {
        LAWS_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
        lhs = Expr::MakeBinary(BinaryOp::kModulo, std::move(lhs),
                               std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (MatchOperator("-")) {
      LAWS_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      return Expr::MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    if (MatchOperator("+")) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  static Result<AggregateFunc> AggregateByName(std::string_view name) {
    if (EqualsIgnoreCase(name, "COUNT")) return AggregateFunc::kCount;
    if (EqualsIgnoreCase(name, "SUM")) return AggregateFunc::kSum;
    if (EqualsIgnoreCase(name, "AVG")) return AggregateFunc::kAvg;
    if (EqualsIgnoreCase(name, "MIN")) return AggregateFunc::kMin;
    if (EqualsIgnoreCase(name, "MAX")) return AggregateFunc::kMax;
    if (EqualsIgnoreCase(name, "VARIANCE") ||
        EqualsIgnoreCase(name, "VAR_SAMP")) {
      return AggregateFunc::kVariance;
    }
    if (EqualsIgnoreCase(name, "STDDEV") ||
        EqualsIgnoreCase(name, "STDDEV_SAMP")) {
      return AggregateFunc::kStddev;
    }
    return Status::NotFound("not an aggregate");
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntegerLit: {
        const int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
        Advance();
        return Expr::MakeLiteral(Value::Int64(v));
      }
      case TokenType::kDoubleLit: {
        const double v = std::strtod(t.text.c_str(), nullptr);
        Advance();
        return Expr::MakeLiteral(Value::Double(v));
      }
      case TokenType::kStringLit: {
        std::string s = t.text;
        Advance();
        return Expr::MakeLiteral(Value::String(std::move(s)));
      }
      case TokenType::kIdentifier: {
        if (MatchKeyword("TRUE")) return Expr::MakeLiteral(Value::Bool(true));
        if (MatchKeyword("FALSE")) {
          return Expr::MakeLiteral(Value::Bool(false));
        }
        if (MatchKeyword("NULL")) return Expr::MakeLiteral(Value::Null());
        if (MatchKeyword("CASE")) {
          // Searched CASE: WHEN <cond> THEN <value> ... [ELSE <value>] END.
          std::vector<std::unique_ptr<Expr>> branches;
          while (MatchKeyword("WHEN")) {
            LAWS_ASSIGN_OR_RETURN(auto when, ParseExpr());
            LAWS_RETURN_IF_ERROR(ExpectKeyword("THEN"));
            LAWS_ASSIGN_OR_RETURN(auto then, ParseExpr());
            branches.push_back(std::move(when));
            branches.push_back(std::move(then));
          }
          if (branches.empty()) {
            return ErrorHere("CASE needs at least one WHEN branch");
          }
          std::unique_ptr<Expr> else_expr;
          if (MatchKeyword("ELSE")) {
            LAWS_ASSIGN_OR_RETURN(else_expr, ParseExpr());
          }
          LAWS_RETURN_IF_ERROR(ExpectKeyword("END"));
          return Expr::MakeCase(std::move(branches), std::move(else_expr));
        }
        std::string name = t.text;
        Advance();
        if (MatchOperator("(")) {
          // Aggregate or scalar function call.
          auto agg = AggregateByName(name);
          if (agg.ok()) {
            std::unique_ptr<Expr> arg;
            if (MatchOperator("*")) {
              if (*agg != AggregateFunc::kCount) {
                return ErrorHere("only COUNT accepts *");
              }
              arg = Expr::MakeStar();
            } else {
              LAWS_ASSIGN_OR_RETURN(arg, ParseExpr());
            }
            LAWS_RETURN_IF_ERROR(ExpectOperator(")"));
            return Expr::MakeAggregate(*agg, std::move(arg));
          }
          std::vector<std::unique_ptr<Expr>> args;
          if (!MatchOperator(")")) {
            do {
              LAWS_ASSIGN_OR_RETURN(auto arg, ParseExpr());
              args.push_back(std::move(arg));
            } while (MatchOperator(","));
            LAWS_RETURN_IF_ERROR(ExpectOperator(")"));
          }
          return Expr::MakeFunctionCall(ToLower(name), std::move(args));
        }
        return Expr::MakeColumnRef(std::move(name));
      }
      case TokenType::kOperator:
        if (MatchOperator("(")) {
          LAWS_ASSIGN_OR_RETURN(auto e, ParseExpr());
          LAWS_RETURN_IF_ERROR(ExpectOperator(")"));
          return e;
        }
        break;
      case TokenType::kEnd:
        break;
    }
    return ErrorHere("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  LAWS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelectStatement();
}

Result<std::unique_ptr<Expr>> ParseExpression(const std::string& text) {
  LAWS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpr();
}

}  // namespace laws

#ifndef LAWSDB_QUERY_PARSER_H_
#define LAWSDB_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace laws {

/// Parses one SELECT statement. Supported grammar (case-insensitive
/// keywords):
///
///   SELECT <item, ...> FROM <table>
///     [WHERE <expr>] [GROUP BY <expr, ...>] [HAVING <expr>]
///     [ORDER BY <expr [ASC|DESC], ...>] [LIMIT <n>]
///
/// with arithmetic, comparisons, AND/OR/NOT, BETWEEN, IN (value list),
/// scalar functions (ABS, LOG, LN, LOG10, EXP, SQRT, POW, SIN, COS, FLOOR,
/// CEIL, ROUND) and aggregates (COUNT(*), COUNT, SUM, AVG, MIN, MAX).
Result<SelectStatement> ParseSelect(const std::string& sql);

/// Parses a standalone scalar/boolean expression (used for filters in API
/// contexts, e.g. partial-model coverage predicates).
Result<std::unique_ptr<Expr>> ParseExpression(const std::string& text);

}  // namespace laws

#endif  // LAWSDB_QUERY_PARSER_H_

#include "query/query_context.h"

#include <limits>

#include "common/env.h"
#include "query/executor.h"

namespace laws {
namespace {

ResourceLimits LimitsFromEnvImpl() {
  ResourceLimits limits;
  const int64_t timeout_ms = EnvInt64("LAWS_QUERY_TIMEOUT_MS", 0, 0,
                                      std::numeric_limits<int64_t>::max() /
                                          1000);
  limits.timeout_micros = timeout_ms * 1000;
  const int64_t budget_mb =
      EnvInt64("LAWS_QUERY_MEMBUDGET_MB", 0, 0, int64_t{1} << 40);
  limits.memory_budget_bytes =
      static_cast<uint64_t>(budget_mb) * 1024 * 1024;
  return limits;
}

}  // namespace

ResourceLimits QueryContext::LimitsFromEnv() { return LimitsFromEnvImpl(); }

Result<Table> ExecuteQueryGoverned(const Catalog& catalog,
                                   const std::string& sql,
                                   const ResourceLimits& limits) {
  QueryContext ctx(limits);
  return ctx.Run([&] { return ExecuteQuery(catalog, sql); });
}

}  // namespace laws

#ifndef LAWSDB_QUERY_QUERY_CONTEXT_H_
#define LAWSDB_QUERY_QUERY_CONTEXT_H_

#include <string>

#include "common/governor.h"
#include "common/result.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace laws {

/// Driver-facing handle for one governed query: owns the QueryGovernor
/// and scopes its installation around execution. The shell, the hybrid
/// engine, and the differential harness all run queries through this
/// rather than wiring ScopedGovernor by hand, so the install/uninstall
/// discipline lives in exactly one place.
///
/// Default limits come from the environment (see LimitsFromEnv); a
/// driver that wants per-query limits (shell `timeout` / `membudget`
/// commands) passes them explicitly. Cancel() may be called from any
/// thread while Run() is in flight — that is the whole point.
class QueryContext {
 public:
  /// Limits from LAWS_QUERY_TIMEOUT_MS and LAWS_QUERY_MEMBUDGET_MB
  /// (0 / unset / malformed = unlimited; malformed warns once).
  static ResourceLimits LimitsFromEnv();

  QueryContext() : QueryContext(LimitsFromEnv()) {}
  explicit QueryContext(ResourceLimits limits) : governor_(limits) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  QueryGovernor& governor() { return governor_; }
  const QueryGovernor& governor() const { return governor_; }

  /// Requests cooperative cancellation (thread-safe, idempotent).
  void Cancel() { governor_.Cancel(); }

  /// Binds a session-lifetime interrupt flag polled by the governor (see
  /// QueryGovernor::BindExternalCancel). Call before Run().
  void BindExternalCancel(std::atomic<bool>* flag) {
    governor_.BindExternalCancel(flag);
  }

  /// Runs `fn` with this context's governor installed on the calling
  /// thread, returning whatever `fn` returns. Nesting-safe.
  template <typename Fn>
  auto Run(Fn&& fn) -> decltype(fn()) {
    ScopedGovernor install(&governor_);
    return fn();
  }

 private:
  QueryGovernor governor_;
};

/// Parses and executes `sql` under a fresh governor with `limits`.
/// Returns the result table, or the typed governor error when a limit
/// trips (kCanceled / kDeadlineExceeded / kResourceExhausted).
Result<Table> ExecuteQueryGoverned(const Catalog& catalog,
                                   const std::string& sql,
                                   const ResourceLimits& limits);

}  // namespace laws

#endif  // LAWSDB_QUERY_QUERY_CONTEXT_H_

#include "query/vector_eval.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/env.h"
#include "common/governor.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "query/expr_eval.h"

namespace laws {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::atomic<int>& EngineFlag() {
  static std::atomic<int> flag([] {
    const bool treewalk = EnvFlag("LAWS_EXPR_TREEWALK", false);
    return static_cast<int>(treewalk ? ExprEngine::kTreewalk
                                     : ExprEngine::kBytecode);
  }());
  return flag;
}

Counter* CompiledCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("expr.compiled");
  return c;
}

Counter* FallbackCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("expr.fallback_treewalk");
  return c;
}

Counter* BatchesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("expr.batches");
  return c;
}

MetricHistogram* CompileMicros() {
  static MetricHistogram* h =
      MetricsRegistry::Global().GetHistogram("expr.compile_micros");
  return h;
}

}  // namespace

ExprEngine GlobalExprEngine() {
  return static_cast<ExprEngine>(EngineFlag().load(std::memory_order_relaxed));
}

void SetGlobalExprEngine(ExprEngine engine) {
  EngineFlag().store(static_cast<int>(engine), std::memory_order_relaxed);
}

BatchEvaluator::BatchEvaluator(size_t batch_size)
    : batch_size_(batch_size == 0 ? 1 : batch_size) {}

/// Lane discipline, everywhere in this file: every loop reads all input
/// lanes at index i before writing any output lane at index i, so an
/// output register may alias an input register (the compiler recycles
/// slots at an operand's last use). Null masks are 1 = NULL; when a
/// slot's has_nulls is false its null8 contents are undefined and must
/// not be read. Value lanes under a set null bit hold unspecified
/// scratch — they never escape (materialization and filtering consult
/// the mask first) and every error check skips them, which is exactly
/// the tree-walker's "b == 0.0 only on non-NULL lanes" rule.
Status BatchEvaluator::RunBatch(const CompiledExpr& program,
                                const Table& table, size_t base, size_t n) {
  auto nulls_of = [](const Slot& s) -> const uint8_t* {
    return s.has_nulls ? s.null8.data() : nullptr;
  };

  auto union_nulls = [&](const Slot& a, const Slot& b, Slot& out) -> bool {
    const uint8_t* na = nulls_of(a);
    const uint8_t* nb = nulls_of(b);
    if (na == nullptr && nb == nullptr) {
      out.has_nulls = false;
      return false;
    }
    uint8_t any = 0;
    uint8_t* no = out.null8.data();
    for (size_t i = 0; i < n; ++i) {
      const uint8_t v =
          static_cast<uint8_t>((na != nullptr ? na[i] : 0) |
                               (nb != nullptr ? nb[i] : 0));
      no[i] = v;
      any |= v;
    }
    out.has_nulls = any != 0;
    return out.has_nulls;
  };

  auto copy_nulls = [&](const Slot& a, Slot& out) {
    if (&a == &out) return;
    out.has_nulls = a.has_nulls;
    if (a.has_nulls) std::memcpy(out.null8.data(), a.null8.data(), n);
  };

  auto load_nulls = [&](const Column& col, Slot& out) {
    if (col.null_count() == 0) {
      out.has_nulls = false;
      return;
    }
    uint8_t any = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint8_t v = col.IsNull(base + i) ? 1 : 0;
      out.null8[i] = v;
      any |= v;
    }
    out.has_nulls = any != 0;
  };

  auto unary_f64 = [&](const Instruction& ins, double (*fn)(double)) {
    const Slot& a = slots_[ins.a];
    Slot& o = slots_[ins.out];
    const double* pa = a.f64.data();
    double* po = o.f64.data();
    for (size_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
    copy_nulls(a, o);
  };

  // Checked int64 arithmetic: fn(x, y, out) returns true on overflow.
  auto i64_checked = [&](const Instruction& ins, auto fn) -> Status {
    const Slot& a = slots_[ins.a];
    const Slot& b = slots_[ins.b];
    Slot& o = slots_[ins.out];
    const bool has = union_nulls(a, b, o);
    const uint8_t* no = has ? o.null8.data() : nullptr;
    const int64_t* pa = a.i64.data();
    const int64_t* pb = b.i64.data();
    int64_t* po = o.i64.data();
    for (size_t i = 0; i < n; ++i) {
      if (no != nullptr && no[i] != 0) continue;
      int64_t v = 0;
      if (fn(pa[i], pb[i], &v)) {
        return Status::NumericError("integer overflow in arithmetic");
      }
      po[i] = v;
    }
    return Status::OK();
  };

  // Unchecked double arithmetic runs branchless over every lane: IEEE
  // arithmetic on the scratch under null bits is harmless and the union
  // mask hides it.
  auto f64_bin = [&](const Instruction& ins, auto fn) {
    const Slot& a = slots_[ins.a];
    const Slot& b = slots_[ins.b];
    Slot& o = slots_[ins.out];
    union_nulls(a, b, o);
    const double* pa = a.f64.data();
    const double* pb = b.f64.data();
    double* po = o.f64.data();
    for (size_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  };

  // Comparisons express the tree-walker's three-way compare
  // c = a < b ? -1 : (a == b ? 0 : 1): an unordered pair (NaN) lands in
  // the c = 1 bucket, so NaN > x and NaN >= x are true while NaN == x,
  // NaN < x and NaN <= x are false. Plain IEEE comparisons would get
  // Gt/Ge wrong on NaN.
  auto cmp_f64 = [&](const Instruction& ins, auto fn) {
    const Slot& a = slots_[ins.a];
    const Slot& b = slots_[ins.b];
    Slot& o = slots_[ins.out];
    union_nulls(a, b, o);
    const double* pa = a.f64.data();
    const double* pb = b.f64.data();
    uint8_t* po = o.b8.data();
    for (size_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]) ? 1 : 0;
  };

  // N-ary selects share one per-lane shape; copy_lane moves one lane of
  // the unified output type.
  auto coalesce = [&](const Instruction& ins, auto copy_lane) {
    const auto& list = program.arg_lists[ins.aux];
    Slot& o = slots_[ins.out];
    uint8_t* no = o.null8.data();
    uint8_t any = 0;
    for (size_t i = 0; i < n; ++i) {
      const Slot* hit = nullptr;
      for (const uint16_t s : list) {
        const Slot& arg = slots_[s];
        if (!(arg.has_nulls && arg.null8[i] != 0)) {
          hit = &arg;
          break;
        }
      }
      if (hit == nullptr) {
        no[i] = 1;
        any = 1;
      } else {
        copy_lane(*hit, o, i);
        no[i] = 0;
      }
    }
    o.has_nulls = any != 0;
  };

  auto nullif = [&](const Instruction& ins, auto a_num, auto copy_lane) {
    const auto& list = program.arg_lists[ins.aux];
    const Slot& a = slots_[list[0]];
    const Slot& b = slots_[list[1]];
    const DataType bt = static_cast<DataType>(list[2]);
    Slot& o = slots_[ins.out];
    uint8_t* no = o.null8.data();
    uint8_t any = 0;
    for (size_t i = 0; i < n; ++i) {
      const bool an = a.has_nulls && a.null8[i] != 0;
      const bool bn = b.has_nulls && b.null8[i] != 0;
      bool equal = false;
      if (!an && !bn) {
        // The tree-walker compares NULLIF operands numerically through
        // double coercion regardless of physical type.
        double bv;
        switch (bt) {
          case DataType::kInt64:
            bv = static_cast<double>(b.i64[i]);
            break;
          case DataType::kDouble:
            bv = b.f64[i];
            break;
          default:
            bv = b.b8[i] != 0 ? 1.0 : 0.0;
            break;
        }
        equal = a_num(a, i) == bv;
      }
      if (an || equal) {
        no[i] = 1;
        any = 1;
      } else {
        copy_lane(a, o, i);
        no[i] = 0;
      }
    }
    o.has_nulls = any != 0;
  };

  auto case_op = [&](const Instruction& ins, auto copy_lane) {
    const auto& list = program.arg_lists[ins.aux];
    const bool has_else = (list.size() % 2) == 1;
    const size_t pairs = list.size() / 2;
    Slot& o = slots_[ins.out];
    uint8_t* no = o.null8.data();
    uint8_t any = 0;
    for (size_t i = 0; i < n; ++i) {
      const Slot* hit = nullptr;
      for (size_t p = 0; p < pairs; ++p) {
        const Slot& w = slots_[list[2 * p]];
        if (!(w.has_nulls && w.null8[i] != 0) && w.b8[i] != 0) {
          hit = &slots_[list[2 * p + 1]];
          break;
        }
      }
      if (hit == nullptr && has_else) hit = &slots_[list.back()];
      if (hit == nullptr || (hit->has_nulls && hit->null8[i] != 0)) {
        no[i] = 1;
        any = 1;
      } else {
        copy_lane(*hit, o, i);
        no[i] = 0;
      }
    }
    o.has_nulls = any != 0;
  };

  for (const Instruction& ins : program.code) {
    Slot& o = slots_[ins.out];
    switch (ins.op) {
      case OpCode::kLoadColI64: {
        const Column& col = table.column(program.columns[ins.aux].index);
        std::memcpy(o.i64.data(), col.int64_data().data() + base,
                    n * sizeof(int64_t));
        load_nulls(col, o);
        break;
      }
      case OpCode::kLoadColF64: {
        const Column& col = table.column(program.columns[ins.aux].index);
        std::memcpy(o.f64.data(), col.double_data().data() + base,
                    n * sizeof(double));
        load_nulls(col, o);
        break;
      }
      case OpCode::kLoadColBool: {
        const Column& col = table.column(program.columns[ins.aux].index);
        std::memcpy(o.b8.data(), col.bool_data().data() + base, n);
        load_nulls(col, o);
        break;
      }
      case OpCode::kConstI64:
        std::fill_n(o.i64.data(), n, program.constants[ins.aux].int64());
        o.has_nulls = false;
        break;
      case OpCode::kConstF64:
        std::fill_n(o.f64.data(), n, program.constants[ins.aux].dbl());
        o.has_nulls = false;
        break;
      case OpCode::kConstBool:
        std::fill_n(o.b8.data(), n,
                    static_cast<uint8_t>(
                        program.constants[ins.aux].boolean() ? 1 : 0));
        o.has_nulls = false;
        break;
      case OpCode::kConstNull:
        std::fill_n(o.f64.data(), n, kNaN);
        std::fill_n(o.null8.data(), n, uint8_t{1});
        o.has_nulls = true;
        break;
      case OpCode::kCastI64F64: {
        const Slot& a = slots_[ins.a];
        const int64_t* pa = a.i64.data();
        double* po = o.f64.data();
        for (size_t i = 0; i < n; ++i) po[i] = static_cast<double>(pa[i]);
        copy_nulls(a, o);
        break;
      }
      case OpCode::kCastBoolF64: {
        const Slot& a = slots_[ins.a];
        const uint8_t* pa = a.b8.data();
        double* po = o.f64.data();
        for (size_t i = 0; i < n; ++i) po[i] = pa[i] != 0 ? 1.0 : 0.0;
        copy_nulls(a, o);
        break;
      }
      case OpCode::kNegI64: {
        const Slot& a = slots_[ins.a];
        copy_nulls(a, o);
        const uint8_t* no = o.has_nulls ? o.null8.data() : nullptr;
        const int64_t* pa = a.i64.data();
        int64_t* po = o.i64.data();
        for (size_t i = 0; i < n; ++i) {
          if (no != nullptr && no[i] != 0) continue;
          int64_t v = 0;
          if (__builtin_sub_overflow(int64_t{0}, pa[i], &v)) {
            return Status::NumericError("integer overflow in negation");
          }
          po[i] = v;
        }
        break;
      }
      case OpCode::kNegF64: {
        const Slot& a = slots_[ins.a];
        const double* pa = a.f64.data();
        double* po = o.f64.data();
        for (size_t i = 0; i < n; ++i) po[i] = -pa[i];
        copy_nulls(a, o);
        break;
      }
      case OpCode::kNotBool: {
        const Slot& a = slots_[ins.a];
        const uint8_t* pa = a.b8.data();
        uint8_t* po = o.b8.data();
        for (size_t i = 0; i < n; ++i) po[i] = pa[i] != 0 ? 0 : 1;
        copy_nulls(a, o);
        break;
      }
      case OpCode::kAbsI64: {
        const Slot& a = slots_[ins.a];
        copy_nulls(a, o);
        const uint8_t* no = o.has_nulls ? o.null8.data() : nullptr;
        const int64_t* pa = a.i64.data();
        int64_t* po = o.i64.data();
        for (size_t i = 0; i < n; ++i) {
          if (no != nullptr && no[i] != 0) continue;
          const int64_t v = pa[i];
          if (v == std::numeric_limits<int64_t>::min()) {
            return Status::NumericError("integer overflow in abs()");
          }
          po[i] = v < 0 ? -v : v;
        }
        break;
      }
      case OpCode::kAbsF64:
        unary_f64(ins, [](double x) { return std::fabs(x); });
        break;
      case OpCode::kLnF64:
        unary_f64(ins, [](double x) { return std::log(x); });
        break;
      case OpCode::kLog10F64:
        unary_f64(ins, [](double x) { return std::log10(x); });
        break;
      case OpCode::kExpF64:
        unary_f64(ins, [](double x) { return std::exp(x); });
        break;
      case OpCode::kSqrtF64:
        unary_f64(ins, [](double x) { return std::sqrt(x); });
        break;
      case OpCode::kSinF64:
        unary_f64(ins, [](double x) { return std::sin(x); });
        break;
      case OpCode::kCosF64:
        unary_f64(ins, [](double x) { return std::cos(x); });
        break;
      case OpCode::kFloorF64:
        unary_f64(ins, [](double x) { return std::floor(x); });
        break;
      case OpCode::kCeilF64:
        unary_f64(ins, [](double x) { return std::ceil(x); });
        break;
      case OpCode::kRoundF64:
        unary_f64(ins, [](double x) { return std::round(x); });
        break;
      case OpCode::kAddI64:
        LAWS_RETURN_IF_ERROR(i64_checked(
            ins, [](int64_t x, int64_t y, int64_t* out) {
              return __builtin_add_overflow(x, y, out);
            }));
        break;
      case OpCode::kSubI64:
        LAWS_RETURN_IF_ERROR(i64_checked(
            ins, [](int64_t x, int64_t y, int64_t* out) {
              return __builtin_sub_overflow(x, y, out);
            }));
        break;
      case OpCode::kMulI64:
        LAWS_RETURN_IF_ERROR(i64_checked(
            ins, [](int64_t x, int64_t y, int64_t* out) {
              return __builtin_mul_overflow(x, y, out);
            }));
        break;
      case OpCode::kModI64: {
        const Slot& a = slots_[ins.a];
        const Slot& b = slots_[ins.b];
        const bool has = union_nulls(a, b, o);
        const uint8_t* no = has ? o.null8.data() : nullptr;
        const int64_t* pa = a.i64.data();
        const int64_t* pb = b.i64.data();
        int64_t* po = o.i64.data();
        for (size_t i = 0; i < n; ++i) {
          if (no != nullptr && no[i] != 0) continue;
          const int64_t d = pb[i];
          if (d == 0) return Status::NumericError("modulo by zero");
          // INT64_MIN % -1 overflows in hardware even though the
          // mathematical remainder is 0.
          po[i] = d == -1 ? 0 : pa[i] % d;
        }
        break;
      }
      case OpCode::kAddF64: {
        const Slot& a = slots_[ins.a];
        const Slot& b = slots_[ins.b];
        union_nulls(a, b, o);
        const double* pa = a.f64.data();
        const double* pb = b.f64.data();
        double* po = o.f64.data();
        size_t lanes = n;
#ifdef LAWS_TESTING_INJECT_BUG
        // Planted mutant for the differential smoke test: the bytecode
        // adder drops the last lane of every batch, leaving stale
        // scratch there.
        if (lanes > 0) --lanes;
#endif
        for (size_t i = 0; i < lanes; ++i) po[i] = pa[i] + pb[i];
        break;
      }
      case OpCode::kSubF64:
        f64_bin(ins, [](double x, double y) { return x - y; });
        break;
      case OpCode::kMulF64:
        f64_bin(ins, [](double x, double y) { return x * y; });
        break;
      case OpCode::kPowF64:
        f64_bin(ins, [](double x, double y) { return std::pow(x, y); });
        break;
      case OpCode::kDivF64:
      case OpCode::kModF64: {
        const Slot& a = slots_[ins.a];
        const Slot& b = slots_[ins.b];
        const bool has = union_nulls(a, b, o);
        const uint8_t* no = has ? o.null8.data() : nullptr;
        const double* pa = a.f64.data();
        const double* pb = b.f64.data();
        double* po = o.f64.data();
        const bool is_div = ins.op == OpCode::kDivF64;
        for (size_t i = 0; i < n; ++i) {
          if (no != nullptr && no[i] != 0) continue;
          if (pb[i] == 0.0) {
            return Status::NumericError(is_div ? "division by zero"
                                               : "modulo by zero");
          }
          po[i] = is_div ? pa[i] / pb[i] : std::fmod(pa[i], pb[i]);
        }
        break;
      }
      case OpCode::kCmpEqF64:
        cmp_f64(ins, [](double x, double y) { return x == y; });
        break;
      case OpCode::kCmpNeF64:
        cmp_f64(ins, [](double x, double y) { return !(x == y); });
        break;
      case OpCode::kCmpLtF64:
        cmp_f64(ins, [](double x, double y) { return x < y; });
        break;
      case OpCode::kCmpLeF64:
        cmp_f64(ins, [](double x, double y) { return x < y || x == y; });
        break;
      case OpCode::kCmpGtF64:
        cmp_f64(ins, [](double x, double y) { return !(x < y || x == y); });
        break;
      case OpCode::kCmpGeF64:
        cmp_f64(ins, [](double x, double y) { return !(x < y); });
        break;
      case OpCode::kAnd3VL:
      case OpCode::kOr3VL: {
        const Slot& a = slots_[ins.a];
        const Slot& b = slots_[ins.b];
        const uint8_t* na = nulls_of(a);
        const uint8_t* nb = nulls_of(b);
        const uint8_t* pa = a.b8.data();
        const uint8_t* pb = b.b8.data();
        uint8_t* po = o.b8.data();
        uint8_t* no = o.null8.data();
        uint8_t any = 0;
        const bool is_and = ins.op == OpCode::kAnd3VL;
        for (size_t i = 0; i < n; ++i) {
          const bool ln = na != nullptr && na[i] != 0;
          const bool rn = nb != nullptr && nb[i] != 0;
          const bool l = !ln && pa[i] != 0;
          const bool r = !rn && pb[i] != 0;
          uint8_t val = 0;
          uint8_t nul = 0;
          if (is_and) {
            if ((!ln && !l) || (!rn && !r)) {
              val = 0;  // a definite FALSE dominates NULL
            } else if (ln || rn) {
              nul = 1;
            } else {
              val = 1;
            }
          } else {
            if ((!ln && l) || (!rn && r)) {
              val = 1;  // a definite TRUE dominates NULL
            } else if (ln || rn) {
              nul = 1;
            } else {
              val = 0;
            }
          }
          po[i] = val;
          no[i] = nul;
          any |= nul;
        }
        o.has_nulls = any != 0;
        break;
      }
      case OpCode::kCoalesceI64:
        coalesce(ins, [](const Slot& s, Slot& out, size_t i) {
          out.i64[i] = s.i64[i];
        });
        break;
      case OpCode::kCoalesceF64:
        coalesce(ins, [](const Slot& s, Slot& out, size_t i) {
          out.f64[i] = s.f64[i];
        });
        break;
      case OpCode::kCoalesceBool:
        coalesce(ins, [](const Slot& s, Slot& out, size_t i) {
          out.b8[i] = s.b8[i];
        });
        break;
      case OpCode::kNullIfI64:
        nullif(
            ins,
            [](const Slot& s, size_t i) {
              return static_cast<double>(s.i64[i]);
            },
            [](const Slot& s, Slot& out, size_t i) {
              out.i64[i] = s.i64[i];
            });
        break;
      case OpCode::kNullIfF64:
        nullif(
            ins, [](const Slot& s, size_t i) { return s.f64[i]; },
            [](const Slot& s, Slot& out, size_t i) {
              out.f64[i] = s.f64[i];
            });
        break;
      case OpCode::kNullIfBool:
        nullif(
            ins,
            [](const Slot& s, size_t i) {
              return s.b8[i] != 0 ? 1.0 : 0.0;
            },
            [](const Slot& s, Slot& out, size_t i) {
              out.b8[i] = s.b8[i];
            });
        break;
      case OpCode::kCaseI64:
        case_op(ins, [](const Slot& s, Slot& out, size_t i) {
          out.i64[i] = s.i64[i];
        });
        break;
      case OpCode::kCaseF64:
        case_op(ins, [](const Slot& s, Slot& out, size_t i) {
          out.f64[i] = s.f64[i];
        });
        break;
      case OpCode::kCaseBool:
        case_op(ins, [](const Slot& s, Slot& out, size_t i) {
          out.b8[i] = s.b8[i];
        });
        break;
    }
  }
  return Status::OK();
}

Result<Column> BatchEvaluator::Run(const CompiledExpr& program,
                                   const Table& table) {
  const size_t rows = table.num_rows();
  if (slots_.size() < program.num_slots) slots_.resize(program.num_slots);
  for (size_t s = 0; s < program.num_slots; ++s) {
    Slot& slot = slots_[s];
    if (slot.f64.size() < batch_size_) {
      slot.f64.resize(batch_size_);
      slot.i64.resize(batch_size_);
      slot.b8.resize(batch_size_);
      slot.null8.resize(batch_size_);
    }
  }
  Column out(program.result_type);
  const Slot& r = slots_[program.result_slot];
  uint64_t batches = 0;
  for (size_t base = 0; base < rows; base += batch_size_) {
    LAWS_GOVERNOR_POLL();
    const size_t n = std::min(batch_size_, rows - base);
    LAWS_RETURN_IF_ERROR(RunBatch(program, table, base, n));
    ++batches;
    const uint8_t* nulls = r.has_nulls ? r.null8.data() : nullptr;
    switch (program.result_type) {
      case DataType::kInt64:
        out.AppendInt64Batch(r.i64.data(), nulls, n);
        break;
      case DataType::kDouble:
        out.AppendDoubleBatch(r.f64.data(), nulls, n);
        break;
      case DataType::kBool:
        out.AppendBoolBatch(r.b8.data(), nulls, n);
        break;
      case DataType::kString:
        return Status::Internal("compiled expression produced a string");
    }
  }
  BatchesCounter()->Add(batches);
  return out;
}

Result<std::vector<uint32_t>> BatchEvaluator::RunFilter(
    const CompiledExpr& program, const Table& table) {
  const size_t rows = table.num_rows();
  if (slots_.size() < program.num_slots) slots_.resize(program.num_slots);
  for (size_t s = 0; s < program.num_slots; ++s) {
    Slot& slot = slots_[s];
    if (slot.f64.size() < batch_size_) {
      slot.f64.resize(batch_size_);
      slot.i64.resize(batch_size_);
      slot.b8.resize(batch_size_);
      slot.null8.resize(batch_size_);
    }
  }
  // A non-boolean predicate still evaluates fully before the type error,
  // matching FilterRows (which materializes the mask column first), so a
  // data-dependent numeric error wins over the type diagnostic in both
  // tiers.
  const bool is_bool = program.result_type == DataType::kBool;
  std::vector<uint32_t> selected;
  const Slot& r = slots_[program.result_slot];
  uint64_t batches = 0;
  for (size_t base = 0; base < rows; base += batch_size_) {
    LAWS_GOVERNOR_POLL();
    const size_t n = std::min(batch_size_, rows - base);
    LAWS_RETURN_IF_ERROR(RunBatch(program, table, base, n));
    ++batches;
    if (!is_bool) continue;
    const uint8_t* nulls = r.has_nulls ? r.null8.data() : nullptr;
    const uint8_t* vals = r.b8.data();
    for (size_t i = 0; i < n; ++i) {
      if ((nulls == nullptr || nulls[i] == 0) && vals[i] != 0) {
        selected.push_back(static_cast<uint32_t>(base + i));
      }
    }
  }
  BatchesCounter()->Add(batches);
  if (!is_bool) {
    return Status::TypeMismatch("WHERE predicate is not boolean");
  }
  return selected;
}

namespace {

std::optional<CompiledExpr> CompileWithMetrics(const Expr& expr,
                                               const Schema& schema) {
  Timer timer;
  std::optional<CompiledExpr> program = CompileExpr(expr, schema);
  CompileMicros()->Record(timer.ElapsedMicros());
  if (program.has_value()) {
    CompiledCounter()->Add(1);
  } else {
    FallbackCounter()->Add(1);
  }
  return program;
}

BatchEvaluator& ThreadEvaluator() {
  // One evaluator per thread keeps scratch registers warm across queries
  // without sharing mutable state between pool workers.
  thread_local BatchEvaluator ev;
  return ev;
}

}  // namespace

Result<Column> EvaluateExprAuto(const Expr& expr, const Table& table,
                                std::string* disassembly) {
  if (disassembly != nullptr) disassembly->clear();
  if (GlobalExprEngine() == ExprEngine::kTreewalk) {
    return EvaluateExpr(expr, table);
  }
  std::optional<CompiledExpr> program =
      CompileWithMetrics(expr, table.schema());
  if (!program.has_value()) return EvaluateExpr(expr, table);
  if (disassembly != nullptr) *disassembly = program->ToString();
  return ThreadEvaluator().Run(*program, table);
}

Result<std::vector<uint32_t>> FilterRowsAuto(const Expr& predicate,
                                             const Table& table,
                                             std::string* disassembly) {
  if (disassembly != nullptr) disassembly->clear();
  if (GlobalExprEngine() == ExprEngine::kTreewalk) {
    return FilterRows(predicate, table);
  }
  std::optional<CompiledExpr> program =
      CompileWithMetrics(predicate, table.schema());
  if (!program.has_value()) return FilterRows(predicate, table);
  if (disassembly != nullptr) *disassembly = program->ToString();
  return ThreadEvaluator().RunFilter(*program, table);
}

}  // namespace laws

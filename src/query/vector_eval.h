#ifndef LAWSDB_QUERY_VECTOR_EVAL_H_
#define LAWSDB_QUERY_VECTOR_EVAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/bytecode.h"
#include "storage/table.h"

namespace laws {

/// Batch stack machine executing CompiledExpr programs (bytecode.h) over
/// column batches of kExprBatchSize values, with null validity carried as
/// one byte per lane alongside each register. All register storage lives
/// in the evaluator and is reused across batches, runs and queries — the
/// steady state performs zero allocations per batch.
///
/// The `*Auto` entry points are what the executor calls: compile once,
/// run batched, and fall back to the row-proven tree-walker
/// (expr_eval.h) for anything the compiler declines or when the
/// tree-walk tier is forced (LAWS_EXPR_TREEWALK=1 / SetGlobalExprEngine)
/// — the differential harness runs every query on both tiers and
/// requires bit identity.

/// Which expression tier the executor uses. The default comes from the
/// environment: LAWS_EXPR_TREEWALK=1 forces the tree-walker process-wide.
enum class ExprEngine { kBytecode, kTreewalk };
ExprEngine GlobalExprEngine();
void SetGlobalExprEngine(ExprEngine engine);

/// Batch width. 1–4K is the classic vectorized-execution sweet spot
/// (registers stay in L1/L2, amortizes dispatch ~1000×); tests use small
/// widths to exercise batch-boundary handling.
inline constexpr size_t kExprBatchSize = 1024;

class BatchEvaluator {
 public:
  explicit BatchEvaluator(size_t batch_size = kExprBatchSize);

  /// Executes `program` over every row of `table`, materializing the
  /// result column (type = program.result_type). Errors carry the
  /// tree-walker's exact diagnostics ("division by zero", ...).
  Result<Column> Run(const CompiledExpr& program, const Table& table);

  /// Filter fast path: `program` must produce BOOL; returns the indices
  /// of rows where it is TRUE (NULL/FALSE excluded) without ever
  /// materializing the mask column.
  Result<std::vector<uint32_t>> RunFilter(const CompiledExpr& program,
                                          const Table& table);

 private:
  /// One register: typed lanes plus a 1-byte-per-lane null mask (1 =
  /// NULL, matching GatherNumericMasked). `has_nulls` lets ops take a
  /// dense loop that skips mask reads when no lane is NULL.
  struct Slot {
    std::vector<double> f64;
    std::vector<int64_t> i64;
    std::vector<uint8_t> b8;
    std::vector<uint8_t> null8;
    bool has_nulls = false;
  };

  Status RunBatch(const CompiledExpr& program, const Table& table,
                  size_t base, size_t n);

  size_t batch_size_;
  std::vector<Slot> slots_;
};

/// Compile-then-run-batched evaluation with tree-walk fallback: the
/// executor's expression entry point. Bumps `expr.compiled` /
/// `expr.fallback_treewalk` / `expr.batches` counters and the
/// `expr.compile_micros` histogram. When `disassembly` is non-null and
/// the bytecode tier ran, it receives the compiled program dump (for
/// EXPLAIN ANALYZE).
Result<Column> EvaluateExprAuto(const Expr& expr, const Table& table,
                                std::string* disassembly = nullptr);

/// Filter counterpart of EvaluateExprAuto: row indices where the
/// predicate is TRUE, via RunFilter when compiled, FilterRows otherwise.
Result<std::vector<uint32_t>> FilterRowsAuto(
    const Expr& predicate, const Table& table,
    std::string* disassembly = nullptr);

}  // namespace laws

#endif  // LAWSDB_QUERY_VECTOR_EVAL_H_

#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/thread_pool.h"
#include "query/executor.h"

namespace laws {
namespace {

/// Server-wide accounting (cached pointers; see metrics.h).
struct ServeMetrics {
  Counter* sessions_opened;
  Counter* sessions_closed;
  Counter* sessions_rejected;
  Counter* admitted;
  Counter* rejected_queue_timeout;
  MetricHistogram* queue_wait_micros;

  static ServeMetrics& Get() {
    static ServeMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return ServeMetrics{
          reg.GetCounter("serve.sessions_opened"),
          reg.GetCounter("serve.sessions_closed"),
          reg.GetCounter("serve.sessions_rejected"),
          reg.GetCounter("serve.queries_admitted"),
          reg.GetCounter("serve.rejected_queue_timeout"),
          reg.GetHistogram("serve.queue_wait_micros")};
    }();
    return m;
  }
};

int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Result-cardinality attribution for the per-session rows_out counter.
size_t RowsOf(const Table& t) { return t.num_rows(); }
size_t RowsOf(const HybridAnswer& a) { return a.table.num_rows(); }
size_t RowsOf(const ApproxAnswer& a) { return a.table.num_rows(); }
size_t RowsOf(const std::string&) { return 0; }
size_t RowsOf(const FitReport&) { return 0; }
size_t RowsOf(const RefitReport&) { return 0; }
size_t RowsOf(size_t) { return 0; }
size_t RowsOf(bool) { return 0; }

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions options;
  options.max_inflight_queries = static_cast<size_t>(
      EnvInt64("LAWS_SERVE_MAX_INFLIGHT", 0, 0, int64_t{1} << 20));
  options.queue_timeout_micros =
      EnvInt64("LAWS_SERVE_QUEUE_TIMEOUT_MS", 10'000, 0,
               std::numeric_limits<int64_t>::max() / 1000) *
      1000;
  options.max_sessions = static_cast<size_t>(
      EnvInt64("LAWS_SERVE_MAX_SESSIONS", 0, 0, int64_t{1} << 20));
  options.default_limits = QueryContext::LimitsFromEnv();
  return options;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      max_inflight_(options_.max_inflight_queries > 0
                        ? options_.max_inflight_queries
                        : std::max<size_t>(
                              4, 2 * std::thread::hardware_concurrency())) {}

Server::~Server() = default;

Result<std::shared_ptr<ClientSession>> Server::Connect(std::string label) {
  // fetch_add-then-check keeps the cap exact under concurrent Connects.
  const size_t open = open_sessions_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (options_.max_sessions > 0 && open > options_.max_sessions) {
    open_sessions_.fetch_sub(1, std::memory_order_acq_rel);
    ServeMetrics::Get().sessions_rejected->Add();
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " open sessions)");
  }
  const uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  if (label.empty()) label = "s" + std::to_string(id);
  ServeMetrics::Get().sessions_opened->Add();
  return std::shared_ptr<ClientSession>(
      new ClientSession(this, id, std::move(label)));
}

size_t Server::inflight_queries() const {
  std::lock_guard<std::mutex> lock(admit_mutex_);
  return inflight_;
}

void Server::AdmissionSlot::Release() {
  if (server_ != nullptr) {
    server_->ReleaseSlot();
    server_ = nullptr;
  }
}

Result<Server::AdmissionSlot> Server::Admit() {
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(admit_mutex_);
  if (inflight_ >= max_inflight_) {
    const bool admitted =
        options_.queue_timeout_micros > 0 &&
        slot_free_.wait_for(
            lock, std::chrono::microseconds(options_.queue_timeout_micros),
            [&] { return inflight_ < max_inflight_; });
    if (!admitted) {
      ServeMetrics::Get().rejected_queue_timeout->Add();
      return Status::ResourceExhausted(
          "admission queue timeout: " + std::to_string(max_inflight_) +
          " queries already in flight and no slot freed within " +
          std::to_string(options_.queue_timeout_micros / 1000) + " ms");
    }
  }
  ++inflight_;
  lock.unlock();
  ServeMetrics& m = ServeMetrics::Get();
  m.admitted->Add();
  m.queue_wait_micros->Record(static_cast<double>(MicrosSince(start)));
  return AdmissionSlot(this);
}

void Server::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    --inflight_;
  }
  slot_free_.notify_one();
}

void Server::SessionClosed() {
  open_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  ServeMetrics::Get().sessions_closed->Add();
}

ClientSession::ClientSession(Server* server, uint64_t id, std::string name)
    : server_(server),
      id_(id),
      name_(std::move(name)),
      limits_(server->options().default_limits) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string prefix = "session." + name_ + ".";
  queries_counter_ = reg.GetCounter(prefix + "queries");
  errors_counter_ = reg.GetCounter(prefix + "errors");
  rows_out_counter_ = reg.GetCounter(prefix + "rows_out");
  query_micros_ = reg.GetHistogram(prefix + "query_micros");
}

ClientSession::~ClientSession() { Close(); }

void ClientSession::Close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    server_->SessionClosed();
  }
}

Status ClientSession::CheckOpen() const {
  if (closed()) {
    return Status::Aborted("session " + name_ + " is closed");
  }
  return Status::OK();
}

void ClientSession::RecordOutcome(const Status& status, int64_t micros) {
  queries_counter_->Add();
  if (!status.ok()) errors_counter_->Add();
  query_micros_->Record(static_cast<double>(micros));
}

ResourceLimits ClientSession::limits() const {
  std::lock_guard<std::mutex> lock(limits_mutex_);
  return limits_;
}

void ClientSession::set_limits(const ResourceLimits& limits) {
  std::lock_guard<std::mutex> lock(limits_mutex_);
  limits_ = limits;
}

SnapshotPtr ClientSession::PinSnapshot() const {
  return server_->snapshots().Pin();
}

template <typename T, typename Fn>
Result<T> ClientSession::RunRead(Fn&& body) {
  LAWS_RETURN_IF_ERROR(CheckOpen());
  LAWS_ASSIGN_OR_RETURN(Server::AdmissionSlot slot, server_->Admit());
  // Pin after admission: a query that waited in the queue reads the
  // freshest committed epoch, not the one from arrival time.
  SnapshotPtr snap = server_->snapshots().Pin();
  QueryContext ctx(limits());
  ctx.BindExternalCancel(&interrupt_);
  const auto start = std::chrono::steady_clock::now();
  Result<T> out = ctx.Run([&] { return body(*snap); });
  RecordOutcome(out.ok() ? Status::OK() : out.status(), MicrosSince(start));
  if (out.ok()) rows_out_counter_->Add(RowsOf(*out));
  return out;
}

template <typename T, typename Fn>
Result<T> ClientSession::RunWrite(Fn&& body) {
  LAWS_RETURN_IF_ERROR(CheckOpen());
  LAWS_ASSIGN_OR_RETURN(Server::AdmissionSlot slot, server_->Admit());
  QueryContext ctx(limits());
  ctx.BindExternalCancel(&interrupt_);
  const auto start = std::chrono::steady_clock::now();
  std::optional<Result<T>> out;
  const Status commit = ctx.Run([&] {
    return server_->snapshots().Commit([&](DatabaseSnapshot* db) {
      Result<T> r = body(db);
      const Status status = r.ok() ? Status::OK() : r.status();
      out.emplace(std::move(r));
      return status;
    });
  });
  RecordOutcome(commit, MicrosSince(start));
  if (!commit.ok()) return commit;
  return std::move(*out);
}

Result<Table> ClientSession::ExecuteSql(const std::string& sql) {
  return RunRead<Table>([&](const DatabaseSnapshot& db) {
    return ExecuteQuery(db.tables, sql);
  });
}

Result<HybridAnswer> ClientSession::ExecuteHybrid(const std::string& sql) {
  return RunRead<HybridAnswer>([&](const DatabaseSnapshot& db) {
    ModelQueryEngine aqp(&db.tables, &db.models, &db.domains);
    HybridQueryEngine hybrid(&db.tables, &aqp, server_->options().hybrid);
    return hybrid.Execute(sql);
  });
}

Result<ApproxAnswer> ClientSession::ExecuteApprox(const std::string& sql) {
  return RunRead<ApproxAnswer>([&](const DatabaseSnapshot& db) {
    ModelQueryEngine aqp(&db.tables, &db.models, &db.domains);
    return aqp.Execute(sql);
  });
}

Result<std::string> ClientSession::ExplainAnalyze(const std::string& sql) {
  return RunRead<std::string>([&](const DatabaseSnapshot& db) {
    ModelQueryEngine aqp(&db.tables, &db.models, &db.domains);
    HybridQueryEngine hybrid(&db.tables, &aqp, server_->options().hybrid);
    return hybrid.ExplainAnalyze(sql);
  });
}

Result<Table> ClientSession::ExecuteRead(
    const std::function<Result<Table>(const DatabaseSnapshot&)>& body) {
  return RunRead<Table>(body);
}

std::future<Result<Table>> ClientSession::SubmitSql(const std::string& sql) {
  auto self = shared_from_this();
  auto promise = std::make_shared<std::promise<Result<Table>>>();
  std::future<Result<Table>> future = promise->get_future();
  // GlobalShared pins the pool across the submission, so a concurrent
  // SetGlobalThreadCount cannot tear it down under the task.
  std::shared_ptr<ThreadPool> pool = ThreadPool::GlobalShared();
  pool->Submit([self, promise, sql, pool] {
    promise->set_value(self->ExecuteSql(sql));
  });
  return future;
}

Status ClientSession::CreateTable(const std::string& name, Table table) {
  auto shared = std::make_shared<Table>(std::move(table));
  auto r = RunWrite<bool>([&](DatabaseSnapshot* db) -> Result<bool> {
    db->tables.RegisterOrReplace(name, shared);
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Status ClientSession::Ingest(const std::string& name, const Table& rows) {
  auto r = RunWrite<bool>([&](DatabaseSnapshot* db) -> Result<bool> {
    LAWS_ASSIGN_OR_RETURN(
        TablePtr dst, SnapshotCatalog::MutableTableForWrite(db, name));
    if (dst->num_columns() != rows.num_columns()) {
      return Status::InvalidArgument(
          "ingest batch has " + std::to_string(rows.num_columns()) +
          " columns; table '" + name + "' has " +
          std::to_string(dst->num_columns()));
    }
    for (size_t c = 0; c < dst->num_columns(); ++c) {
      if (dst->column(c).type() != rows.column(c).type()) {
        return Status::TypeMismatch(
            "ingest batch column " + std::to_string(c) +
            " type does not match table '" + name + "'");
      }
    }
    std::vector<Value> row(rows.num_columns());
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      if ((i & 1023u) == 0u) LAWS_GOVERNOR_POLL();
      for (size_t c = 0; c < rows.num_columns(); ++c) {
        row[c] = rows.GetValue(i, c);
      }
      LAWS_RETURN_IF_ERROR(dst->AppendRow(row));
    }
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Status ClientSession::DropTable(const std::string& name) {
  auto r = RunWrite<bool>([&](DatabaseSnapshot* db) -> Result<bool> {
    LAWS_RETURN_IF_ERROR(db->tables.Drop(name));
    db->models.RemoveForTable(name);
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Status ClientSession::RegisterDomain(const std::string& table,
                                     const std::string& column,
                                     ColumnDomain domain) {
  auto r = RunWrite<bool>([&](DatabaseSnapshot* db) -> Result<bool> {
    db->domains.Register(table, column, std::move(domain));
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Result<FitReport> ClientSession::Fit(const FitRequest& request) {
  return RunWrite<FitReport>([&](DatabaseSnapshot* db) {
    Session session(&db->tables, &db->models);
    return session.Fit(request);
  });
}

Result<RefitReport> ClientSession::RefitStale() {
  return RunWrite<RefitReport>([&](DatabaseSnapshot* db) {
    Session session(&db->tables, &db->models);
    return session.RefitStale();
  });
}

Result<size_t> ClientSession::MaterializeView(uint64_t model_id,
                                              const std::string& view_name) {
  return RunWrite<size_t>([&](DatabaseSnapshot* db) {
    ModelQueryEngine aqp(&db->tables, &db->models, &db->domains);
    return aqp.MaterializeView(model_id, view_name, &db->tables);
  });
}

Status ClientSession::ReplaceDatabase(Catalog tables, ModelCatalog models) {
  auto r = RunWrite<bool>([&](DatabaseSnapshot* db) -> Result<bool> {
    db->tables = std::move(tables);
    db->models = std::move(models);
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

}  // namespace laws

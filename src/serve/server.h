#ifndef LAWSDB_SERVE_SERVER_H_
#define LAWSDB_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "aqp/hybrid.h"
#include "aqp/model_aqp.h"
#include "common/governor.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/session.h"
#include "query/query_context.h"
#include "serve/snapshot.h"

namespace laws {

class ClientSession;

/// Serving-layer configuration. Defaults come from the environment via
/// FromEnv(); everything can be overridden programmatically (tests and
/// benches pin exact values).
struct ServerOptions {
  /// Upper bound on queries executing at once across all sessions —
  /// the enforcement half of admission control that the per-query
  /// governor does not provide. 0 = 2 × hardware_concurrency (min 4).
  /// LAWS_SERVE_MAX_INFLIGHT overrides.
  size_t max_inflight_queries = 0;

  /// How long an arriving query may wait in the admission queue for a
  /// slot before being rejected with kResourceExhausted. <= 0 rejects
  /// immediately when saturated. LAWS_SERVE_QUEUE_TIMEOUT_MS overrides.
  int64_t queue_timeout_micros = 10'000'000;

  /// Maximum concurrently open sessions; Connect beyond it fails with
  /// kResourceExhausted. 0 = unlimited. LAWS_SERVE_MAX_SESSIONS
  /// overrides.
  size_t max_sessions = 0;

  /// Per-query limits handed to every session at Connect (sessions may
  /// adjust their own afterwards). Defaults to QueryContext's env knobs.
  ResourceLimits default_limits;

  /// Model-vs-exact arbitration options for the hybrid path.
  HybridOptions hybrid;

  /// Options with every field resolved from LAWS_SERVE_* / governor env
  /// knobs (unset ⇒ the defaults above).
  static ServerOptions FromEnv();
};

/// The always-on serving face of the engine (DESIGN.md §16): one Server
/// owns the snapshot-isolated catalog and the admission gate; N
/// concurrent ClientSessions multiplex queries over the process-wide
/// ThreadPool. Reads pin a snapshot and run governed; writes (ingest,
/// fit, drop, refit) are serialized copy-and-swap commits that readers
/// never wait on.
///
/// Lifetime: the Server must outlive every session it vends. Sessions
/// are handed out as shared_ptr; Close() (or destruction) releases the
/// session slot.
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions::FromEnv());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a session. `label` names the session in per-session metrics
  /// (`session.<label>.*`); empty ⇒ `s<id>`. Fails with
  /// kResourceExhausted at the session cap.
  Result<std::shared_ptr<ClientSession>> Connect(std::string label = "");

  SnapshotCatalog& snapshots() { return snapshots_; }
  const ServerOptions& options() const { return options_; }

  size_t open_sessions() const {
    return open_sessions_.load(std::memory_order_relaxed);
  }
  size_t inflight_queries() const;

 private:
  friend class ClientSession;

  /// RAII admission slot: releasing wakes one queued query.
  class AdmissionSlot {
   public:
    AdmissionSlot() = default;
    explicit AdmissionSlot(Server* server) : server_(server) {}
    AdmissionSlot(AdmissionSlot&& other) noexcept
        : server_(std::exchange(other.server_, nullptr)) {}
    AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
      Release();
      server_ = std::exchange(other.server_, nullptr);
      return *this;
    }
    ~AdmissionSlot() { Release(); }
    void Release();

   private:
    Server* server_ = nullptr;
  };

  /// Blocks up to the queue timeout for an in-flight slot; typed
  /// kResourceExhausted on timeout (never an exception, never a crash).
  Result<AdmissionSlot> Admit();
  void ReleaseSlot();
  void SessionClosed();

  const ServerOptions options_;
  const size_t max_inflight_;  // resolved (never 0)
  SnapshotCatalog snapshots_;

  mutable std::mutex admit_mutex_;
  std::condition_variable slot_free_;
  size_t inflight_ = 0;

  std::atomic<size_t> open_sessions_{0};
  std::atomic<uint64_t> next_session_id_{1};
};

/// One client's handle onto the Server. All query methods are safe to
/// call from any thread; the session-level interrupt flag makes
/// cancellation per-session — CancelCurrent() (or a SIGINT handler
/// writing interrupt_flag()) stops this session's in-flight query and
/// never another session's. A session used by several threads at once is
/// allowed; the interrupt then cancels whichever of its queries observes
/// the flag first.
class ClientSession : public std::enable_shared_from_this<ClientSession> {
 public:
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  // ---- Reads: admission-controlled, snapshot-pinned, governed. ----

  /// Exact SQL through the executor.
  Result<Table> ExecuteSql(const std::string& sql);
  /// Model-vs-exact arbitration (the Figure-2 transparent face).
  Result<HybridAnswer> ExecuteHybrid(const std::string& sql);
  /// Model-only answer (fails when no fresh covering model exists).
  Result<ApproxAnswer> ExecuteApprox(const std::string& sql);
  /// EXPLAIN ANALYZE through the hybrid engine.
  Result<std::string> ExplainAnalyze(const std::string& sql);
  /// Generic governed read over a pinned snapshot — the building block
  /// the methods above share, exposed for custom drivers and tests.
  Result<Table> ExecuteRead(
      const std::function<Result<Table>(const DatabaseSnapshot&)>& body);

  /// Asynchronous ExecuteSql multiplexed onto the process ThreadPool;
  /// admission control applies inside the task (queue wait is measured
  /// from task start). Keeps the session alive until completion.
  std::future<Result<Table>> SubmitSql(const std::string& sql);

  // ---- Writes: serialized snapshot commits (readers never blocked). --

  /// Registers (or replaces) `table` under `name`.
  Status CreateTable(const std::string& name, Table table);
  /// Appends `rows` (same arity and column types) copy-on-write: pinned
  /// readers keep seeing the pre-ingest table.
  Status Ingest(const std::string& name, const Table& rows);
  /// Drops the table and every model fitted over it.
  Status DropTable(const std::string& name);
  /// Registers an enumerable domain for (table, column).
  Status RegisterDomain(const std::string& table, const std::string& column,
                        ColumnDomain domain);
  /// Fits and captures a model (Figure 2 steps 1–3) as one commit.
  Result<FitReport> Fit(const FitRequest& request);
  /// Refits every model whose table moved on; one commit for the sweep.
  Result<RefitReport> RefitStale();
  /// Materializes a model grid as a table (MauveDB-style view).
  Result<size_t> MaterializeView(uint64_t model_id,
                                 const std::string& view_name);
  /// Wholesale replacement of tables+models (the shell `load` path).
  /// Domains are preserved.
  Status ReplaceDatabase(Catalog tables, ModelCatalog models);

  // ---- Session state. ----

  /// Pins the current snapshot for ungoverned reads (listings, exports).
  SnapshotPtr PinSnapshot() const;

  void set_limits(const ResourceLimits& limits);
  ResourceLimits limits() const;

  /// The session-lifetime interrupt flag. Writing true is async-signal-
  /// safe and cancels this session's current query at its next governor
  /// poll (or arms the next query when idle). The pointer stays valid
  /// for the session's lifetime — this is the safe alternative to
  /// publishing a per-query governor pointer to a signal handler.
  std::atomic<bool>* interrupt_flag() { return &interrupt_; }

  /// Cancels this session's in-flight query (cooperative, typed
  /// kCanceled). Never affects other sessions.
  void CancelCurrent() { interrupt_.store(true, std::memory_order_release); }

  /// Releases the session slot; further operations fail with kAborted.
  /// Idempotent; also called by the destructor.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  friend class Server;
  ClientSession(Server* server, uint64_t id, std::string name);

  /// Admission + snapshot pin + governed execution + metrics, shared by
  /// every read path.
  template <typename T, typename Fn>
  Result<T> RunRead(Fn&& body);
  /// Admission + governed serialized commit + metrics, shared by every
  /// write path. `out_status` style: the commit's result.
  template <typename T, typename Fn>
  Result<T> RunWrite(Fn&& body);
  /// Guards against use-after-Close.
  Status CheckOpen() const;
  void RecordOutcome(const Status& status, int64_t micros);

  Server* const server_;
  const uint64_t id_;
  const std::string name_;

  mutable std::mutex limits_mutex_;
  ResourceLimits limits_;

  std::atomic<bool> interrupt_{false};
  std::atomic<bool> closed_{false};

  // Per-session attribution (PR-4 registry; stable pointers).
  Counter* queries_counter_;
  Counter* errors_counter_;
  Counter* rows_out_counter_;
  MetricHistogram* query_micros_;
};

}  // namespace laws

#endif  // LAWSDB_SERVE_SERVER_H_

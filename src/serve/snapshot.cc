#include "serve/snapshot.h"

#include "common/metrics.h"
#include "compress/block_store.h"

namespace laws {
namespace {

Counter* CommitCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("serve.commits");
  return c;
}

}  // namespace

SnapshotCatalog::SnapshotCatalog()
    : current_(std::make_shared<DatabaseSnapshot>()) {}

SnapshotPtr SnapshotCatalog::Pin() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return current_;
}

Status SnapshotCatalog::Commit(
    const std::function<Status(DatabaseSnapshot*)>& mutate) {
  std::lock_guard<std::mutex> commit_lock(commit_mutex_);
  SnapshotPtr base = Pin();
  auto next = std::make_shared<DatabaseSnapshot>();
  next->epoch = base->epoch + 1;
  next->tables = base->tables.Clone();
  next->models = base->models.Clone();
  next->domains = base->domains;
  LAWS_RETURN_IF_ERROR(mutate(next.get()));
  {
    std::lock_guard<std::mutex> publish_lock(publish_mutex_);
    current_ = std::move(next);
  }
  CommitCounter()->Add();
  // Tables dropped or replaced by this commit lose their last strong
  // reference once the old snapshots drain; purge whatever has already
  // expired so the block-index cache cannot hoard dead tables between
  // scans on a long-running server.
  PurgeExpiredBlockIndexes();
  return Status::OK();
}

Result<TablePtr> SnapshotCatalog::MutableTableForWrite(
    DatabaseSnapshot* db, const std::string& name) {
  LAWS_ASSIGN_OR_RETURN(TablePtr shared, db->tables.Get(name));
  auto writable = std::make_shared<Table>(*shared);
  db->tables.RegisterOrReplace(name, writable);
  return writable;
}

}  // namespace laws

#ifndef LAWSDB_SERVE_SNAPSHOT_H_
#define LAWSDB_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "aqp/domain.h"
#include "common/result.h"
#include "core/model_catalog.h"
#include "storage/catalog.h"

namespace laws {

/// One immutable, epoch-stamped view of the whole database: table
/// bindings, captured models, and enumerable domains. Readers treat a
/// snapshot as frozen — nothing reachable from it is ever mutated after
/// publication, so a long analytical query can hold one for seconds
/// while ingest, refits, and drops commit new epochs beside it.
///
/// Table payloads are shared across epochs by shared_ptr; writers follow
/// copy-on-write discipline (clone the Table, append to the clone,
/// rebind the name), so the bindings differ between epochs but untouched
/// tables are never duplicated.
struct DatabaseSnapshot {
  /// Monotone commit counter; epoch 0 is the empty database.
  uint64_t epoch = 0;
  Catalog tables;
  ModelCatalog models;
  DomainRegistry domains;
};

using SnapshotPtr = std::shared_ptr<const DatabaseSnapshot>;

/// The snapshot-isolated catalog at the heart of the serving layer
/// (DESIGN.md §16): readers pin the current snapshot with one brief
/// mutex acquisition and then run lock-free against immutable state;
/// writers serialize on a commit mutex, mutate a private copy of the
/// catalogs (copy-and-swap), and publish it as epoch N+1. Readers never
/// block writers and writers never block readers — the only shared
/// critical section is the pointer swap.
class SnapshotCatalog {
 public:
  SnapshotCatalog();

  SnapshotCatalog(const SnapshotCatalog&) = delete;
  SnapshotCatalog& operator=(const SnapshotCatalog&) = delete;

  /// Pins the current snapshot. O(1): one mutex + one shared_ptr copy.
  /// The snapshot stays valid (and its tables alive) for as long as the
  /// caller holds the pointer, regardless of subsequent commits.
  SnapshotPtr Pin() const;

  /// Epoch of the current snapshot.
  uint64_t epoch() const { return Pin()->epoch; }

  /// Runs `mutate` on a writable copy of the current snapshot and, iff
  /// it returns OK, publishes the copy as the next epoch. On error
  /// nothing is published — a failed commit is invisible to readers.
  /// Writers are serialized: the copy is always taken from the latest
  /// epoch, so commits never lose updates. The mutator must honor
  /// copy-on-write for table payloads (see MutableTableForWrite).
  Status Commit(const std::function<Status(DatabaseSnapshot*)>& mutate);

  /// Copy-on-write helper for mutators: returns a freshly cloned Table
  /// bound to `name` inside `db`, safe to mutate (the shared payload the
  /// binding previously pointed at is left untouched for readers).
  /// NotFound when the table does not exist.
  static Result<TablePtr> MutableTableForWrite(DatabaseSnapshot* db,
                                               const std::string& name);

 private:
  /// Serializes writers (held across clone + mutate + publish).
  std::mutex commit_mutex_;
  /// Guards only the `current_` pointer swap/copy.
  mutable std::mutex publish_mutex_;
  SnapshotPtr current_;
};

}  // namespace laws

#endif  // LAWSDB_SERVE_SNAPSHOT_H_

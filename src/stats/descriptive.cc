#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace laws {

void Moments::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Moments::Merge(const Moments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Moments::stddev_sample() const { return std::sqrt(variance_sample()); }

double Mean(const std::vector<double>& v) {
  Moments m;
  for (double x : v) m.Add(x);
  return m.mean();
}

double VarianceSample(const std::vector<double>& v) {
  Moments m;
  for (double x : v) m.Add(x);
  return m.variance_sample();
}

double Covariance(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += (x[i] - mx) * (y[i] - my);
  return acc / static_cast<double>(n - 1);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  const double sx = std::sqrt(VarianceSample(x));
  const double sy = std::sqrt(VarianceSample(y));
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return Covariance(x, y) / (sx * sy);
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double h = (static_cast<double>(sorted.size()) - 1.0) * q;
  const auto lo = static_cast<size_t>(std::floor(h));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(QuantileSorted(values, q));
  return out;
}

}  // namespace laws

#ifndef LAWSDB_STATS_DESCRIPTIVE_H_
#define LAWSDB_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace laws {

/// Single-pass, numerically stable accumulator for count/mean/variance/
/// min/max (Welford's algorithm). Mergeable, so it composes with grouped
/// aggregation.
class Moments {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel/grouped combine).
  void Merge(const Moments& other);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance_population() const { return n_ > 0 ? m2_ / n_ : 0.0; }
  /// Sample variance (divide by n-1); 0 for n < 2.
  double variance_sample() const { return n_ > 1 ? m2_ / (n_ - 1) : 0.0; }
  double stddev_sample() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `v`; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Sample variance of `v`; 0 for fewer than two values.
double VarianceSample(const std::vector<double>& v);

/// Sample covariance of paired observations; 0 for fewer than two pairs.
double Covariance(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation coefficient; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Quantile with linear interpolation (type-7, as in R). `q` in [0,1];
/// `sorted` must be ascending and non-empty.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Convenience: copies, sorts, and evaluates several quantiles at once.
std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs);

}  // namespace laws

#endif  // LAWSDB_STATS_DESCRIPTIVE_H_
